// Figure 3 reproduction: GPU utilization of GPipe and 1F1B with a
// first-order optimizer vs with PipeFisher, without and with data &
// inversion parallelism.
//
// Paper setup: BERT-Base (L=12), 4 stages x 3 layers/stage, 4 or 8 P100
// GPUs, 4 micro-batches of size 32, sequence length 128.
// Paper numbers: GPipe 41.7% -> 89.0%; 1F1B 41.5% -> 88.7%;
//                w/ data & inversion parallelism (8 GPUs): 86.2% / 86.3%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"
#include "src/trace/ascii_gantt.h"

using namespace pf;

namespace {

PipeFisherConfig base_config(const std::string& schedule) {
  PipeFisherConfig cfg;
  cfg.schedule = schedule;
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  return cfg;
}

void run_case(const std::string& schedule, const char* paper_base,
              const char* paper_pf, const char* paper_pf8) {
  auto cfg = base_config(schedule);
  const auto rep = run_pipefisher(cfg);

  bench::subheading(schedule + " (4 GPUs)");
  bench::compare_line("baseline GPU utilization",
                      percent(rep.utilization_baseline), paper_base);
  bench::compare_line("w/ PipeFisher GPU utilization",
                      percent(rep.utilization), paper_pf);
  bench::compare_line("curvature+inverse refresh interval",
                      format("%d steps", rep.refresh_interval_steps),
                      "<= 2 steps");
  bench::compare_line("step-time overhead (precondition only)",
                      format("+%.1f%%", rep.overhead_fraction() * 100),
                      "small");

  GanttOptions opt;
  opt.width = 100;
  std::printf("\nbaseline step:\n%s",
              render_ascii_gantt(rep.baseline_step, opt).c_str());
  std::printf("\nPipeFisher refresh window (%d steps):\n%s",
              rep.refresh_interval_steps,
              render_ascii_gantt(rep.pipefisher_window, opt).c_str());

  cfg.data_parallel_world = 2;
  cfg.inversion_parallel = true;
  const auto rep8 = run_pipefisher(cfg);
  bench::subheading(schedule + " w/ PipeFisher + data & inversion parallel "
                               "(8 GPUs)");
  bench::compare_line("GPU utilization", percent(rep8.utilization),
                      paper_pf8);
  bench::compare_line("refresh interval",
                      format("%d steps", rep8.refresh_interval_steps),
                      "<= 2 steps");
}

}  // namespace

int main() {
  bench::heading(
      "Figure 3: GPipe & 1F1B utilization, BERT-Base, D=4 x 3 layers, "
      "B_micro=32, S=128, P100");
  run_case("gpipe", "41.7%", "89.0%", "86.2%");
  run_case("1f1b", "41.5%", "88.7%", "86.3%");
  std::printf(
      "\nShape check: PipeFisher roughly doubles utilization; the 8-GPU\n"
      "data+inversion-parallel variant stays slightly below the 4-GPU one\n"
      "because of the sync-curvature collectives, as in the paper.\n");
  return 0;
}
