// §5 discussion reproduction: "PipeFisher for non-Transformer
// architectures".
//
// Transformers pipeline well because every block costs the same. CNN-style
// models have stages with very different costs (feature maps shrink,
// channels grow), and the inversion work grows with the CUBE of the layer
// width — so both the pipeline and the K-FAC work become imbalanced. This
// bench quantifies that claim with heterogeneous per-stage costs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"
#include "src/trace/ascii_gantt.h"

using namespace pf;

namespace {

double run_uniform() {
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  const auto rep = run_pipefisher(cfg);
  std::printf("%-36s utilization %s -> %s, refresh %d steps\n",
              "uniform transformer stages",
              percent(rep.utilization_baseline).c_str(),
              percent(rep.utilization).c_str(), rep.refresh_interval_steps);
  return rep.utilization_baseline;
}

}  // namespace

int main() {
  bench::heading("§5 discussion: load imbalance for non-uniform stages");

  const double uniform_util = run_uniform();

  // CNN-like imbalance: stage costs 2.0 / 1.3 / 0.8 / 0.5 of the mean —
  // early stages carry big feature maps.
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  StepCosts costs = derive_step_costs(cfg, false);
  costs.stage_cost_scale = {2.0, 1.3, 0.8, 0.5};
  const auto spec = build_schedule(cfg);
  const auto imbalanced = simulate_step(spec, costs);
  const double util =
      imbalanced.timeline.utilization(0.0, imbalanced.step_time);
  std::printf("%-36s utilization %s (pipeline alone)\n",
              "CNN-like stages (2.0/1.3/0.8/0.5x)", percent(util).c_str());

  GanttOptions opt;
  opt.width = 100;
  std::printf("\n%s", render_ascii_gantt(imbalanced.timeline, opt).c_str());

  // Inversion-work imbalance: cube of the factor widths.
  bench::subheading("inversion work vs layer width (cubic)");
  const CostModel cm(cfg.hw);
  std::printf("%-12s %14s\n", "width", "T_inv(factor)");
  for (std::size_t d : {256u, 512u, 1024u, 2048u, 4096u})
    std::printf("%-12zu %14s\n", d,
                human_time(cm.time_inversion_factor(d)).c_str());

  std::printf(
      "\nShape checks (paper §5): the slowest stage gates the imbalanced "
      "pipeline, so its\nutilization (%s) falls well below the uniform "
      "transformer's (%s); and since\ninversion cost is cubic in the layer "
      "width, a single wide layer would monopolize\nits device's bubbles — "
      "why transformers are 'a particularly good match' for\nPipeFisher.\n",
      percent(util).c_str(), percent(uniform_util).c_str());
  return 0;
}
