// Table 2 reproduction: BERT-Large Phase-1 pretraining time, NVLAMB with
// Chimera vs K-FAC with Chimera-w/-PipeFisher.
//
// Exactly like the paper, the step COUNTS come from Pauloski et al. (2022)
// (7038 NVLAMB steps vs 5000 K-FAC steps, SQuAD F1 90.1 vs 90.15 after fine
// tuning), and the per-step TIMES come from the Figure-4 pipeline
// measurement (here: simulation) on 8 stages of 3 BERT-Large layers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"

using namespace pf;

int main() {
  bench::heading("Table 2: BERT-Large Phase 1 (mini-batch 64K) on Chimera");

  PipeFisherConfig cfg;
  cfg.schedule = "chimera";
  cfg.arch = bert_large();
  cfg.hw = p100();
  cfg.n_stages = 8;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 8;
  cfg.b_micro = 32;
  const auto rep = run_pipefisher(cfg);

  // Step counts and F1 from Pauloski et al. (2022), as used by the paper.
  const double nvlamb_steps = 7038, kfac_steps = 5000;
  const double nvlamb_time = nvlamb_steps * rep.step_time_baseline;
  const double kfac_time = kfac_steps * rep.step_time;

  std::printf(
      "\n%-10s %-24s %8s %14s %12s %8s\n", "Optimizer", "Pipeline scheme",
      "Steps", "Time/step", "Phase-1 time", "F1*");
  std::printf("%-10s %-24s %8.0f %14s %12s %8s\n", "NVLAMB", "Chimera",
              nvlamb_steps, human_time(rep.step_time_baseline).c_str(),
              human_time(nvlamb_time).c_str(), "90.1");
  std::printf("%-10s %-24s %8.0f %14s %12s %8s\n", "K-FAC",
              "Chimera w/ PipeFisher", kfac_steps,
              human_time(rep.step_time).c_str(),
              human_time(kfac_time).c_str(), "90.15");
  std::printf("  (*F1 after fine-tuning, reported by Pauloski et al. 2022 "
              "and quoted by the paper)\n\n");

  bench::compare_line("NVLAMB time/step",
                      human_time(rep.step_time_baseline), "2345.6 ms");
  bench::compare_line("K-FAC time/step", human_time(rep.step_time),
                      "2499.5 ms");
  bench::compare_line("NVLAMB Phase-1 time", human_time(nvlamb_time),
                      "275.1 min");
  bench::compare_line("K-FAC Phase-1 time", human_time(kfac_time),
                      "208.3 min");
  bench::compare_line("time ratio K-FAC/NVLAMB",
                      format("%.1f%%", 100.0 * kfac_time / nvlamb_time),
                      "75.7%");
  bench::compare_line("GPU utilization NVLAMB",
                      percent(rep.utilization_baseline), "59.8%");
  bench::compare_line("GPU utilization PipeFisher", percent(rep.utilization),
                      "97.6%");
  return 0;
}
