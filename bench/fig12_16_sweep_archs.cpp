// Figures 12-16 reproduction: the Figure-6 sweep for the remaining Table-3
// architectures — BERT-Large (Fig 12), T5-Base/Large (Fig 13/14, S=512),
// OPT-125M/350M (Fig 15/16, S=2048) — on P100, V100 and RTX3090.
//
// The OPT sweeps stop at B_micro = 8 like the paper (longer sequences
// exhaust device memory beyond that).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/csv.h"
#include "src/perfmodel/throughput.h"

using namespace pf;

int main() {
  bench::heading("Figures 12-16: Chimera w/ PipeFisher sweeps, Table-3 "
                 "architectures");

  struct Panel {
    const char* fig;
    const char* arch;
    std::vector<std::size_t> b_micros;
  };
  const std::vector<Panel> panels = {
      {"Figure 12", "bert-large", {1, 2, 4, 8, 16, 32, 64}},
      {"Figure 13", "t5-base", {1, 2, 4, 8, 16, 32, 64}},
      {"Figure 14", "t5-large", {1, 2, 4, 8, 16, 32, 64}},
      {"Figure 15", "opt-125m", {1, 2, 4, 8}},
      {"Figure 16", "opt-350m", {1, 2, 4, 8}},
  };
  const std::vector<std::size_t> depths = {4, 8, 16, 32};
  const std::vector<std::size_t> n_over_d = {1, 2, 3};

  std::vector<SweepPoint> all;
  for (const auto& panel : panels) {
    const auto cfg = transformer_by_name(panel.arch);
    std::printf("\n%s — %s (d_model=%zu, d_ff=%zu, h=%zu, S=%zu)\n",
                panel.fig, cfg.name.c_str(), cfg.d_model, cfg.d_ff,
                cfg.n_heads, cfg.seq_len);
    for (const char* hw : {"p100", "v100", "rtx3090"}) {
      bench::subheading(std::string(panel.fig) + " on " + hw);
      std::printf("%s\n", sweep_header().c_str());
      const auto pts = sweep_figure6(cfg, hardware_by_name(hw), depths,
                                     n_over_d, panel.b_micros);
      for (const auto& p : pts)
        std::printf("%s\n", render_throughput_row(p).c_str());
      all.insert(all.end(), pts.begin(), pts.end());
    }
  }
  write_sweep_csv(all, "fig12_16_sweep_archs.csv");
  std::printf("\nCSV written to fig12_16_sweep_archs.csv\n");

  std::printf(
      "\nShape check (paper): longer sequence lengths (T5: 512, OPT: 2048) "
      "raise the\nforward/backward/curvature work per micro-batch while "
      "inversion stays constant,\nso their (curv+inv)/bubble ratios sit "
      "below BERT's (S=128).\n");
  return 0;
}
