// Fill-vs-remove baseline: PipeFisher fills pipeline bubbles with K-FAC
// work; ZB-H1 removes the bubbles by deferring the weight-gradient (W)
// passes into them. This bench records where each strategy wins, on REAL
// tensors through the executable runtime.
//
//   $ ./zero_bubble_baseline [BENCH_zero_bubble.json] [steps]
//
// Grid: {1f1b, zb-h1} × {LAMB-only, K-FAC} × workers {1, 2, 4} at the same
// model shape, every cell asserted bitwise-identical to its serial Trainer
// reference (losses) — the schedules differ only in wall clock and executed
// timeline. Next to the executed numbers sit the discrete-event simulator's
// predictions for the same shapes: 1f1b's bubble fraction, zb-h1's
// closed-form (N+D-1)·T_f + N·T_b makespan, and the fill-vs-remove
// crossover they imply:
//
//   * LAMB-only (no K-FAC work to fill with): the bubbles are pure waste
//     under 1f1b; zb-h1 removes most of them — remove wins outright.
//   * K-FAC: the bubbles are NOT waste under 1f1b (curvature work rides in
//     them, the paper's point). zb-h1 spends the same bubbles on W passes
//     and pushes curvature work later, so the two strategies converge to
//     the same total work — the crossover is the K-FAC work-to-bubble
//     ratio, reported below from the simulator.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/perfmodel/calibration.h"
#include "src/pipeline/simulator.h"
#include "src/train/pipeline_runtime.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

struct TimedRun {
  std::vector<double> losses;
  double seconds_per_step = 0.0;
  double executed_makespan = 0.0;  // last step's executed timeline span
  double utilization = 0.0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_zero_bubble.json";
  const std::size_t steps =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const auto cfg = bench_bert();
  const int n_micro = 8;
  const std::size_t micro_batch = 8;
  const int n_stages = 4;

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto serial_run = [&](bool use_kfac) {
    Rng rng(7);
    BertModel model(cfg, rng);
    TrainerConfig tc;
    tc.batch_size = micro_batch;
    tc.accumulation_steps = static_cast<std::size_t>(n_micro);
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
    std::unique_ptr<Optimizer> opt;
    if (use_kfac) {
      KfacOptimizerOptions o;
      o.inverse_interval = 3;
      o.per_micro_curvature = true;
      opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                            std::make_unique<Lamb>(), o);
    } else {
      opt = std::make_unique<Lamb>();
    }
    Trainer trainer(model, batcher, std::move(opt), tc);
    TimedRun r;
    const double t0 = now_seconds();
    const auto trace = trainer.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    return r;
  };

  auto pipeline_run = [&](const char* schedule, bool use_kfac, int workers,
                          CalibrationAccumulator* acc) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc;
    pc.schedule = schedule;
    pc.n_stages = n_stages;
    pc.n_micro = n_micro;
    pc.micro_batch_size = micro_batch;
    pc.total_steps = steps;
    pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
    pc.workers = workers;
    pc.stage_threads = 1;
    pc.use_kfac = use_kfac;
    pc.kfac.inverse_interval = 3;
    if (acc != nullptr)
      pc.step_observer = [acc, step = std::size_t{0}](
                             const Timeline& tl) mutable {
        if (step++ > 0) acc->ingest(tl);  // step 0 pays cold-start costs
      };
    PipelineRuntime rt(model, batcher, pc);
    TimedRun r;
    const double t0 = now_seconds();
    const auto trace = rt.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    r.executed_makespan = rt.last_executed_timeline().makespan() -
                          rt.last_executed_timeline().earliest_start();
    r.utilization = rt.last_executed_timeline().utilization();
    return r;
  };

  // Simulator side of the crossover (unit §3.3 costs, same shape). The
  // B/W split starts at the 50/50 modeling prior; after the grid runs the
  // fraction is re-fitted from the executed zb-h1 timelines and the zb-h1
  // row is re-simulated with the fitted split.
  ScheduleParams sp;
  sp.n_stages = n_stages;
  sp.n_micro = n_micro;
  const StepCosts costs;
  const auto sim_1f1b = simulate_step(build_schedule("1f1b", sp), costs);
  const auto sim_zb = simulate_step(build_schedule("zb-h1", sp), costs);
  const double bubble_1f1b = total_bubble_time(sim_1f1b);
  const double bubble_zb = total_bubble_time(sim_zb);
  std::printf(
      "simulator D=%d N=%d: 1f1b makespan %.1f (bubble %.1f), zb-h1 "
      "makespan %.1f (bubble %.1f) — removal recovers %.0f%% of the "
      "bubble\n",
      n_stages, n_micro, sim_1f1b.pipe_makespan, bubble_1f1b,
      sim_zb.pipe_makespan, bubble_zb,
      100.0 * (1.0 - bubble_zb / bubble_1f1b));

  std::printf("serial references (LAMB, K-FAC)...\n");
  const auto serial_lamb = serial_run(false);
  const auto serial_kfac = serial_run(true);

  // Every executed zb-h1 cell (LAMB and K-FAC, all worker counts) feeds the
  // B/W-split fit: the split is a property of the backward math, not of the
  // optimizer riding the bubbles or the core budget.
  CalibrationAccumulator zb_acc(n_stages);

  std::string rows;
  // seconds_per_step of the (schedule, kfac, workers) cells, for the
  // crossover summary below. Indexed [kfac][schedule_is_zb].
  double at2[2][2] = {{0, 0}, {0, 0}};
  for (const bool use_kfac : {false, true}) {
    const auto& serial = use_kfac ? serial_kfac : serial_lamb;
    for (const char* schedule : {"1f1b", "zb-h1"}) {
      for (const int workers : {1, 2, 4}) {
        const auto pr = pipeline_run(schedule, use_kfac, workers,
                                     schedule[0] == 'z' ? &zb_acc : nullptr);
        PF_CHECK(pr.losses == serial.losses)
            << schedule << " kfac=" << use_kfac << " workers=" << workers
            << " diverged from the serial reference";
        if (workers == 2)
          at2[use_kfac ? 1 : 0][schedule[0] == 'z' ? 1 : 0] =
              pr.seconds_per_step;
        std::printf(
            "%-6s %s workers=%d: %.1f ms/step (%.2fx vs serial), executed "
            "utilization %s\n",
            schedule, use_kfac ? "kfac" : "lamb", workers,
            pr.seconds_per_step * 1e3,
            serial.seconds_per_step / pr.seconds_per_step,
            percent(pr.utilization).c_str());
        if (!rows.empty()) rows += ",\n";
        rows += format(
            "    \"%s_%s_workers_%d\": {\"seconds_per_step\": %.6g, "
            "\"speedup_vs_serial\": %.4g, \"executed_makespan_seconds\": "
            "%.6g, \"executed_utilization\": %.4g}",
            schedule, use_kfac ? "kfac" : "lamb", workers,
            pr.seconds_per_step,
            serial.seconds_per_step / pr.seconds_per_step,
            pr.executed_makespan, pr.utilization);
      }
    }
  }

  // Fitted B/W split from the executed zb-h1 timelines, replacing the
  // 50/50 prior in the crossover simulation. On this shape W (pure dW
  // GEMMs) is lighter than B (dx GEMMs + attention/norm backward), so the
  // fitted fraction lands below 0.5 and the zb-h1 closed form — whose
  // drain is paved with W passes — shifts accordingly.
  PF_CHECK(zb_acc.steps_ingested() > 0);
  // n_threads = 0: samples are merged across worker counts, so no single
  // concurrency describes them; only the B/W fraction is consumed here.
  const CalibratedCosts zb_prof = zb_acc.fit(/*n_threads=*/0);
  const double fitted_wf = zb_prof.backward_w_fraction;
  PF_CHECK(fitted_wf > 0.0 && fitted_wf < 1.0)
      << "fitted backward_w_fraction " << fitted_wf
      << " is not a valid split";
  StepCosts fitted_costs;
  fitted_costs.backward_w_fraction = fitted_wf;
  const auto sim_zb_fit =
      simulate_step(build_schedule("zb-h1", sp), fitted_costs);
  const double bubble_zb_fit = total_bubble_time(sim_zb_fit);
  std::printf(
      "fitted B/W split from %zu executed zb-h1 steps: W fraction %.3f "
      "(prior 0.5) — zb-h1 makespan %.1f (bubble %.1f) under the fitted "
      "split\n",
      zb_acc.steps_ingested(), fitted_wf, sim_zb_fit.pipe_makespan,
      bubble_zb_fit);

  const std::string json = format(
      "{\n  \"shape\": {\"n_stages\": %d, \"n_micro\": %d, "
      "\"micro_batch\": %zu, \"steps\": %zu, \"d_model\": %zu, "
      "\"n_layers\": %zu},\n"
      "  \"cpu_budget_note\": \"bitwise-identical losses asserted for every "
      "cell; wall-clock deltas between 1f1b and zb-h1 need real cores — "
      "under a 1-CPU cgroup budget every schedule serializes onto the same "
      "core and the cells collapse to ~1x of each other. The CI artifact "
      "(BENCH_zero_bubble_ci.json) carries the multi-core numbers and the "
      "SLA gate. Compare only against runs with the same CPU budget.\",\n"
      "  \"simulator\": {\"t_forward\": %.3g, \"t_backward\": %.3g, "
      "\"backward_w_fraction_prior\": %.3g, "
      "\"backward_w_fraction_fitted\": %.4g,\n"
      "    \"fitted_from_executed_zb_h1_steps\": %zu,\n"
      "    \"makespan_1f1b\": %.6g, \"bubble_1f1b\": %.6g,\n"
      "    \"makespan_zb_h1\": %.6g, \"bubble_zb_h1\": %.6g,\n"
      "    \"makespan_zb_h1_fitted_split\": %.6g, "
      "\"bubble_zb_h1_fitted_split\": %.6g,\n"
      "    \"bubble_removed_fraction\": %.4g, "
      "\"bubble_removed_fraction_fitted_split\": %.4g},\n"
      "  \"crossover\": {\"note\": \"lamb = nothing to fill bubbles with, "
      "removal (zb-h1) wins; kfac = curvature work already rides the "
      "bubbles (PipeFisher), filling ties removal and keeps the optimizer "
      "step\", \"lamb_zb_over_1f1b_at_2_workers\": %.4g, "
      "\"kfac_zb_over_1f1b_at_2_workers\": %.4g},\n"
      "  \"serial_lamb_seconds_per_step\": %.6g,\n"
      "  \"serial_kfac_seconds_per_step\": %.6g,\n"
      "  \"runs\": {\n%s\n  }\n}\n",
      n_stages, n_micro, micro_batch, steps, cfg.d_model, cfg.n_layers,
      costs.t_forward, costs.t_backward, costs.backward_w_fraction,
      fitted_wf, zb_acc.steps_ingested(), sim_1f1b.pipe_makespan,
      bubble_1f1b, sim_zb.pipe_makespan, bubble_zb,
      sim_zb_fit.pipe_makespan, bubble_zb_fit,
      1.0 - bubble_zb / bubble_1f1b, 1.0 - bubble_zb_fit / bubble_1f1b,
      at2[0][1] / at2[0][0], at2[1][1] / at2[1][0],
      serial_lamb.seconds_per_step, serial_kfac.seconds_per_step,
      rows.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
