// Figure 6 / Figure 11 reproduction: modeled throughput, (curv+inv)/bubble
// ratio, and speedup vs K-FAC+skip of Chimera w/ PipeFisher for D BERT-Base
// blocks, across micro-batch sizes, depths D in {4,8,16,32}, micro-batch
// counts N in {D,2D,3D}, on P100 / V100 / RTX3090.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/csv.h"
#include "src/perfmodel/throughput.h"

using namespace pf;

int main() {
  bench::heading(
      "Figure 6 (=Fig 11): Chimera w/ PipeFisher sweep — BERT-Base");

  const std::vector<std::size_t> depths = {4, 8, 16, 32};
  const std::vector<std::size_t> n_over_d = {1, 2, 3};
  const std::vector<std::size_t> b_micros = {1, 2, 4, 8, 16, 32, 64};

  std::vector<SweepPoint> all;
  for (const char* hw_name : {"p100", "v100", "rtx3090"}) {
    bench::subheading(std::string("hardware: ") + hw_name);
    std::printf("%s\n", sweep_header().c_str());
    const auto pts = sweep_figure6(bert_base(), hardware_by_name(hw_name),
                                   depths, n_over_d, b_micros);
    for (const auto& p : pts)
      std::printf("%s\n", render_throughput_row(p).c_str());
    all.insert(all.end(), pts.begin(), pts.end());
  }
  write_sweep_csv(all, "fig06_sweep_bert_base.csv");
  std::printf("\nCSV written to fig06_sweep_bert_base.csv\n");

  std::printf(
      "\nShape checks (paper): ratio mostly in the 2-10 band; decreases in "
      "B_micro and D,\nincreases in N_micro; speedup vs K-FAC+skip up to "
      "~1.4x when N=D and B=64,\n~1.1x when N=3D or B is small.\n");
  return 0;
}
