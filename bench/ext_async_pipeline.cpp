// Appendix C.1 reproduction: synchronous pipelines + PipeFisher vs
// asynchronous (flushless, PipeDream-style) pipelines.
//
// Both are "bubble filling" designs. The async pipeline fills bubbles with
// the NEXT mini-batch's forward/backward — near-perfect utilization but
// gradients computed from weights up to D steps old. PipeFisher keeps the
// synchronous semantics (fresh gradients) and fills bubbles with K-FAC's
// curvature work, accepting staleness only in the curvature estimate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"
#include "src/pipeline/async_pipeline.h"
#include "src/trace/ascii_gantt.h"

using namespace pf;

int main() {
  bench::heading("Appendix C.1: PipeFisher vs asynchronous pipelines");

  PipeFisherConfig cfg;
  cfg.schedule = "1f1b";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  const auto sync = run_pipefisher(cfg);

  StepCosts costs = derive_step_costs(cfg, false);
  const auto async = simulate_async_1f1b(cfg.n_stages, cfg.n_micro,
                                         /*iterations=*/6, costs);

  bench::subheading("utilization and staleness");
  std::printf("%-34s %12s %22s %22s\n", "scheme", "utilization",
              "gradient staleness", "curvature staleness");
  std::printf("%-34s %12s %22s %22s\n", "1F1B + first-order (sync)",
              percent(sync.utilization_baseline).c_str(), "0 steps", "-");
  std::printf("%-34s %12s %22s %19d st\n", "1F1B + PipeFisher (sync)",
              percent(sync.utilization).c_str(), "0 steps",
              sync.refresh_interval_steps);
  std::printf("%-34s %12s %19.0f st %22s\n", "async 1F1B (no flush)",
              percent(async.utilization).c_str(), async.max_staleness, "-");

  std::printf("\nper-stage max gradient staleness in the async stream "
              "(mini-batches):\n  ");
  for (std::size_t s = 0; s < async.staleness_per_stage.size(); ++s)
    std::printf("stage %zu: %.0f   ", s, async.staleness_per_stage[s]);
  std::printf("\n");

  bench::subheading("async stream (steady state, device-local updates U)");
  GanttOptions opt;
  opt.width = 110;
  std::printf("%s", render_ascii_gantt(async.timeline, opt).c_str());

  std::printf(
      "\nShape check (paper App. C.1): the async pipeline reaches the "
      "highest utilization\nbut pays with gradient staleness that grows "
      "towards the early stages (up to D);\nPipeFisher keeps gradients "
      "fresh and confines staleness to the curvature, which\nit refreshes "
      "every few steps using the bubbles.\n");
  return 0;
}
