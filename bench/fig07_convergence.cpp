// Figure 7 (and Figure 8) reproduction: Phase-1 pretraining loss of
// NVLAMB vs K-FAC, against steps and against simulated wall-clock time.
//
// Paper methodology, reproduced here end to end:
//  1. Train the same model with both optimizers, identical hyperparameters
//     except the LR warmup (2000 -> 600 out of 7038 steps; here scaled to
//     28% -> 8.5% of the run). The K-FAC run tolerates the more aggressive
//     early schedule; the first-order baseline does not benefit from it.
//  2. Smooth both curves, find where K-FAC first reaches the baseline's
//     final loss (paper: 2961 of 7038 steps = 42.0%).
//  3. Convert steps to time with per-step costs measured on the pipeline:
//     Chimera for NVLAMB (847.8 ms/step, util 75.9%) vs Chimera w/
//     PipeFisher for K-FAC (980.2 ms/step, util 93.2%) — paper result:
//     48.4 min vs 99.4 min (48.7%).
//
// Substitution: a scaled-down BERT on a synthetic Zipf-Markov corpus
// (DESIGN.md §2); the claim under test is relative (step fraction < ~60%,
// time fraction ~50-75%), not absolute.
//
// Environment: PF_FIG7_STEPS overrides the 600-step default (e.g. 150 for a
// quick run, 1200 for a tighter curve). PF_GEMM_THREADS=<n> runs the GEMM
// kernels n-way row-block parallel (bitwise-identical results).
// PF_NN_THREADS=<n> parallelizes the nn forward/backward loops the same
// way (also bitwise-identical; src/common/exec_context.h).
// PF_SCHEDULE=<name> picks the pipeline schedule for the steps→time
// conversion (any name in list_schedules(); default chimera, as in the
// paper).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/exec_context.h"
#include "src/common/stats.h"
#include "src/core/pipefisher.h"
#include "src/linalg/gemm.h"
#include "src/pipeline/schedule_registry.h"
#include "src/trace/ascii_plot.h"
#include "src/optim/kfac_optimizer.h"
#include "src/optim/lamb.h"
#include "src/train/convergence.h"
#include "src/train/pipeline_runtime.h"

using namespace pf;

namespace {

TrainTrace run_training(const BertConfig& cfg, const MlmBatcher& batcher,
                        std::size_t steps, bool use_kfac) {
  Rng rng(7);  // same init for both runs
  BertModel model(cfg, rng);
  TrainerConfig tc;  // tc.exec defaults to the follow-the-knobs context
  tc.batch_size = 32;
  tc.total_steps = steps;
  // NVLAMB warms up for 28% of the run (2000/7038); K-FAC for 8.5%
  // (600/7038) — the paper's only hyperparameter difference.
  const std::size_t warmup = use_kfac ? steps * 85 / 1000 : steps * 28 / 100;
  tc.schedule = PolyWarmupSchedule(2e-2, warmup, steps);
  std::unique_ptr<Optimizer> opt;
  if (use_kfac) {
    KfacOptimizerOptions o;
    o.kfac.damping = 1e-3;
    o.kfac.gemm_threads = 0;  // follow the PF_GEMM_THREADS global knob
    o.kfac.layer_threads = env_int("PF_KFAC_LAYER_THREADS", 1);
    o.curvature_interval = 1;
    o.inverse_interval = 3;  // PipeFisher-style frequent refresh
    opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                          std::make_unique<Lamb>(), o);
  } else {
    opt = std::make_unique<Lamb>();
  }
  Trainer trainer(model, batcher, std::move(opt), tc);
  return trainer.run();
}

}  // namespace

int main() {
  const std::size_t steps =
      static_cast<std::size_t>(std::max(1, env_int("PF_FIG7_STEPS", 600)));
  set_gemm_threads(env_int("PF_GEMM_THREADS", 1));
  ExecContext::set_default_nn_threads(env_int("PF_NN_THREADS", 1));
  const std::string schedule = env_str("PF_SCHEDULE", "chimera");
  // Fail a typo (or a flushless schedule, which has no per-step bubble
  // model) now, not after the training runs.
  PF_CHECK(traits_of(schedule).flush)
      << schedule << " is flushless; pick a flush schedule for this report";

  bench::heading(format(
      "Figure 7: pretraining convergence, NVLAMB vs K-FAC (%zu steps)",
      steps));

  BertConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 2;
  cfg.seq_len = 16;
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  cc.structure_prob = 0.9;
  cc.successors = 2;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  std::printf("corpus conditional-entropy floor: %.3f nats (ln V = %.3f)\n",
              corpus.conditional_entropy(),
              std::log(static_cast<double>(corpus.n_words())));

  std::printf("training NVLAMB baseline...\n");
  const auto lamb_trace = run_training(cfg, batcher, steps, false);
  std::printf("training K-FAC...\n");
  const auto kfac_trace = run_training(cfg, batcher, steps, true);

  // Per-step times from the pipeline simulation (paper: 256 P100 GPUs,
  // Chimera, 4 stages; we default to the same D=4 Chimera configuration —
  // PF_SCHEDULE swaps in any other registered schedule).
  PipeFisherConfig pcfg;
  pcfg.schedule = schedule;
  pcfg.arch = bert_base();
  pcfg.hw = p100();
  pcfg.n_stages = 4;
  pcfg.blocks_per_stage = 3;
  pcfg.n_micro = 4;
  pcfg.b_micro = 32;
  const auto prep = run_pipefisher(pcfg);

  const auto cmp = compare_convergence(lamb_trace, kfac_trace,
                                       prep.step_time_baseline,
                                       prep.step_time, 15, steps / 15);

  bench::subheading("loss vs steps (smoothed)");
  const auto ls = smooth_moving_average(lamb_trace.loss, 15);
  const auto ks = smooth_moving_average(kfac_trace.loss, 15);
  AsciiPlotOptions popt;
  popt.width = 100;
  popt.height = 18;
  popt.title = "pretraining loss (smoothed)";
  std::printf("%s\n",
              render_ascii_plot({ls, ks}, {"NVLAMB", "K-FAC"}, popt).c_str());
  std::printf("%6s %10s %10s    %8s %8s\n", "step", "NVLAMB", "K-FAC",
              "lr(LAMB)", "lr(KFAC)");
  for (std::size_t i = 0; i < steps; i += std::max<std::size_t>(1, steps / 15))
    std::printf("%6zu %10.4f %10.4f    %8.5f %8.5f\n", i, ls[i], ks[i],
                lamb_trace.lr[i], kfac_trace.lr[i]);
  std::printf("%6zu %10.4f %10.4f\n", steps - 1, ls.back(), ks.back());

  bench::subheading("Figure 7 headline numbers");
  bench::compare_line("NVLAMB final loss (smoothed)",
                      format("%.3f", cmp.baseline_final_loss), "3.41");
  bench::compare_line(
      "K-FAC steps to reach it",
      cmp.challenger_steps_to_match >= 0
          ? format("%ld/%ld (%.1f%%)", cmp.challenger_steps_to_match,
                   cmp.baseline_steps, cmp.step_fraction * 100)
          : std::string("not reached"),
      "2961/7038 (42.0%)");
  // The paper's reference numbers are for Chimera; under PF_SCHEDULE they
  // no longer apply.
  const auto ref = [&schedule](const char* paper_value) {
    return schedule == "chimera" ? paper_value : "n/a (paper: chimera)";
  };
  bench::compare_line(format("NVLAMB time/step (%s)", schedule.c_str()),
                      human_time(prep.step_time_baseline), ref("847.8 ms"));
  bench::compare_line(
      format("K-FAC time/step (%s w/ PipeFisher)", schedule.c_str()),
      human_time(prep.step_time), ref("980.2 ms"));
  bench::compare_line("NVLAMB utilization",
                      percent(prep.utilization_baseline), ref("75.9%"));
  bench::compare_line("PipeFisher utilization", percent(prep.utilization),
                      ref("93.2%"));
  bench::compare_line("simulated time, NVLAMB",
                      human_time(cmp.baseline_time), ref("99.4 min"));
  bench::compare_line("simulated time, K-FAC w/ PipeFisher",
                      human_time(cmp.challenger_time), ref("48.4 min"));
  bench::compare_line("time fraction",
                      format("%.1f%%", cmp.time_fraction * 100),
                      ref("48.7%"));

  bench::subheading("Figure 8: learning-rate schedules");
  std::printf(
      "K-FAC's shorter warmup gives it larger learning rates early on (see "
      "the lr columns above),\nwhich the K-FAC run tolerates but diverges "
      "under NVLAMB — the paper's observation.\n");

  // Appendix C.1's stale-weight question, executed: does flushless 1F1B
  // streaming (inline per-stage updates, no flush, PipeDream-style weight
  // staleness) still converge like the synchronous pipeline? Both runs
  // stream the same data at the same shape; only the flush differs. The
  // band is the acceptance pin — staleness at D=2 is bounded by one update,
  // so the smoothed final losses must land close together.
  bench::subheading("flushless 1F1B: convergence under stale weights");
  const std::size_t fl_steps = static_cast<std::size_t>(
      std::max(1, env_int("PF_FIG7_FLUSHLESS_STEPS",
                          static_cast<int>(std::max<std::size_t>(40,
                                                                 steps / 10)))));
  const auto stream_run = [&](const std::string& sched) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc;
    pc.schedule = sched;
    pc.n_stages = 2;
    pc.n_micro = 4;
    pc.micro_batch_size = 8;  // 4 x 8 = the serial runs' batch of 32
    pc.total_steps = fl_steps;
    pc.lr = PolyWarmupSchedule(2e-2, fl_steps * 28 / 100, fl_steps);
    pc.workers = 1;
    pc.use_kfac = false;
    PipelineRuntime rt(model, batcher, pc);
    return sched == "1f1b-flushless" ? rt.run_flushless() : rt.run();
  };
  const auto sync_trace = stream_run("1f1b");
  const auto fl_trace = stream_run("1f1b-flushless");
  const double sync_final = sync_trace.final_loss_smoothed();
  const double fl_final = fl_trace.final_loss_smoothed();
  bench::compare_line("synchronous 1f1b final loss (smoothed)",
                      format("%.3f", sync_final), "reference");
  bench::compare_line("flushless final loss (smoothed)",
                      format("%.3f", fl_final),
                      "within 15% of synchronous");
  PF_CHECK(std::abs(fl_final - sync_final) <= 0.15 * sync_final)
      << "flushless streaming diverged from the synchronous pipeline: "
      << fl_final << " vs " << sync_final;
  std::printf(
      "flushless streaming stays inside the band: stale weights trade the "
      "flush for\nbounded staleness (D-1 updates at most), not for "
      "convergence.\n");
  return 0;
}
