// Appendix A.2 reproduction: PipeFisher for larger Transformers via
// K-block-diagonal curvature approximation.
//
// The paper: if d_model and d_ff are multiplied by K and each curvature
// matrix is approximated by a K-block-diagonal matrix, the inversion work
// of one (huge) factor splits into K small inversions, memory and
// per-matrix work stop exploding, and "a similar work assignment can be
// used" — the (curvature+inversion)/bubble ratio stays workable instead of
// growing with the width.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/perf_model.h"

using namespace pf;

namespace {

TransformerConfig scaled_bert(std::size_t k) {
  TransformerConfig cfg = bert_base();
  cfg.name = "bert-base-x" + std::to_string(k);
  cfg.d_model *= k;
  cfg.d_ff *= k;
  cfg.n_heads *= k;
  return cfg;
}

}  // namespace

int main() {
  bench::heading("Appendix A.2: K-block-diagonal factors for wide models");

  std::printf("%-16s %4s %10s %10s %10s %8s %8s\n", "arch", "K",
              "Tcurv(ms)", "Tinv(ms)", "Tbub(ms)", "ratio", "refresh");
  for (std::size_t k : {1u, 2u, 4u}) {
    for (bool blocked : {false, true}) {
      if (k == 1 && blocked) continue;
      PerfModelInput in;
      in.cfg = scaled_bert(k);
      in.hw = p100();
      in.schedule = "chimera";
      in.depth = 8;
      in.n_micro = 8;
      in.b_micro = 32;
      in.block_diag_k = blocked ? k : 1;
      const auto r = run_perf_model(in);
      std::printf("%-16s %4zu %10.1f %10.1f %10.1f %8.2f %7dst   %s\n",
                  in.cfg.name.c_str(), in.block_diag_k,
                  in.n_micro * r.t_curvature * 1e3, r.t_inversion * 1e3,
                  r.t_bubble * 1e3, r.curv_inv_bubble_ratio, r.refresh_steps,
                  blocked ? "(K-block diagonal)" : "(full factors)");
    }
  }

  std::printf(
      "\nShape check (paper App. A.2): with full factors the inversion work "
      "explodes\ncubically as the model widens (the d_ff=12288 factor alone "
      "would not fit GPU\nmemory); with the K-block-diagonal approximation "
      "the ratio stays in the same\nband as the unscaled model, so the same "
      "bubble assignment works.\n");
  return 0;
}
