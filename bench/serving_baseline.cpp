// Serving-engine baseline: continuous batching vs the static drain-between-
// batches baseline, on real tensors through the real engine.
//
//   $ ./serving_baseline [BENCH_serving.json] [requests]
//
// Two measurements:
//
//   saturation  — the full request trace is queued up front (replay mode)
//                 and both policies drain it at maximum speed. Equal load,
//                 equal bits (asserted every run: per-request logits are
//                 bitwise identical across policies), different schedules:
//                 continuous keeps the pipe full by refilling freed slots
//                 mid-flight, static drains between batches. The SLA the CI
//                 bench job asserts on its multi-core artifact
//                 (BENCH_serving_ci.json) is continuous throughput >= static
//                 throughput at this equal load.
//   load sweep  — a live producer pushes the same trace at a fraction of
//                 the measured saturation throughput (0.5x, 0.8x, 1.2x) and
//                 the report's p50/p95/p99 show the latency knee as offered
//                 load crosses capacity.
//
// Reading the numbers: the continuous-vs-static gap needs real cores — on a
// cgroup-limited 1-CPU container both policies serialize onto the same
// core and the ratio hovers ~1x (the cpu_budget_note in the JSON says which
// world the recording came from; CI's artifact is the demonstrating one).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

std::vector<InferRequest> fixed_trace(std::size_t n, const BertConfig& cfg) {
  Rng rng(42);
  std::vector<InferRequest> rs;
  for (std::size_t i = 0; i < n; ++i) {
    InferRequest r;
    r.id = i;
    const std::size_t len = 1 + rng.next_u64() % cfg.seq_len;
    for (std::size_t t = 0; t < len; ++t)
      r.ids.push_back(static_cast<int>(rng.next_u64() % cfg.vocab));
    rs.push_back(std::move(r));
  }
  return rs;
}

ServingEngineConfig engine_config(BatchPolicy policy) {
  ServingEngineConfig ec;
  ec.n_stages = 2;
  ec.max_batch = 4;
  ec.workers = 2;
  ec.policy = policy;
  return ec;
}

// Replay the whole trace at maximum speed.
ServingReport saturation_run(BertModel& model,
                             const std::vector<InferRequest>& trace,
                             BatchPolicy policy) {
  ServingEngine engine(model, engine_config(policy));
  RequestQueue q;
  q.push_all(trace);
  q.close();
  return engine.run(q);
}

// Live producer pushing at `offered_rps` while the engine serves.
ServingReport live_run(BertModel& model,
                       const std::vector<InferRequest>& trace,
                       double offered_rps) {
  ServingEngine engine(model, engine_config(BatchPolicy::kContinuous));
  RequestQueue q;
  std::thread producer([&q, &trace, offered_rps] {
    const auto gap = std::chrono::duration<double>(1.0 / offered_rps);
    for (const InferRequest& r : trace) {
      q.push(r);
      std::this_thread::sleep_for(gap);
    }
    q.close();
  });
  ServingReport rep = engine.run(q);
  producer.join();
  return rep;
}

std::string percentile_row(const ServingReport& rep) {
  return format(
      "\"throughput_rps\": %.6g, \"p50_ms\": %.6g, \"p95_ms\": %.6g, "
      "\"p99_ms\": %.6g, \"mean_ms\": %.6g, \"n_micros\": %zu, "
      "\"admitted_while_in_flight\": %zu, \"slots_refilled_in_flight\": %zu",
      rep.throughput_rps, rep.latency.p50 * 1e3, rep.latency.p95 * 1e3,
      rep.latency.p99 * 1e3, rep.latency.mean * 1e3, rep.n_micros,
      rep.admitted_while_in_flight, rep.slots_refilled_in_flight);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const std::size_t n_requests =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 64;
  const auto cfg = bench_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(n_requests, cfg);

  // Untimed warmup: the first run through the model pays allocator and
  // cache warmup (~2x inflated forwards) and would bias whichever policy
  // goes first.
  (void)saturation_run(model, trace, BatchPolicy::kContinuous);
  (void)saturation_run(model, trace, BatchPolicy::kStatic);

  std::printf("saturation: %zu requests, 2 stages, max_batch 4...\n",
              n_requests);
  const auto cont = saturation_run(model, trace, BatchPolicy::kContinuous);
  const auto stat = saturation_run(model, trace, BatchPolicy::kStatic);
  PF_CHECK(cont.records.size() == n_requests &&
           stat.records.size() == n_requests)
      << "a policy dropped requests";
  // Equal load, equal bits: logits must not depend on the batching policy.
  for (std::size_t i = 0; i < n_requests; ++i) {
    const Matrix& a = cont.records[i].output.mlm_logits;
    const Matrix& b = stat.records[i].output.mlm_logits;
    PF_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        PF_CHECK(a(r, c) == b(r, c))
            << "policy changed request " << i << "'s logits";
  }
  const double ratio = cont.throughput_rps / stat.throughput_rps;
  std::printf(
      "  continuous: %.1f req/s, p50 %.1f ms, p99 %.1f ms "
      "(%zu admitted mid-flight, %zu slot refills)\n",
      cont.throughput_rps, cont.latency.p50 * 1e3, cont.latency.p99 * 1e3,
      cont.admitted_while_in_flight, cont.slots_refilled_in_flight);
  std::printf("  static:     %.1f req/s, p50 %.1f ms, p99 %.1f ms\n",
              stat.throughput_rps, stat.latency.p50 * 1e3,
              stat.latency.p99 * 1e3);
  std::printf("  continuous/static throughput: %.2fx (bitwise-equal logits)\n",
              ratio);

  // Load sweep at fractions of the measured saturation throughput; the
  // latency knee appears as offered load crosses capacity.
  std::string sweep_rows;
  for (const double frac : {0.5, 0.8, 1.2}) {
    const double offered = frac * cont.throughput_rps;
    const auto rep = live_run(model, trace, offered);
    PF_CHECK(rep.records.size() == n_requests);
    std::printf(
        "load %.1fx (%.1f req/s offered): %.1f req/s served, p50 %.1f ms, "
        "p95 %.1f ms, p99 %.1f ms\n",
        frac, offered, rep.throughput_rps, rep.latency.p50 * 1e3,
        rep.latency.p95 * 1e3, rep.latency.p99 * 1e3);
    if (!sweep_rows.empty()) sweep_rows += ",\n";
    sweep_rows += format(
        "    \"load_%.1fx\": {\"offered_rps\": %.6g, %s}", frac, offered,
        percentile_row(rep).c_str());
  }

  const std::string json = format(
      "{\n  \"shape\": {\"n_stages\": %d, \"max_batch\": %zu, "
      "\"workers\": %d, \"requests\": %zu, \"d_model\": %zu, "
      "\"n_layers\": %zu, \"seq_len\": %zu},\n"
      "  \"cpu_budget_note\": \"per-request logits asserted bitwise-equal "
      "between policies every run; the continuous >= static throughput SLA "
      "needs real cores — under a 1-CPU cgroup budget both policies "
      "serialize and the ratio hovers ~1x, and the CI bench job asserts the "
      "SLA on its multi-core artifact (BENCH_serving_ci.json). Compare only "
      "against runs with the same CPU budget.\",\n"
      "  \"saturation\": {\n"
      "    \"continuous\": {%s},\n"
      "    \"static\": {%s},\n"
      "    \"continuous_over_static_throughput\": %.4g\n  },\n"
      "  \"load_sweep\": {\n%s\n  }\n}\n",
      engine_config(BatchPolicy::kContinuous).n_stages,
      engine_config(BatchPolicy::kContinuous).max_batch,
      engine_config(BatchPolicy::kContinuous).workers, n_requests,
      cfg.d_model, cfg.n_layers, cfg.seq_len, percentile_row(cont).c_str(),
      percentile_row(stat).c_str(), ratio, sweep_rows.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
