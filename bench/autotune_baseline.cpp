// Autotuner baseline: calibrate on the machine at hand, sweep the schedule
// registry, execute the predicted winner, and cross-check prediction
// against reality — the simulate-with-CHECK loop closed end to end.
//
//   $ ./autotune_baseline [BENCH_autotune.json]
//
// The run is the full autotune() pipeline on the bench shape: a short
// calibration burst (1f1b for fused costs + K-FAC terms at every needed
// model-stage count, zb-h1 for the B/W split), a pure rank_candidates()
// sweep over every registered schedule, then a measured window of
// inverse_interval + 1 steps per viable candidate. Two SLAs are PF_CHECKed
// every run:
//
//   * The winner's executed makespan must sit within a ±15% band of its
//     calibrated prediction (wider than pipeline_runtime_baseline's 10%
//     per-row gate because candidates span schedule families the profile
//     was not fitted on).
//   * The winner must actually be the fastest executed candidate, within a
//     5% timing-noise band — predicting a loser is an autotuner bug, not a
//     measurement artifact, once the band is cleared twice (CI retries
//     once). Armed only when the executor's threads (workers + 1) fit the
//     machine's cores: oversubscribed, every candidate serializes onto the
//     same cores, the executed spread collapses into contention noise, and
//     which schedule "wins" flips run to run (same regime guard as the
//     utilization gate in pipeline_runtime_baseline). The gating flag is
//     recorded in the JSON and the CI assert honors it.
//
// The fitted profile is embedded in the JSON verbatim — the committable
// artifact workflow: fit once, commit, re-rank offline from the artifact.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "src/common/strings.h"
#include "src/perfmodel/autotune.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_autotune.json";
  const auto cfg = bench_bert();

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  AutotuneOptions o;
  o.n_devices = 4;
  o.n_micro = 8;
  o.micro_batch_size = 8;
  o.workers = 2;
  o.inverse_interval = 3;
  o.burst_steps = 4;
  // Two full amortization cycles after the discarded cold step: on a
  // shared container per-step spans swing ±10% with contention, and the
  // winner-fastest SLA compares means across candidates — 6 measured
  // steps per candidate gets the mean noise under the band.
  o.measure_steps = 2 * static_cast<std::size_t>(o.inverse_interval) + 1;

  std::printf("autotuning %zu-layer bert (d_model %zu) at D=%d N=%d...\n",
              cfg.n_layers, cfg.d_model, o.n_devices, o.n_micro);
  const AutotuneReport report = autotune(cfg, batcher, o);
  std::printf("calibration burst: %zu steps in %.2f s, %zu profile(s)\n",
              report.burst_steps_run, report.burst_seconds,
              report.profiles.size());

  std::printf("%-18s %3s %3s | %12s %10s %8s | %12s\n", "schedule", "S",
              "N", "pred mk (s)", "s/seq", "util", "exec mk (s)");
  std::string rows;
  for (const auto& c : report.ranked) {
    if (c.viable) {
      std::printf("%-18s %3d %3d | %12.4g %10.3g %7s%% | %12.4g\n",
                  c.schedule.c_str(), c.params.n_stages, c.params.n_micro,
                  c.predicted_makespan, c.predicted_seconds_per_sequence,
                  format("%.1f", 100.0 * c.predicted_utilization).c_str(),
                  c.executed_makespan);
    } else {
      std::printf("%-18s %3d %3d | skipped: %s\n", c.schedule.c_str(),
                  c.params.n_stages, c.params.n_micro,
                  c.skip_reason.c_str());
    }
    if (!rows.empty()) rows += ",\n";
    rows += format(
        "    {\"schedule\": \"%s\", \"n_stages\": %d, \"n_micro\": %d, "
        "\"viable\": %s, \"skip_reason\": \"%s\", "
        "\"predicted_makespan\": %.6g, \"predicted_seconds_per_sequence\": "
        "%.6g, \"predicted_utilization\": %.4g, \"executed_makespan\": "
        "%.6g}",
        c.schedule.c_str(), c.params.n_stages, c.params.n_micro,
        c.viable ? "true" : "false", c.skip_reason.c_str(),
        c.predicted_makespan, c.predicted_seconds_per_sequence,
        c.predicted_utilization, c.executed_makespan);
  }

  // SLA 1: the winner's realized makespan tracks its prediction.
  const AutotuneCandidate& win = report.winner();
  PF_CHECK(win.executed_makespan > 0.0)
      << "autotune winner was never executed (measure_steps misconfigured)";
  const double pred_err =
      std::fabs(win.predicted_makespan - win.executed_makespan) /
      win.executed_makespan;
  std::printf(
      "winner %s S=%d N=%d: predicted %.4g s vs executed %.4g s "
      "(%.1f%% error)\n",
      win.schedule.c_str(), win.params.n_stages, win.params.n_micro,
      win.predicted_makespan, win.executed_makespan, 100.0 * pred_err);
  PF_CHECK(pred_err <= 0.15)
      << "winner " << win.schedule << " executed makespan drifted "
      << 100.0 * pred_err << "% from the calibrated prediction (15% band)";

  // SLA 2: the predicted winner is the executed winner (5% noise band) —
  // every other measured candidate must not beat it by more than noise.
  // Only meaningful when the executor's threads fit the machine's cores;
  // oversubscribed, schedules serialize onto the same cores and their
  // executed spread is contention noise, not schedule structure.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_fastest =
      hw == 0 || static_cast<unsigned>(o.workers) + 1 <= hw;
  if (gate_fastest) {
    for (const auto& c : report.ranked) {
      if (!c.viable || c.executed_makespan <= 0.0) continue;
      PF_CHECK(win.executed_makespan <= 1.05 * c.executed_makespan)
          << "autotune picked " << win.schedule << " ("
          << win.executed_makespan << " s) but " << c.schedule << " S="
          << c.params.n_stages << " executed faster ("
          << c.executed_makespan << " s) beyond the 5% noise band";
    }
  } else {
    std::printf(
        "winner-fastest SLA skipped: %d executor threads oversubscribe %u "
        "hardware cores (executed spread across schedules is contention "
        "noise here; CI runs this gate on a multi-core runner)\n",
        o.workers + 1, hw);
  }

  // The committed profile artifact: the D-stage profile the winner (and
  // every non-interleaved candidate) was ranked under.
  const auto prof_it = report.profiles.find(o.n_devices);
  PF_CHECK(prof_it != report.profiles.end());
  const std::string profile_json = prof_it->second.to_json();

  const std::string json = format(
      "{\n  \"shape\": {\"n_devices\": %d, \"n_micro\": %d, "
      "\"micro_batch\": %zu, \"d_model\": %zu, \"n_layers\": %zu, "
      "\"workers\": %d, \"inverse_interval\": %d},\n"
      "  \"cpu_budget_note\": \"the ranking compares wall-clock across "
      "schedules, so it needs real cores — under a 1-CPU cgroup budget "
      "every candidate serializes onto the same core and the executed "
      "spread collapses toward noise; the calibrated profile bakes that "
      "budget in (its n_threads field), so this artifact's numbers only "
      "compare against runs with the same CPU budget. The CI artifact "
      "(BENCH_autotune_ci.json) carries the multi-core ranking and the "
      "SLA gates.\",\n"
      "  \"sla_winner_fastest_gated\": %s,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"burst\": {\"steps\": %zu, \"seconds\": %.4g},\n"
      "  \"winner\": {\"schedule\": \"%s\", \"n_stages\": %d, "
      "\"n_micro\": %d, \"predicted_makespan\": %.6g, "
      "\"executed_makespan\": %.6g, \"prediction_error\": %.4g},\n"
      "  \"ranked\": [\n%s\n  ],\n"
      "  \"profile\": %s}\n",
      o.n_devices, o.n_micro, o.micro_batch_size, cfg.d_model, cfg.n_layers,
      o.workers, o.inverse_interval, gate_fastest ? "true" : "false", hw,
      report.burst_steps_run,
      report.burst_seconds, win.schedule.c_str(), win.params.n_stages,
      win.params.n_micro, win.predicted_makespan, win.executed_makespan,
      pred_err, rows.c_str(), profile_json.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
