// Transport baseline: the shm-ring wire vs the mutex channel, measured.
//
//   $ ./transport_baseline [BENCH_transport.json] [handoff_iters]
//
// Two measurements back the transport layer's claims:
//
//  1. Handoff latency — a keyed ping-pong between two threads over a
//     channel pair (bench/handoff_probe.h), identical code for both
//     backends. Records one-way p50/p95 and the calibration-fitted
//     t_handoff (the low-percentile the cost model uses). Gate: the
//     lock-free ring is no slower than the mutex channel at p50 — the
//     spin-then-futex consumer catches a publish in the spin window where
//     the mutex path always pays the full condvar wake.
//
//  2. Step makespan — the same small K-FAC training shape run four ways:
//     serial Trainer, in-process runtime over both transports, and the
//     forked multi-process launcher (train/multiproc.h) over the rings.
//     Losses are asserted bitwise-equal across ALL of them every run (the
//     transport carries bits, it does not get to change them); the JSON
//     records each seconds/step next to the multiproc per-boundary
//     blocked-wait stats. On a cgroup-limited container the multiproc row
//     shows transport overhead, not speedup — the cpu_budget_note says
//     which world the recording came from.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/handoff_probe.h"
#include "src/comm/tensor_wire.h"
#include "src/comm/transport_channel.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/perfmodel/calibration.h"
#include "src/train/multiproc.h"
#include "src/train/trainer.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double pct(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  std::size_t k = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  if (k == 0) k = 1;
  return xs[k - 1];
}

struct HandoffRow {
  double p50 = 0.0, p95 = 0.0, fitted = 0.0;  // seconds
};

HandoffRow summarize(const std::vector<double>& samples) {
  HandoffRow r;
  r.p50 = pct(samples, 50.0);
  r.p95 = pct(samples, 95.0);
  CalibrationAccumulator acc(1);
  for (const double s : samples) acc.add_handoff_sample(s);
  r.fitted = acc.fit(1).t_handoff;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_transport.json";
  const int iters = argc > 2 ? std::atoi(argv[2]) : 2000;

  const BertConfig cfg = bench_bert();
  const char* schedule = "1f1b";
  const int n_stages = 2;
  const int n_micro = 4;
  const std::size_t micro_batch = 4;
  const std::size_t steps = 3;

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto base_runtime_cfg = [&] {
    PipelineRuntimeConfig pc;
    pc.schedule = schedule;
    pc.n_stages = n_stages;
    pc.n_micro = n_micro;
    pc.micro_batch_size = micro_batch;
    pc.total_steps = steps;
    pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
    pc.use_kfac = true;
    pc.kfac.inverse_interval = 3;
    return pc;
  };

  // --- Multi-process run FIRST: fork() wants a thread-free parent --------
  std::printf("multiproc %s D=%d (forked, shm rings)...\n", schedule,
              n_stages);
  std::fflush(stdout);  // children inherit the buffer across fork
  MultiprocConfig mcfg;
  mcfg.runtime = base_runtime_cfg();
  Rng mp_rng(7);
  BertModel mp_model(cfg, mp_rng);
  const double mp_t0 = now_seconds();
  const MultiprocResult mp = run_multiproc(mp_model, batcher, mcfg);
  const double mp_total = now_seconds() - mp_t0;  // incl. fork/join overhead
  const double mp_per_step = mp.wall_seconds / static_cast<double>(steps);
  std::printf("  %.1f ms/step (slowest child), %.1f ms total incl. fork\n",
              mp_per_step * 1e3, mp_total * 1e3);

  // --- Handoff ping-pong: mutex channel vs shm ring ----------------------
  std::printf("handoff ping-pong, %d round-trips per backend...\n", iters);
  StageChannel mu_ab("pp-mutex[a->b]"), mu_ba("pp-mutex[b->a]");
  const auto mutex_row =
      summarize(pf_bench::ping_pong_samples(mu_ab, mu_ba, iters));
  const std::size_t slot_bytes = wire_bytes(1, 8);
  SharedRegion reg_ab(ShmRing::required_bytes(2, slot_bytes));
  SharedRegion reg_ba(ShmRing::required_bytes(2, slot_bytes));
  TransportChannel sh_ab("pp-ring[a->b]",
                         ShmRing::create(reg_ab.data(), 2, slot_bytes));
  TransportChannel sh_ba("pp-ring[b->a]",
                         ShmRing::create(reg_ba.data(), 2, slot_bytes));
  const auto ring_row =
      summarize(pf_bench::ping_pong_samples(sh_ab, sh_ba, iters));
  std::printf(
      "  mutex channel: p50 %.2f us, p95 %.2f us, fitted t_handoff %.2f us\n"
      "  shm ring:      p50 %.2f us, p95 %.2f us, fitted t_handoff %.2f us\n",
      mutex_row.p50 * 1e6, mutex_row.p95 * 1e6, mutex_row.fitted * 1e6,
      ring_row.p50 * 1e6, ring_row.p95 * 1e6, ring_row.fitted * 1e6);
  PF_CHECK(ring_row.p50 <= mutex_row.p50)
      << "lock-free ring slower than the mutex channel at p50: "
      << ring_row.p50 * 1e6 << " us vs " << mutex_row.p50 * 1e6
      << " us — the spin window should always beat a condvar wake";

  // --- In-process reference runs -----------------------------------------
  auto inproc_run = [&](const char* transport) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc = base_runtime_cfg();
    pc.transport = transport;
    PipelineRuntime rt(model, batcher, pc);
    const double t0 = now_seconds();
    const auto trace = rt.run();
    return std::make_pair(
        (now_seconds() - t0) / static_cast<double>(steps), trace.loss);
  };
  const auto [ip_mutex_per_step, ip_mutex_losses] = inproc_run("inproc");
  const auto [ip_ring_per_step, ip_ring_losses] = inproc_run("shm");
  std::printf("in-process runtime: %.1f ms/step (mutex), %.1f ms/step "
              "(shm ring)\n",
              ip_mutex_per_step * 1e3, ip_ring_per_step * 1e3);

  double serial_per_step = 0.0;
  std::vector<double> serial_losses;
  {
    Rng rng(7);
    BertModel model(cfg, rng);
    TrainerConfig tc;
    tc.batch_size = micro_batch;
    tc.accumulation_steps = static_cast<std::size_t>(n_micro);
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    Trainer trainer(model, batcher,
                    std::make_unique<KfacOptimizer>(
                        model.kfac_linears(), std::make_unique<Lamb>(), o),
                    tc);
    const double t0 = now_seconds();
    serial_losses = trainer.run().loss;
    serial_per_step = (now_seconds() - t0) / static_cast<double>(steps);
  }
  std::printf("serial Trainer: %.1f ms/step\n", serial_per_step * 1e3);

  // The wire carries bits, it does not get to change them.
  PF_CHECK(mp.trace.loss == serial_losses)
      << "multiproc losses diverged from the serial reference";
  PF_CHECK(ip_mutex_losses == serial_losses && ip_ring_losses == serial_losses)
      << "in-process losses diverged from the serial reference";
  std::printf("bitwise: multiproc == in-process (both transports) == serial "
              "Trainer\n");

  std::string boundary_rows;
  for (const auto& h : mp.handoff) {
    if (!boundary_rows.empty()) boundary_rows += ",\n";
    boundary_rows += format(
        "      {\"channel\": \"%s\", \"blocked_waits\": %zu, "
        "\"wait_p50_us\": %.3f, \"wait_p95_us\": %.3f, "
        "\"wait_mean_us\": %.3f}",
        h.channel.c_str(), h.waits, h.wait_p50 * 1e6, h.wait_p95 * 1e6,
        h.wait_mean * 1e6);
  }

  const std::string json = format(
      "{\n  \"shape\": {\"schedule\": \"%s\", \"n_stages\": %d, "
      "\"n_micro\": %d, \"micro_batch\": %zu, \"steps\": %zu, "
      "\"d_model\": %zu, \"n_layers\": %zu, \"kfac\": true},\n"
      "  \"cpu_budget_note\": \"bitwise-identical losses asserted across "
      "serial, in-process (both transports) and multiproc every run; under "
      "a 1-CPU cgroup budget the forked processes time-slice one core, so "
      "multiproc seconds_per_step shows transport overhead, not speedup — "
      "the CI artifact (BENCH_transport_ci.json) carries the multi-core "
      "numbers. Handoff latencies are scheduler-sensitive; compare only "
      "against runs with the same CPU budget.\",\n"
      "  \"handoff\": {\n"
      "    \"round_trips\": %d,\n"
      "    \"mutex_channel\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
      "\"fitted_t_handoff_us\": %.3f},\n"
      "    \"shm_ring\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
      "\"fitted_t_handoff_us\": %.3f},\n"
      "    \"ring_vs_mutex_p50\": %.4g\n  },\n"
      "  \"train\": {\n"
      "    \"serial_seconds_per_step\": %.6g,\n"
      "    \"inproc_mutex_seconds_per_step\": %.6g,\n"
      "    \"inproc_ring_seconds_per_step\": %.6g,\n"
      "    \"multiproc_seconds_per_step\": %.6g,\n"
      "    \"multiproc_total_seconds_incl_fork\": %.6g,\n"
      "    \"multiproc_processes\": %d,\n"
      "    \"multiproc_boundary_waits\": [\n%s\n    ]\n  }\n}\n",
      schedule, n_stages, n_micro, micro_batch, steps, cfg.d_model,
      cfg.n_layers, iters, mutex_row.p50 * 1e6, mutex_row.p95 * 1e6,
      mutex_row.fitted * 1e6, ring_row.p50 * 1e6, ring_row.p95 * 1e6,
      ring_row.fitted * 1e6, ring_row.p50 / mutex_row.p50, serial_per_step,
      ip_mutex_per_step, ip_ring_per_step, mp_per_step, mp_total,
      mp.n_processes, boundary_rows.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
