// Figures 9 and 10 reproduction: the full performance model — GPipe/1F1B
// (with pipeline flush) and Chimera w/ 2 pipelines — for BERT-Base (Fig 9)
// and BERT-Large (Fig 10) blocks, N_micro = D, on a P100, with and without
// activation recomputation.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/throughput.h"

using namespace pf;

namespace {

void run_panel(const TransformerConfig& cfg, const char* schedule,
               const char* label) {
  const std::vector<std::size_t> depths = {4, 8, 16};
  const std::vector<std::size_t> b_micros = {8, 16, 32};
  for (bool recompute : {false, true}) {
    bench::subheading(format("%s — %s%s", cfg.name.c_str(), label,
                             recompute ? " (R)" : ""));
    const auto pts = sweep_depth_bmicro(cfg, p100(), schedule, depths,
                                        b_micros, 1, recompute);
    std::printf("%s\n", sweep_header().c_str());
    for (const auto& p : pts)
      std::printf("%s\n", render_throughput_row(p).c_str());
    std::printf("\n");
    for (const auto& p : pts)
      std::printf("%s", render_time_memory_breakdown(p).c_str());
  }
}

}  // namespace

int main() {
  bench::heading("Figure 9: performance model, BERT-Base blocks, P100");
  // GPipe and 1F1B share the flush closed form (identical traits
  // coefficients), so one panel covers both.
  run_panel(bert_base(), "1f1b", "GPipe/1F1B");
  run_panel(bert_base(), "chimera", "Chimera w/ 2 pipelines");

  bench::heading("Figure 10: performance model, BERT-Large blocks, P100");
  run_panel(bert_large(), "1f1b", "GPipe/1F1B");
  run_panel(bert_large(), "chimera", "Chimera w/ 2 pipelines");

  std::printf(
      "\nShape check (paper): Chimera consistently achieves higher "
      "throughput than GPipe/1F1B\n(smaller bubble), but refreshes the "
      "curvature information less frequently —\nthe throughput/freshness "
      "tradeoff the paper highlights.\n");
  return 0;
}
