// Introduction reproduction: the model-partitioning tradeoff that motivates
// PipeFisher. Operator parallelism and ZeRO-style state partitioning pay in
// COMMUNICATION that grows with W or with model size; pipelining pays in
// IDLE bubbles — an overhead PipeFisher can reclaim as a resource.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/partitioning.h"

using namespace pf;

int main() {
  bench::heading(
      "Intro: operator parallelism vs state partitioning vs pipelining");

  for (const char* arch : {"bert-base", "bert-large"}) {
    for (const char* hw : {"p100", "v100"}) {
      bench::subheading(std::string(arch) + " on " + hw +
                        " (throughput in seqs/s; overhead seconds/step)");
      std::printf("%4s | %10s %10s %10s | %9s %9s %9s | %s\n", "W",
                  "operator", "zero", "pipeline", "comm(op)", "comm(zr)",
                  "bubble", "best");
      for (std::size_t w : {2u, 4u, 8u, 12u}) {
        PartitioningInput in;
        in.cfg = transformer_by_name(arch);
        in.hw = hardware_by_name(hw);
        in.world = w;
        in.b_micro = 32;
        in.n_micro = w;  // N = D for the pipeline
        const auto r = analyze_partitioning(in);
        std::printf(
            "%4zu | %10.1f %10.1f %10.1f | %9.3f %9.3f %9.3f | %s\n", w,
            r.thr_operator_parallel, r.thr_state_partitioning,
            r.thr_pipeline, r.comm_operator_parallel,
            r.comm_state_partitioning, r.bubble_pipeline, r.best);
      }
    }
  }

  bench::subheading(
      "bert-large over a slow (Ethernet-class, 1.5 GB/s) interconnect");
  std::printf("%4s | %10s %10s %10s | %9s %9s %9s | %s\n", "W", "operator",
              "zero", "pipeline", "comm(op)", "comm(zr)", "bubble", "best");
  for (std::size_t w : {2u, 4u, 8u, 12u}) {
    PartitioningInput in;
    in.cfg = bert_large();
    auto hw = p100();
    hw.link_bandwidth = 1.5e9;
    in.hw = hw;
    in.world = w;
    in.b_micro = 32;
    in.n_micro = 3 * w;  // enough micro-batches to amortize the bubble
    const auto r = analyze_partitioning(in);
    std::printf("%4zu | %10.1f %10.1f %10.1f | %9.3f %9.3f %9.3f | %s\n", w,
                r.thr_operator_parallel, r.thr_state_partitioning,
                r.thr_pipeline, r.comm_operator_parallel,
                r.comm_state_partitioning, r.bubble_pipeline, r.best);
  }

  std::printf(
      "\nShape checks (paper intro + Appendix B.2): with fast interconnects "
      "and models that\nfit device memory, plain data parallelism wins — "
      "exactly why the paper's own BERT-Base\ntraining used data "
      "parallelism on 32 GPUs (App. B.2). Operator-parallel and ZeRO\n"
      "overheads are communication, growing with W (activations) or model "
      "size (parameters);\non slow interconnects the pipeline's "
      "communication-free design takes over, and its\nonly overhead — "
      "bubble idleness — is the resource PipeFisher reclaims.\n");
  return 0;
}
