// Kernel microbenchmarks (google-benchmark): the measurement hooks that
// would calibrate the cost model on real hardware. On the GPUs of the paper
// these are the Nsight-profiled kernels; here they time our CPU kernels for
// GEMM (forward/backward), SYRK-style curvature, Cholesky + inverse
// (inversion work) and the two-sided precondition product.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/gemm.h"

namespace {

using pf::Matrix;

// Each GEMM-family kernel is reported per thread count: 1 = the serial seed
// path, >1 = the row-block ThreadPool path (bitwise-identical results).
void BM_GemmForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  pf::Rng rng(1);
  const Matrix x = Matrix::randn(n, n, rng);
  const Matrix w = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::matmul(x, w, threads));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmForward)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_GemmBackwardNt(benchmark::State& state) {
  // dX = dY · Wᵀ — the backward-pass product.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  pf::Rng rng(5);
  const Matrix dy = Matrix::randn(n, n, rng);
  const Matrix w = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::matmul_nt(dy, w, threads));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBackwardNt)
    ->ArgsProduct({{64, 128}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_CurvatureFactor(benchmark::State& state) {
  // A_l = XᵀX/N for N tokens of dimension d (the SYRK-style tn kernel).
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const std::size_t tokens = 256;
  pf::Rng rng(2);
  const Matrix x = Matrix::randn(tokens, d, rng);
  for (auto _ : state) {
    Matrix a(d, d, 0.0);
    pf::matmul_tn_acc(x, x, a, 1.0 / static_cast<double>(tokens), threads);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * tokens * d * d);
}
BENCHMARK(BM_CurvatureFactor)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 4}})
    ->ArgNames({"d", "threads"});

void BM_InversionWork(benchmark::State& state) {
  // Cholesky + cholesky_inverse of a damped SPD factor.
  const auto d = static_cast<std::size_t>(state.range(0));
  pf::Rng rng(3);
  const Matrix u = Matrix::randn(d, d, rng);
  Matrix spd = pf::matmul_tn(u, u);
  spd *= 1.0 / static_cast<double>(d);
  pf::add_diagonal(spd, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::cholesky_inverse(pf::cholesky(spd)));
  }
}
BENCHMARK(BM_InversionWork)->Arg(32)->Arg(64)->Arg(128);

void BM_PreconditionWork(benchmark::State& state) {
  // B⁻¹ · G · A⁻¹ for a d×4d layer (the FFN shape).
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  pf::Rng rng(4);
  const Matrix a_inv = Matrix::randn(d, d, rng);
  const Matrix b_inv = Matrix::randn(4 * d, 4 * d, rng);
  const Matrix g = Matrix::randn(d, 4 * d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pf::matmul(pf::matmul(a_inv, g, threads), b_inv, threads));
  }
}
BENCHMARK(BM_PreconditionWork)
    ->ArgsProduct({{32, 64}, {1, 2, 4}})
    ->ArgNames({"d", "threads"});

}  // namespace

BENCHMARK_MAIN();
