// Kernel microbenchmarks (google-benchmark): the measurement hooks that
// would calibrate the cost model on real hardware. On the GPUs of the paper
// these are the Nsight-profiled kernels; here they time our CPU kernels for
// GEMM (forward/backward), SYRK-style curvature, Cholesky + inverse
// (inversion work) and the two-sided precondition product.
//
// GEMM-family benchmarks carry two extra dimensions:
//   threads  1 = serial, >1 = row-block ThreadPool path (bitwise identical
//            within one SIMD level).
//   simd     0 = the portable scalar microkernel (what PF_SIMD_LEVEL=scalar
//            or PF_FORCE_SCALAR pins), 1 = the AVX2+FMA microkernel,
//            2 = the AVX-512F microkernel. Rows above the host's/build's
//            detected tier are skipped (set_simd_level clamps).
//
// CI compares the GFLOP/s of these rows against the committed
// BENCH_kernels.json via tools/check_bench_regression.py — but only when
// context.num_cpus matches the baseline's, because the committed file may
// come from a cgroup-limited dev container (see the cpu_budget_note context
// entry written by the bench_all target).
#include <benchmark/benchmark.h>

#include "src/common/cpu_features.h"
#include "src/common/rng.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/gemm.h"

namespace {

using pf::Matrix;
using pf::SimdLevel;

// Applies the benchmark's requested SIMD level; returns false (after marking
// the benchmark skipped) when the host/build can't run it.
bool apply_simd_arg(benchmark::State& state, int64_t simd) {
  const SimdLevel want = simd >= 2   ? SimdLevel::kAvx512
                         : simd == 1 ? SimdLevel::kAvx2
                                     : SimdLevel::kScalar;
  if (pf::set_simd_level(want) != want) {
    state.SkipWithError("requested SIMD tier not available on this "
                        "host/build (set_simd_level clamped)");
    return false;
  }
  return true;
}

void BM_GemmForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const SimdLevel entry_level = pf::active_simd_level();
  if (!apply_simd_arg(state, state.range(2))) return;
  pf::Rng rng(1);
  const Matrix x = Matrix::randn(n, n, rng);
  const Matrix w = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::matmul(x, w, threads));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  pf::set_simd_level(entry_level);
}
BENCHMARK(BM_GemmForward)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 4}, {0, 1, 2}})
    ->ArgNames({"n", "threads", "simd"});

void BM_GemmBackwardNt(benchmark::State& state) {
  // dX = dY · Wᵀ — the backward-pass product.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const SimdLevel entry_level = pf::active_simd_level();
  if (!apply_simd_arg(state, state.range(2))) return;
  pf::Rng rng(5);
  const Matrix dy = Matrix::randn(n, n, rng);
  const Matrix w = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::matmul_nt(dy, w, threads));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  pf::set_simd_level(entry_level);
}
BENCHMARK(BM_GemmBackwardNt)
    ->ArgsProduct({{64, 128}, {1, 2, 4}, {0, 1, 2}})
    ->ArgNames({"n", "threads", "simd"});

void BM_CurvatureFactor(benchmark::State& state) {
  // A_l = XᵀX/N for N tokens of dimension d (the SYRK-style tn kernel).
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const SimdLevel entry_level = pf::active_simd_level();
  if (!apply_simd_arg(state, state.range(2))) return;
  const std::size_t tokens = 256;
  pf::Rng rng(2);
  const Matrix x = Matrix::randn(tokens, d, rng);
  for (auto _ : state) {
    Matrix a(d, d, 0.0);
    pf::matmul_tn_acc(x, x, a, 1.0 / static_cast<double>(tokens), threads);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * tokens * d * d);
  pf::set_simd_level(entry_level);
}
BENCHMARK(BM_CurvatureFactor)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 4}, {0, 1, 2}})
    ->ArgNames({"d", "threads", "simd"});

void BM_InversionWork(benchmark::State& state) {
  // Cholesky + cholesky_inverse of a damped SPD factor — now the blocked
  // right-looking factorization with column-parallel inverse solves.
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  pf::Rng rng(3);
  const Matrix u = Matrix::randn(d, d, rng);
  Matrix spd = pf::matmul_tn(u, u);
  spd *= 1.0 / static_cast<double>(d);
  pf::add_diagonal(spd, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pf::cholesky_inverse(pf::cholesky(spd, threads), threads));
  }
}
BENCHMARK(BM_InversionWork)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 4}})
    ->ArgNames({"d", "threads"});

void BM_PreconditionWork(benchmark::State& state) {
  // B⁻¹ · G · A⁻¹ for a d×4d layer (the FFN shape).
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const SimdLevel entry_level = pf::active_simd_level();
  if (!apply_simd_arg(state, state.range(2))) return;
  pf::Rng rng(4);
  const Matrix a_inv = Matrix::randn(d, d, rng);
  const Matrix b_inv = Matrix::randn(4 * d, 4 * d, rng);
  const Matrix g = Matrix::randn(d, 4 * d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pf::matmul(pf::matmul(a_inv, g, threads), b_inv, threads));
  }
  pf::set_simd_level(entry_level);
}
BENCHMARK(BM_PreconditionWork)
    ->ArgsProduct({{32, 64}, {1, 2, 4}, {0, 1, 2}})
    ->ArgNames({"d", "threads", "simd"});

}  // namespace

BENCHMARK_MAIN();
