// Shared bench helper: measure one-way boundary-handoff latency of a
// Channel backend by ping-ponging a tiny tensor between two threads over
// a channel pair (A->B and B->A), exactly the send/recv code path both
// backends run in the pipeline. Each sample is RTT/2 of one keyed
// round-trip — the realized consumer-side handoff + wakeup latency the
// calibration layer calls t_handoff. Used by transport_baseline (p50/p95
// recording) and pipeline_runtime_baseline (the fitted ring-vs-mutex
// t_handoff gate).
#pragma once

#include <chrono>
#include <thread>
#include <vector>

#include "src/comm/stage_channel.h"
#include "src/linalg/matrix.h"

namespace pf_bench {

// One-way latency samples (seconds), `iters` round-trips after `warmup`
// unrecorded ones. The echo thread consumes from `ab` and returns the
// payload on `ba`; keys ascend so reorder boxes stay empty.
inline std::vector<double> ping_pong_samples(pf::Channel& ab, pf::Channel& ba,
                                             int iters, int warmup = 64) {
  const int total = iters + warmup;
  std::thread echo([&] {
    for (int i = 0; i < total; ++i) {
      pf::Matrix m = ab.recv(i, /*timeout_seconds=*/60.0);
      ba.send(i, std::move(m));
    }
  });
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  pf::Matrix payload(1, 8);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload.data()[i] = static_cast<double>(i);
  for (int i = 0; i < total; ++i) {
    pf::Matrix out = payload;  // fresh copy each round (send moves it away)
    const auto t0 = std::chrono::steady_clock::now();
    ab.send(i, std::move(out));
    pf::Matrix back = ba.recv(i, /*timeout_seconds=*/60.0);
    const double rtt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (i >= warmup) samples.push_back(rtt / 2.0);
    payload = std::move(back);
  }
  echo.join();
  return samples;
}

}  // namespace pf_bench
