// Figure 4 reproduction: Chimera with Adam vs with PipeFisher (w/ data &
// inversion parallelism across the two pipelines).
//
// Paper setup: BERT-Large (L=24), 8 stages x 3 layers/stage, 8 P100 GPUs,
// 8 micro-batches of size 32, sequence length 128.
// Paper numbers: utilization 59.8% -> 97.6%; curvature+inverse refreshed in
// 4 steps for stages 1/8 and 2 steps for the others.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"
#include "src/trace/ascii_gantt.h"
#include "src/trace/chrome_trace.h"

using namespace pf;

int main() {
  bench::heading(
      "Figure 4: Chimera, BERT-Large, D=8 x 3 layers, B_micro=32, S=128, "
      "P100");

  PipeFisherConfig cfg;
  cfg.schedule = "chimera";
  cfg.arch = bert_large();
  cfg.hw = p100();
  cfg.n_stages = 8;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 8;
  cfg.b_micro = 32;

  const auto rep = run_pipefisher(cfg);

  bench::compare_line("Chimera baseline GPU utilization",
                      percent(rep.utilization_baseline), "59.8%");
  bench::compare_line("Chimera w/ PipeFisher GPU utilization",
                      percent(rep.utilization), "97.6%");
  bench::compare_line("refresh interval",
                      format("%d steps", rep.refresh_interval_steps),
                      "2-4 steps");
  bench::compare_line("baseline time/step",
                      human_time(rep.step_time_baseline), "2345.6 ms");
  bench::compare_line("PipeFisher time/step", human_time(rep.step_time),
                      "2499.5 ms");
  bench::compare_line("step-time overhead",
                      format("+%.1f%%", rep.overhead_fraction() * 100),
                      "~6.5%");

  GanttOptions opt;
  opt.width = 110;
  std::printf("\nChimera baseline step (two bidirectional pipelines):\n%s",
              render_ascii_gantt(rep.baseline_step, opt).c_str());
  std::printf("\nChimera w/ PipeFisher refresh window (%d steps):\n%s",
              rep.refresh_interval_steps,
              render_ascii_gantt(rep.pipefisher_window, opt).c_str());

  write_chrome_trace(rep.pipefisher_window, "fig04_chimera_trace.json");
  std::printf(
      "\nChrome trace written to fig04_chimera_trace.json (open in "
      "about://tracing or https://ui.perfetto.dev).\n");
  return 0;
}
