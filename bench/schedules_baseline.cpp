// Perf-trajectory baseline across every registered pipeline schedule.
//
//   $ ./schedules_baseline [out.json]
//
// Runs the end-to-end PipeFisher experiment on a fixed MODEL (16 BERT-Base
// blocks over 8 devices, N=8, B=32, P100) for each schedule in the
// registry and writes makespan / utilization / refresh numbers to a JSON
// file (default BENCH_schedules.json). Blocks per (virtual) stage are
// derived from the traits so every row pipelines the same 16-block model —
// virtual-pipeline schedules split it across D·V chunks — keeping the rows
// comparable. `cmake --build build --target bench_all` refreshes the
// committed copy so future PRs can track regressions per schedule — a
// newly registered schedule joins the baseline automatically.
#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/pipeline/schedule_registry.h"

using namespace pf;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_schedules.json";

  constexpr int kDevices = 8;
  constexpr int kModelBlocks = 16;
  constexpr int kMicros = 8;
  constexpr int kBMicro = 32;
  std::string json = format(
      "{\n  \"shape\": {\"arch\": \"bert-base\", \"hw\": \"p100\", "
      "\"devices\": %d, \"model_blocks\": %d, \"n_micro\": %d, "
      "\"b_micro\": %d},\n"
      "  \"cpu_budget_note\": \"closed-form + discrete-event simulator "
      "output, no wall clock measured — CPU budget does not affect these "
      "numbers\",\n  \"schedules\": {\n",
      kDevices, kModelBlocks, kMicros, kBMicro);
  std::vector<std::string> rows;
  for (const auto& name : list_schedules()) {
    const ScheduleTraits& traits = traits_of(name);
    if (!traits.flush) {
      std::printf("%-16s skipped: traits.flush = false (streaming perf has "
                  "no per-step closed form for this baseline)\n",
                  name.c_str());
      continue;
    }
    PipeFisherConfig cfg;
    cfg.schedule = name;
    cfg.arch = bert_base();
    cfg.hw = p100();
    cfg.n_stages = kDevices;
    cfg.n_micro = kMicros;
    cfg.b_micro = kBMicro;
    // Same 16-block model for every row: virtual-pipeline schedules slice
    // it across D·V chunks, the rest across D stages. A registered
    // schedule whose constraints reject the fixed shape is skipped, not
    // fatal — the baseline must keep covering everything it can.
    const ScheduleParams sp = schedule_params(cfg);
    try {
      traits.check_params(sp);
      cfg.blocks_per_stage = kModelBlocks / traits.model_stages(sp);
      PF_CHECK(cfg.blocks_per_stage >= 1)
          << name << " slices the model into more than " << kModelBlocks
          << " chunks";
    } catch (const Error& e) {
      std::printf("%-16s skipped: incompatible with the baseline shape "
                  "(%s)\n",
                  name.c_str(), e.what());
      continue;
    }
    // Outside the catch: a simulator failure here is a real regression and
    // must fail the bench, not silently drop the row.
    {
      const auto rep = run_pipefisher(cfg);
      rows.push_back(format(
          "    \"%s\": {\"blocks_per_stage\": %d, \"pipe_makespan_s\": "
          "%.9g, \"step_time_baseline_s\": %.9g, "
          "\"step_time_pipefisher_s\": %.9g, \"utilization_baseline\": "
          "%.6g, \"utilization_pipefisher\": %.6g, \"refresh_steps\": %d, "
          "\"bubble_per_step_s\": %.9g, \"traits_c_f\": %.6g, "
          "\"traits_c_b\": %.6g}",
          name.c_str(), cfg.blocks_per_stage, rep.pipe_makespan,
          rep.step_time_baseline, rep.step_time, rep.utilization_baseline,
          rep.utilization, rep.refresh_interval_steps, rep.bubble_per_step,
          traits.critical_path_forwards(sp),
          traits.critical_path_backwards(sp)));
      std::printf("%-16s makespan %s  util %s -> %s  refresh %d st\n",
                  name.c_str(), human_time(rep.pipe_makespan).c_str(),
                  percent(rep.utilization_baseline).c_str(),
                  percent(rep.utilization).c_str(),
                  rep.refresh_interval_steps);
    }
  }
  json += join(rows, ",\n") + "\n  }\n}\n";

  std::ofstream f(path);
  PF_CHECK(f.good()) << "cannot open " << path;
  f << json;
  PF_CHECK(f.good()) << "write failed for " << path;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
