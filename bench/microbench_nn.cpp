// nn-layer microbenchmarks (google-benchmark): the forward/backward loops
// that define the pipeline stages whose bubbles PipeFisher fills. Every
// benchmark carries a `threads` dimension driving an ExecContext — the
// results are bitwise identical across thread counts (NnThreads tests), so
// these rows measure pure scheduling/throughput, never numerics.
//
// Like BENCH_kernels.json, the committed BENCH_nn.json may come from a
// cgroup-limited container (see its cpu_budget_note context entry): compare
// timings only against runs with the same context.num_cpus.
#include <benchmark/benchmark.h>

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/nn/attention.h"
#include "src/nn/bert.h"
#include "src/nn/embedding.h"
#include "src/nn/layer_norm.h"

namespace {

using pf::ExecContext;
using pf::Matrix;

void BM_AttentionForward(benchmark::State& state) {
  const auto seq = static_cast<std::size_t>(state.range(0));
  const ExecContext ctx(static_cast<int>(state.range(1)), 1);
  const std::size_t batch = 4, d_model = 64, heads = 8;
  pf::Rng rng(11);
  pf::MultiHeadSelfAttention attn(d_model, heads, rng, "attn");
  const Matrix x = Matrix::randn(batch * seq, d_model, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x, batch, seq, false, ctx));
  }
  state.SetItemsProcessed(state.iterations() * batch * heads * seq * seq);
}
BENCHMARK(BM_AttentionForward)
    ->ArgsProduct({{32, 64}, {1, 2, 4}})
    ->ArgNames({"seq", "threads"});

void BM_AttentionBackward(benchmark::State& state) {
  const auto seq = static_cast<std::size_t>(state.range(0));
  const ExecContext ctx(static_cast<int>(state.range(1)), 1);
  const std::size_t batch = 4, d_model = 64, heads = 8;
  pf::Rng rng(13);
  pf::MultiHeadSelfAttention attn(d_model, heads, rng, "attn");
  const Matrix x = Matrix::randn(batch * seq, d_model, rng);
  const Matrix dy = Matrix::randn(batch * seq, d_model, rng);
  attn.forward(x, batch, seq, true, ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.backward(dy, ctx));
  }
  state.SetItemsProcessed(state.iterations() * batch * heads * seq * seq);
}
BENCHMARK(BM_AttentionBackward)
    ->ArgsProduct({{32, 64}, {1, 2, 4}})
    ->ArgNames({"seq", "threads"});

void BM_LayerNormForward(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ExecContext ctx(static_cast<int>(state.range(1)), 1);
  const std::size_t dim = 256;
  pf::LayerNorm ln(dim, "ln");
  pf::Rng rng(17);
  const Matrix x = Matrix::randn(rows, dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ln.forward(x, false, ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows * dim);
}
BENCHMARK(BM_LayerNormForward)
    ->ArgsProduct({{512, 2048}, {1, 2, 4}})
    ->ArgNames({"rows", "threads"});

void BM_LayerNormBackward(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ExecContext ctx(static_cast<int>(state.range(1)), 1);
  const std::size_t dim = 256;
  pf::LayerNorm ln(dim, "ln");
  pf::Rng rng(19);
  const Matrix x = Matrix::randn(rows, dim, rng);
  const Matrix dy = Matrix::randn(rows, dim, rng);
  ln.forward(x, true, ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ln.backward(dy, ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows * dim);
}
BENCHMARK(BM_LayerNormBackward)
    ->ArgsProduct({{512, 2048}, {1, 2, 4}})
    ->ArgNames({"rows", "threads"});

void BM_EmbeddingScatter(benchmark::State& state) {
  // The backward scatter-add — the owner-computes sharded path.
  const auto d_model = static_cast<std::size_t>(state.range(0));
  const ExecContext ctx(static_cast<int>(state.range(1)), 1);
  const std::size_t vocab = 512, seq = 128, batch = 8;
  pf::Rng rng(23);
  pf::Embedding emb(vocab, seq, d_model, rng, "emb");
  std::vector<int> ids(batch * seq), segs(batch * seq);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(rng.uniform_int(vocab));
    segs[i] = static_cast<int>(rng.uniform_int(2));
  }
  emb.forward(ids, segs, batch, seq, true, ctx);
  const Matrix dy = Matrix::randn(batch * seq, d_model, rng);
  for (auto _ : state) {
    emb.backward(dy, ctx);
    benchmark::DoNotOptimize(emb.params()[0]->g);
  }
  state.SetItemsProcessed(state.iterations() * batch * seq * d_model);
}
BENCHMARK(BM_EmbeddingScatter)
    ->ArgsProduct({{64, 128}, {1, 2, 4}})
    ->ArgNames({"d_model", "threads"});

void BM_BertTrainStep(benchmark::State& state) {
  // End-to-end forward+loss+backward of the miniature BERT under the
  // context — the compute that defines the pipeline bubbles.
  const ExecContext ctx(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(0)));
  pf::BertConfig cfg;
  cfg.vocab = 64;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 2;
  cfg.seq_len = 32;
  pf::Rng rng(29);
  pf::BertModel model(cfg, rng);
  pf::BertBatch b;
  b.batch = 8;
  b.seq = cfg.seq_len;
  for (std::size_t i = 0; i < b.batch * b.seq; ++i) {
    b.ids.push_back(static_cast<int>(rng.uniform_int(cfg.vocab)));
    b.segments.push_back(static_cast<int>(rng.uniform_int(2)));
    b.mlm_labels.push_back(
        rng.bernoulli(0.15) ? static_cast<int>(rng.uniform_int(cfg.vocab))
                            : -1);
  }
  for (std::size_t i = 0; i < b.batch; ++i)
    b.nsp_labels.push_back(static_cast<int>(rng.uniform_int(2)));
  const auto params = model.params();
  for (auto _ : state) {
    pf::zero_grads(params);  // keep the accumulators bounded across iters
    benchmark::DoNotOptimize(model.train_step_backward(b, ctx));
  }
}
BENCHMARK(BM_BertTrainStep)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"threads"});

}  // namespace

BENCHMARK_MAIN();
