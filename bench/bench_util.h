// Shared console helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "src/common/strings.h"

namespace pf::bench {

inline void heading(const std::string& title) {
  std::printf("\n%s\n%s\n", title.c_str(),
              std::string(title.size(), '=').c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

// "measured X vs paper Y" line for EXPERIMENTS.md-style reporting.
inline void compare_line(const std::string& what, const std::string& ours,
                         const std::string& paper) {
  std::printf("  %-46s measured %-12s paper %s\n", what.c_str(), ours.c_str(),
              paper.c_str());
}

}  // namespace pf::bench
