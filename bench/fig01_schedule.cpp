// Figure 1 reproduction: schematic pipeline schedule (two steps) of GPipe
// vs PipeFisher-for-GPipe with 4 stages, 4 micro-batches, 4 devices.
//
// The paper's figure is stylized (unit-cost forward/backward); we render the
// same geometry from the simulator: all K-FAC work of one refresh cycle is
// packed into the bubbles of two consecutive steps, and precondition is the
// only extra work on the critical path.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/pipefisher.h"
#include "src/trace/ascii_gantt.h"

using namespace pf;

int main() {
  bench::heading(
      "Figure 1: GPipe vs PipeFisher-for-GPipe (4 stages, 4 micro-batches)");

  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  cfg.model_p2p = false;  // stylized, like the paper's schematic

  const auto rep = run_pipefisher(cfg);

  bench::subheading("(a) GPipe, two steps (B = backward is ~2x F = forward)");
  Timeline two_steps(rep.baseline_step.n_devices());
  two_steps.append_shifted(rep.baseline_step, 0.0);
  two_steps.append_shifted(rep.baseline_step, rep.step_time_baseline);
  GanttOptions opt;
  opt.width = 110;
  std::printf("%s", render_ascii_gantt(two_steps, opt).c_str());
  std::printf("utilization: %s\n",
              percent(rep.utilization_baseline).c_str());

  bench::subheading(
      "(b) PipeFisher for GPipe: curvature (a/b), inversion (I/J) fill the "
      "bubbles; precondition (P) after backwards");
  std::printf("%s", render_ascii_gantt(rep.pipefisher_window, opt).c_str());
  std::printf("utilization: %s over a %d-step refresh cycle\n",
              percent(rep.utilization).c_str(), rep.refresh_interval_steps);
  std::printf(
      "\nPipeFisher refreshes curvature+inverse once per %d steps using "
      "bubbles;\nprecondition is the only per-step overhead (+%.1f%% step "
      "time).\n",
      rep.refresh_interval_steps, rep.overhead_fraction() * 100.0);
  return 0;
}
