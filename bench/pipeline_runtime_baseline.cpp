// Executable-pipeline-runtime baseline: REAL wall-clock evidence for the
// paper's claim, measured on actual tensors rather than the simulator.
//
//   $ ./pipeline_runtime_baseline [BENCH_pipeline_runtime.json] [steps]
//
// For each worker count it times (a) the sequential reference — serial
// Trainer, fwd/bwd of every micro-batch then K-FAC curvature/inversion/
// precondition back to back — and (b) the pipeline runtime, where the same
// K-FAC work items ride the realized pipeline bubbles. Both produce
// bit-identical losses (asserted here every run); only the wall clock and
// the executed timeline differ. The executed utilization is reported next
// to the discrete-event simulator's prediction for the same schedule.
//
// Reading the numbers: with >= 2 worker threads the bubble-filled step
// should beat the sequential one (the acceptance claim). On a cgroup-
// limited 1-CPU container the extra workers add no wall-clock parallelism
// and the pipeline's task-handoff overhead makes speedup ~1x or below —
// the cpu_budget_note in the JSON says which world the recording came
// from; CI's multi-core artifact (BENCH_pipeline_runtime_ci.json) is the
// one that demonstrates the win.
//
// The "stash" block is the memory half of the story: the same shape run
// once with the legacy copy-restore stashes (copy_stashes = true) and once
// with the default move/borrow + arena stashes. Peak stash bytes (max over
// stages, per step) must shrink in borrow mode — asserted here every run —
// and the arena recycle counts show steady-state steps reuse stash storage
// instead of re-allocating it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/pipeline/simulator.h"
#include "src/train/pipeline_runtime.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

struct TimedRun {
  std::vector<double> losses;
  double seconds_per_step = 0.0;
  double utilization = 0.0;  // executed (pipeline runs only)
  std::vector<PipelineRuntime::StageMemoryStats> mem;
};

std::size_t max_peak_stash(const TimedRun& r) {
  std::size_t peak = 0;
  for (const auto& m : r.mem) peak = std::max(peak, m.peak_stash_bytes);
  return peak;
}

std::size_t sum_recycled(const TimedRun& r) {
  std::size_t n = 0;
  for (const auto& m : r.mem) n += m.arena_recycled;
  return n;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "BENCH_pipeline_runtime.json";
  const std::size_t steps =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const auto cfg = bench_bert();
  const int n_micro = 8;
  const std::size_t micro_batch = 8;
  const int n_stages = 4;
  const char* schedule = "1f1b";

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto serial_run = [&]() {
    Rng rng(7);
    BertModel model(cfg, rng);
    TrainerConfig tc;
    tc.batch_size = micro_batch;
    tc.accumulation_steps = static_cast<std::size_t>(n_micro);
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    Trainer trainer(model, batcher,
                    std::make_unique<KfacOptimizer>(
                        model.kfac_linears(), std::make_unique<Lamb>(), o),
                    tc);
    TimedRun r;
    const double t0 = now_seconds();
    const auto trace = trainer.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    return r;
  };

  auto pipeline_run = [&](int workers, bool copy_stashes = false) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc;
    pc.schedule = schedule;
    pc.n_stages = n_stages;
    pc.n_micro = n_micro;
    pc.micro_batch_size = micro_batch;
    pc.total_steps = steps;
    pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
    pc.workers = workers;
    pc.stage_threads = 1;
    pc.use_kfac = true;
    pc.kfac.inverse_interval = 3;
    pc.copy_stashes = copy_stashes;
    PipelineRuntime rt(model, batcher, pc);
    TimedRun r;
    const double t0 = now_seconds();
    const auto trace = rt.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    r.utilization = rt.last_executed_timeline().utilization();
    r.mem = rt.memory_stats();
    return r;
  };

  // Simulator prediction for the same schedule shape (unit §3.3 costs).
  ScheduleParams sp;
  sp.n_stages = n_stages;
  sp.n_micro = n_micro;
  const auto sim = simulate_step(build_schedule(schedule, sp), StepCosts{});
  const double sim_util = sim.timeline.utilization(0.0, sim.pipe_makespan);

  std::printf("sequential reference (serial Trainer + K-FAC)...\n");
  const auto serial = serial_run();
  std::printf("  %.1f ms/step\n", serial.seconds_per_step * 1e3);

  std::string rows;
  for (const int workers : {1, 2, 4}) {
    const auto pr = pipeline_run(workers);
    // The whole point: same bits, different wall clock.
    PF_CHECK(pr.losses == serial.losses)
        << "pipeline losses diverged from the serial reference at workers="
        << workers;
    const double speedup = serial.seconds_per_step / pr.seconds_per_step;
    std::printf(
        "pipeline %s D=%d workers=%d: %.1f ms/step (%.2fx vs sequential), "
        "executed utilization %s (simulator predicts %s), "
        "peak stash %zu KiB, %zu arena recycles/step\n",
        schedule, n_stages, workers, pr.seconds_per_step * 1e3, speedup,
        percent(pr.utilization).c_str(), percent(sim_util).c_str(),
        max_peak_stash(pr) / 1024, sum_recycled(pr));
    if (!rows.empty()) rows += ",\n";
    rows += format(
        "    \"workers_%d\": {\"seconds_per_step\": %.6g, "
        "\"speedup_vs_sequential\": %.4g, \"executed_utilization\": %.4g, "
        "\"peak_stash_bytes\": %zu, \"arena_recycled_per_step\": %zu}",
        workers, pr.seconds_per_step, speedup, pr.utilization,
        max_peak_stash(pr), sum_recycled(pr));
  }

  // Stash-overhead A/B: legacy copy-restore stashes vs the default
  // move/borrow + arena stashes, same shape and bits (both asserted against
  // the serial reference above via the workers loop; copy mode re-asserted
  // here). Borrow mode must hold strictly less at peak.
  const auto copy_run = pipeline_run(/*workers=*/2, /*copy_stashes=*/true);
  const auto borrow_run = pipeline_run(/*workers=*/2);
  PF_CHECK(copy_run.losses == serial.losses)
      << "copy-stash run diverged from the serial reference";
  const std::size_t copy_peak = max_peak_stash(copy_run);
  const std::size_t borrow_peak = max_peak_stash(borrow_run);
  PF_CHECK(borrow_peak < copy_peak)
      << "move/borrow stashes did not shrink peak stash bytes: borrow "
      << borrow_peak << " vs copy " << copy_peak;
  std::printf(
      "stash overhead: copy %zu KiB -> borrow %zu KiB peak per stage "
      "(%.2fx smaller), %zu arena recycles/step in borrow mode\n",
      copy_peak / 1024, borrow_peak / 1024,
      static_cast<double>(copy_peak) / static_cast<double>(borrow_peak),
      sum_recycled(borrow_run));

  const std::string json = format(
      "{\n  \"shape\": {\"schedule\": \"%s\", \"n_stages\": %d, "
      "\"n_micro\": %d, \"micro_batch\": %zu, \"steps\": %zu, "
      "\"d_model\": %zu, \"n_layers\": %zu},\n"
      "  \"cpu_budget_note\": \"bitwise-identical losses asserted for every "
      "row; wall-clock speedup needs real cores — under a 1-CPU cgroup "
      "budget the workers>1 rows stay ~1x, and the CI artifact "
      "(BENCH_pipeline_runtime_ci.json) carries the full multi-core "
      "numbers. Compare only against runs with the same CPU budget.\",\n"
      "  \"sequential_seconds_per_step\": %.6g,\n"
      "  \"simulator_predicted_utilization\": %.4g,\n"
      "  \"stash\": {\"copy_peak_stash_bytes\": %zu, "
      "\"borrow_peak_stash_bytes\": %zu, \"shrink_factor\": %.4g, "
      "\"borrow_arena_recycled_per_step\": %zu},\n"
      "  \"pipeline\": {\n%s\n  }\n}\n",
      schedule, n_stages, n_micro, micro_batch, steps, cfg.d_model,
      cfg.n_layers, serial.seconds_per_step, sim_util, copy_peak,
      borrow_peak,
      static_cast<double>(copy_peak) / static_cast<double>(borrow_peak),
      sum_recycled(borrow_run), rows.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
