// Executable-pipeline-runtime baseline: REAL wall-clock evidence for the
// paper's claim, measured on actual tensors rather than the simulator.
//
//   $ ./pipeline_runtime_baseline [BENCH_pipeline_runtime.json] [steps]
//
// For each worker count it times (a) the sequential reference — serial
// Trainer, fwd/bwd of every micro-batch then K-FAC curvature/inversion/
// precondition back to back — and (b) the pipeline runtime, where the same
// K-FAC work items ride the realized pipeline bubbles. Both produce
// bit-identical losses (asserted here every run); only the wall clock and
// the executed timeline differ. The executed utilization is reported next
// to the discrete-event simulator's prediction for the same schedule.
//
// Each worker row also runs the calibrated-prediction gate: a profile is
// fitted on the first half of the row's executed steps
// (src/perfmodel/calibration.h) and must predict the second half's total
// makespan within 10%, beating the uncalibrated unit-cost simulator's
// utilization estimate whenever the executor threads fit the core budget
// — both PF_CHECKed every run, so the bench fails if the calibration
// loop rots.
//
// Reading the numbers: with >= 2 worker threads the bubble-filled step
// should beat the sequential one (the acceptance claim). On a cgroup-
// limited 1-CPU container the extra workers add no wall-clock parallelism
// and the pipeline's task-handoff overhead makes speedup ~1x or below —
// the cpu_budget_note in the JSON says which world the recording came
// from; CI's multi-core artifact (BENCH_pipeline_runtime_ci.json) is the
// one that demonstrates the win.
//
// The "stash" block is the memory half of the story: the same shape run
// once with the legacy copy-restore stashes (copy_stashes = true) and once
// with the default move/borrow + arena stashes. Peak stash bytes (max over
// stages, per step) must shrink in borrow mode — asserted here every run —
// and the arena recycle counts show steady-state steps reuse stash storage
// instead of re-allocating it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/handoff_probe.h"
#include "src/comm/tensor_wire.h"
#include "src/comm/transport_channel.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/perfmodel/calibration.h"
#include "src/pipeline/simulator.h"
#include "src/train/pipeline_runtime.h"

namespace {

using namespace pf;

BertConfig bench_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 32;
  return cfg;
}

struct TimedRun {
  std::vector<double> losses;
  double seconds_per_step = 0.0;
  double utilization = 0.0;  // executed (pipeline runs only)
  std::vector<PipelineRuntime::StageMemoryStats> mem;
  // Calibration inputs (pipeline runs only): every step's executed
  // timeline, the runtime's own step plans, and the executor concurrency
  // the run used.
  std::vector<Timeline> step_timelines;
  StepPlan plan_curv;  // curvature-only step
  StepPlan plan_inv;   // curvature + inversion step
  std::size_t threads = 0;
};

double executed_span(const Timeline& tl) {
  return tl.makespan() - tl.earliest_start();
}

std::size_t max_peak_stash(const TimedRun& r) {
  std::size_t peak = 0;
  for (const auto& m : r.mem) peak = std::max(peak, m.peak_stash_bytes);
  return peak;
}

std::size_t sum_recycled(const TimedRun& r) {
  std::size_t n = 0;
  for (const auto& m : r.mem) n += m.arena_recycled;
  return n;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "BENCH_pipeline_runtime.json";
  // 12 steps: the calibration gate fits on steps 2..5 and predicts 6..11,
  // keeping both windows out of the first-steps warmup drift (allocator
  // steady state, cache warmup) that 8 steps could not escape.
  const std::size_t steps =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  const auto cfg = bench_bert();
  const int n_micro = 8;
  const std::size_t micro_batch = 8;
  const int n_stages = 4;
  const char* schedule = "1f1b";

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto serial_run = [&]() {
    Rng rng(7);
    BertModel model(cfg, rng);
    TrainerConfig tc;
    tc.batch_size = micro_batch;
    tc.accumulation_steps = static_cast<std::size_t>(n_micro);
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    Trainer trainer(model, batcher,
                    std::make_unique<KfacOptimizer>(
                        model.kfac_linears(), std::make_unique<Lamb>(), o),
                    tc);
    TimedRun r;
    const double t0 = now_seconds();
    const auto trace = trainer.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    return r;
  };

  auto pipeline_run = [&](int workers, bool copy_stashes = false) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc;
    pc.schedule = schedule;
    pc.n_stages = n_stages;
    pc.n_micro = n_micro;
    pc.micro_batch_size = micro_batch;
    pc.total_steps = steps;
    pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
    pc.workers = workers;
    pc.stage_threads = 1;
    pc.use_kfac = true;
    pc.kfac.inverse_interval = 3;
    pc.copy_stashes = copy_stashes;
    TimedRun r;
    pc.step_observer = [&r](const Timeline& tl) {
      r.step_timelines.push_back(tl);
    };
    PipelineRuntime rt(model, batcher, pc);
    const double t0 = now_seconds();
    const auto trace = rt.run();
    r.seconds_per_step = (now_seconds() - t0) / static_cast<double>(steps);
    r.losses = trace.loss;
    r.utilization = rt.last_executed_timeline().utilization();
    r.mem = rt.memory_stats();
    r.plan_curv = rt.make_step_plan(/*curv_step=*/true, /*inv_step=*/false);
    r.plan_inv = rt.make_step_plan(/*curv_step=*/true, /*inv_step=*/true);
    r.threads = rt.executor_threads();
    return r;
  };

  // Simulator prediction for the same schedule shape (unit §3.3 costs).
  ScheduleParams sp;
  sp.n_stages = n_stages;
  sp.n_micro = n_micro;
  const auto sim = simulate_step(build_schedule(schedule, sp), StepCosts{});
  const double sim_util = sim.timeline.utilization(0.0, sim.pipe_makespan);

  std::printf("sequential reference (serial Trainer + K-FAC)...\n");
  const auto serial = serial_run();
  std::printf("  %.1f ms/step\n", serial.seconds_per_step * 1e3);

  std::string rows;
  for (const int workers : {1, 2, 4}) {
    const auto pr = pipeline_run(workers);
    // The whole point: same bits, different wall clock.
    PF_CHECK(pr.losses == serial.losses)
        << "pipeline losses diverged from the serial reference at workers="
        << workers;
    const double speedup = serial.seconds_per_step / pr.seconds_per_step;
    std::printf(
        "pipeline %s D=%d workers=%d: %.1f ms/step (%.2fx vs sequential), "
        "executed utilization %s (simulator predicts %s), "
        "peak stash %zu KiB, %zu arena recycles/step\n",
        schedule, n_stages, workers, pr.seconds_per_step * 1e3, speedup,
        percent(pr.utilization).c_str(), percent(sim_util).c_str(),
        max_peak_stash(pr) / 1024, sum_recycled(pr));

    // Calibrated prediction gate: fit a profile on the FIRST half of this
    // row's executed steps (steps 0-1 excluded — first-touch allocation
    // and cache warmup still taper there; the window spans one full
    // inverse_interval so it sees an inversion step), then predict the
    // SECOND half per step type by replaying the runtime's own step plans
    // under the fitted costs. The acceptance claim: calibrated predicted
    // makespan within 10% of executed, and the calibrated utilization
    // prediction at least as close as the uncalibrated unit-cost
    // simulator's.
    PF_CHECK(steps >= 8 && pr.step_timelines.size() == steps);
    const std::size_t half = steps / 2;
    const std::size_t fit_start = 2;
    CalibrationAccumulator acc(n_stages);
    for (std::size_t t = fit_start; t < half; ++t)
      acc.ingest(pr.step_timelines[t]);
    CalibratedCosts prof = acc.fit(static_cast<int>(pr.threads));
    // Residual from the fit window itself: executed over replayed seconds,
    // absorbing dispatch latency and contention the per-task means miss.
    double fit_exec = 0.0, fit_repl = 0.0;
    {
      const double repl_curv =
          predict_step(pr.plan_curv, prof, pr.threads).makespan;
      const double repl_inv =
          predict_step(pr.plan_inv, prof, pr.threads).makespan;
      for (std::size_t t = fit_start; t < half; ++t) {
        fit_exec += executed_span(pr.step_timelines[t]);
        fit_repl += (t % 3 == 0) ? repl_inv : repl_curv;
      }
    }
    PF_CHECK(fit_exec > 0.0 && fit_repl > 0.0);
    prof.residual_scale = fit_exec / fit_repl;
    const auto pred_curv = predict_step(pr.plan_curv, prof, pr.threads);
    const auto pred_inv = predict_step(pr.plan_inv, prof, pr.threads);
    double err_sum = 0.0, err_max = 0.0, exec_sum = 0.0;
    double exec_util_sum = 0.0, pred_util_sum = 0.0;
    for (std::size_t t = half; t < steps; ++t) {
      const auto& p = (t % 3 == 0) ? pred_inv : pred_curv;
      const double exec = executed_span(pr.step_timelines[t]);
      const double err = std::fabs(p.makespan - exec) / exec;
      std::printf("    step %zu (%s): executed %.4g s, predicted %.4g s "
                  "(%+.1f%%)\n",
                  t, (t % 3 == 0) ? "curv+inv" : "curv", exec, p.makespan,
                  100.0 * (p.makespan - exec) / exec);
      err_sum += err;
      err_max = std::max(err_max, err);
      exec_sum += exec;
      exec_util_sum += pr.step_timelines[t].utilization();
      pred_util_sum += p.utilization();
    }
    const double n2 = static_cast<double>(steps - half);
    const double err_mean = err_sum / n2;
    const double exec_mean = exec_sum / n2;
    const double exec_util = exec_util_sum / n2;
    const double pred_util = pred_util_sum / n2;
    const double cal_util_err = std::fabs(pred_util - exec_util);
    const double uncal_util_err = std::fabs(sim_util - exec_util);
    // The gated quantity is the AGGREGATE window error — per-step spans on
    // a shared container carry ±20% contention outliers that average out
    // over the window; a systematic model error does not.
    double pred_sum = 0.0;
    for (std::size_t t = half; t < steps; ++t)
      pred_sum += ((t % 3 == 0) ? pred_inv : pred_curv).makespan;
    const double err_window = std::fabs(pred_sum - exec_sum) / exec_sum;
    std::printf(
        "  calibrated prediction workers=%d: residual %.3f, window error "
        "%.1f%% (per-step mean %.1f%%, max %.1f%%), predicted utilization "
        "%s vs executed %s (uncalibrated simulator off by %.1f pts, "
        "calibrated by %.1f pts)\n",
        workers, prof.residual_scale, 100.0 * err_window, 100.0 * err_mean,
        100.0 * err_max, percent(pred_util).c_str(),
        percent(exec_util).c_str(), 100.0 * uncal_util_err,
        100.0 * cal_util_err);
    PF_CHECK(err_window <= 0.10)
        << "calibrated predicted makespan drifted " << 100.0 * err_window
        << "% from executed over the prediction window at workers="
        << workers << " — the 10% acceptance band";
    // The utilization-beat gate only applies when the executor's threads
    // fit the core budget: an oversubscribed run (e.g. workers=4 under a
    // 2-CPU cgroup) executes with lane idle gaps the replay's concurrency
    // cap cannot model — exactly the regime the cpu_budget_note disclaims.
    // Both errors are always recorded in the JSON.
    const std::size_t cores = std::thread::hardware_concurrency();
    if (pr.threads <= cores) {
      PF_CHECK(cal_util_err <= uncal_util_err)
          << "calibrated utilization prediction (off by " << cal_util_err
          << ") lost to the uncalibrated simulator (off by "
          << uncal_util_err << ") at workers=" << workers;
    } else {
      std::printf(
          "  (utilization-beat gate skipped: %zu executor threads "
          "oversubscribe %zu cores)\n",
          pr.threads, cores);
    }

    if (!rows.empty()) rows += ",\n";
    rows += format(
        "    \"workers_%d\": {\"seconds_per_step\": %.6g, "
        "\"speedup_vs_sequential\": %.4g, \"executed_utilization\": %.4g, "
        "\"peak_stash_bytes\": %zu, \"arena_recycled_per_step\": %zu,\n"
        "      \"calibration\": {\"residual_scale\": %.4g, "
        "\"predicted_makespan_curv\": %.6g, \"predicted_makespan_inv\": "
        "%.6g, \"executed_makespan_mean\": %.6g, "
        "\"prediction_error_window\": %.4g, \"prediction_error_mean\": "
        "%.4g, \"prediction_error_max\": %.4g, \"predicted_utilization\": "
        "%.4g, \"utilization_error\": %.4g, "
        "\"uncalibrated_utilization_error\": %.4g}}",
        workers, pr.seconds_per_step, speedup, pr.utilization,
        max_peak_stash(pr), sum_recycled(pr), prof.residual_scale,
        pred_curv.makespan, pred_inv.makespan, exec_mean, err_window,
        err_mean, err_max, pred_util, cal_util_err, uncal_util_err);
  }

  // Stash-overhead A/B: legacy copy-restore stashes vs the default
  // move/borrow + arena stashes, same shape and bits (both asserted against
  // the serial reference above via the workers loop; copy mode re-asserted
  // here). Borrow mode must hold strictly less at peak.
  const auto copy_run = pipeline_run(/*workers=*/2, /*copy_stashes=*/true);
  const auto borrow_run = pipeline_run(/*workers=*/2);
  PF_CHECK(copy_run.losses == serial.losses)
      << "copy-stash run diverged from the serial reference";
  const std::size_t copy_peak = max_peak_stash(copy_run);
  const std::size_t borrow_peak = max_peak_stash(borrow_run);
  PF_CHECK(borrow_peak < copy_peak)
      << "move/borrow stashes did not shrink peak stash bytes: borrow "
      << borrow_peak << " vs copy " << copy_peak;
  std::printf(
      "stash overhead: copy %zu KiB -> borrow %zu KiB peak per stage "
      "(%.2fx smaller), %zu arena recycles/step in borrow mode\n",
      copy_peak / 1024, borrow_peak / 1024,
      static_cast<double>(copy_peak) / static_cast<double>(borrow_peak),
      sum_recycled(borrow_run));

  // Boundary-handoff calibration, per transport: ping-pong samples
  // (bench/handoff_probe.h — the exact send/recv path the runtime's
  // channels run) fed through CalibrationAccumulator::add_handoff_sample,
  // fitted in isolation per backend. Gate: the lock-free shm ring's fitted
  // t_handoff must not exceed the mutex channel's — the whole reason the
  // ring exists is to take the condvar wake off the boundary-crossing
  // critical path.
  double handoff_mutex = 0.0, handoff_ring = 0.0;
  {
    const int iters = 1000;
    StageChannel mu_ab("cal-mutex[a->b]"), mu_ba("cal-mutex[b->a]");
    CalibrationAccumulator mu_acc(n_stages);
    for (const double s : pf_bench::ping_pong_samples(mu_ab, mu_ba, iters))
      mu_acc.add_handoff_sample(s);
    handoff_mutex = mu_acc.fit(1).t_handoff;
    const std::size_t slot_bytes = wire_bytes(1, 8);
    SharedRegion reg_ab(ShmRing::required_bytes(2, slot_bytes));
    SharedRegion reg_ba(ShmRing::required_bytes(2, slot_bytes));
    TransportChannel sh_ab("cal-ring[a->b]",
                           ShmRing::create(reg_ab.data(), 2, slot_bytes));
    TransportChannel sh_ba("cal-ring[b->a]",
                           ShmRing::create(reg_ba.data(), 2, slot_bytes));
    CalibrationAccumulator sh_acc(n_stages);
    for (const double s : pf_bench::ping_pong_samples(sh_ab, sh_ba, iters))
      sh_acc.add_handoff_sample(s);
    handoff_ring = sh_acc.fit(1).t_handoff;
    std::printf(
        "fitted t_handoff: mutex channel %.2f us, shm ring %.2f us\n",
        handoff_mutex * 1e6, handoff_ring * 1e6);
    PF_CHECK(handoff_ring <= handoff_mutex)
        << "fitted shm-ring t_handoff (" << handoff_ring * 1e6
        << " us) exceeds the mutex channel's (" << handoff_mutex * 1e6
        << " us)";
  }

  const std::string json = format(
      "{\n  \"shape\": {\"schedule\": \"%s\", \"n_stages\": %d, "
      "\"n_micro\": %d, \"micro_batch\": %zu, \"steps\": %zu, "
      "\"d_model\": %zu, \"n_layers\": %zu},\n"
      "  \"cpu_budget_note\": \"bitwise-identical losses asserted for every "
      "row; wall-clock speedup needs real cores — under a 1-CPU cgroup "
      "budget the workers>1 rows stay ~1x, and the CI artifact "
      "(BENCH_pipeline_runtime_ci.json) carries the full multi-core "
      "numbers. Compare only against runs with the same CPU budget.\",\n"
      "  \"sequential_seconds_per_step\": %.6g,\n"
      "  \"simulator_predicted_utilization\": %.4g,\n"
      "  \"fitted_t_handoff_us\": {\"mutex_channel\": %.3f, "
      "\"shm_ring\": %.3f},\n"
      "  \"stash\": {\"copy_peak_stash_bytes\": %zu, "
      "\"borrow_peak_stash_bytes\": %zu, \"shrink_factor\": %.4g, "
      "\"borrow_arena_recycled_per_step\": %zu},\n"
      "  \"pipeline\": {\n%s\n  }\n}\n",
      schedule, n_stages, n_micro, micro_batch, steps, cfg.d_model,
      cfg.n_layers, serial.seconds_per_step, sim_util, handoff_mutex * 1e6,
      handoff_ring * 1e6, copy_peak,
      borrow_peak,
      static_cast<double>(copy_peak) / static_cast<double>(borrow_peak),
      sum_recycled(borrow_run), rows.c_str());
  FILE* f = std::fopen(path.c_str(), "w");
  PF_CHECK(f != nullptr) << "cannot open " << path;
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
