// Figure 5 reproduction: performance model for Chimera with D BERT-Base
// blocks (one block per stage), N_micro = D, on a P100.
//   (a) per-step time and memory breakdown for B in {8,16,32}, D in
//       {4,8,16}, with and without activation recomputation (R);
//   (b) throughput of {Chimera, w/ PipeFisher, w/ K-FAC+skip, w/ K-FAC} and
//       the (curvature+inversion)/bubble ratio.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/perfmodel/throughput.h"

using namespace pf;

int main() {
  bench::heading(
      "Figure 5: perf model, Chimera w/ 2 pipelines, BERT-Base blocks, "
      "N_micro = D, P100");

  const std::vector<std::size_t> depths = {4, 8, 16};
  const std::vector<std::size_t> b_micros = {8, 16, 32};

  for (bool recompute : {false, true}) {
    bench::subheading(recompute
                          ? "(a) time & memory breakdown — with activation "
                            "recomputation (R)"
                          : "(a) time & memory breakdown");
    const auto pts =
        sweep_depth_bmicro(bert_base(), p100(), "chimera", depths, b_micros,
                           1, recompute);
    for (const auto& p : pts)
      std::printf("%s", render_time_memory_breakdown(p).c_str());
  }

  for (bool recompute : {false, true}) {
    bench::subheading(recompute ? "(b) throughput & ratio — with R"
                                : "(b) throughput & ratio");
    std::printf("%s\n", sweep_header().c_str());
    const auto pts =
        sweep_depth_bmicro(bert_base(), p100(), "chimera", depths, b_micros,
                           1, recompute);
    for (const auto& p : pts)
      std::printf("%s\n", render_throughput_row(p).c_str());
  }

  std::printf(
      "\nShape checks (paper): PipeFisher throughput ~= vanilla Chimera "
      "(precondition only);\nratio shrinks as B_micro or D grow; "
      "recomputation (R) lowers throughput but\nraises T_bubble, so "
      "curvature refreshes more often and activation memory drops.\n");
  return 0;
}
