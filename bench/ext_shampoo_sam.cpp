// §5 extension reproduction: "Extra work for other types of algorithms".
//
// The paper argues the bubble-filling idea generalizes beyond K-FAC and
// names two candidates:
//  * Shampoo — Kronecker-factored matrices of the same shapes as K-FAC,
//    but each needs an eigendecomposition, "computationally more expensive
//    than an inversion", so "a method that divides the work for a single
//    matrix into multiple pieces would be necessary".
//  * SAM — "requires an additional forward and backward for every training
//    step ... it contains twice the work of regular SGD and has the
//    potential to double the accelerator utilization".
//
// This bench fills GPipe bubbles with both kinds of work and reports the
// same quantities as the K-FAC experiments.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/extra_work.h"
#include "src/core/pipefisher.h"
#include "src/trace/ascii_gantt.h"

using namespace pf;

int main() {
  bench::heading("§5 extensions: filling bubbles with Shampoo and SAM work");

  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;

  const auto spec = build_schedule(cfg);
  const CostModel cm(cfg.hw);
  const auto base = simulate_step(spec, derive_step_costs(cfg, false));
  const double base_util = base.timeline.utilization(0.0, base.step_time);
  std::printf("baseline GPipe utilization: %s\n", percent(base_util).c_str());

  // --- K-FAC (reference) ---
  const auto kfac_rep = run_pipefisher(cfg);

  // --- Shampoo ---
  const auto shampoo_tasks = make_shampoo_tasks(
      spec, base, cm, cfg.arch, static_cast<std::size_t>(cfg.blocks_per_stage),
      static_cast<std::size_t>(cfg.b_micro));
  const auto shampoo = assign_to_bubbles(base.timeline, base.step_time,
                                         shampoo_tasks);

  // --- SAM ---
  const auto sam_tasks = make_sam_tasks(
      spec, base, cm, cfg.arch, static_cast<std::size_t>(cfg.blocks_per_stage),
      static_cast<std::size_t>(cfg.b_micro));
  const auto sam = assign_to_bubbles(base.timeline, base.step_time,
                                     sam_tasks);

  bench::subheading("comparison");
  std::printf("%-26s %12s %16s\n", "extra work", "utilization",
              "refresh interval");
  std::printf("%-26s %12s %16s\n", "none (first-order)",
              percent(base_util).c_str(), "-");
  std::printf("%-26s %12s %13d st\n", "K-FAC (PipeFisher)",
              percent(kfac_rep.utilization).c_str(),
              kfac_rep.refresh_interval_steps);
  std::printf("%-26s %12s %13d st\n", "Shampoo statistics+eig",
              percent(shampoo.utilization_after).c_str(), shampoo.steps_used);
  std::printf("%-26s %12s %13d st\n", "SAM extra fwd/bwd",
              percent(sam.utilization_after).c_str(), sam.steps_used);

  bench::subheading("Shampoo schedule (eigendecompositions E split across "
                    "bubbles)");
  GanttOptions opt;
  opt.width = 110;
  std::printf("%s", render_ascii_gantt(shampoo.schedule, opt).c_str());

  bench::subheading("SAM schedule (s/S = extra forward/backward)");
  std::printf("%s", render_ascii_gantt(sam.schedule, opt).c_str());

  std::printf(
      "\nShape checks (paper §5): Shampoo's eigendecompositions take more "
      "steps of bubbles\nthan K-FAC's Cholesky inversions (they are ~6x the "
      "FLOPs) and only fit because they\nare split; SAM's doubled work "
      "drives utilization towards ~2x the baseline.\n");
  return 0;
}
