#!/usr/bin/env python3
"""Gate CI on GEMM microbench throughput regressions.

Compares a fresh microbench_kernels JSON run against the committed baseline
(BENCH_kernels.json) and fails (exit 1) when any GEMM-family benchmark's
GFLOP/s (items_per_second) drops more than --threshold (default 30%).

The comparison only runs when both files report the same context.num_cpus:
the committed baseline may come from a cgroup-limited dev container (its
cpu_budget_note context entry says so), and GFLOP/s across different CPU
budgets is not a like-for-like comparison. On mismatch the script prints the
two budgets and exits 0 (skipped, not passed).

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.30]
"""

import argparse
import json
import sys

# Benchmark families whose items_per_second is a GFLOP/s measure we gate on.
GEMM_FAMILIES = ("BM_GemmForward", "BM_GemmBackwardNt", "BM_CurvatureFactor")


def load(path):
    with open(path) as f:
        return json.load(f)


def gemm_rates(doc):
    rates = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            continue  # e.g. avx2 rows skipped on a non-AVX2 runner
        if name.startswith(GEMM_FAMILIES) and "items_per_second" in bench:
            rates[name] = bench["items_per_second"]
    return rates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated fractional GFLOP/s drop (default 0.30)")
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    base_cpus = baseline.get("context", {}).get("num_cpus")
    cur_cpus = current.get("context", {}).get("num_cpus")
    if base_cpus != cur_cpus:
        print(f"SKIP: baseline num_cpus={base_cpus} vs current "
              f"num_cpus={cur_cpus} — GFLOP/s not comparable across CPU "
              f"budgets (baseline note: "
              f"{baseline.get('context', {}).get('cpu_budget_note', 'n/a')})")
        return 0

    base_rates = gemm_rates(baseline)
    cur_rates = gemm_rates(current)
    if not base_rates:
        print("SKIP: baseline has no GEMM-family benchmarks to compare")
        return 0

    failures = []
    compared = 0
    for name, base in sorted(base_rates.items()):
        cur = cur_rates.get(name)
        if cur is None:
            print(f"note: '{name}' missing from current run (renamed?)")
            continue
        compared += 1
        ratio = cur / base
        marker = "FAIL" if ratio < 1.0 - args.threshold else "ok"
        print(f"{marker:>4}  {name}: {base / 1e9:.2f} -> {cur / 1e9:.2f} "
              f"GFLOP/s ({ratio:.2%} of baseline)")
        if ratio < 1.0 - args.threshold:
            failures.append(name)

    if compared == 0:
        print("SKIP: no overlapping GEMM benchmarks between baseline and "
              "current run")
        return 0
    if failures:
        print(f"\n{len(failures)}/{compared} GEMM benchmarks regressed more "
              f"than {args.threshold:.0%} vs the committed baseline")
        return 1
    print(f"\nall {compared} GEMM benchmarks within {args.threshold:.0%} of "
          f"the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
