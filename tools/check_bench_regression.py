#!/usr/bin/env python3
"""Gate CI on GEMM microbench throughput regressions.

Compares a fresh microbench_kernels JSON run against a committed baseline
and fails (exit 1) when any GEMM-family benchmark's GFLOP/s
(items_per_second) drops more than --threshold (default 30%).

BASELINE may be a single JSON file or a directory of per-runner-shape
baselines (tools/bench_baselines/*.json). GFLOP/s across different CPU
budgets is not a like-for-like comparison (the dev-container baseline is
cgroup-limited to 1 CPU), so the baseline whose context.num_cpus matches the
current run is selected.

When no committed baseline matches the runner shape, the optional
--fallback file is tried — in CI this is the previous run's JSON restored
from a per-shape actions/cache, so the gate arms itself on every runner
shape from the second run onward instead of self-skipping forever. The
fallback comparison is a run-to-run ratchet on a shared runner, so it uses
its own, more lenient --fallback-threshold (default 50%).

Only when neither source matches does the script print the shapes it saw
and exit 0 (skipped, not passed).

A second mode, --validate-notes FILE..., checks that every given bench JSON
carries a cpu_budget_note (top-level, or context.cpu_budget_note for
google-benchmark output). The note is the contract that makes committed
numbers comparable at all — it says which CPU budget produced them — so a
bench JSON without one fails CI before it can mislead anyone.

Usage: check_bench_regression.py BASELINE CURRENT
           [--threshold 0.30] [--fallback FILE] [--fallback-threshold 0.50]
       check_bench_regression.py --validate-notes FILE [FILE...]
"""

import argparse
import glob
import json
import os
import sys

# Benchmark families whose items_per_second is a GFLOP/s measure we gate on.
GEMM_FAMILIES = ("BM_GemmForward", "BM_GemmBackwardNt", "BM_CurvatureFactor")


def load(path):
    with open(path) as f:
        return json.load(f)


def num_cpus(doc):
    return doc.get("context", {}).get("num_cpus")


def gemm_rates(doc):
    rates = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            continue  # e.g. avx2 rows skipped on a non-AVX2 runner
        if name.startswith(GEMM_FAMILIES) and "items_per_second" in bench:
            rates[name] = bench["items_per_second"]
    return rates


def pick_baseline(path, cur_cpus):
    """Returns (path, doc) of the first baseline matching cur_cpus, plus a
    description of every candidate shape for the skip message."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "*.json")))
    else:
        files = [path] if os.path.exists(path) else []
    shapes = []
    match = None
    for f in files:
        try:
            doc = load(f)
        except (OSError, json.JSONDecodeError) as e:
            shapes.append(f"{f} (unreadable: {e})")
            continue
        shapes.append(f"{f} (num_cpus={num_cpus(doc)})")
        if match is None and num_cpus(doc) == cur_cpus:
            match = (f, doc)
    return match, shapes


def compare(baseline, current, threshold, label):
    """Prints the per-benchmark comparison; returns (failures, compared) or
    None when there is nothing to compare."""
    base_rates = gemm_rates(baseline)
    cur_rates = gemm_rates(current)
    if not base_rates:
        print(f"note: {label} has no GEMM-family benchmarks to compare")
        return None
    failures = []
    compared = 0
    for name, base in sorted(base_rates.items()):
        cur = cur_rates.get(name)
        if cur is None:
            print(f"note: '{name}' missing from current run (renamed?)")
            continue
        compared += 1
        ratio = cur / base
        marker = "FAIL" if ratio < 1.0 - threshold else "ok"
        print(f"{marker:>4}  {name}: {base / 1e9:.2f} -> {cur / 1e9:.2f} "
              f"GFLOP/s ({ratio:.2%} of {label})")
        if ratio < 1.0 - threshold:
            failures.append(name)
    if compared == 0:
        print(f"note: no overlapping GEMM benchmarks with {label}")
        return None
    return failures, compared


def validate_notes(paths):
    """Every bench JSON must say which CPU budget produced it. Returns the
    exit code: 1 when any file is missing the note or unreadable."""
    bad = []
    for path in paths:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL  {path}: unreadable ({e})")
            bad.append(path)
            continue
        note = doc.get("cpu_budget_note") or \
            doc.get("context", {}).get("cpu_budget_note")
        if not isinstance(note, str) or not note.strip():
            print(f"FAIL  {path}: no cpu_budget_note (top-level or "
                  "context.cpu_budget_note)")
            bad.append(path)
        else:
            print(f"  ok  {path}")
    if bad:
        print(f"\n{len(bad)}/{len(paths)} bench JSONs lack a "
              "cpu_budget_note — their numbers are not comparable to "
              "anything; add the note where the file is generated")
        return 1
    print(f"\nall {len(paths)} bench JSONs carry a cpu_budget_note")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--validate-notes", nargs="+", metavar="FILE",
                    default=None,
                    help="instead of gating on throughput, check that every "
                         "given bench JSON carries a cpu_budget_note")
    ap.add_argument("baseline", nargs="?",
                    help="committed baseline JSON file, or a directory of "
                         "per-runner-shape baselines")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated fractional GFLOP/s drop vs a "
                         "committed baseline (default 0.30)")
    ap.add_argument("--fallback", default=None,
                    help="per-shape baseline from the previous CI run on "
                         "this runner shape (actions/cache); used only when "
                         "no committed baseline matches num_cpus")
    ap.add_argument("--fallback-threshold", type=float, default=0.50,
                    help="threshold for the run-to-run fallback comparison "
                         "(default 0.50 — shared runners are noisy)")
    args = ap.parse_args()

    if args.validate_notes is not None:
        if args.baseline or args.current:
            ap.error("--validate-notes takes only its own FILE list")
        return validate_notes(args.validate_notes)
    if not args.baseline or not args.current:
        ap.error("BASELINE and CURRENT are required (or use --validate-notes)")

    current = load(args.current)
    cur_cpus = num_cpus(current)

    match, shapes = pick_baseline(args.baseline, cur_cpus)
    if match is not None:
        path, baseline = match
        print(f"baseline: {path} (num_cpus={num_cpus(baseline)})")
        result = compare(baseline, current, args.threshold, "committed baseline")
        if result is None:
            print("SKIP: matching baseline had nothing comparable")
            return 0
    else:
        print(f"no committed baseline matches num_cpus={cur_cpus}; saw: "
              f"{'; '.join(shapes) if shapes else 'none'}")
        result = None
        if args.fallback and os.path.exists(args.fallback):
            fallback = load(args.fallback)
            if num_cpus(fallback) == cur_cpus:
                print(f"fallback: {args.fallback} (previous run on this "
                      f"runner shape, threshold "
                      f"{args.fallback_threshold:.0%})")
                result = compare(fallback, current, args.fallback_threshold,
                                 "previous-run fallback")
            else:
                print(f"fallback {args.fallback} has num_cpus="
                      f"{num_cpus(fallback)} — not comparable either")
        if result is None:
            print("SKIP: nothing comparable for this runner shape yet — "
                  "commit this run's JSON as "
                  f"tools/bench_baselines/BENCH_kernels_{cur_cpus}cpu.json "
                  "to arm the committed gate (see tools/bench_baselines/"
                  "README.md)")
            return 0

    failures, compared = result
    if failures:
        print(f"\n{len(failures)}/{compared} GEMM benchmarks regressed "
              f"beyond the threshold")
        return 1
    print(f"\nall {compared} GEMM benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
