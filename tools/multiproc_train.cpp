// Multi-process training launcher + bitwise cross-check.
//
// Forks one process per pipeline device (train/multiproc.h), trains a
// small BERT over the shm-ring transport, then re-runs the SAME workload
// through the in-process PipelineRuntime and the serial Trainer and
// demands bitwise-identical losses and final parameters. Exit 0 = all
// three agree; nonzero = mismatch or a child failed. CI runs this as the
// 2-process 2-stage smoke.
//
// Usage:
//   multiproc_train [schedule] [n_stages] [n_micro] [steps] [lamb|kfac]
// Defaults: 1f1b 2 4 3 lamb.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/optim/lamb.h"
#include "src/train/multiproc.h"
#include "src/train/trainer.h"

namespace {

pf::BertConfig small_bert() {
  pf::BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 4;
  cfg.seq_len = 12;
  return cfg;
}

struct Corpus {
  pf::SyntheticCorpus corpus;
  pf::MlmBatcher batcher;
  explicit Corpus(const pf::BertConfig& cfg)
      : corpus([&] {
          pf::CorpusConfig cc;
          cc.vocab = cfg.vocab;
          return cc;
        }()),
        batcher(corpus, [&] {
          pf::MlmBatcherConfig bc;
          bc.seq_len = cfg.seq_len;
          return bc;
        }()) {}
};

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<double>> params;
};

RunResult serial_reference(const pf::BertConfig& cfg, int n_micro,
                           std::size_t micro_batch, std::size_t steps,
                           bool use_kfac) {
  pf::Rng rng(7);
  pf::BertModel model(cfg, rng);
  Corpus data(cfg);
  pf::TrainerConfig tc;
  tc.batch_size = micro_batch;
  tc.accumulation_steps = static_cast<std::size_t>(n_micro);
  tc.total_steps = steps;
  tc.schedule = pf::PolyWarmupSchedule(1e-2, 0, steps);
  std::unique_ptr<pf::Optimizer> opt;
  if (use_kfac) {
    pf::KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    opt = std::make_unique<pf::KfacOptimizer>(model.kfac_linears(),
                                              std::make_unique<pf::Lamb>(), o);
  } else {
    opt = std::make_unique<pf::Lamb>();
  }
  pf::Trainer trainer(model, data.batcher, std::move(opt), tc);
  const auto trace = trainer.run();
  RunResult r;
  r.losses = trace.loss;
  for (pf::Param* p : model.params())
    r.params.emplace_back(p->w.data(), p->w.data() + p->w.size());
  return r;
}

pf::PipelineRuntimeConfig runtime_config(const std::string& schedule,
                                         int stages, int n_micro,
                                         std::size_t micro_batch,
                                         std::size_t steps, bool use_kfac) {
  pf::PipelineRuntimeConfig pc;
  pc.schedule = schedule;
  pc.n_stages = stages;
  pc.n_micro = n_micro;
  pc.micro_batch_size = micro_batch;
  pc.total_steps = steps;
  pc.lr = pf::PolyWarmupSchedule(1e-2, 0, steps);
  pc.use_kfac = use_kfac;
  pc.kfac.inverse_interval = 3;
  return pc;
}

int compare(const RunResult& a, const RunResult& b, const char* label) {
  int bad = 0;
  if (a.losses.size() != b.losses.size()) {
    std::fprintf(stderr, "FAIL %s: %zu vs %zu loss steps\n", label,
                 a.losses.size(), b.losses.size());
    return 1;
  }
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    if (a.losses[i] != b.losses[i]) {
      std::fprintf(stderr, "FAIL %s: loss[%zu] %.17g vs %.17g\n", label, i,
                   a.losses[i], b.losses[i]);
      ++bad;
    }
  if (a.params.size() != b.params.size()) {
    std::fprintf(stderr, "FAIL %s: %zu vs %zu param tensors\n", label,
                 a.params.size(), b.params.size());
    return bad + 1;
  }
  for (std::size_t p = 0; p < a.params.size() && bad < 8; ++p) {
    if (a.params[p].size() != b.params[p].size()) {
      std::fprintf(stderr, "FAIL %s: tensor %zu size mismatch\n", label, p);
      ++bad;
      continue;
    }
    for (std::size_t i = 0; i < a.params[p].size(); ++i)
      if (a.params[p][i] != b.params[p][i]) {
        std::fprintf(stderr, "FAIL %s: param[%zu][%zu] %.17g vs %.17g\n",
                     label, p, i, a.params[p][i], b.params[p][i]);
        ++bad;
        break;
      }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string schedule = argc > 1 ? argv[1] : "1f1b";
  const int n_stages = argc > 2 ? std::atoi(argv[2]) : 2;
  const int n_micro = argc > 3 ? std::atoi(argv[3]) : 4;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 3;
  const std::string optim = argc > 5 ? argv[5] : "lamb";
  const bool use_kfac = optim == "kfac";
  const std::size_t micro_batch = 2;

  try {
    const pf::BertConfig bcfg = small_bert();

    // Multi-process run FIRST: fork() wants a quiescent, thread-free
    // parent, which this process is before any runtime spins up pools.
    pf::MultiprocConfig mcfg;
    mcfg.runtime = runtime_config(schedule, n_stages, n_micro, micro_batch,
                                  static_cast<std::size_t>(steps), use_kfac);
    pf::Rng rng(7);
    pf::BertModel model(bcfg, rng);
    Corpus data(bcfg);
    const pf::MultiprocResult mp =
        pf::run_multiproc(model, data.batcher, mcfg);
    RunResult mp_r;
    mp_r.losses = mp.trace.loss;
    mp_r.params = mp.params;

    // In-process runtime over the same shm transport, then the serial
    // Trainer — the two references the bitwise contract names.
    pf::Rng rng2(7);
    pf::BertModel model2(bcfg, rng2);
    Corpus data2(bcfg);
    pf::PipelineRuntimeConfig pc = mcfg.runtime;
    pc.transport = "shm";
    pf::PipelineRuntime rt(model2, data2.batcher, pc);
    const auto trace2 = rt.run();
    RunResult ip_r;
    ip_r.losses = trace2.loss;
    for (pf::Param* p : model2.params())
      ip_r.params.emplace_back(p->w.data(), p->w.data() + p->w.size());

    const RunResult serial = serial_reference(
        bcfg, n_micro, micro_batch, static_cast<std::size_t>(steps), use_kfac);

    int bad = 0;
    bad += compare(mp_r, ip_r, "multiproc vs in-process");
    bad += compare(mp_r, serial, "multiproc vs serial");
    if (bad != 0) return 1;

    std::printf("multiproc_train OK: %s stages=%d micros=%d steps=%d %s\n",
                schedule.c_str(), n_stages, n_micro, steps, optim.c_str());
    std::printf("  processes=%d wall=%.3fs (slowest child step loop)\n",
                mp.n_processes, mp.wall_seconds);
    for (const auto& h : mp.handoff)
      std::printf("  %-12s waits=%zu p50=%.1fus p95=%.1fus mean=%.1fus\n",
                  h.channel.c_str(), h.waits, h.wait_p50 * 1e6,
                  h.wait_p95 * 1e6, h.wait_mean * 1e6);
    std::printf("  bitwise: losses+params == in-process runtime == serial "
                "Trainer\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "multiproc_train failed: %s\n", e.what());
    return 2;
  }
}
