// Example: interactive schedule exploration from the command line.
//
//   $ ./schedule_explorer [schedule] [arch] [hw] [D] [N_micro] [B_micro]
//   $ ./schedule_explorer chimera bert-large p100 8 8 32
//
// Prints the simulated timeline, utilization before/after PipeFisher, the
// refresh interval, the closed-form §3.3 performance model for the same
// shape, and writes a Chrome trace.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/perfmodel/perf_model.h"
#include "src/trace/ascii_gantt.h"
#include "src/trace/chrome_trace.h"

int main(int argc, char** argv) {
  using namespace pf;
  PipeFisherConfig cfg;
  cfg.schedule = argc > 1 ? argv[1] : "chimera";
  cfg.arch = transformer_by_name(argc > 2 ? argv[2] : "bert-base");
  cfg.hw = hardware_by_name(argc > 3 ? argv[3] : "p100");
  cfg.n_stages = argc > 4 ? std::atoi(argv[4]) : 8;
  cfg.n_micro = argc > 5 ? std::atoi(argv[5]) : cfg.n_stages;
  cfg.b_micro = argc > 6 ? std::atoi(argv[6]) : 32;
  cfg.blocks_per_stage = 1;

  std::printf("schedule=%s arch=%s hw=%s D=%d N=%d B=%d\n",
              cfg.schedule.c_str(), cfg.arch.name.c_str(),
              cfg.hw.name.c_str(), cfg.n_stages, cfg.n_micro, cfg.b_micro);

  const auto rep = run_pipefisher(cfg);
  std::printf("\nstep time   : %s -> %s (+%.1f%%)\n",
              human_time(rep.step_time_baseline).c_str(),
              human_time(rep.step_time).c_str(),
              rep.overhead_fraction() * 100);
  std::printf("utilization : %s -> %s\n",
              percent(rep.utilization_baseline).c_str(),
              percent(rep.utilization).c_str());
  std::printf("refresh     : every %d steps\n", rep.refresh_interval_steps);
  std::printf("bubble/step : %s per device\n",
              human_time(rep.bubble_per_step).c_str());

  GanttOptions opt;
  opt.width = 110;
  std::printf("\n%s", render_ascii_gantt(rep.pipefisher_window, opt).c_str());

  // Closed-form §3.3 model for the same shape.
  PerfModelInput in;
  in.cfg = cfg.arch;
  in.hw = cfg.hw;
  in.family = schedule_family_by_name(cfg.schedule);
  in.depth = static_cast<std::size_t>(cfg.n_stages);
  in.blocks_per_stage = static_cast<std::size_t>(cfg.blocks_per_stage);
  in.n_micro = static_cast<std::size_t>(cfg.n_micro);
  in.b_micro = static_cast<std::size_t>(cfg.b_micro);
  const auto pm = run_perf_model(in);
  std::printf("\nclosed-form model: T_pipe=%s  T_bubble=%s  ratio=%.2f "
              "(refresh every %d steps)\n",
              human_time(pm.t_pipe).c_str(), human_time(pm.t_bubble).c_str(),
              pm.curv_inv_bubble_ratio, pm.refresh_steps);
  std::printf("throughputs (seqs/s): pipeline %.1f | PipeFisher %.1f | "
              "K-FAC+skip %.1f | naive K-FAC %.1f\n",
              pm.throughput_pipeline, pm.throughput_pipefisher,
              pm.throughput_kfac_skip, pm.throughput_kfac_naive);

  const std::string trace = "schedule_explorer_trace.json";
  write_chrome_trace(rep.pipefisher_window, trace);
  std::printf("\nwrote %s\n", trace.c_str());
  return 0;
}
