// Example: interactive schedule exploration from the command line.
//
//   $ ./schedule_explorer list                # enumerate the registry
//   $ ./schedule_explorer [schedule] [arch] [hw] [D] [N_micro] [B_micro]
//   $ ./schedule_explorer chimera bert-large p100 8 8 32
//
// Prints the simulated timeline, utilization before/after PipeFisher, the
// refresh interval, the closed-form §3.3 performance model for the same
// shape (critical-path coefficients straight from the schedule's registered
// traits), and writes a Chrome trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/perfmodel/perf_model.h"
#include "src/pipeline/schedule_registry.h"
#include "src/trace/ascii_gantt.h"
#include "src/trace/chrome_trace.h"

namespace {

void print_registry() {
  using namespace pf;
  std::printf("registered schedules:\n");
  for (const auto& name : list_schedules()) {
    const ScheduleTraits& t = traits_of(name);
    std::printf("  %-16s %s\n", name.c_str(), t.description.c_str());
    std::printf("  %-16s   pipelines=%d stages/device=%s sync-mult=%d "
                "order=%s%s%s\n",
                "", t.n_pipelines,
                t.stages_per_device_is_virtual
                    ? "V (virtual chunks)"
                    : format("%d", t.stages_per_device).c_str(),
                t.grad_sync_world_multiplier,
                t.dynamic_order ? "greedy" : "static",
                t.even_stages ? ", even stages" : "",
                t.even_micros ? ", even micros" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pf;
  if (argc > 1 && std::strcmp(argv[1], "list") == 0) {
    print_registry();
    return 0;
  }

  PipeFisherConfig cfg;
  cfg.schedule = argc > 1 ? argv[1] : "chimera";
  if (schedule_registered(cfg.schedule) && !traits_of(cfg.schedule).flush) {
    std::printf(
        "%s has traits.flush = false: a flushless schedule has no per-step "
        "bubbles\nfor PipeFisher to fill. Its streaming behaviour "
        "(utilization, weight\nstaleness) is executed by "
        "PipelineRuntime::run_flushless and modeled by the\nasync "
        "simulator.\n",
        cfg.schedule.c_str());
    return 0;
  }
  cfg.arch = transformer_by_name(argc > 2 ? argv[2] : "bert-base");
  cfg.hw = hardware_by_name(argc > 3 ? argv[3] : "p100");
  cfg.n_stages = argc > 4 ? std::atoi(argv[4]) : 8;
  cfg.n_micro = argc > 5 ? std::atoi(argv[5]) : cfg.n_stages;
  cfg.b_micro = argc > 6 ? std::atoi(argv[6]) : 32;
  cfg.blocks_per_stage = 1;

  std::printf("schedules: %s  (try `schedule_explorer list`)\n",
              join(list_schedules(), " | ").c_str());
  std::printf("schedule=%s arch=%s hw=%s D=%d N=%d B=%d\n",
              cfg.schedule.c_str(), cfg.arch.name.c_str(),
              cfg.hw.name.c_str(), cfg.n_stages, cfg.n_micro, cfg.b_micro);

  const auto rep = run_pipefisher(cfg);
  std::printf("\nstep time   : %s -> %s (+%.1f%%)\n",
              human_time(rep.step_time_baseline).c_str(),
              human_time(rep.step_time).c_str(),
              rep.overhead_fraction() * 100);
  std::printf("utilization : %s -> %s\n",
              percent(rep.utilization_baseline).c_str(),
              percent(rep.utilization).c_str());
  std::printf("refresh     : every %d steps\n", rep.refresh_interval_steps);
  std::printf("bubble/step : %s per device\n",
              human_time(rep.bubble_per_step).c_str());

  GanttOptions opt;
  opt.width = 110;
  std::printf("\n%s", render_ascii_gantt(rep.pipefisher_window, opt).c_str());

  // Closed-form §3.3 model for the same shape, C_f/C_b from the traits.
  PerfModelInput in;
  in.cfg = cfg.arch;
  in.hw = cfg.hw;
  in.schedule = cfg.schedule;
  in.depth = static_cast<std::size_t>(cfg.n_stages);
  in.blocks_per_stage = static_cast<std::size_t>(cfg.blocks_per_stage);
  in.n_micro = static_cast<std::size_t>(cfg.n_micro);
  in.b_micro = static_cast<std::size_t>(cfg.b_micro);
  const auto pm = run_perf_model(in);
  const ScheduleParams sp = schedule_params(cfg);
  const ScheduleTraits& traits = traits_of(cfg.schedule);
  std::printf("\nclosed-form model (traits: C_f=%.0f C_b=%.0f): T_pipe=%s  "
              "T_bubble=%s  ratio=%.2f (refresh every %d steps)\n",
              traits.critical_path_forwards(sp),
              traits.critical_path_backwards(sp), human_time(pm.t_pipe).c_str(),
              human_time(pm.t_bubble).c_str(), pm.curv_inv_bubble_ratio,
              pm.refresh_steps);
  std::printf("throughputs (seqs/s): pipeline %.1f | PipeFisher %.1f | "
              "K-FAC+skip %.1f | naive K-FAC %.1f\n",
              pm.throughput_pipeline, pm.throughput_pipefisher,
              pm.throughput_kfac_skip, pm.throughput_kfac_naive);

  const std::string trace = "schedule_explorer_trace.json";
  write_chrome_trace(rep.pipefisher_window, trace);
  std::printf("\nwrote %s\n", trace.c_str());
  return 0;
}
