// Example: capacity planning with the §3.3 performance model — given an
// architecture and hardware, how should you pick the pipeline schedule,
// depth and micro-batch size so the K-FAC work actually fits the bubbles?
//
//   $ ./bubble_planner [arch] [hw]
//
// Prints, per (schedule, D, B_micro): throughput, how many steps a curvature
// refresh takes, and whether device memory fits, flagging the paper's
// recommended operating points. The schedule column enumerates the
// registry, so a newly registered schedule shows up here automatically.
#include <cstdio>

#include "src/common/strings.h"
#include "src/perfmodel/perf_model.h"
#include "src/pipeline/schedule_registry.h"

int main(int argc, char** argv) {
  using namespace pf;
  const auto cfg = transformer_by_name(argc > 1 ? argv[1] : "bert-base");
  const auto hw = hardware_by_name(argc > 2 ? argv[2] : "p100");

  std::printf("bubble planning for %s on %s (memory %s)\n\n",
              cfg.name.c_str(), hw.name.c_str(),
              human_bytes(hw.memory_capacity).c_str());
  std::printf("%-16s %3s %5s | %9s %8s %7s | %9s %6s\n", "schedule", "D",
              "B", "thr(PF)", "refresh", "ratio", "memory", "fits?");

  for (const auto& name : list_schedules()) {
    if (!traits_of(name).flush) {
      std::printf("%-16s (traits.flush = false — a flushless schedule has no "
                  "per-step bubbles to plan; it streams instead)\n",
                  name.c_str());
      continue;
    }
    for (std::size_t d : {4, 8, 16}) {
      for (std::size_t b : {8, 16, 32, 64}) {
        PerfModelInput in;
        in.cfg = cfg;
        in.hw = hw;
        in.schedule = name;
        in.depth = d;
        in.n_micro = d;
        in.b_micro = b;
        const auto r = run_perf_model(in);
        const bool fits = r.memory.total() < hw.memory_capacity;
        std::printf("%-16s %3zu %5zu | %9.1f %7dst %7.2f | %9s %6s\n",
                    name.c_str(), d, b, r.throughput_pipefisher,
                    r.refresh_steps, r.curv_inv_bubble_ratio,
                    human_bytes(r.memory.total()).c_str(),
                    fits ? "yes" : "NO");
      }
    }
  }

  std::printf(
      "\nReading the table: pick the highest-throughput row whose refresh "
      "interval is a\nfew steps and whose memory fits; if memory is the "
      "binding constraint, enable\nactivation recomputation (R) — it trades "
      "throughput for memory AND refresh frequency.\nNote: virtual-pipeline "
      "rows (interleaved-1f1b) keep one block per CHUNK, so at the\nsame D "
      "they model a model V=2x deeper than the other rows — compare within "
      "a row's\nmodel size, or rescale blocks per stage.\n");
  return 0;
}
