// Example: capacity planning with the §3.3 performance model — given an
// architecture and hardware, how should you pick the pipeline schedule,
// depth and micro-batch size so the K-FAC work actually fits the bubbles?
//
//   $ ./bubble_planner [arch] [hw]      closed-form planning table
//   $ ./bubble_planner autotune [D] [N] measured autotune on THIS machine
//
// Closed-form mode prints, per (schedule, D, B_micro): throughput, how many
// steps a curvature refresh takes, and whether device memory fits, flagging
// the paper's recommended operating points. The schedule column enumerates
// the registry, so a newly registered schedule shows up here automatically.
//
// Autotune mode replaces the FLOP model with measurements: it runs a short
// calibration burst on a small live model (src/perfmodel/autotune.h), ranks
// every registry schedule under the fitted costs, executes each viable
// candidate, and cross-checks the winner's realized makespan against its
// prediction — the same loop bench/autotune_baseline gates tightly, here
// with a generous band so the CTest smoke run stays robust on loaded
// 1-CPU containers.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/strings.h"
#include "src/perfmodel/autotune.h"
#include "src/perfmodel/perf_model.h"
#include "src/pipeline/schedule_registry.h"

namespace {

int run_autotune(int argc, char** argv) {
  using namespace pf;
  BertConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 2;
  cfg.n_layers = 4;
  cfg.seq_len = 16;

  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  AutotuneOptions o;
  o.n_devices = argc > 2 ? std::atoi(argv[2]) : 2;
  o.n_micro = argc > 3 ? std::atoi(argv[3]) : 4;
  o.micro_batch_size = 4;
  o.workers = 2;
  o.inverse_interval = 2;
  o.burst_steps = 3;
  o.measure_steps = static_cast<std::size_t>(o.inverse_interval) + 1;

  std::printf(
      "autotuning a %zu-layer toy bert on this machine: D=%d N=%d, "
      "%d workers, burst %zu steps...\n\n",
      cfg.n_layers, o.n_devices, o.n_micro, o.workers, o.burst_steps);
  const AutotuneReport report = autotune(cfg, batcher, o);
  std::printf("burst: %zu steps, %.2f s wall clock\n\n",
              report.burst_steps_run, report.burst_seconds);

  std::printf("%-18s %3s %3s | %12s %10s | %12s\n", "schedule", "S", "N",
              "pred mk (s)", "s/seq", "exec mk (s)");
  for (const auto& c : report.ranked) {
    if (c.viable)
      std::printf("%-18s %3d %3d | %12.4g %10.3g | %12.4g\n",
                  c.schedule.c_str(), c.params.n_stages, c.params.n_micro,
                  c.predicted_makespan, c.predicted_seconds_per_sequence,
                  c.executed_makespan);
    else
      std::printf("%-18s %3d %3d | skipped: %s\n", c.schedule.c_str(),
                  c.params.n_stages, c.params.n_micro,
                  c.skip_reason.c_str());
  }

  const AutotuneCandidate& win = report.winner();
  PF_CHECK(win.executed_makespan > 0.0)
      << "autotune winner was never executed";
  const double err =
      std::fabs(win.predicted_makespan - win.executed_makespan) /
      win.executed_makespan;
  std::printf(
      "\nwinner: %s at S=%d N=%d — predicted %.4g s, executed %.4g s "
      "(%.0f%% error)\n",
      win.schedule.c_str(), win.params.n_stages, win.params.n_micro,
      win.predicted_makespan, win.executed_makespan, 100.0 * err);
  // Generous smoke band: bench/autotune_baseline holds the tight 15% SLA
  // on a dedicated run; here the point is that the loop executes and the
  // prediction is the right order of magnitude even on a noisy container.
  PF_CHECK(err <= 1.0) << "winner prediction off by " << 100.0 * err
                       << "% — calibration loop is broken, not just noisy";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pf;
  if (argc > 1 && std::strcmp(argv[1], "autotune") == 0)
    return run_autotune(argc, argv);
  const auto cfg = transformer_by_name(argc > 1 ? argv[1] : "bert-base");
  const auto hw = hardware_by_name(argc > 2 ? argv[2] : "p100");

  std::printf("bubble planning for %s on %s (memory %s)\n\n",
              cfg.name.c_str(), hw.name.c_str(),
              human_bytes(hw.memory_capacity).c_str());
  std::printf("%-16s %3s %5s | %9s %8s %7s | %9s %6s\n", "schedule", "D",
              "B", "thr(PF)", "refresh", "ratio", "memory", "fits?");

  for (const auto& name : list_schedules()) {
    if (!traits_of(name).flush) {
      std::printf("%-16s (traits.flush = false — a flushless schedule has no "
                  "per-step bubbles to plan; it streams instead)\n",
                  name.c_str());
      continue;
    }
    for (std::size_t d : {4, 8, 16}) {
      for (std::size_t b : {8, 16, 32, 64}) {
        PerfModelInput in;
        in.cfg = cfg;
        in.hw = hw;
        in.schedule = name;
        in.depth = d;
        in.n_micro = d;
        in.b_micro = b;
        const auto r = run_perf_model(in);
        const bool fits = r.memory.total() < hw.memory_capacity;
        std::printf("%-16s %3zu %5zu | %9.1f %7dst %7.2f | %9s %6s\n",
                    name.c_str(), d, b, r.throughput_pipefisher,
                    r.refresh_steps, r.curv_inv_bubble_ratio,
                    human_bytes(r.memory.total()).c_str(),
                    fits ? "yes" : "NO");
      }
    }
  }

  std::printf(
      "\nReading the table: pick the highest-throughput row whose refresh "
      "interval is a\nfew steps and whose memory fits; if memory is the "
      "binding constraint, enable\nactivation recomputation (R) — it trades "
      "throughput for memory AND refresh frequency.\nNote: virtual-pipeline "
      "rows (interleaved-1f1b) keep one block per CHUNK, so at the\nsame D "
      "they model a model V=2x deeper than the other rows — compare within "
      "a row's\nmodel size, or rescale blocks per stage.\n");
  return 0;
}
