// Quickstart: simulate a pipeline schedule, fill its bubbles with K-FAC
// work using PipeFisher, and inspect the result.
//
//   $ ./quickstart
//
// This walks the library's main entry point, run_pipefisher(): pick a
// schedule from the registry (gpipe / 1f1b / interleaved-1f1b / chimera —
// see src/pipeline/schedule_registry.h), an architecture, a hardware
// profile and a pipeline shape; get back utilization before/after, the
// refresh interval, and the full schedule as a timeline you can render or
// export.
#include <cstdio>

#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/pipeline/schedule_registry.h"
#include "src/trace/ascii_gantt.h"
#include "src/trace/chrome_trace.h"

int main() {
  using namespace pf;

  // 1. Describe the experiment: BERT-Base, 4 pipeline stages of 3 encoder
  //    blocks each, 4 micro-batches of 32 sequences, on a modeled P100.
  //    Any FLUSH schedule in list_schedules() works here (flushless
  //    entries like 1f1b-flushless have no per-step bubbles and are
  //    modeled by simulate_async_1f1b instead).
  std::printf("available schedules : %s\n",
              join(list_schedules(), " | ").c_str());
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;

  // 2. Run: simulates the base step, generates the K-FAC work queue
  //    (curvature per micro-batch & factor, inversion per factor), and
  //    packs it into the pipeline bubbles under the paper's rules.
  const PipeFisherReport rep = run_pipefisher(cfg);

  // 3. Inspect.
  std::printf("schedule            : %s\n", cfg.schedule.c_str());
  std::printf("baseline step time  : %s\n",
              human_time(rep.step_time_baseline).c_str());
  std::printf("PipeFisher step time: %s (+%.1f%%, precondition only)\n",
              human_time(rep.step_time).c_str(),
              rep.overhead_fraction() * 100.0);
  std::printf("GPU utilization     : %s -> %s\n",
              percent(rep.utilization_baseline).c_str(),
              percent(rep.utilization).c_str());
  std::printf("curvature refresh   : every %d steps (hidden in bubbles)\n\n",
              rep.refresh_interval_steps);

  GanttOptions opt;
  opt.width = 100;
  std::printf("PipeFisher schedule (one refresh window):\n%s\n",
              render_ascii_gantt(rep.pipefisher_window, opt).c_str());

  // 4. Export for a real trace viewer.
  write_chrome_trace(rep.pipefisher_window, "quickstart_trace.json");
  std::printf("wrote quickstart_trace.json (open in https://ui.perfetto.dev)\n");
  return 0;
}
