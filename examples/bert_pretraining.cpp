// Example: pretrain a scaled-down BERT on the synthetic corpus with NVLAMB
// (LAMB) and with K-FAC, reproducing the optimizer-level half of Figure 7
// at demo scale (~1 minute on a laptop core).
//
//   $ ./bert_pretraining [steps]
//
// PF_NN_THREADS=<n> parallelizes the nn forward/backward loops — attention
// heads, layer-norm rows, embedding gather/scatter, activations, loss —
// over n pool chunks via the process-default ExecContext (results are
// bitwise identical to the serial run; see src/common/exec_context.h).
// PF_GEMM_THREADS=<n> parallelizes the GEMM row blocks the same way.
// PF_KFAC_LAYER_THREADS=<n> fans the per-layer K-FAC loops across n pool
// chunks (also bitwise identical; see KfacOptions::layer_threads).
// PF_FORCE_SCALAR=1 pins the GEMM microkernel to the portable scalar path
// (the banner line reports which SIMD level is active).
// PF_SCHEDULE=<name> picks the pipeline schedule used for the closing
// steps→simulated-wall-clock report (any name in list_schedules();
// default chimera, mirroring PF_GEMM_THREADS' env-knob style).
//
// Pipeline-runtime mode (the EXECUTABLE PipeFisher): PF_STAGES=<D> trains
// the K-FAC arm through src/train/pipeline_runtime — the model partitioned
// into D real stages, per-micro-batch fwd/bwd as tasks on a worker pool,
// K-FAC curvature/inversion dispatched into the realized bubbles, under
// the PF_SCHEDULE schedule (flush schedules only). PF_MICROS=<N> sets the
// micro-batches per step (gradient accumulation in serial mode, pipeline
// micro-batches in runtime mode), PF_STAGE_THREADS the per-stage
// ExecContext budget, PF_STAGE_WORKERS the pool size (0 = one per
// device). The contract: stdout is byte-identical across PF_STAGES /
// PF_STAGE_THREADS / PF_STAGE_WORKERS at a fixed PF_MICROS — the runtime
// is bitwise equal to the serial trainer; the executed-timeline
// utilization report goes to stderr.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/cpu_features.h"
#include "src/common/exec_context.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/linalg/gemm.h"
#include "src/pipeline/schedule_registry.h"
#include "src/pipeline/simulator.h"
#include "src/optim/kfac_optimizer.h"
#include "src/optim/lamb.h"
#include "src/train/convergence.h"
#include "src/train/pipeline_runtime.h"

int main(int argc, char** argv) {
  using namespace pf;
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  set_gemm_threads(env_int("PF_GEMM_THREADS", 1));
  ExecContext::set_default_nn_threads(env_int("PF_NN_THREADS", 1));
  const int layer_threads = env_int("PF_KFAC_LAYER_THREADS", 1);
  const int n_stages = env_int("PF_STAGES", 0);
  const int n_micros = env_int("PF_MICROS", 1);
  const int stage_threads = env_int("PF_STAGE_THREADS", 1);
  const int stage_workers = env_int("PF_STAGE_WORKERS", 0);
  PF_CHECK(n_micros >= 1 && n_stages >= 0);
  // Config banner goes to stderr: stdout must stay byte-identical across
  // the bitwise-neutral thread knobs (the verify contract for this binary).
  std::fprintf(stderr,
               "linalg: %s kernels (detected %s), gemm_threads=%d, "
               "nn_threads=%d, kfac layer_threads=%d\n",
               simd_level_name(active_simd_level()),
               simd_level_name(detected_simd_level()), gemm_threads(),
               ExecContext::default_nn_threads(), layer_threads);
  if (n_stages > 0)
    std::fprintf(stderr,
                 "[pipeline] executable runtime: D=%d, micros=%d, "
                 "stage_threads=%d, workers=%d\n",
                 n_stages, n_micros, stage_threads, stage_workers);
  const std::string schedule = env_str("PF_SCHEDULE", "chimera");
  // Fail a typo now, not after the training run; the runtime (and the
  // closing PipeFisher report) need a flush schedule.
  PF_CHECK(traits_of(schedule).flush)
      << schedule << " is flushless; pick a flush schedule";
  if (n_stages > 0) {
    // Validate the runtime shape up front with the knob names in the
    // message — e.g. the default PF_SCHEDULE=chimera needs an even
    // PF_MICROS >= 2, which bare PF_STAGES=2 does not satisfy.
    ScheduleParams sp;
    sp.n_stages = n_stages;
    sp.n_micro = n_micros;
    try {
      traits_of(schedule).check_params(sp);
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "PF_STAGES=%d PF_MICROS=%d does not fit PF_SCHEDULE=%s: "
                   "%s\n(adjust PF_MICROS/PF_STAGES or pick another "
                   "PF_SCHEDULE)\n",
                   n_stages, n_micros, schedule.c_str(), e.what());
      return 1;
    }
  }

  // Model: a miniature BERT (2 encoder blocks) — same structure as the
  // paper's target, scaled to CPU.
  BertConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 2;
  cfg.seq_len = 16;

  // Data: Zipf-Markov synthetic corpus with learnable bigram structure.
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  cc.structure_prob = 0.9;
  cc.successors = 2;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto train = [&](bool use_kfac) {
    Rng rng(7);
    BertModel model(cfg, rng);
    std::printf("model: %zu parameters, %zu K-FAC-tracked linears\n",
                model.n_params(), model.kfac_linears().size());
    const PolyWarmupSchedule lr(
        2e-2, use_kfac ? steps * 85 / 1000 : steps * 28 / 100, steps);
    KfacOptimizerOptions o;
    o.kfac.damping = 1e-3;
    o.kfac.gemm_threads = 0;  // follow the PF_GEMM_THREADS global knob
    o.kfac.layer_threads = layer_threads;
    o.inverse_interval = 3;
    // Per-micro curvature is the runtime's semantics. For THIS example's
    // micro shape (32 sequences × 16 tokens = 512 rows, a power of two)
    // the single-micro estimate is bit-identical to the legacy path —
    // 1/512 scaling commutes with the GEMM's per-panel rounding — so the
    // default run's output is unchanged (see curvature.cpp for the
    // general shape caveat).
    o.per_micro_curvature = true;
    if (use_kfac && n_stages > 0) {
      // Executable pipeline runtime: same math, really pipelined.
      PipelineRuntimeConfig pc;
      pc.schedule = schedule;
      pc.n_stages = n_stages;
      pc.n_micro = n_micros;
      pc.micro_batch_size = 32;
      pc.total_steps = steps;
      pc.lr = lr;
      pc.stage_threads = stage_threads;
      pc.workers = stage_workers;
      pc.use_kfac = true;
      pc.kfac = o;
      PipelineRuntime rt(model, batcher, pc);
      const auto trace = rt.run();
      const auto sim = simulate_step(rt.spec(), StepCosts{});
      std::fprintf(stderr,
                   "[pipeline] %s D=%d: executed utilization %s over %s "
                   "per step (simulator predicts %s for the pipe phase)\n",
                   schedule.c_str(), n_stages,
                   percent(rt.last_executed_timeline().utilization()).c_str(),
                   human_time(rt.last_step_wall_seconds()).c_str(),
                   percent(sim.timeline.utilization(0.0, sim.pipe_makespan))
                       .c_str());
      return trace;
    }
    TrainerConfig tc;  // tc.exec defaults to the follow-the-knobs context:
                       // nn loops track PF_NN_THREADS, GEMMs PF_GEMM_THREADS
    tc.batch_size = 32;
    tc.accumulation_steps = static_cast<std::size_t>(n_micros);
    tc.total_steps = steps;
    tc.schedule = lr;
    std::unique_ptr<Optimizer> opt;
    if (use_kfac) {
      opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                            std::make_unique<Lamb>(), o);
    } else {
      opt = std::make_unique<Lamb>();
    }
    Trainer trainer(model, batcher, std::move(opt), tc);
    return trainer.run();
  };

  std::printf("== LAMB ==\n");
  const auto lamb = train(false);
  std::printf("== K-FAC (LAMB base, frequent refresh) ==\n");
  const auto kfac = train(true);

  const auto ls = smooth_moving_average(lamb.loss, 10);
  const auto ks = smooth_moving_average(kfac.loss, 10);
  std::printf("\n%6s %10s %10s\n", "step", "LAMB", "K-FAC");
  for (std::size_t i = 0; i < steps;
       i += std::max<std::size_t>(1, steps / 10))
    std::printf("%6zu %10.4f %10.4f\n", i, ls[i], ks[i]);
  std::printf("%6zu %10.4f %10.4f\n", steps - 1, ls.back(), ks.back());

  const auto cmp = compare_convergence(lamb, kfac, 1.0, 1.0, 10, steps / 15);
  if (cmp.challenger_steps_to_match >= 0)
    std::printf(
        "\nK-FAC reached LAMB's final loss (%.3f) at step %ld of %ld "
        "(%.0f%% of the steps)\n",
        cmp.baseline_final_loss, cmp.challenger_steps_to_match,
        cmp.baseline_steps, cmp.step_fraction * 100);
  else
    std::printf("\nK-FAC did not reach LAMB's final loss in this short demo "
                "run; try more steps.\n");

  // Context: what each optimizer's step would cost on a modeled pipeline
  // (PF_SCHEDULE; K-FAC rides PipeFisher's bubbles, LAMB the plain step).
  PipeFisherConfig pcfg;
  pcfg.schedule = schedule;
  pcfg.arch = bert_base();
  pcfg.hw = p100();
  pcfg.n_stages = 4;
  pcfg.blocks_per_stage = 3;
  pcfg.n_micro = 4;
  pcfg.b_micro = 32;
  const auto prep = run_pipefisher(pcfg);
  // Virtual-pipeline schedules own blocks_per_stage blocks per CHUNK, so
  // report the total model size the simulation actually covered.
  const int model_blocks =
      traits_of(schedule).model_stages(schedule_params(pcfg)) *
      pcfg.blocks_per_stage;
  std::printf(
      "\non a modeled %s pipeline (%d BERT-Base blocks, D=4, P100): LAMB "
      "%s/step, K-FAC w/ PipeFisher %s/step (+%.1f%%), utilization %s -> "
      "%s\n",
      schedule.c_str(), model_blocks,
      human_time(prep.step_time_baseline).c_str(),
      human_time(prep.step_time).c_str(), prep.overhead_fraction() * 100.0,
      percent(prep.utilization_baseline).c_str(),
      percent(prep.utilization).c_str());
  return 0;
}
