// Example: pretrain a scaled-down BERT on the synthetic corpus with NVLAMB
// (LAMB) and with K-FAC, reproducing the optimizer-level half of Figure 7
// at demo scale (~1 minute on a laptop core).
//
//   $ ./bert_pretraining [steps]
//
// PF_NN_THREADS=<n> parallelizes the nn forward/backward loops — attention
// heads, layer-norm rows, embedding gather/scatter, activations, loss —
// over n pool chunks via the process-default ExecContext (results are
// bitwise identical to the serial run; see src/common/exec_context.h).
// PF_GEMM_THREADS=<n> parallelizes the GEMM row blocks the same way.
// PF_KFAC_LAYER_THREADS=<n> fans the per-layer K-FAC loops across n pool
// chunks (also bitwise identical; see KfacOptions::layer_threads).
// PF_FORCE_SCALAR=1 pins the GEMM microkernel to the portable scalar path
// (the banner line reports which SIMD level is active).
// PF_SCHEDULE=<name> picks the pipeline schedule used for the closing
// steps→simulated-wall-clock report (any name in list_schedules();
// default chimera, mirroring PF_GEMM_THREADS' env-knob style).
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/cpu_features.h"
#include "src/common/exec_context.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/core/pipefisher.h"
#include "src/linalg/gemm.h"
#include "src/pipeline/schedule_registry.h"
#include "src/optim/kfac_optimizer.h"
#include "src/optim/lamb.h"
#include "src/train/convergence.h"

int main(int argc, char** argv) {
  using namespace pf;
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  set_gemm_threads(env_int("PF_GEMM_THREADS", 1));
  ExecContext::set_default_nn_threads(env_int("PF_NN_THREADS", 1));
  const int layer_threads = env_int("PF_KFAC_LAYER_THREADS", 1);
  // Config banner goes to stderr: stdout must stay byte-identical across
  // the bitwise-neutral thread knobs (the verify contract for this binary).
  std::fprintf(stderr,
               "linalg: %s kernels (detected %s), gemm_threads=%d, "
               "nn_threads=%d, kfac layer_threads=%d\n",
               simd_level_name(active_simd_level()),
               simd_level_name(detected_simd_level()), gemm_threads(),
               ExecContext::default_nn_threads(), layer_threads);
  const std::string schedule = env_str("PF_SCHEDULE", "chimera");
  traits_of(schedule);  // fail a typo now, not after the training run

  // Model: a miniature BERT (2 encoder blocks) — same structure as the
  // paper's target, scaled to CPU.
  BertConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 2;
  cfg.seq_len = 16;

  // Data: Zipf-Markov synthetic corpus with learnable bigram structure.
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  cc.structure_prob = 0.9;
  cc.successors = 2;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  auto train = [&](bool use_kfac) {
    Rng rng(7);
    BertModel model(cfg, rng);
    std::printf("model: %zu parameters, %zu K-FAC-tracked linears\n",
                model.n_params(), model.kfac_linears().size());
    TrainerConfig tc;  // tc.exec defaults to the follow-the-knobs context:
                       // nn loops track PF_NN_THREADS, GEMMs PF_GEMM_THREADS
    tc.batch_size = 32;
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(
        2e-2, use_kfac ? steps * 85 / 1000 : steps * 28 / 100, steps);
    std::unique_ptr<Optimizer> opt;
    if (use_kfac) {
      KfacOptimizerOptions o;
      o.kfac.damping = 1e-3;
      o.kfac.gemm_threads = 0;  // follow the PF_GEMM_THREADS global knob
      o.kfac.layer_threads = layer_threads;
      o.inverse_interval = 3;
      opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                            std::make_unique<Lamb>(), o);
    } else {
      opt = std::make_unique<Lamb>();
    }
    Trainer trainer(model, batcher, std::move(opt), tc);
    return trainer.run();
  };

  std::printf("== LAMB ==\n");
  const auto lamb = train(false);
  std::printf("== K-FAC (LAMB base, frequent refresh) ==\n");
  const auto kfac = train(true);

  const auto ls = smooth_moving_average(lamb.loss, 10);
  const auto ks = smooth_moving_average(kfac.loss, 10);
  std::printf("\n%6s %10s %10s\n", "step", "LAMB", "K-FAC");
  for (std::size_t i = 0; i < steps;
       i += std::max<std::size_t>(1, steps / 10))
    std::printf("%6zu %10.4f %10.4f\n", i, ls[i], ks[i]);
  std::printf("%6zu %10.4f %10.4f\n", steps - 1, ls.back(), ks.back());

  const auto cmp = compare_convergence(lamb, kfac, 1.0, 1.0, 10, steps / 15);
  if (cmp.challenger_steps_to_match >= 0)
    std::printf(
        "\nK-FAC reached LAMB's final loss (%.3f) at step %ld of %ld "
        "(%.0f%% of the steps)\n",
        cmp.baseline_final_loss, cmp.challenger_steps_to_match,
        cmp.baseline_steps, cmp.step_fraction * 100);
  else
    std::printf("\nK-FAC did not reach LAMB's final loss in this short demo "
                "run; try more steps.\n");

  // Context: what each optimizer's step would cost on a modeled pipeline
  // (PF_SCHEDULE; K-FAC rides PipeFisher's bubbles, LAMB the plain step).
  PipeFisherConfig pcfg;
  pcfg.schedule = schedule;
  pcfg.arch = bert_base();
  pcfg.hw = p100();
  pcfg.n_stages = 4;
  pcfg.blocks_per_stage = 3;
  pcfg.n_micro = 4;
  pcfg.b_micro = 32;
  const auto prep = run_pipefisher(pcfg);
  // Virtual-pipeline schedules own blocks_per_stage blocks per CHUNK, so
  // report the total model size the simulation actually covered.
  const int model_blocks =
      traits_of(schedule).model_stages(schedule_params(pcfg)) *
      pcfg.blocks_per_stage;
  std::printf(
      "\non a modeled %s pipeline (%d BERT-Base blocks, D=4, P100): LAMB "
      "%s/step, K-FAC w/ PipeFisher %s/step (+%.1f%%), utilization %s -> "
      "%s\n",
      schedule.c_str(), model_blocks,
      human_time(prep.step_time_baseline).c_str(),
      human_time(prep.step_time).c_str(), prep.overhead_fraction() * 100.0,
      percent(prep.utilization_baseline).c_str(),
      percent(prep.utilization).c_str());
  return 0;
}
