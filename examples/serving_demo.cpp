// Serving demo: drive the continuous-batching inference engine
// (src/serve/serving_engine.h) over a synthetic request stream and print
// the latency/throughput report plus the realized execution timeline.
//
//   $ ./example_serving_demo
//
// Every knob is an environment variable, validated up front:
//
//   PF_SERVE_STAGES    pipeline stages (default 2)
//   PF_SERVE_BATCH     max sequences per micro-batch (default 4)
//   PF_SERVE_WORKERS   pool worker threads (default 2; 0 = serial)
//   PF_SERVE_INFLIGHT  max micros in flight (default 0 = stages + 1)
//   PF_SERVE_REQUESTS  requests in the synthetic stream (default 32)
//   PF_SERVE_LOAD      offered load in requests/second (default 0 =
//                      replay: everything queued up front)
//   PF_SERVE_POLICY    "continuous" | "static" (default continuous)
//
// With PF_SERVE_LOAD > 0 a producer thread pushes live at that rate while
// the engine serves; otherwise the stream is replayed at saturation — the
// deterministic mode whose per-request logits are bitwise independent of
// stages/workers (tests/test_serving.cpp pins that grid).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/serve/serving_engine.h"
#include "src/trace/ascii_gantt.h"

namespace {

using namespace pf;

// Reads an env knob as a number; anything non-numeric or out of
// [lo, hi] aborts with a message naming the variable, up front.
long env_long(const char* name, long def, long lo, long hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  PF_CHECK(end != raw && *end == '\0')
      << name << "='" << raw << "' is not an integer";
  PF_CHECK(v >= lo && v <= hi)
      << name << "=" << v << " outside [" << lo << ", " << hi << "]";
  return v;
}

double env_double(const char* name, double def, double lo, double hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  PF_CHECK(end != raw && *end == '\0')
      << name << "='" << raw << "' is not a number";
  PF_CHECK(v >= lo && v <= hi)
      << name << "=" << v << " outside [" << lo << ", " << hi << "]";
  return v;
}

}  // namespace

int main() {
  // Validate every knob before building anything, so a typo fails fast
  // with the variable's name instead of deep in the engine.
  const int stages = static_cast<int>(env_long("PF_SERVE_STAGES", 2, 1, 4));
  const std::size_t max_batch =
      static_cast<std::size_t>(env_long("PF_SERVE_BATCH", 4, 1, 64));
  const int workers = static_cast<int>(env_long("PF_SERVE_WORKERS", 2, 0, 64));
  const int inflight =
      static_cast<int>(env_long("PF_SERVE_INFLIGHT", 0, 0, 64));
  const std::size_t n_requests =
      static_cast<std::size_t>(env_long("PF_SERVE_REQUESTS", 32, 1, 100000));
  const double load = env_double("PF_SERVE_LOAD", 0.0, 0.0, 1e9);
  const char* policy_raw = std::getenv("PF_SERVE_POLICY");
  const BatchPolicy policy =
      batch_policy_from_string(policy_raw != nullptr && policy_raw[0] != '\0'
                                   ? policy_raw
                                   : "continuous");
  std::fprintf(stderr,
               "serving_demo: stages=%d batch=%zu workers=%d inflight=%d "
               "requests=%zu load=%s policy=%s\n",
               stages, max_batch, workers, inflight, n_requests,
               load > 0.0 ? (std::to_string(load) + " req/s").c_str()
                          : "replay",
               batch_policy_name(policy));

  // A small BERT (4 layers so every PF_SERVE_STAGES in range divides it).
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.seq_len = 16;
  Rng rng(7);
  BertModel model(cfg, rng);

  ServingEngineConfig ec;
  ec.n_stages = stages;
  ec.max_batch = max_batch;
  ec.max_inflight = inflight;
  ec.workers = workers;
  ec.policy = policy;
  ServingEngine engine(model, ec);

  // Synthetic stream: deterministic tokens, varying lengths.
  Rng traffic(42);
  std::vector<InferRequest> trace;
  for (std::size_t i = 0; i < n_requests; ++i) {
    InferRequest r;
    r.id = i;
    const std::size_t len = 1 + traffic.next_u64() % cfg.seq_len;
    for (std::size_t t = 0; t < len; ++t)
      r.ids.push_back(static_cast<int>(traffic.next_u64() % cfg.vocab));
    trace.push_back(std::move(r));
  }

  RequestQueue queue;
  std::thread producer;
  if (load > 0.0) {
    producer = std::thread([&queue, &trace, load] {
      const auto gap = std::chrono::duration<double>(1.0 / load);
      for (const InferRequest& r : trace) {
        queue.push(r);
        std::this_thread::sleep_for(gap);
      }
      queue.close();
    });
  } else {
    queue.push_all(trace);
    queue.close();
  }
  const ServingReport rep = engine.run(queue);
  if (producer.joinable()) producer.join();

  PF_CHECK(rep.records.size() == n_requests)
      << "served " << rep.records.size() << " of " << n_requests;
  std::printf("served %zu requests in %zu micro-batches, %.3f s wall\n",
              rep.records.size(), rep.n_micros, rep.wall_seconds);
  std::printf("throughput          : %.1f req/s\n", rep.throughput_rps);
  std::printf("latency p50/p95/p99 : %.1f / %.1f / %.1f ms (max %.1f)\n",
              rep.latency.p50 * 1e3, rep.latency.p95 * 1e3,
              rep.latency.p99 * 1e3, rep.latency.max * 1e3);
  std::printf("admitted mid-flight : %zu of %zu (%zu slot refills)\n",
              rep.admitted_while_in_flight, rep.admitted_total,
              rep.slots_refilled_in_flight);
  std::printf("deadline misses     : %zu\n", rep.deadline_misses);

  // The realized schedule: stage lanes, 'F' forwards keyed by micro, 'Q'
  // admission intervals in lane 0's idle gaps.
  GanttOptions go;
  go.width = 72;
  std::printf("\n%s", render_ascii_gantt(rep.timeline, go).c_str());
  return 0;
}
