// Pretraining loop: model + batcher + optimizer + LR schedule, with a loss
// trace for the convergence analysis of Figure 7.
#pragma once

#include <memory>

#include "src/common/exec_context.h"
#include "src/data/mlm_batcher.h"
#include "src/optim/lr_schedule.h"
#include "src/optim/optimizer.h"

namespace pf {

struct TrainerConfig {
  std::size_t batch_size = 16;
  std::size_t total_steps = 300;
  PolyWarmupSchedule schedule{1e-3, 30, 300};
  std::uint64_t data_seed = 99;
  // Gradient accumulation: each optimizer step averages the gradients of
  // this many micro-batches (paper Appendix B.2 simulates an 8K batch on 32
  // GPUs by accumulating over 8 sub-steps).
  std::size_t accumulation_steps = 1;
  // Execution context every forward/backward of the run threads through
  // (PF_NN_THREADS / PF_GEMM_THREADS in the examples). The default follows
  // the process knobs; any value is bitwise identical to serial.
  ExecContext exec = ExecContext::defaults();
};

struct TrainTrace {
  std::vector<double> loss;      // per step (MLM + NSP)
  std::vector<double> mlm_loss;
  std::vector<double> nsp_loss;
  std::vector<double> lr;
  double final_loss_smoothed(std::size_t half_window = 10) const;
};

class Trainer {
 public:
  Trainer(BertModel& model, const MlmBatcher& batcher,
          std::unique_ptr<Optimizer> optimizer, const TrainerConfig& cfg);

  // Runs cfg.total_steps steps and returns the trace.
  TrainTrace run();

  // Runs a single step (exposed for tests).
  BertLossBreakdown step();

 private:
  BertModel& model_;
  const MlmBatcher& batcher_;
  std::unique_ptr<Optimizer> opt_;
  TrainerConfig cfg_;
  Rng data_rng_;
  std::size_t t_ = 0;
};

}  // namespace pf
