#include "src/train/pipeline_runtime.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/comm/tensor_wire.h"
#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/simulator.h"

namespace pf {

namespace {

ScheduleParams runtime_params(const PipelineRuntimeConfig& cfg) {
  ScheduleParams p;
  p.n_stages = cfg.n_stages;
  p.n_micro = cfg.n_micro;
  p.virtual_chunks = cfg.virtual_chunks;
  return p;
}

}  // namespace

PipelineRuntime::PipelineRuntime(BertModel& model, const MlmBatcher& batcher,
                                 const PipelineRuntimeConfig& cfg)
    : batcher_(batcher),
      cfg_(cfg),
      data_rng_(cfg.data_seed),
      spec_(build_schedule(cfg.schedule, runtime_params(cfg))),
      partition_(model, spec_.n_stages) {
  const ScheduleTraits& traits = traits_of(cfg_.schedule);
  if (!traits.flush) {
    // Flushless schedules stream through run_flushless() (stale-weight
    // semantics, device-local inline updates); step()/run() train
    // synchronously and reject them. The streaming builder supports plain
    // single-pipeline static programs with a per-tensor base optimizer.
    PF_CHECK(spec_.n_pipelines == 1 && !spec_.dynamic_order &&
             !spec_.split_backward)
        << cfg_.schedule
        << ": run_flushless() streams single-pipeline static schedules only";
    PF_CHECK(!cfg_.use_kfac)
        << cfg_.schedule
        << ": flushless streaming has no step boundary to anchor K-FAC "
           "curvature refreshes — use a flush schedule for PipeFisher runs";
    PF_CHECK(!cfg_.copy_stashes)
        << cfg_.schedule << ": flushless streaming needs borrow-mode "
                            "stashes (memory stays O(in-flight micros))";
  }
  PF_CHECK(!(spec_.split_backward && cfg_.copy_stashes))
      << cfg_.schedule << ": the deferred W pass reads the harvested "
                          "borrow-mode stashes (copy mode blanks a_l)";
  PF_CHECK(spec_.n_pipelines <= 2)
      << cfg_.schedule << " maps " << spec_.n_pipelines
      << " pipelines onto the devices; the executable runtime supports at "
         "most 2 (bidirectional Chimera) — registry, perf model, and "
         "simulator cover more (use simulate_step)";
  PF_CHECK(cfg_.n_micro >= 1 && cfg_.micro_batch_size >= 1);
  PF_CHECK(cfg_.stage_threads >= 1);
  PF_CHECK(cfg_.workers >= 0);
  if (!cfg_.base_optimizer)
    cfg_.base_optimizer = [] { return std::make_unique<Lamb>(); };

  // Event order: static programs, or the greedy simulator's realized order
  // for dynamic schedules (unit §3.3 costs T_b = 2·T_f). Static orders are
  // honored exactly (head-of-line chaining below); dynamic schedules run
  // greedily with the order as dispatch priority — which is what
  // `dynamic_order` means in the simulator too.
  if (spec_.dynamic_order) {
    device_order_ = simulate_step(spec_, StepCosts{}).realized_programs;
  } else {
    device_order_ = spec_.programs;
  }
  normalize_backward_order(device_order_);

  pipeline_of_micro_.assign(static_cast<std::size_t>(spec_.n_micro), 0);
  for (int pl = 0; pl < spec_.n_pipelines; ++pl)
    for (const int m : spec_.micros_of_pipeline[static_cast<std::size_t>(pl)])
      pipeline_of_micro_[static_cast<std::size_t>(m)] = pl;

  const std::size_t workers = cfg_.workers > 0
                                  ? static_cast<std::size_t>(cfg_.workers)
                                  : static_cast<std::size_t>(spec_.n_devices);
  pool_ = std::make_unique<ThreadPool>(workers);

  transport_ = resolve_transport(cfg_.transport);
  if (transport_ == "shm") {
    PF_CHECK(spec_.n_pipelines == 1)
        << cfg_.schedule << ": the shm transport's rings are SPSC — "
        << spec_.n_pipelines
        << " pipelines put two producer devices on one boundary channel; "
           "use transport = inproc";
  }
  // Largest tensor a boundary carries: the (micro_batch · seq_len) × d_model
  // activation (grad-activations share the shape). At most n_micro messages
  // are in flight per boundary+direction, so a ring of n_micro slots means
  // the producer never blocks on a full ring within one step.
  const std::size_t slot_bytes = wire_bytes(
      cfg_.micro_batch_size * model.config().seq_len, model.config().d_model);
  const std::size_t ring_slots = static_cast<std::size_t>(spec_.n_micro);
  auto make_channel = [&](const std::string& name) -> std::unique_ptr<Channel> {
    if (transport_ == "inproc") return std::make_unique<StageChannel>(name);
    regions_.emplace_back(ShmRing::required_bytes(ring_slots, slot_bytes));
    return std::make_unique<TransportChannel>(
        name,
        ShmRing::create(regions_.back().data(), ring_slots, slot_bytes, name));
  };
  const int S = spec_.n_stages;
  for (int s = 0; s + 1 < S; ++s) {
    fwd_ch_.push_back(make_channel(format("fwd[%d->%d]", s, s + 1)));
    bwd_ch_.push_back(make_channel(format("bwd[%d->%d]", s + 1, s)));
  }
  for (int s = 0; s < S; ++s) {
    BertStage& st = partition_.stage(s);
    st.set_copy_stashes(cfg_.copy_stashes);
    stage_params_.push_back(st.params());
    arenas_.push_back(std::make_unique<ArenaAllocator>());
    stage_ctx_.emplace_back(cfg_.stage_threads, cfg_.stage_threads,
                            RngPartition::kSequential, pool_.get());
    stage_ctx_.back().set_arena(arenas_.back().get());
    stage_opt_.push_back(cfg_.base_optimizer());
    const auto kl = st.kfac_linears();
    // The engines' GEMM/Cholesky row blocks dispatch on the runtime pool —
    // bubble K-FAC work stays inside the `workers` budget.
    engines_.push_back(
        cfg_.use_kfac && !kl.empty()
            ? std::make_unique<KfacEngine>(kl, cfg_.kfac.kfac, pool_.get())
            : nullptr);
  }
  last_memory_stats_.resize(static_cast<std::size_t>(S));
}

StepPlan PipelineRuntime::make_step_plan(bool curv_step, bool inv_step) const {
  std::vector<std::size_t> factors(static_cast<std::size_t>(spec_.n_stages), 0);
  for (std::size_t s = 0; s < factors.size(); ++s)
    if (engines_[s] != nullptr) factors[s] = engines_[s]->n_layers();
  return build_step_plan(spec_, device_order_, factors, curv_step, inv_step);
}

BertLossBreakdown PipelineRuntime::step() {
  PF_CHECK(traits_of(cfg_.schedule).flush)
      << cfg_.schedule
      << " is flushless: stream it with run_flushless() instead";
  const int S = spec_.n_stages;
  const int N = spec_.n_micro;
  const int D = spec_.n_devices;
  const bool split = spec_.split_backward;

  // --- Step preamble: exactly the serial Trainer's ---------------------
  // Draw the micro-batches in the serial order (same RNG progression).
  std::vector<BertBatch> batches;
  batches.reserve(static_cast<std::size_t>(N));
  for (int m = 0; m < N; ++m)
    batches.push_back(batcher_.next_batch(cfg_.micro_batch_size, data_rng_));
  for (auto& sp : stage_params_) zero_grads(sp);
  const double lr = cfg_.lr.lr(t_);
  const bool curv_step =
      cfg_.use_kfac && t_ % cfg_.kfac.curvature_interval == 0;
  const bool inv_step = cfg_.use_kfac && t_ % cfg_.kfac.inverse_interval == 0;
  // Entry reset (not just exit): a step that threw mid-flight leaves
  // stashes and channel boxes populated — clearing here keeps a retried
  // step() reporting its own errors instead of phantom duplicates.
  std::vector<ArenaAllocator::Stats> arena_before(
      static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    partition_.stage(s).clear_stash(arenas_[si].get());
    partition_.stage(s).reset_stash_stats();
    arena_before[si] = arenas_[si]->stats();
  }
  for (auto& ch : fwd_ch_) ch->clear();
  for (auto& ch : bwd_ch_) ch->clear();

  // --- Attach bodies to the step plan and hand it to the executor ------
  // The graph itself (lanes, priorities, resources, dependency edges) is
  // built by build_step_plan(); this loop only supplies the work. Executor
  // ids equal plan indices by construction — asserted below — which is
  // what lets the perfmodel calibration layer replay the identical plan in
  // virtual time.
  const StepPlan plan = make_step_plan(curv_step, inv_step);
  const double inv = 1.0 / static_cast<double>(N);
  TaskExecutor ex(*pool_, static_cast<std::size_t>(D));
  std::vector<TaskMeta> meta;
  meta.reserve(plan.tasks.size());
  kfac_plan_.clear();
  std::vector<std::size_t> kfac_exec_id;
  // plan index -> index in kfac_plan_ (valid for K-FAC kinds only).
  std::vector<std::size_t> kfac_index(plan.tasks.size(), 0);

  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const PlannedTask& pt = plan.tasks[i];
    const int s = pt.stage;
    const int m = pt.micro;
    const auto si = static_cast<std::size_t>(s);
    BertStage* stage = &partition_.stage(s);
    const ExecContext* ctx = &stage_ctx_[si];
    KfacEngine* engine = engines_[si].get();
    // Factor index within the stage's engine, from the (block, linear)
    // trace labels — the inverse of the plan builder's f -> (f/6, f%6).
    const std::size_t f =
        pt.layer >= 0 ? static_cast<std::size_t>(pt.layer) * 6 +
                            static_cast<std::size_t>(pt.factor)
                      : 0;
    // Curvature tasks read the stashes only on refresh steps of K-FAC
    // stages; otherwise backward releases this micro's activations —
    // except under split_backward, where the harvested {a_l, e_l} pairs
    // must survive until the micro's deferred W pass reads them (the W
    // task then releases non-curvature stashes itself).
    const bool keep_stash = curv_step && engine != nullptr;
    std::function<void()> body;
    switch (pt.kind) {
      case WorkKind::kForward:
        body = [this, stage, ctx, s, m, S, &batches] {
          Matrix in;
          if (s > 0) in = fwd_ch_[static_cast<std::size_t>(s - 1)]->take(m);
          Matrix out = stage->forward(m, batches[static_cast<std::size_t>(m)],
                                      std::move(in), *ctx);
          if (s + 1 < S)
            fwd_ch_[static_cast<std::size_t>(s)]->send(m, std::move(out));
        };
        break;
      case WorkKind::kBackward:
        body = [this, stage, ctx, s, m, S, keep_stash, split, &batches] {
          Matrix gin;
          if (s + 1 < S) gin = bwd_ch_[static_cast<std::size_t>(s)]->take(m);
          Matrix gout = stage->backward(m, batches[static_cast<std::size_t>(m)],
                                        std::move(gin), *ctx, keep_stash,
                                        /*defer_dw=*/split);
          if (s > 0)
            bwd_ch_[static_cast<std::size_t>(s - 1)]->send(m, std::move(gout));
        };
        break;
      case WorkKind::kBackwardWeight: {
        ArenaAllocator* arena = arenas_[si].get();
        body = [stage, ctx, m, keep_stash, arena] {
          stage->backward_dw(m, *ctx, /*release=*/!keep_stash, arena);
        };
        break;
      }
      case WorkKind::kSyncGrad:
        body = [this, s, inv, N] {
          if (N > 1)
            for (Param* p : stage_params_[static_cast<std::size_t>(s)])
              p->g *= inv;
        };
        break;
      case WorkKind::kCurvatureA:
        PF_CHECK(engine != nullptr);
        body = [engine, stage, f, m] {
          engine->accumulate_curvature_a(f, stage->kfac_input(m, f));
        };
        break;
      case WorkKind::kCurvatureB:
        PF_CHECK(engine != nullptr);
        body = [engine, stage, f, m] {
          engine->accumulate_curvature_b(f, stage->kfac_output_grad(m, f));
        };
        break;
      case WorkKind::kSyncCurvature:
        PF_CHECK(engine != nullptr);
        body = [engine, f] { engine->commit_curvature_layer(f); };
        break;
      case WorkKind::kInversionA:
        PF_CHECK(engine != nullptr);
        body = [engine, f] { engine->update_inverse_factor(f, false); };
        break;
      case WorkKind::kInversionB:
        PF_CHECK(engine != nullptr);
        body = [engine, f] { engine->update_inverse_factor(f, true); };
        break;
      case WorkKind::kPrecondition:
        PF_CHECK(engine != nullptr);
        body = [engine, f] { engine->precondition_layer(f); };
        break;
      case WorkKind::kOptimizerUpdate:
        body = [this, s, lr] {
          stage_opt_[static_cast<std::size_t>(s)]->step(
              stage_params_[static_cast<std::size_t>(s)], lr);
        };
        break;
      default:
        PF_CHECK(false) << "unexpected kind in step plan";
    }
    const std::size_t id =
        ex.add(std::move(body), pt.lane, pt.priority, pt.deps, pt.resource);
    PF_ASSERT(id == i);
    TaskMeta tm;
    tm.device = pt.lane;
    tm.kind = pt.kind;
    tm.stage = pt.stage;
    tm.micro = pt.micro;
    tm.layer = pt.layer;
    tm.factor = pt.factor;
    tm.op = pt.op;
    tm.is_op = pt.is_op;
    meta.push_back(tm);

    // Mirror K-FAC tasks into the BubbleTask-shaped introspection plan
    // (core/kfac_work.h); realized durations are filled in after the run.
    if (is_kfac_kind(pt.kind)) {
      BubbleTask bt;
      bt.id = kfac_plan_.size();
      bt.device = pt.lane;
      bt.kind = pt.kind;
      bt.stage = pt.stage;
      bt.micro = pt.micro;
      bt.layer = pt.layer;
      bt.factor = pt.factor;
      bt.splittable = pt.splittable;
      for (const std::size_t d : pt.deps)
        if (is_kfac_kind(plan.tasks[d].kind))
          bt.deps.push_back(kfac_index[d]);
      kfac_index[i] = bt.id;
      kfac_exec_id.push_back(i);
      kfac_plan_.push_back(std::move(bt));
    }
  }

  // --- Execute ----------------------------------------------------------
  ex.run();
  last_records_ = ex.records();
  last_meta_ = std::move(meta);

  // Realized timeline: per-device intervals sorted by wall-clock start.
  last_timeline_ = Timeline(static_cast<std::size_t>(D));
  {
    std::vector<std::vector<std::size_t>> by_dev(static_cast<std::size_t>(D));
    for (std::size_t i = 0; i < last_records_.size(); ++i)
      if (last_records_[i].executed)
        by_dev[last_meta_[i].device].push_back(i);
    double makespan = 0.0;
    for (auto& ids : by_dev) {
      std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
        return last_records_[a].start < last_records_[b].start;
      });
      for (const std::size_t i : ids) {
        const TaskMeta& tm = last_meta_[i];
        last_timeline_.add(Interval{.device = tm.device,
                                    .start = last_records_[i].start,
                                    .end = last_records_[i].end,
                                    .kind = tm.kind,
                                    .stage = tm.stage,
                                    .micro = tm.micro,
                                    .layer = tm.layer,
                                    .factor = tm.factor});
        makespan = std::max(makespan, last_records_[i].end);
      }
    }
    last_wall_seconds_ = makespan;
  }
  // Realized durations back into the BubbleTask plan.
  for (std::size_t i = 0; i < kfac_plan_.size(); ++i) {
    const auto& rec = last_records_[kfac_exec_id[i]];
    kfac_plan_[i].earliest_start = rec.start;
    kfac_plan_[i].duration = rec.end - rec.start;
  }
  if (cfg_.step_observer) cfg_.step_observer(last_timeline_);

  // --- Step epilogue: losses in micro order, stash cleanup --------------
  BertLossBreakdown total{};
  BertStage& last_stage = partition_.stage(S - 1);
  for (int m = 0; m < N; ++m) {
    const auto l = last_stage.losses(m);
    total.total += l.total;
    total.mlm += l.mlm;
    total.nsp += l.nsp;
  }
  total.total *= inv;
  total.mlm *= inv;
  total.nsp *= inv;
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    // Stash high-water mark first (clear_stash zeroes the running count,
    // not the peak), then park the surviving K-FAC stashes in the arena so
    // the next step's forwards recycle them.
    last_memory_stats_[si].peak_stash_bytes =
        partition_.stage(s).peak_stash_bytes();
    partition_.stage(s).clear_stash(arenas_[si].get());
    const auto now = arenas_[si]->stats();
    last_memory_stats_[si].arena_recycled =
        now.recycled - arena_before[si].recycled;
    last_memory_stats_[si].arena_fresh = now.fresh - arena_before[si].fresh;
    last_memory_stats_[si].arena_free_bytes = now.free_bytes;
  }
  for (const auto& ch : fwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered activations";
  for (const auto& ch : bwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered gradients";
  ++t_;
  return total;
}

TrainTrace PipelineRuntime::run() {
  TrainTrace trace;
  trace.loss.reserve(cfg_.total_steps);
  for (std::size_t i = 0; i < cfg_.total_steps; ++i) {
    trace.lr.push_back(cfg_.lr.lr(t_));
    const auto l = step();
    trace.loss.push_back(l.total);
    trace.mlm_loss.push_back(l.mlm);
    trace.nsp_loss.push_back(l.nsp);
  }
  return trace;
}

TrainTrace PipelineRuntime::run_flushless() {
  PF_CHECK(!traits_of(cfg_.schedule).flush)
      << cfg_.schedule << " flushes at step boundaries: use run()";
  PF_CHECK(t_ == 0) << "run_flushless() streams once per runtime instance";
  const int S = spec_.n_stages;
  const int N = spec_.n_micro;
  const int D = spec_.n_devices;
  const int steps = static_cast<int>(cfg_.total_steps);
  PF_CHECK(steps >= 1);
  const int G = N * steps;

  // One streaming program over every step: the per-step 1F1B program with
  // N·steps global micros. Warmup and drain exist only at stream entry and
  // exit; the interior is the steady state a flush would repeatedly break.
  ScheduleSpec stream = make_1f1b(S, G);
  std::vector<std::vector<PipeOp>> order = stream.programs;
  normalize_backward_order(order);

  // Micro-batches drawn up front in the serial order.
  std::vector<BertBatch> batches;
  batches.reserve(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g)
    batches.push_back(batcher_.next_batch(cfg_.micro_batch_size, data_rng_));
  for (auto& sp : stage_params_) zero_grads(sp);
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    partition_.stage(s).clear_stash(arenas_[si].get());
    partition_.stage(s).reset_stash_stats();
  }
  for (auto& ch : fwd_ch_) ch->clear();
  for (auto& ch : bwd_ch_) ch->clear();

  fl_fwd_ver_.assign(static_cast<std::size_t>(S),
                     std::vector<int>(static_cast<std::size_t>(G), 0));
  fl_bwd_ver_.assign(static_cast<std::size_t>(S),
                     std::vector<int>(static_cast<std::size_t>(G), 0));
  // Inline updates applied per stage so far. Only tasks on stage s's lane
  // touch slot s (head-of-line chained), so plain ints are race-free.
  std::vector<int> version(static_cast<std::size_t>(S), 0);
  const double inv = 1.0 / static_cast<double>(N);

  TaskExecutor ex(*pool_, static_cast<std::size_t>(D));
  std::map<long, std::size_t> op_task;
  // Creation sweep like step()'s static path: ops join their device chain
  // in program order, with the stage's inline update spliced in right
  // after its step-closing backward — everything that reads or writes the
  // stage's weights stays on one serialized chain.
  std::vector<std::size_t> next(order.size(), 0);
  std::vector<bool> has_prev(static_cast<std::size_t>(D), false);
  std::vector<std::size_t> prev_task(static_cast<std::size_t>(D), 0);
  std::vector<long> prio(static_cast<std::size_t>(D), 0);
  std::size_t remaining = 0;
  for (const auto& p : order) remaining += p.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t d = 0; d < order.size(); ++d) {
      while (next[d] < order[d].size()) {
        const PipeOp& op = order[d][next[d]];
        const int s = op.stage;
        const int g = op.micro;
        const auto si = static_cast<std::size_t>(s);
        std::vector<PipeOp> pdeps;
        if (op.type == OpType::kForward) {
          if (s > 0) pdeps.push_back({OpType::kForward, 0, s - 1, g});
        } else {
          pdeps.push_back({OpType::kForward, 0, s, g});
          if (s + 1 < S) pdeps.push_back({OpType::kBackward, 0, s + 1, g});
        }
        std::vector<std::size_t> dep_ids;
        bool ready = true;
        for (const PipeOp& dep : pdeps) {
          const auto it = op_task.find(op_key(dep));
          if (it == op_task.end()) {
            ready = false;
            break;
          }
          dep_ids.push_back(it->second);
        }
        if (!ready) break;
        if (has_prev[d]) dep_ids.push_back(prev_task[d]);
        BertStage* stage = &partition_.stage(s);
        const ExecContext* ctx = &stage_ctx_[si];
        std::function<void()> body;
        if (op.type == OpType::kForward) {
          body = [this, stage, ctx, s, g, S, si, &batches, &version] {
            fl_fwd_ver_[si][static_cast<std::size_t>(g)] = version[si];
            Matrix in;
            if (s > 0) in = fwd_ch_[si - 1]->take(g);
            Matrix out = stage->forward(
                g, batches[static_cast<std::size_t>(g)], std::move(in), *ctx);
            if (s + 1 < S) fwd_ch_[si]->send(g, std::move(out));
          };
        } else {
          // keep_kfac_stash = false: nothing reads the stashes later, so
          // in-flight memory stays O(D) micros for the whole stream.
          body = [this, stage, ctx, s, g, S, si, &batches, &version] {
            fl_bwd_ver_[si][static_cast<std::size_t>(g)] = version[si];
            Matrix gin;
            if (s + 1 < S) gin = bwd_ch_[si]->take(g);
            Matrix gout = stage->backward(
                g, batches[static_cast<std::size_t>(g)], std::move(gin), *ctx,
                /*keep_kfac_stash=*/false);
            if (s > 0) bwd_ch_[si - 1]->send(g, std::move(gout));
          };
        }
        prev_task[d] = ex.add(std::move(body), d, prio[d]++,
                              std::move(dep_ids), /*resource=*/s);
        has_prev[d] = true;
        op_task[op_key(op)] = prev_task[d];
        ++next[d];
        --remaining;
        progress = true;
        if (op.type == OpType::kBackward && (g + 1) % N == 0) {
          // Device-local update closing step k for this stage: fold the
          // accumulated gradients, step the per-stage optimizer at the
          // step's LR, re-zero for the next step's fold, bump the version.
          const int k = g / N;
          auto update = [this, si, k, inv, N, &version] {
            if (N > 1)
              for (Param* p : stage_params_[si]) p->g *= inv;
            stage_opt_[si]->step(stage_params_[si], cfg_.lr.lr(
                static_cast<std::size_t>(k)));
            zero_grads(stage_params_[si]);
            ++version[si];
          };
          prev_task[d] = ex.add(std::move(update), d, prio[d]++,
                                {prev_task[d]}, /*resource=*/s);
        }
      }
    }
    PF_CHECK(progress) << cfg_.schedule << ": flushless stream deadlocked";
  }

  ex.run();

  TrainTrace trace;
  BertStage& last_stage = partition_.stage(S - 1);
  for (int k = 0; k < steps; ++k) {
    trace.lr.push_back(cfg_.lr.lr(static_cast<std::size_t>(k)));
    BertLossBreakdown sum{};
    for (int m = 0; m < N; ++m) {
      const auto l = last_stage.losses(k * N + m);
      sum.total += l.total;
      sum.mlm += l.mlm;
      sum.nsp += l.nsp;
    }
    trace.loss.push_back(sum.total * inv);
    trace.mlm_loss.push_back(sum.mlm * inv);
    trace.nsp_loss.push_back(sum.nsp * inv);
  }
  for (int s = 0; s < S; ++s)
    partition_.stage(s).clear_stash(arenas_[static_cast<std::size_t>(s)].get());
  for (const auto& ch : fwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered activations";
  for (const auto& ch : bwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered gradients";
  t_ = static_cast<std::size_t>(steps);
  return trace;
}

std::vector<std::vector<PipeOp>> PipelineRuntime::last_realized_order() const {
  std::vector<std::vector<PipeOp>> out(
      static_cast<std::size_t>(spec_.n_devices));
  std::vector<std::vector<std::size_t>> by_dev(
      static_cast<std::size_t>(spec_.n_devices));
  for (std::size_t i = 0; i < last_records_.size(); ++i)
    if (last_records_[i].executed && last_meta_[i].is_op)
      by_dev[last_meta_[i].device].push_back(i);
  for (std::size_t d = 0; d < by_dev.size(); ++d) {
    auto& ids = by_dev[d];
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return last_records_[a].start < last_records_[b].start;
    });
    for (const std::size_t i : ids) out[d].push_back(last_meta_[i].op);
  }
  return out;
}

std::vector<int> PipelineRuntime::forward_send_order(int boundary) const {
  PF_CHECK(boundary >= 0 &&
           static_cast<std::size_t>(boundary) < fwd_ch_.size());
  return fwd_ch_[static_cast<std::size_t>(boundary)]->send_order();
}

std::vector<int> PipelineRuntime::backward_send_order(int boundary) const {
  PF_CHECK(boundary >= 0 &&
           static_cast<std::size_t>(boundary) < bwd_ch_.size());
  return bwd_ch_[static_cast<std::size_t>(boundary)]->send_order();
}

}  // namespace pf
