#include "src/train/pipeline_runtime.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/simulator.h"

namespace pf {

namespace {

ScheduleParams runtime_params(const PipelineRuntimeConfig& cfg) {
  ScheduleParams p;
  p.n_stages = cfg.n_stages;
  p.n_micro = cfg.n_micro;
  p.virtual_chunks = cfg.virtual_chunks;
  return p;
}

// Pipeline ops get their event-order position as priority; deferred W
// passes (zb-h1) sit above every program position so a lane takes one only
// when no pipeline op is runnable — the executed analog of the simulator's
// floating W pools; step-tail tasks follow; K-FAC work sits above
// everything so it is only dispatched into lane idle time (realized
// bubbles).
constexpr long kWeightPriorityBase = 1L << 16;
constexpr long kTailPriorityBase = 1L << 18;
constexpr long kKfacPriorityBase = 1L << 20;

// Rewrites each device's op order so that, within every (pipeline, stage)
// group, the backwards visit micros in ascending order — the gradient-
// accumulation order the bitwise contract requires (see the header). 1F1B
// and the greedy orders are already ascending per stage; GPipe's LIFO
// backward drain becomes FIFO (same critical path under uniform costs; the
// activation stash is keyed by micro, so LIFO buys nothing here).
void normalize_backward_order(std::vector<std::vector<PipeOp>>& programs) {
  for (auto& prog : programs) {
    std::map<std::pair<int, int>, std::vector<std::size_t>> group_slots;
    for (std::size_t i = 0; i < prog.size(); ++i)
      if (prog[i].type == OpType::kBackward)
        group_slots[{prog[i].pipeline, prog[i].stage}].push_back(i);
    for (auto& [key, slots] : group_slots) {
      std::vector<int> micros;
      micros.reserve(slots.size());
      for (const std::size_t p : slots) micros.push_back(prog[p].micro);
      std::sort(micros.begin(), micros.end());
      for (std::size_t k = 0; k < slots.size(); ++k)
        prog[slots[k]].micro = micros[k];
    }
  }
}

}  // namespace

PipelineRuntime::PipelineRuntime(BertModel& model, const MlmBatcher& batcher,
                                 const PipelineRuntimeConfig& cfg)
    : batcher_(batcher),
      cfg_(cfg),
      data_rng_(cfg.data_seed),
      spec_(build_schedule(cfg.schedule, runtime_params(cfg))),
      partition_(model, spec_.n_stages) {
  const ScheduleTraits& traits = traits_of(cfg_.schedule);
  if (!traits.flush) {
    // Flushless schedules stream through run_flushless() (stale-weight
    // semantics, device-local inline updates); step()/run() train
    // synchronously and reject them. The streaming builder supports plain
    // single-pipeline static programs with a per-tensor base optimizer.
    PF_CHECK(spec_.n_pipelines == 1 && !spec_.dynamic_order &&
             !spec_.split_backward)
        << cfg_.schedule
        << ": run_flushless() streams single-pipeline static schedules only";
    PF_CHECK(!cfg_.use_kfac)
        << cfg_.schedule
        << ": flushless streaming has no step boundary to anchor K-FAC "
           "curvature refreshes — use a flush schedule for PipeFisher runs";
    PF_CHECK(!cfg_.copy_stashes)
        << cfg_.schedule << ": flushless streaming needs borrow-mode "
                            "stashes (memory stays O(in-flight micros))";
  }
  PF_CHECK(!(spec_.split_backward && cfg_.copy_stashes))
      << cfg_.schedule << ": the deferred W pass reads the harvested "
                          "borrow-mode stashes (copy mode blanks a_l)";
  PF_CHECK(spec_.n_pipelines <= 2)
      << cfg_.schedule << " maps " << spec_.n_pipelines
      << " pipelines onto the devices; the executable runtime supports at "
         "most 2 (bidirectional Chimera) — registry, perf model, and "
         "simulator cover more (use simulate_step)";
  PF_CHECK(cfg_.n_micro >= 1 && cfg_.micro_batch_size >= 1);
  PF_CHECK(cfg_.stage_threads >= 1);
  PF_CHECK(cfg_.workers >= 0);
  if (!cfg_.base_optimizer)
    cfg_.base_optimizer = [] { return std::make_unique<Lamb>(); };

  // Event order: static programs, or the greedy simulator's realized order
  // for dynamic schedules (unit §3.3 costs T_b = 2·T_f). Static orders are
  // honored exactly (head-of-line chaining below); dynamic schedules run
  // greedily with the order as dispatch priority — which is what
  // `dynamic_order` means in the simulator too.
  if (spec_.dynamic_order) {
    device_order_ = simulate_step(spec_, StepCosts{}).realized_programs;
  } else {
    device_order_ = spec_.programs;
  }
  normalize_backward_order(device_order_);

  pipeline_of_micro_.assign(static_cast<std::size_t>(spec_.n_micro), 0);
  for (int pl = 0; pl < spec_.n_pipelines; ++pl)
    for (const int m : spec_.micros_of_pipeline[static_cast<std::size_t>(pl)])
      pipeline_of_micro_[static_cast<std::size_t>(m)] = pl;

  const std::size_t workers = cfg_.workers > 0
                                  ? static_cast<std::size_t>(cfg_.workers)
                                  : static_cast<std::size_t>(spec_.n_devices);
  pool_ = std::make_unique<ThreadPool>(workers);

  const int S = spec_.n_stages;
  for (int s = 0; s + 1 < S; ++s) {
    fwd_ch_.push_back(std::make_unique<StageChannel>(
        format("fwd[%d->%d]", s, s + 1)));
    bwd_ch_.push_back(std::make_unique<StageChannel>(
        format("bwd[%d->%d]", s + 1, s)));
  }
  for (int s = 0; s < S; ++s) {
    BertStage& st = partition_.stage(s);
    st.set_copy_stashes(cfg_.copy_stashes);
    stage_params_.push_back(st.params());
    arenas_.push_back(std::make_unique<ArenaAllocator>());
    stage_ctx_.emplace_back(cfg_.stage_threads, cfg_.stage_threads,
                            RngPartition::kSequential, pool_.get());
    stage_ctx_.back().set_arena(arenas_.back().get());
    stage_opt_.push_back(cfg_.base_optimizer());
    const auto kl = st.kfac_linears();
    // The engines' GEMM/Cholesky row blocks dispatch on the runtime pool —
    // bubble K-FAC work stays inside the `workers` budget.
    engines_.push_back(
        cfg_.use_kfac && !kl.empty()
            ? std::make_unique<KfacEngine>(kl, cfg_.kfac.kfac, pool_.get())
            : nullptr);
  }
  last_memory_stats_.resize(static_cast<std::size_t>(S));
}

BertLossBreakdown PipelineRuntime::step() {
  PF_CHECK(traits_of(cfg_.schedule).flush)
      << cfg_.schedule
      << " is flushless: stream it with run_flushless() instead";
  const int S = spec_.n_stages;
  const int N = spec_.n_micro;
  const int D = spec_.n_devices;
  const bool split = spec_.split_backward;

  // --- Step preamble: exactly the serial Trainer's ---------------------
  // Draw the micro-batches in the serial order (same RNG progression).
  std::vector<BertBatch> batches;
  batches.reserve(static_cast<std::size_t>(N));
  for (int m = 0; m < N; ++m)
    batches.push_back(batcher_.next_batch(cfg_.micro_batch_size, data_rng_));
  for (auto& sp : stage_params_) zero_grads(sp);
  const double lr = cfg_.lr.lr(t_);
  const bool curv_step =
      cfg_.use_kfac && t_ % cfg_.kfac.curvature_interval == 0;
  const bool inv_step = cfg_.use_kfac && t_ % cfg_.kfac.inverse_interval == 0;
  // Entry reset (not just exit): a step that threw mid-flight leaves
  // stashes and channel boxes populated — clearing here keeps a retried
  // step() reporting its own errors instead of phantom duplicates.
  std::vector<ArenaAllocator::Stats> arena_before(
      static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    partition_.stage(s).clear_stash(arenas_[si].get());
    partition_.stage(s).reset_stash_stats();
    arena_before[si] = arenas_[si]->stats();
  }
  for (auto& ch : fwd_ch_) ch->clear();
  for (auto& ch : bwd_ch_) ch->clear();

  // --- Build the step's task graph -------------------------------------
  TaskExecutor ex(*pool_, static_cast<std::size_t>(D));
  std::vector<TaskMeta> meta;
  auto add_task = [&](std::function<void()> fn, std::size_t lane,
                      long priority, std::vector<std::size_t> deps,
                      int resource, TaskMeta m) -> std::size_t {
    const std::size_t id =
        ex.add(std::move(fn), lane, priority, std::move(deps), resource);
    PF_ASSERT(id == meta.size());
    m.device = lane;
    meta.push_back(m);
    return id;
  };

  // Event-order position of every op on its device = its dispatch priority.
  std::map<long, long> op_priority;
  std::size_t planned_ops = 0;
  for (const auto& prog : device_order_) {
    for (std::size_t i = 0; i < prog.size(); ++i)
      op_priority[op_key(prog[i])] = static_cast<long>(i);
    planned_ops += prog.size();
  }
  std::size_t n_w_ops = 0;
  for (const auto& op : spec_.all_ops())
    if (op.type == OpType::kBackwardWeight) ++n_w_ops;
  PF_CHECK(planned_ops == spec_.all_ops().size() - n_w_ops)
      << "event order does not cover the schedule's F/B ops";

  std::map<long, std::size_t> op_task;  // op_key -> executor task id
  auto pl_of = [&](int m) { return pipeline_of_micro_[static_cast<std::size_t>(m)]; };

  // Pipeline-op dependencies, expressed over PipeOps:
  //   forward(pl, s, m):  forward(pl, s-1, m)            [activation]
  //   backward(pl, s, m): forward(pl, s, m)              [stashed caches]
  //                       backward(pl, s+1, m)           [grad-activation]
  //                       backward(*, s, prev micro)     [grad fold order]
  //   static schedules:   the device's previous program op [event order]
  auto op_deps = [&](const PipeOp& op) {
    std::vector<PipeOp> deps;
    if (op.type == OpType::kForward) {
      if (op.stage > 0)
        deps.push_back({OpType::kForward, op.pipeline, op.stage - 1, op.micro});
    } else {
      deps.push_back({OpType::kForward, op.pipeline, op.stage, op.micro});
      if (op.stage + 1 < S)
        deps.push_back(
            {OpType::kBackward, op.pipeline, op.stage + 1, op.micro});
      if (op.micro > 0)
        deps.push_back(
            {OpType::kBackward, pl_of(op.micro - 1), op.stage, op.micro - 1});
    }
    return deps;
  };

  auto make_op_task = [&](const PipeOp& op, std::vector<std::size_t> deps) {
    const int s = op.stage;
    const int m = op.micro;
    BertStage* stage = &partition_.stage(s);
    const ExecContext* ctx = &stage_ctx_[static_cast<std::size_t>(s)];
    const auto lane =
        static_cast<std::size_t>(spec_.device_of(op.pipeline, s));
    std::function<void()> body;
    if (op.type == OpType::kForward) {
      body = [this, stage, ctx, s, m, S, &batches] {
        Matrix in;
        if (s > 0) in = fwd_ch_[static_cast<std::size_t>(s - 1)]->take(m);
        Matrix out = stage->forward(m, batches[static_cast<std::size_t>(m)],
                                    std::move(in), *ctx);
        if (s + 1 < S)
          fwd_ch_[static_cast<std::size_t>(s)]->send(m, std::move(out));
      };
    } else {
      // Curvature tasks read the stashes only on refresh steps of K-FAC
      // stages; otherwise backward releases this micro's activations —
      // except under split_backward, where the harvested {a_l, e_l} pairs
      // must survive until the micro's deferred W pass reads them (the W
      // task then releases non-curvature stashes itself).
      const bool keep_stash =
          curv_step && engines_[static_cast<std::size_t>(s)] != nullptr;
      body = [this, stage, ctx, s, m, S, keep_stash, split, &batches] {
        Matrix gin;
        if (s + 1 < S) gin = bwd_ch_[static_cast<std::size_t>(s)]->take(m);
        Matrix gout = stage->backward(m, batches[static_cast<std::size_t>(m)],
                                      std::move(gin), *ctx, keep_stash,
                                      /*defer_dw=*/split);
        if (s > 0)
          bwd_ch_[static_cast<std::size_t>(s - 1)]->send(m, std::move(gout));
      };
    }
    TaskMeta tm;
    tm.kind = op.type == OpType::kForward ? WorkKind::kForward
                                          : WorkKind::kBackward;
    tm.stage = s;
    tm.micro = m;
    tm.op = op;
    tm.is_op = true;
    op_task[op_key(op)] = add_task(std::move(body), lane,
                                   op_priority.at(op_key(op)),
                                   std::move(deps), /*resource=*/s, tm);
  };

  // Create op tasks in a topological order (the executor requires
  // dependencies to exist before their dependents).
  if (spec_.dynamic_order) {
    // Greedy schedules execute by priority, not program chains, so any
    // topological order works for creation: forwards by (micro, stage),
    // then backwards by (micro asc, stage desc) — every dependency above
    // (upstream forward, own forward, downstream backward, previous-micro
    // backward) precedes its dependent in this order.
    for (int m = 0; m < N; ++m)
      for (int s = 0; s < S; ++s) {
        const PipeOp op{OpType::kForward, pl_of(m), s, m};
        std::vector<std::size_t> dep_ids;
        for (const PipeOp& dep : op_deps(op))
          dep_ids.push_back(op_task.at(op_key(dep)));
        make_op_task(op, std::move(dep_ids));
      }
    for (int m = 0; m < N; ++m)
      for (int s = S - 1; s >= 0; --s) {
        const PipeOp op{OpType::kBackward, pl_of(m), s, m};
        std::vector<std::size_t> dep_ids;
        for (const PipeOp& dep : op_deps(op))
          dep_ids.push_back(op_task.at(op_key(dep)));
        make_op_task(op, std::move(dep_ids));
      }
  } else {
    // Static schedules honor their programs exactly: each op additionally
    // depends on the previous op of its device program (head-of-line), so
    // the realized order IS the planned order. Creation sweeps the
    // programs; a schedule whose program fights the gradient-fold order
    // (normalize_backward_order prevents this for the built-ins) fails
    // loudly instead of deadlocking.
    std::vector<std::size_t> next_in_prog(device_order_.size(), 0);
    std::size_t remaining = planned_ops;
    while (remaining > 0) {
      bool progress = false;
      for (std::size_t d = 0; d < device_order_.size(); ++d) {
        while (next_in_prog[d] < device_order_[d].size()) {
          const PipeOp& op = device_order_[d][next_in_prog[d]];
          std::vector<PipeOp> deps = op_deps(op);
          if (next_in_prog[d] > 0)
            deps.push_back(device_order_[d][next_in_prog[d] - 1]);
          std::vector<std::size_t> dep_ids;
          bool ready = true;
          for (const PipeOp& dep : deps) {
            const auto it = op_task.find(op_key(dep));
            if (it == op_task.end()) {
              ready = false;
              break;
            }
            dep_ids.push_back(it->second);
          }
          if (!ready) break;
          make_op_task(op, std::move(dep_ids));
          ++next_in_prog[d];
          --remaining;
          progress = true;
        }
      }
      PF_CHECK(progress)
          << cfg_.schedule
          << ": event order and gradient-fold order form a cycle";
    }
  }

  // Deferred W passes (split_backward): one task per (stage, micro),
  // chained per stage in ascending global micro order — the same fold
  // order the B chain enforces, so every dW coordinate accumulates in the
  // serial trainer's sequence. Deps: the micro's own B pass (which
  // harvested the {a_l, e_l} caches) plus the chain predecessor. Priority
  // kWeightPriorityBase sits above every program position: a lane runs a W
  // only when none of its pipeline ops is runnable, exactly like the
  // simulator's floating W pools fill realized idle gaps.
  if (split) {
    for (int s = 0; s < S; ++s) {
      BertStage* stage = &partition_.stage(s);
      const ExecContext* ctx = &stage_ctx_[static_cast<std::size_t>(s)];
      ArenaAllocator* arena = arenas_[static_cast<std::size_t>(s)].get();
      const bool keep_stash =
          curv_step && engines_[static_cast<std::size_t>(s)] != nullptr;
      std::size_t prev_w = 0;
      for (int m = 0; m < N; ++m) {
        const int pl = pl_of(m);
        const PipeOp op{OpType::kBackwardWeight, pl, s, m};
        std::vector<std::size_t> deps = {
            op_task.at(op_key({OpType::kBackward, pl, s, m}))};
        if (m > 0) deps.push_back(prev_w);
        auto body = [stage, ctx, m, keep_stash, arena] {
          stage->backward_dw(m, *ctx, /*release=*/!keep_stash, arena);
        };
        TaskMeta tm;
        tm.kind = WorkKind::kBackwardWeight;
        tm.stage = s;
        tm.micro = m;
        tm.op = op;
        tm.is_op = true;
        const auto lane = static_cast<std::size_t>(spec_.device_of(pl, s));
        prev_w = add_task(std::move(body), lane, kWeightPriorityBase + m,
                          std::move(deps), /*resource=*/s, tm);
        op_task[op_key(op)] = prev_w;
      }
    }
  }

  std::vector<std::size_t> last_bwd(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    const int m = N - 1;
    // Under split_backward the gradients are final only after the stage's
    // last deferred W pass; its chain already folds every earlier W.
    last_bwd[static_cast<std::size_t>(s)] = op_task.at(op_key(
        {split ? OpType::kBackwardWeight : OpType::kBackward, pl_of(m), s,
         m}));
  }

  // Step tail per stage: owner-computes gradient finalization (the serial
  // trainer's g *= 1/n_micro), then K-FAC preconditions, then the stage's
  // base optimizer step.
  const double inv = 1.0 / static_cast<double>(N);
  std::vector<std::size_t> grad_final(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    const auto owner = static_cast<std::size_t>(spec_.device_of(0, s));
    auto body = [this, s, inv, N] {
      if (N > 1)
        for (Param* p : stage_params_[static_cast<std::size_t>(s)])
          p->g *= inv;
    };
    TaskMeta tm;
    tm.kind = WorkKind::kSyncGrad;
    tm.stage = s;
    grad_final[static_cast<std::size_t>(s)] =
        add_task(std::move(body), owner, kTailPriorityBase + s,
                 {last_bwd[static_cast<std::size_t>(s)]}, /*resource=*/-1, tm);
  }

  // K-FAC work items, BubbleTask-shaped (the executable analog of
  // core/kfac_work.cpp's generation rules + core/bubble_assigner's
  // readiness dispatch). kfac_plan_ mirrors every task for introspection;
  // realized durations are filled in after the run.
  kfac_plan_.clear();
  std::vector<std::size_t> kfac_exec_id;
  std::vector<std::vector<std::size_t>> stage_precond(
      static_cast<std::size_t>(S));
  long kfac_seq = 0;
  auto add_kfac = [&](BubbleTask shape, std::function<void()> body,
                      std::vector<std::size_t> extra_deps, int resource) {
    shape.id = kfac_plan_.size();
    std::vector<std::size_t> deps = std::move(extra_deps);
    for (const std::size_t d : shape.deps) deps.push_back(kfac_exec_id[d]);
    TaskMeta tm;
    tm.kind = shape.kind;
    tm.stage = shape.stage;
    tm.micro = shape.micro;
    tm.layer = shape.layer;
    tm.factor = shape.factor;
    const std::size_t id =
        add_task(std::move(body), shape.device,
                 kKfacPriorityBase + kfac_seq++, std::move(deps), resource, tm);
    kfac_exec_id.push_back(id);
    kfac_plan_.push_back(std::move(shape));
    return kfac_plan_.size() - 1;
  };

  for (int s = 0; s < S; ++s) {
    KfacEngine* engine = engines_[static_cast<std::size_t>(s)].get();
    if (engine == nullptr) continue;
    BertStage* stage = &partition_.stage(s);
    const auto owner = static_cast<std::size_t>(spec_.device_of(0, s));
    for (std::size_t f = 0; f < engine->n_layers(); ++f) {
      std::size_t commit_id = 0;
      bool has_commit = false;
      if (curv_step) {
        // Curvature per (factor, micro): A after the forward, B after the
        // backward, each chained per factor in ascending micro order so the
        // pending sums fold in the serial order.
        std::size_t prev_a = 0, prev_b = 0;
        bool chain_a = false, chain_b = false;
        for (int m = 0; m < N; ++m) {
          const int pl = pl_of(m);
          const auto dev = static_cast<std::size_t>(spec_.device_of(pl, s));
          BubbleTask ca;
          ca.device = dev;
          ca.kind = WorkKind::kCurvatureA;
          ca.stage = s;
          ca.micro = m;
          // Trace labels only (block, linear-within-block); the 6-per-
          // block layout is asserted loudly by BertStagePartition.
          ca.layer = static_cast<int>(f / 6);
          ca.factor = static_cast<int>(f % 6);
          if (chain_a) ca.deps.push_back(prev_a);
          prev_a = add_kfac(
              ca,
              [engine, stage, f, m] {
                engine->accumulate_curvature_a(f, stage->kfac_input(m, f));
              },
              {op_task.at(op_key({OpType::kForward, pl, s, m}))},
              /*resource=*/s);
          chain_a = true;

          BubbleTask cb = ca;
          cb.deps.clear();
          cb.kind = WorkKind::kCurvatureB;
          if (chain_b) cb.deps.push_back(prev_b);
          prev_b = add_kfac(
              cb,
              [engine, stage, f, m] {
                engine->accumulate_curvature_b(f,
                                               stage->kfac_output_grad(m, f));
              },
              {op_task.at(op_key({OpType::kBackward, pl, s, m}))},
              /*resource=*/s);
          chain_b = true;
        }
        BubbleTask cm;
        cm.device = owner;
        // The EMA fold merges the factor's per-micro contributions before
        // inversion — the single-process analog of sync-curvature, and
        // distinct from the curvature GEMMs in the executed trace.
        cm.kind = WorkKind::kSyncCurvature;
        cm.stage = s;
        cm.layer = static_cast<int>(f / 6);
        cm.factor = static_cast<int>(f % 6);
        cm.deps = {prev_a, prev_b};
        cm.splittable = false;
        commit_id = add_kfac(
            cm, [engine, f] { engine->commit_curvature_layer(f); }, {},
            /*resource=*/-1);
        has_commit = true;
      }
      std::size_t precond_gate = 0;
      bool has_gate = false;
      if (inv_step) {
        BubbleTask ia;
        ia.device = owner;
        ia.kind = WorkKind::kInversionA;
        ia.stage = s;
        ia.layer = static_cast<int>(f / 6);
        ia.factor = static_cast<int>(f % 6);
        ia.splittable = false;
        if (has_commit) ia.deps.push_back(commit_id);
        const std::size_t inv_a = add_kfac(
            ia, [engine, f] { engine->update_inverse_factor(f, false); }, {},
            /*resource=*/-1);
        BubbleTask ib = ia;
        ib.kind = WorkKind::kInversionB;
        ib.deps = {inv_a};
        precond_gate = add_kfac(
            ib, [engine, f] { engine->update_inverse_factor(f, true); }, {},
            /*resource=*/-1);
        has_gate = true;
      } else if (has_commit) {
        precond_gate = commit_id;
        has_gate = true;
      }
      // Precondition every step (stale inverses allowed), after the stage's
      // gradients are final.
      BubbleTask pc;
      pc.device = owner;
      pc.kind = WorkKind::kPrecondition;
      pc.stage = s;
      pc.layer = static_cast<int>(f / 6);
      pc.factor = static_cast<int>(f % 6);
      pc.splittable = false;
      if (has_gate) pc.deps.push_back(precond_gate);
      const std::size_t pcid = add_kfac(
          pc, [engine, f] { engine->precondition_layer(f); },
          {grad_final[static_cast<std::size_t>(s)]}, /*resource=*/-1);
      stage_precond[static_cast<std::size_t>(s)].push_back(
          kfac_exec_id[pcid]);
    }
  }

  // Per-stage optimizer update closes the step.
  for (int s = 0; s < S; ++s) {
    const auto owner = static_cast<std::size_t>(spec_.device_of(0, s));
    std::vector<std::size_t> deps = {grad_final[static_cast<std::size_t>(s)]};
    for (const std::size_t p : stage_precond[static_cast<std::size_t>(s)])
      deps.push_back(p);
    auto body = [this, s, lr] {
      stage_opt_[static_cast<std::size_t>(s)]->step(
          stage_params_[static_cast<std::size_t>(s)], lr);
    };
    TaskMeta tm;
    tm.kind = WorkKind::kOptimizerUpdate;
    tm.stage = s;
    add_task(std::move(body), owner, kTailPriorityBase + S + s,
             std::move(deps), /*resource=*/s, tm);
  }

  // --- Execute ----------------------------------------------------------
  ex.run();
  last_records_ = ex.records();
  last_meta_ = std::move(meta);

  // Realized timeline: per-device intervals sorted by wall-clock start.
  last_timeline_ = Timeline(static_cast<std::size_t>(D));
  {
    std::vector<std::vector<std::size_t>> by_dev(static_cast<std::size_t>(D));
    for (std::size_t i = 0; i < last_records_.size(); ++i)
      if (last_records_[i].executed)
        by_dev[last_meta_[i].device].push_back(i);
    double makespan = 0.0;
    for (auto& ids : by_dev) {
      std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
        return last_records_[a].start < last_records_[b].start;
      });
      for (const std::size_t i : ids) {
        const TaskMeta& tm = last_meta_[i];
        last_timeline_.add(Interval{.device = tm.device,
                                    .start = last_records_[i].start,
                                    .end = last_records_[i].end,
                                    .kind = tm.kind,
                                    .stage = tm.stage,
                                    .micro = tm.micro,
                                    .layer = tm.layer,
                                    .factor = tm.factor});
        makespan = std::max(makespan, last_records_[i].end);
      }
    }
    last_wall_seconds_ = makespan;
  }
  // Realized durations back into the BubbleTask plan.
  for (std::size_t i = 0; i < kfac_plan_.size(); ++i) {
    const auto& rec = last_records_[kfac_exec_id[i]];
    kfac_plan_[i].earliest_start = rec.start;
    kfac_plan_[i].duration = rec.end - rec.start;
  }

  // --- Step epilogue: losses in micro order, stash cleanup --------------
  BertLossBreakdown total{};
  BertStage& last_stage = partition_.stage(S - 1);
  for (int m = 0; m < N; ++m) {
    const auto l = last_stage.losses(m);
    total.total += l.total;
    total.mlm += l.mlm;
    total.nsp += l.nsp;
  }
  total.total *= inv;
  total.mlm *= inv;
  total.nsp *= inv;
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    // Stash high-water mark first (clear_stash zeroes the running count,
    // not the peak), then park the surviving K-FAC stashes in the arena so
    // the next step's forwards recycle them.
    last_memory_stats_[si].peak_stash_bytes =
        partition_.stage(s).peak_stash_bytes();
    partition_.stage(s).clear_stash(arenas_[si].get());
    const auto now = arenas_[si]->stats();
    last_memory_stats_[si].arena_recycled =
        now.recycled - arena_before[si].recycled;
    last_memory_stats_[si].arena_fresh = now.fresh - arena_before[si].fresh;
    last_memory_stats_[si].arena_free_bytes = now.free_bytes;
  }
  for (const auto& ch : fwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered activations";
  for (const auto& ch : bwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered gradients";
  ++t_;
  return total;
}

TrainTrace PipelineRuntime::run() {
  TrainTrace trace;
  trace.loss.reserve(cfg_.total_steps);
  for (std::size_t i = 0; i < cfg_.total_steps; ++i) {
    trace.lr.push_back(cfg_.lr.lr(t_));
    const auto l = step();
    trace.loss.push_back(l.total);
    trace.mlm_loss.push_back(l.mlm);
    trace.nsp_loss.push_back(l.nsp);
  }
  return trace;
}

TrainTrace PipelineRuntime::run_flushless() {
  PF_CHECK(!traits_of(cfg_.schedule).flush)
      << cfg_.schedule << " flushes at step boundaries: use run()";
  PF_CHECK(t_ == 0) << "run_flushless() streams once per runtime instance";
  const int S = spec_.n_stages;
  const int N = spec_.n_micro;
  const int D = spec_.n_devices;
  const int steps = static_cast<int>(cfg_.total_steps);
  PF_CHECK(steps >= 1);
  const int G = N * steps;

  // One streaming program over every step: the per-step 1F1B program with
  // N·steps global micros. Warmup and drain exist only at stream entry and
  // exit; the interior is the steady state a flush would repeatedly break.
  ScheduleSpec stream = make_1f1b(S, G);
  std::vector<std::vector<PipeOp>> order = stream.programs;
  normalize_backward_order(order);

  // Micro-batches drawn up front in the serial order.
  std::vector<BertBatch> batches;
  batches.reserve(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g)
    batches.push_back(batcher_.next_batch(cfg_.micro_batch_size, data_rng_));
  for (auto& sp : stage_params_) zero_grads(sp);
  for (int s = 0; s < S; ++s) {
    const auto si = static_cast<std::size_t>(s);
    partition_.stage(s).clear_stash(arenas_[si].get());
    partition_.stage(s).reset_stash_stats();
  }
  for (auto& ch : fwd_ch_) ch->clear();
  for (auto& ch : bwd_ch_) ch->clear();

  fl_fwd_ver_.assign(static_cast<std::size_t>(S),
                     std::vector<int>(static_cast<std::size_t>(G), 0));
  fl_bwd_ver_.assign(static_cast<std::size_t>(S),
                     std::vector<int>(static_cast<std::size_t>(G), 0));
  // Inline updates applied per stage so far. Only tasks on stage s's lane
  // touch slot s (head-of-line chained), so plain ints are race-free.
  std::vector<int> version(static_cast<std::size_t>(S), 0);
  const double inv = 1.0 / static_cast<double>(N);

  TaskExecutor ex(*pool_, static_cast<std::size_t>(D));
  std::map<long, std::size_t> op_task;
  // Creation sweep like step()'s static path: ops join their device chain
  // in program order, with the stage's inline update spliced in right
  // after its step-closing backward — everything that reads or writes the
  // stage's weights stays on one serialized chain.
  std::vector<std::size_t> next(order.size(), 0);
  std::vector<bool> has_prev(static_cast<std::size_t>(D), false);
  std::vector<std::size_t> prev_task(static_cast<std::size_t>(D), 0);
  std::vector<long> prio(static_cast<std::size_t>(D), 0);
  std::size_t remaining = 0;
  for (const auto& p : order) remaining += p.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t d = 0; d < order.size(); ++d) {
      while (next[d] < order[d].size()) {
        const PipeOp& op = order[d][next[d]];
        const int s = op.stage;
        const int g = op.micro;
        const auto si = static_cast<std::size_t>(s);
        std::vector<PipeOp> pdeps;
        if (op.type == OpType::kForward) {
          if (s > 0) pdeps.push_back({OpType::kForward, 0, s - 1, g});
        } else {
          pdeps.push_back({OpType::kForward, 0, s, g});
          if (s + 1 < S) pdeps.push_back({OpType::kBackward, 0, s + 1, g});
        }
        std::vector<std::size_t> dep_ids;
        bool ready = true;
        for (const PipeOp& dep : pdeps) {
          const auto it = op_task.find(op_key(dep));
          if (it == op_task.end()) {
            ready = false;
            break;
          }
          dep_ids.push_back(it->second);
        }
        if (!ready) break;
        if (has_prev[d]) dep_ids.push_back(prev_task[d]);
        BertStage* stage = &partition_.stage(s);
        const ExecContext* ctx = &stage_ctx_[si];
        std::function<void()> body;
        if (op.type == OpType::kForward) {
          body = [this, stage, ctx, s, g, S, si, &batches, &version] {
            fl_fwd_ver_[si][static_cast<std::size_t>(g)] = version[si];
            Matrix in;
            if (s > 0) in = fwd_ch_[si - 1]->take(g);
            Matrix out = stage->forward(
                g, batches[static_cast<std::size_t>(g)], std::move(in), *ctx);
            if (s + 1 < S) fwd_ch_[si]->send(g, std::move(out));
          };
        } else {
          // keep_kfac_stash = false: nothing reads the stashes later, so
          // in-flight memory stays O(D) micros for the whole stream.
          body = [this, stage, ctx, s, g, S, si, &batches, &version] {
            fl_bwd_ver_[si][static_cast<std::size_t>(g)] = version[si];
            Matrix gin;
            if (s + 1 < S) gin = bwd_ch_[si]->take(g);
            Matrix gout = stage->backward(
                g, batches[static_cast<std::size_t>(g)], std::move(gin), *ctx,
                /*keep_kfac_stash=*/false);
            if (s > 0) bwd_ch_[si - 1]->send(g, std::move(gout));
          };
        }
        prev_task[d] = ex.add(std::move(body), d, prio[d]++,
                              std::move(dep_ids), /*resource=*/s);
        has_prev[d] = true;
        op_task[op_key(op)] = prev_task[d];
        ++next[d];
        --remaining;
        progress = true;
        if (op.type == OpType::kBackward && (g + 1) % N == 0) {
          // Device-local update closing step k for this stage: fold the
          // accumulated gradients, step the per-stage optimizer at the
          // step's LR, re-zero for the next step's fold, bump the version.
          const int k = g / N;
          auto update = [this, si, k, inv, N, &version] {
            if (N > 1)
              for (Param* p : stage_params_[si]) p->g *= inv;
            stage_opt_[si]->step(stage_params_[si], cfg_.lr.lr(
                static_cast<std::size_t>(k)));
            zero_grads(stage_params_[si]);
            ++version[si];
          };
          prev_task[d] = ex.add(std::move(update), d, prio[d]++,
                                {prev_task[d]}, /*resource=*/s);
        }
      }
    }
    PF_CHECK(progress) << cfg_.schedule << ": flushless stream deadlocked";
  }

  ex.run();

  TrainTrace trace;
  BertStage& last_stage = partition_.stage(S - 1);
  for (int k = 0; k < steps; ++k) {
    trace.lr.push_back(cfg_.lr.lr(static_cast<std::size_t>(k)));
    BertLossBreakdown sum{};
    for (int m = 0; m < N; ++m) {
      const auto l = last_stage.losses(k * N + m);
      sum.total += l.total;
      sum.mlm += l.mlm;
      sum.nsp += l.nsp;
    }
    trace.loss.push_back(sum.total * inv);
    trace.mlm_loss.push_back(sum.mlm * inv);
    trace.nsp_loss.push_back(sum.nsp * inv);
  }
  for (int s = 0; s < S; ++s)
    partition_.stage(s).clear_stash(arenas_[static_cast<std::size_t>(s)].get());
  for (const auto& ch : fwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered activations";
  for (const auto& ch : bwd_ch_)
    PF_CHECK(ch->pending() == 0) << ch->name() << ": undelivered gradients";
  t_ = static_cast<std::size_t>(steps);
  return trace;
}

std::vector<std::vector<PipeOp>> PipelineRuntime::last_realized_order() const {
  std::vector<std::vector<PipeOp>> out(
      static_cast<std::size_t>(spec_.n_devices));
  std::vector<std::vector<std::size_t>> by_dev(
      static_cast<std::size_t>(spec_.n_devices));
  for (std::size_t i = 0; i < last_records_.size(); ++i)
    if (last_records_[i].executed && last_meta_[i].is_op)
      by_dev[last_meta_[i].device].push_back(i);
  for (std::size_t d = 0; d < by_dev.size(); ++d) {
    auto& ids = by_dev[d];
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return last_records_[a].start < last_records_[b].start;
    });
    for (const std::size_t i : ids) out[d].push_back(last_meta_[i].op);
  }
  return out;
}

std::vector<int> PipelineRuntime::forward_send_order(int boundary) const {
  PF_CHECK(boundary >= 0 &&
           static_cast<std::size_t>(boundary) < fwd_ch_.size());
  return fwd_ch_[static_cast<std::size_t>(boundary)]->send_order();
}

std::vector<int> PipelineRuntime::backward_send_order(int boundary) const {
  PF_CHECK(boundary >= 0 &&
           static_cast<std::size_t>(boundary) < bwd_ch_.size());
  return bwd_ch_[static_cast<std::size_t>(boundary)]->send_order();
}

}  // namespace pf
