#include "src/train/multiproc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#ifndef _WIN32
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "src/comm/tensor_wire.h"
#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/pipeline/simulator.h"

namespace pf {

namespace {

ScheduleParams mp_params(const PipelineRuntimeConfig& cfg) {
  ScheduleParams p;
  p.n_stages = cfg.n_stages;
  p.n_micro = cfg.n_micro;
  p.virtual_chunks = cfg.virtual_chunks;
  return p;
}

// Nearest-rank percentile over a non-empty sample (serve/serving_engine.h
// keeps its own copy; duplicated here to keep the launcher's dependency
// surface to the training stack).
double nearest_rank(std::vector<double> xs, double pct) {
  std::sort(xs.begin(), xs.end());
  std::size_t k = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(xs.size())));
  if (k == 0) k = 1;
  return xs[k - 1];
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

MultiprocResult run_multiproc(BertModel& model, const MlmBatcher& batcher,
                              const MultiprocConfig& mcfg) {
#ifdef _WIN32
  (void)model;
  (void)batcher;
  (void)mcfg;
  PF_CHECK(false) << "run_multiproc requires fork() (POSIX only)";
#else
  PipelineRuntimeConfig cfg = mcfg.runtime;
  PF_CHECK(traits_of(cfg.schedule).flush)
      << cfg.schedule
      << ": multiproc runs synchronous steps only (flushless schedules "
         "stream in-process via run_flushless)";
  ScheduleSpec spec = build_schedule(cfg.schedule, mp_params(cfg));
  PF_CHECK(spec.n_pipelines == 1)
      << cfg.schedule << ": the shm rings are SPSC — " << spec.n_pipelines
      << " pipelines put two producer devices on one boundary";
  PF_CHECK(!(spec.split_backward && cfg.copy_stashes))
      << cfg.schedule << ": the deferred W pass reads the harvested "
                         "borrow-mode stashes (copy mode blanks a_l)";
  PF_CHECK(cfg.n_micro >= 1 && cfg.micro_batch_size >= 1);
  PF_CHECK(cfg.stage_threads >= 1);
  PF_CHECK(cfg.total_steps >= 1);
  PF_CHECK(mcfg.channel_timeout_seconds > 0.0);
  if (!cfg.base_optimizer)
    cfg.base_optimizer = [] { return std::make_unique<Lamb>(); };

  // Event order, identical to the in-process runtime's: static programs,
  // or the greedy simulator's realized order for dynamic schedules —
  // computed ONCE, pre-fork, so every child inherits the same order.
  std::vector<std::vector<PipeOp>> device_order =
      spec.dynamic_order ? simulate_step(spec, StepCosts{}).realized_programs
                         : spec.programs;
  normalize_backward_order(device_order);

  const int S = spec.n_stages;
  const int N = spec.n_micro;
  const int D = spec.n_devices;
  const int steps = static_cast<int>(cfg.total_steps);

  // Stage ownership: the device whose program runs the stage's ops. The
  // plan builder puts a stage's K-FAC and tail tasks on the same lane, so
  // filtering plan tasks by lane == d covers everything stage s does.
  std::vector<int> owner(static_cast<std::size_t>(S), -1);
  for (int d = 0; d < D; ++d)
    for (const PipeOp& op : device_order[static_cast<std::size_t>(d)]) {
      int& o = owner[static_cast<std::size_t>(op.stage)];
      PF_CHECK(o == -1 || o == d)
          << cfg.schedule << ": stage " << op.stage
          << " runs on two devices — not a single-pipeline placement";
      o = d;
    }
  for (int s = 0; s < S; ++s)
    PF_CHECK(owner[static_cast<std::size_t>(s)] >= 0)
        << "stage " << s << " appears in no device program";

  BertStagePartition partition(model, S);

  // Tracked K-FAC factor count per stage — the plan builder's input,
  // computable without constructing engines (each child builds engines for
  // its own stages only, after the fork).
  std::vector<std::size_t> factors(static_cast<std::size_t>(S), 0);
  if (cfg.use_kfac)
    for (int s = 0; s < S; ++s)
      factors[static_cast<std::size_t>(s)] =
          partition.stage(s).kfac_linears().size();

  // Rings, created pre-fork in MAP_SHARED regions: every child inherits
  // the same mapping at the same address. At most N messages are in
  // flight per boundary+direction (a producer's next-step sends
  // transitively depend on the consumer having drained this step's); the
  // +1 slot is slack, not load-bearing.
  const std::size_t slot_bytes = wire_bytes(
      cfg.micro_batch_size * model.config().seq_len, model.config().d_model);
  const std::size_t ring_slots = static_cast<std::size_t>(N) + 1;
  std::vector<SharedRegion> regions;
  std::vector<std::unique_ptr<TransportChannel>> fwd_ch;  // boundary b -> b+1
  std::vector<std::unique_ptr<TransportChannel>> bwd_ch;  // boundary b+1 -> b
  auto make_ch = [&](const std::string& nm) {
    regions.emplace_back(ShmRing::required_bytes(ring_slots, slot_bytes));
    return std::make_unique<TransportChannel>(
        nm, ShmRing::create(regions.back().data(), ring_slots, slot_bytes, nm),
        mcfg.channel_timeout_seconds);
  };
  for (int b = 0; b + 1 < S; ++b) {
    fwd_ch.push_back(make_ch(format("fwd[%d->%d]", b, b + 1)));
    bwd_ch.push_back(make_ch(format("bwd[%d->%d]", b + 1, b)));
  }

  // Result region layout (doubles): per-step losses ‖ final params (flat,
  // stage order == model.params() order) ‖ per-ring handoff stats
  // [waits, p50, p95, mean] (fwd[0..S-2] then bwd[0..S-2]) ‖ per-child
  // step-loop wall seconds. Children write disjoint slices.
  std::vector<std::size_t> stage_param_off(static_cast<std::size_t>(S) + 1, 0);
  for (int s = 0; s < S; ++s) {
    std::size_t n = 0;
    for (const Param* p : partition.stage(s).params()) n += p->w.size();
    stage_param_off[static_cast<std::size_t>(s) + 1] =
        stage_param_off[static_cast<std::size_t>(s)] + n;
  }
  const std::size_t total_param = stage_param_off[static_cast<std::size_t>(S)];
  const std::size_t n_rings = 2 * static_cast<std::size_t>(S - 1);
  const std::size_t losses_off = 0;
  const std::size_t params_off =
      losses_off + static_cast<std::size_t>(steps) * 3;
  const std::size_t handoff_off = params_off + total_param;
  const std::size_t wall_off = handoff_off + n_rings * 4;
  const std::size_t total_doubles = wall_off + static_cast<std::size_t>(D);
  SharedRegion results(total_doubles * sizeof(double));
  double* res = static_cast<double*>(results.data());
  std::fill(res, res + total_doubles, 0.0);

  // --- Child body --------------------------------------------------------
  // Executes the step plan filtered to lane == d in ascending plan index.
  // Every dependency edge points at a smaller index, so per-lane index
  // order is a linear extension of the global DAG: a blocked recv()'s
  // producer always lies at a smaller index on a lane that has not passed
  // it — progress is guaranteed, and the gradient-fold order the bitwise
  // contract needs is exactly the plan's.
  auto child_main = [&](int d) {
    std::vector<int> owned;
    for (int s = 0; s < S; ++s)
      if (owner[static_cast<std::size_t>(s)] == d) owned.push_back(s);

    // Fresh pool AFTER the fork — an inherited pool has state but no
    // threads. Engines and contexts must use this pool, never the
    // process-global one (which would lazily spawn per-child thread herds).
    ThreadPool pool(cfg.stage_threads > 1
                        ? static_cast<std::size_t>(cfg.stage_threads)
                        : 0);
    std::vector<std::unique_ptr<ArenaAllocator>> arenas(
        static_cast<std::size_t>(S));
    std::vector<std::unique_ptr<ExecContext>> ctxs(
        static_cast<std::size_t>(S));
    std::vector<std::unique_ptr<KfacEngine>> engines(
        static_cast<std::size_t>(S));
    std::vector<std::unique_ptr<Optimizer>> opts(static_cast<std::size_t>(S));
    std::vector<std::vector<Param*>> sparams(static_cast<std::size_t>(S));
    for (const int s : owned) {
      const auto si = static_cast<std::size_t>(s);
      BertStage& st = partition.stage(s);
      st.set_copy_stashes(cfg.copy_stashes);
      sparams[si] = st.params();
      arenas[si] = std::make_unique<ArenaAllocator>();
      ctxs[si] = std::make_unique<ExecContext>(
          cfg.stage_threads, cfg.stage_threads, RngPartition::kSequential,
          &pool);
      ctxs[si]->set_arena(arenas[si].get());
      opts[si] = cfg.base_optimizer();
      const auto kl = st.kfac_linears();
      if (cfg.use_kfac && !kl.empty())
        engines[si] = std::make_unique<KfacEngine>(kl, cfg.kfac.kfac, &pool);
    }

    // Every child re-draws the FULL deterministic batch stream — identical
    // bytes in every process, no batch shipping, RNG in lockstep with the
    // serial Trainer and the in-process runtime.
    Rng data_rng(cfg.data_seed);
    const double inv = 1.0 / static_cast<double>(N);
    const bool owns_last = owner[static_cast<std::size_t>(S - 1)] == d;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < steps; ++t) {
      std::vector<BertBatch> batches;
      batches.reserve(static_cast<std::size_t>(N));
      for (int m = 0; m < N; ++m)
        batches.push_back(batcher.next_batch(cfg.micro_batch_size, data_rng));
      for (const int s : owned)
        zero_grads(sparams[static_cast<std::size_t>(s)]);
      const double lr = cfg.lr.lr(static_cast<std::size_t>(t));
      const bool curv_step =
          cfg.use_kfac &&
          static_cast<std::size_t>(t) % cfg.kfac.curvature_interval == 0;
      const bool inv_step =
          cfg.use_kfac &&
          static_cast<std::size_t>(t) % cfg.kfac.inverse_interval == 0;
      for (const int s : owned)
        partition.stage(s).clear_stash(arenas[static_cast<std::size_t>(s)].get());

      const StepPlan plan =
          build_step_plan(spec, device_order, factors, curv_step, inv_step);
      for (const PlannedTask& pt : plan.tasks) {
        if (pt.lane != static_cast<std::size_t>(d)) continue;
        const int s = pt.stage;
        const int m = pt.micro;
        const auto si = static_cast<std::size_t>(s);
        BertStage* stage = &partition.stage(s);
        const ExecContext& ctx = *ctxs[si];
        KfacEngine* engine = engines[si].get();
        const std::size_t f =
            pt.layer >= 0 ? static_cast<std::size_t>(pt.layer) * 6 +
                                static_cast<std::size_t>(pt.factor)
                          : 0;
        const bool keep_stash = curv_step && engine != nullptr;
        // Channels are keyed by GLOBAL micro and never cleared between
        // steps: a fast producer's next-step sends may land while a slow
        // consumer still drains this step — a step-boundary clear would
        // wipe them.
        const int g = t * N + m;
        switch (pt.kind) {
          case WorkKind::kForward: {
            Matrix in;
            if (s > 0)
              in = fwd_ch[si - 1]->recv(g, mcfg.channel_timeout_seconds);
            Matrix out = stage->forward(
                m, batches[static_cast<std::size_t>(m)], std::move(in), ctx);
            if (s + 1 < S) fwd_ch[si]->send(g, std::move(out));
            break;
          }
          case WorkKind::kBackward: {
            Matrix gin;
            if (s + 1 < S)
              gin = bwd_ch[si]->recv(g, mcfg.channel_timeout_seconds);
            Matrix gout = stage->backward(
                m, batches[static_cast<std::size_t>(m)], std::move(gin), ctx,
                keep_stash, /*defer_dw=*/spec.split_backward);
            if (s > 0) bwd_ch[si - 1]->send(g, std::move(gout));
            break;
          }
          case WorkKind::kBackwardWeight:
            stage->backward_dw(m, ctx, /*release=*/!keep_stash,
                               arenas[si].get());
            break;
          case WorkKind::kSyncGrad:
            if (N > 1)
              for (Param* p : sparams[si]) p->g *= inv;
            break;
          case WorkKind::kCurvatureA:
            PF_CHECK(engine != nullptr);
            engine->accumulate_curvature_a(f, stage->kfac_input(m, f));
            break;
          case WorkKind::kCurvatureB:
            PF_CHECK(engine != nullptr);
            engine->accumulate_curvature_b(f, stage->kfac_output_grad(m, f));
            break;
          case WorkKind::kSyncCurvature:
            PF_CHECK(engine != nullptr);
            engine->commit_curvature_layer(f);
            break;
          case WorkKind::kInversionA:
            PF_CHECK(engine != nullptr);
            engine->update_inverse_factor(f, false);
            break;
          case WorkKind::kInversionB:
            PF_CHECK(engine != nullptr);
            engine->update_inverse_factor(f, true);
            break;
          case WorkKind::kPrecondition:
            PF_CHECK(engine != nullptr);
            engine->precondition_layer(f);
            break;
          case WorkKind::kOptimizerUpdate:
            opts[si]->step(sparams[si], lr);
            break;
          default:
            PF_CHECK(false) << "unexpected kind in multiproc step plan";
        }
      }

      if (owns_last) {
        BertLossBreakdown sum{};
        for (int m = 0; m < N; ++m) {
          const auto l = partition.stage(S - 1).losses(m);
          sum.total += l.total;
          sum.mlm += l.mlm;
          sum.nsp += l.nsp;
        }
        double* out = res + losses_off + static_cast<std::size_t>(t) * 3;
        out[0] = sum.total * inv;
        out[1] = sum.mlm * inv;
        out[2] = sum.nsp * inv;
      }
      for (const int s : owned)
        partition.stage(s).clear_stash(arenas[static_cast<std::size_t>(s)].get());
    }
    const double wall = seconds_since(t0);

    for (const int s : owned) {
      const auto si = static_cast<std::size_t>(s);
      double* dst = res + params_off + stage_param_off[si];
      for (const Param* p : sparams[si]) {
        std::copy(p->w.data(), p->w.data() + p->w.size(), dst);
        dst += p->w.size();
      }
    }
    // Handoff stats for the consumer endpoints this child held: fwd[b] is
    // consumed by owner(b+1), bwd[b] by owner(b).
    auto write_stats = [&](std::size_t ring_idx, const TransportChannel& ch) {
      const std::vector<double> w = ch.recv_wait_seconds();
      double* out = res + handoff_off + ring_idx * 4;
      out[0] = static_cast<double>(w.size());
      if (!w.empty()) {
        out[1] = nearest_rank(w, 50.0);
        out[2] = nearest_rank(w, 95.0);
        double sum = 0.0;
        for (const double x : w) sum += x;
        out[3] = sum / static_cast<double>(w.size());
      }
    };
    for (int b = 0; b + 1 < S; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      if (owner[bi + 1] == d) write_stats(bi, *fwd_ch[bi]);
      if (owner[bi] == d)
        write_stats(static_cast<std::size_t>(S - 1) + bi, *bwd_ch[bi]);
    }
    res[wall_off + static_cast<std::size_t>(d)] = wall;
  };

  // --- Fork, run, join ----------------------------------------------------
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(D));
  for (int d = 0; d < D; ++d) {
    const pid_t pid = fork();
    PF_CHECK(pid >= 0) << "fork failed for device " << d;
    if (pid == 0) {
      int rc = 0;
      try {
        child_main(d);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[multiproc child %d] %s\n", d, e.what());
        rc = 1;
      } catch (...) {
        std::fprintf(stderr, "[multiproc child %d] unknown exception\n", d);
        rc = 2;
      }
      std::fflush(nullptr);
      // _exit: skip atexit/static destructors — the parent's state is not
      // ours to tear down, and the shared-region writes are already
      // visible (same physical pages).
      _exit(rc);
    }
    pids.push_back(pid);
  }
  std::string failures;
  for (int d = 0; d < D; ++d) {
    int status = 0;
    const pid_t r = waitpid(pids[static_cast<std::size_t>(d)], &status, 0);
    PF_CHECK(r == pids[static_cast<std::size_t>(d)]) << "waitpid failed";
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
    if (WIFEXITED(status))
      failures += format(" child %d exited %d;", d, WEXITSTATUS(status));
    else if (WIFSIGNALED(status))
      failures += format(" child %d killed by signal %d;", d, WTERMSIG(status));
    else
      failures += format(" child %d: unexpected status %d;", d, status);
  }
  PF_CHECK(failures.empty())
      << "multiproc run failed:" << failures << " (see stderr above)";

  // --- Assemble -----------------------------------------------------------
  MultiprocResult out;
  out.n_processes = D;
  for (int t = 0; t < steps; ++t) {
    const double* l = res + losses_off + static_cast<std::size_t>(t) * 3;
    out.trace.lr.push_back(cfg.lr.lr(static_cast<std::size_t>(t)));
    out.trace.loss.push_back(l[0]);
    out.trace.mlm_loss.push_back(l[1]);
    out.trace.nsp_loss.push_back(l[2]);
  }
  const double* src = res + params_off;
  for (int s = 0; s < S; ++s)
    for (const Param* p : partition.stage(s).params()) {
      out.params.emplace_back(src, src + p->w.size());
      src += p->w.size();
    }
  for (std::size_t r = 0; r < n_rings; ++r) {
    const double* h = res + handoff_off + r * 4;
    MultiprocHandoff mh;
    const auto b = static_cast<int>(r < static_cast<std::size_t>(S - 1)
                                        ? r
                                        : r - static_cast<std::size_t>(S - 1));
    mh.channel = r < static_cast<std::size_t>(S - 1)
                     ? format("fwd[%d->%d]", b, b + 1)
                     : format("bwd[%d->%d]", b + 1, b);
    mh.waits = static_cast<std::size_t>(h[0]);
    mh.wait_p50 = h[1];
    mh.wait_p95 = h[2];
    mh.wait_mean = h[3];
    out.handoff.push_back(std::move(mh));
  }
  for (int d = 0; d < D; ++d)
    out.wall_seconds =
        std::max(out.wall_seconds, res[wall_off + static_cast<std::size_t>(d)]);
  return out;
#endif
}

}  // namespace pf
