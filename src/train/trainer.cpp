#include "src/train/trainer.h"

#include "src/common/check.h"
#include "src/common/stats.h"

namespace pf {

double TrainTrace::final_loss_smoothed(std::size_t half_window) const {
  PF_CHECK(!loss.empty());
  const auto smoothed = smooth_moving_average(loss, half_window);
  return smoothed.back();
}

Trainer::Trainer(BertModel& model, const MlmBatcher& batcher,
                 std::unique_ptr<Optimizer> optimizer,
                 const TrainerConfig& cfg)
    : model_(model),
      batcher_(batcher),
      opt_(std::move(optimizer)),
      cfg_(cfg),
      data_rng_(cfg.data_seed) {
  PF_CHECK(opt_ != nullptr);
}

BertLossBreakdown Trainer::step() {
  PF_CHECK(cfg_.accumulation_steps >= 1);
  const auto params = model_.params();
  zero_grads(params);
  BertLossBreakdown total{};
  for (std::size_t a = 0; a < cfg_.accumulation_steps; ++a) {
    const auto batch = batcher_.next_batch(cfg_.batch_size, data_rng_);
    const auto losses = model_.train_step_backward(batch, cfg_.exec);
    total.total += losses.total;
    total.mlm += losses.mlm;
    total.nsp += losses.nsp;
    // Let curvature-hungry optimizers see every micro-batch's caches (the
    // K-FAC per-micro curvature mode; a no-op for everything else).
    opt_->on_micro_batch();
  }
  const double inv = 1.0 / static_cast<double>(cfg_.accumulation_steps);
  total.total *= inv;
  total.mlm *= inv;
  total.nsp *= inv;
  if (cfg_.accumulation_steps > 1)
    for (Param* p : params) p->g *= inv;
  opt_->step(params, cfg_.schedule.lr(t_));
  ++t_;
  return total;
}

TrainTrace Trainer::run() {
  TrainTrace trace;
  trace.loss.reserve(cfg_.total_steps);
  for (std::size_t i = 0; i < cfg_.total_steps; ++i) {
    trace.lr.push_back(cfg_.schedule.lr(t_));
    const auto l = step();
    trace.loss.push_back(l.total);
    trace.mlm_loss.push_back(l.mlm);
    trace.nsp_loss.push_back(l.nsp);
  }
  return trace;
}

}  // namespace pf
