#include "src/train/convergence.h"

#include "src/common/check.h"
#include "src/common/stats.h"

namespace pf {

ConvergenceComparison compare_convergence(const TrainTrace& baseline,
                                          const TrainTrace& challenger,
                                          double baseline_step_time,
                                          double challenger_step_time,
                                          std::size_t smooth_half_window,
                                          std::size_t ignore_first) {
  PF_CHECK(!baseline.loss.empty() && !challenger.loss.empty());
  ConvergenceComparison out;
  const auto base_smooth =
      smooth_moving_average(baseline.loss, smooth_half_window);
  const auto chal_smooth =
      smooth_moving_average(challenger.loss, smooth_half_window);
  out.baseline_final_loss = base_smooth.back();
  out.baseline_steps = static_cast<long>(baseline.loss.size());
  out.challenger_steps_to_match = first_index_at_or_below(
      chal_smooth, out.baseline_final_loss, ignore_first);
  if (out.challenger_steps_to_match < 0) {
    // Challenger never reached the baseline loss within its run.
    out.step_fraction = 1.0;
    out.baseline_time =
        static_cast<double>(out.baseline_steps) * baseline_step_time;
    out.challenger_time =
        static_cast<double>(challenger.loss.size()) * challenger_step_time;
    out.time_fraction = out.challenger_time / out.baseline_time;
    return out;
  }
  out.step_fraction = static_cast<double>(out.challenger_steps_to_match) /
                      static_cast<double>(out.baseline_steps);
  out.baseline_time =
      static_cast<double>(out.baseline_steps) * baseline_step_time;
  out.challenger_time =
      static_cast<double>(out.challenger_steps_to_match) *
      challenger_step_time;
  out.time_fraction = out.challenger_time / out.baseline_time;
  return out;
}

}  // namespace pf
