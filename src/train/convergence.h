// Convergence analysis for the Figure 7 reproduction: steps-to-target-loss
// on smoothed curves (the paper smooths with a zero-phase Butterworth
// filter and ignores the early-transient fluctuations), and the conversion
// of step counts to simulated wall-clock using pipeline-level per-step
// times (the paper's "simulated training time" methodology).
#pragma once

#include "src/train/trainer.h"

namespace pf {

struct ConvergenceComparison {
  double baseline_final_loss = 0.0;  // smoothed final loss of the baseline
  long baseline_steps = -1;          // = total steps of the baseline run
  long challenger_steps_to_match = -1;  // first step challenger ≤ that loss
  double step_fraction = 1.0;           // challenger/baseline steps

  // Simulated wall-clock, given per-step times (paper Figure 7 right).
  double baseline_time = 0.0;
  double challenger_time = 0.0;
  double time_fraction = 1.0;
};

// Compares a challenger (K-FAC) trace against a baseline (NVLAMB) trace:
// finds where the challenger's smoothed loss first reaches the baseline's
// smoothed final loss, then applies per-step times.
ConvergenceComparison compare_convergence(const TrainTrace& baseline,
                                          const TrainTrace& challenger,
                                          double baseline_step_time,
                                          double challenger_step_time,
                                          std::size_t smooth_half_window = 10,
                                          std::size_t ignore_first = 0);

}  // namespace pf
