// Executable pipeline-parallel training runtime: PipeFisher run for REAL.
//
// Where src/core/ packs simulated K-FAC work into a simulated Timeline,
// this module partitions an actual BertModel into stages
// (nn/stage_partition.h), executes every per-micro-batch forward/backward
// as a real task on a thread pool (common/task_executor.h) in the event
// order produced by the schedule registry — gpipe, 1f1b,
// interleaved-1f1b and chimera all drive the same code path — hands
// boundary activations and grad-activations over comm/stage_channel, and
// dispatches the K-FAC engine's per-factor/per-micro work items
// (kfac/kfac_engine.h) into the realized idle gaps: K-FAC tasks carry
// lower dispatch priority than pipeline ops, so a device only runs
// curvature/inversion work when none of its pipeline ops is runnable —
// the executable analog of core/bubble_assigner's greedy gap packing,
// with the simulator's readiness rules become task dependencies:
//
//   curvature-A(f, m)  after Forward(stage_of(f), m)   [+ the (f, m-1)
//   curvature-B(f, m)  after Backward(stage_of(f), m)    fold-order chain]
//   commit(f)          after every curvature task of f
//   inversion-A/B(f)   after commit(f)
//   precondition(f)    after inversion-B(f) and the stage's final gradient
//   optimizer(stage)   after every precondition of the stage
//
// Determinism contract (the headline property): a PipelineRuntime run is
// BITWISE identical to the serial `Trainer` with accumulation_steps =
// n_micro (same data seed, micro batch size, LR schedule, and a
// KfacOptimizer with per_micro_curvature = true) at every schedule, stage
// count, worker count and stage thread budget. The mechanisms:
//   * owner-computes reductions — each stage's parameters accumulate
//     gradients directly, and the per-model-stage backward chain forces
//     ascending global micro order: every gradient coordinate sees the
//     serial trainer's exact addition sequence;
//   * fixed handover order — activations cross stage boundaries keyed by
//     micro id; consumers depend on producers, so the values (not the
//     timing) of every handover are schedule-independent;
//   * per-factor fold chains — curvature contributions fold in ascending
//     micro order into the pending factor sums (kfac_engine.h contract);
//   * per-stage optimizers — LAMB's update is per-tensor, so per-stage
//     instances stepping their own parameters reproduce the global step.
//
// Each stage runs under its own ExecContext whose nn/GEMM budget is
// `stage_threads` (every value is bitwise-neutral); the runtime owns a
// dedicated ThreadPool of `workers` threads shared by stage ops, their
// nn-loop fan-out, GEMM/Cholesky row blocks (gemm.h / cholesky.h ctx
// overloads — nothing the stages or the K-FAC engines run dispatches on
// the process-global pool) and the bubble-filled K-FAC work.
//
// Memory: each stage's context carries a private ArenaAllocator
// (common/arena.h). Activation caches and stash traffic draw their
// storage from it and park dead buffers back, so steady-state steps
// recycle instead of malloc'ing; stages report per-step stash high-water
// marks and arena recycle counts through memory_stats().
//
// After each step the runtime exposes the realized execution as a
// trace::Timeline (real wall-clock intervals, one lane per device) for
// comparison against the simulator's predicted schedule.
#pragma once

#include <functional>
#include <memory>

#include "src/comm/stage_channel.h"
#include "src/comm/transport_channel.h"
#include "src/common/arena.h"
#include "src/common/task_executor.h"
#include "src/core/kfac_work.h"
#include "src/data/mlm_batcher.h"
#include "src/nn/stage_partition.h"
#include "src/optim/kfac_optimizer.h"
#include "src/pipeline/schedule_registry.h"
#include "src/pipeline/step_plan.h"
#include "src/train/trainer.h"

namespace pf {

struct PipelineRuntimeConfig {
  std::string schedule = "1f1b";   // any flush schedule in the registry
  int n_stages = 2;                // pipeline depth D (devices)
  int n_micro = 4;                 // micro-batches per step
  int virtual_chunks = 2;          // interleaved-1f1b only
  std::size_t micro_batch_size = 8;
  std::size_t total_steps = 50;
  PolyWarmupSchedule lr{1e-3, 30, 300};
  std::uint64_t data_seed = 99;
  // Per-stage ExecContext budget: nn-loop chunks and GEMM row blocks of
  // every op the stage runs (bitwise-neutral; >= 1).
  int stage_threads = 1;
  // Runtime pool size. 0 = one worker per device. The pool is shared by
  // inter-stage parallelism, the stages' nn-loop fan-out and bubble K-FAC
  // work (GEMM row blocks use the process-global pool — see above).
  int workers = 0;
  bool use_kfac = true;
  // Legacy copy-restore stash semantics (stage_partition.h): restore by
  // deep copy, hold every forward stash to end of step. Only for measuring
  // the stash overhead the default move/borrow path removes.
  bool copy_stashes = false;
  // K-FAC knobs; per_micro_curvature is implied (the runtime always
  // accumulates curvature per micro-batch — the paper's semantics).
  KfacOptimizerOptions kfac;
  // Base optimizer, instantiated once per stage (LAMB by default, per-
  // tensor like the serial reference).
  std::function<std::unique_ptr<Optimizer>()> base_optimizer;
  // Boundary transport: "" resolves through PF_TRANSPORT then defaults to
  // "inproc" (mutex StageChannel). "shm" hands boundary tensors over
  // lock-free shared-memory rings (comm/transport_channel.h) — bitwise
  // identical payloads, single-pipeline schedules only (the rings are
  // SPSC; Chimera puts two producer devices on one boundary).
  std::string transport;
  // Duration-aggregation hook: called after every synchronous step() with
  // the realized wall-clock Timeline. This is how executed durations flow
  // into the perfmodel calibration fit (CalibrationAccumulator::ingest)
  // without the caller having to poll last_executed_timeline() between
  // steps of run(). Not called by run_flushless() (no per-step timeline).
  std::function<void(const Timeline&)> step_observer;
};

class PipelineRuntime {
 public:
  PipelineRuntime(BertModel& model, const MlmBatcher& batcher,
                  const PipelineRuntimeConfig& cfg);

  // One synchronous training step (n_micro micros + flush + optimizer);
  // returns the accumulated losses exactly as Trainer::step does.
  BertLossBreakdown step();

  // cfg.total_steps steps; trace shape identical to Trainer::run().
  TrainTrace run();

  // PipeDream-style flushless streaming (1f1b-flushless): ONE task graph
  // over total_steps · n_micro global micros — the per-step 1F1B program
  // concatenated with no flush between steps — with each stage's optimizer
  // update inlined into its device chain after the stage's N-th backward of
  // every step. Later forwards read whatever weight version their stage has
  // applied by then (the paper's Appendix C.1 stale-weight semantics;
  // tagged below). Bitwise deterministic across worker counts: every
  // read/write of a stage's weights — forward, backward, update — runs on
  // that stage's lane, head-of-line chained. Requires a flushless schedule,
  // use_kfac = false (no step boundary anchors curvature refreshes), and
  // streams once per runtime instance. step()/run() reject flushless
  // schedules; this is their streaming counterpart.
  TrainTrace run_flushless();

  // Weight-version tags of the last run_flushless(): [stage][global micro]
  // = inline updates that stage had applied when its forward/backward of
  // the micro ran. backward_version - forward_version >= 0 is the
  // PipeDream-style staleness (0 everywhere for a synchronous run).
  const std::vector<std::vector<int>>& flushless_forward_versions() const {
    return fl_fwd_ver_;
  }
  const std::vector<std::vector<int>>& flushless_backward_versions() const {
    return fl_bwd_ver_;
  }

  const ScheduleSpec& spec() const { return spec_; }
  int n_model_stages() const { return spec_.n_stages; }
  std::size_t steps_taken() const { return t_; }
  // Resolved boundary transport ("inproc" or "shm").
  const std::string& transport() const { return transport_; }

  // The exact task graph step() would execute for a step with the given
  // K-FAC refresh flags: every lane, priority, resource token and
  // dependency edge, minus the bodies. step() itself attaches bodies to
  // this plan (executor ids == plan indices), so a calibrated virtual-time
  // replay of the plan (perfmodel/calibration.h) predicts the same
  // structure reality runs.
  StepPlan make_step_plan(bool curv_step, bool inv_step) const;
  // Threads that drain the step's task graph: the runtime pool's workers
  // plus the main thread, which participates in TaskExecutor::run(). The
  // concurrency cap a calibrated prediction should replay under.
  std::size_t executor_threads() const { return pool_->n_threads() + 1; }

  // --- Introspection (tests, benches, the example's report) -------------
  // Planned per-device op order (the registry's programs, or the greedy
  // simulator's realized order for dynamic schedules).
  const std::vector<std::vector<PipeOp>>& planned_order() const {
    return device_order_;
  }
  // Per-device op order actually executed last step (sorted by realized
  // start time).
  std::vector<std::vector<PipeOp>> last_realized_order() const;
  // Executed wall-clock timeline of the last step (one lane per device).
  const Timeline& last_executed_timeline() const { return last_timeline_; }
  double last_step_wall_seconds() const { return last_wall_seconds_; }
  // The last step's K-FAC work items, BubbleTask-shaped: deps index into
  // the same vector; durations are the realized seconds.
  const std::vector<BubbleTask>& last_kfac_plan() const {
    return kfac_plan_;
  }
  // Realized handover order on a boundary (micro ids in send order).
  std::vector<int> forward_send_order(int boundary) const;
  std::vector<int> backward_send_order(int boundary) const;
  // Per-stage memory telemetry of the last step: stash high-water mark and
  // the stage arena's recycle/fresh acquisition counts (deltas over the
  // step) plus the bytes parked in it now.
  struct StageMemoryStats {
    std::size_t peak_stash_bytes = 0;
    std::size_t arena_recycled = 0;
    std::size_t arena_fresh = 0;
    std::size_t arena_free_bytes = 0;
  };
  const std::vector<StageMemoryStats>& memory_stats() const {
    return last_memory_stats_;
  }

 private:
  struct TaskMeta {
    std::size_t device = 0;
    WorkKind kind = WorkKind::kForward;
    int stage = -1, micro = -1, layer = -1, factor = -1;
    PipeOp op{};       // valid for kForward/kBackward metas
    bool is_op = false;
  };

  const MlmBatcher& batcher_;
  PipelineRuntimeConfig cfg_;
  Rng data_rng_;
  ScheduleSpec spec_;
  BertStagePartition partition_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<ArenaAllocator>> arenas_;  // one per stage
  std::vector<std::vector<PipeOp>> device_order_;
  std::vector<int> pipeline_of_micro_;
  std::vector<ExecContext> stage_ctx_;
  std::vector<std::vector<Param*>> stage_params_;
  std::vector<std::unique_ptr<KfacEngine>> engines_;   // per stage, may be null
  std::vector<std::unique_ptr<Optimizer>> stage_opt_;
  std::string transport_;                         // resolved backend
  std::vector<SharedRegion> regions_;             // ring storage (shm only)
  std::vector<std::unique_ptr<Channel>> fwd_ch_;  // boundary s -> s+1
  std::vector<std::unique_ptr<Channel>> bwd_ch_;  // boundary s+1 -> s
  std::vector<BubbleTask> kfac_plan_;
  std::vector<TaskMeta> last_meta_;
  std::vector<TaskExecutor::Record> last_records_;
  Timeline last_timeline_;
  std::vector<StageMemoryStats> last_memory_stats_;
  double last_wall_seconds_ = 0.0;
  std::vector<std::vector<int>> fl_fwd_ver_, fl_bwd_ver_;
  std::size_t t_ = 0;
};

}  // namespace pf
