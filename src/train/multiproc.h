// Multi-process stage placement: fork one OS process per pipeline device
// and run the SAME step plan the in-process runtime executes, with every
// boundary tensor crossing a lock-free shared-memory ring
// (comm/shm_ring.h + comm/transport_channel.h) instead of an in-process
// channel.
//
// Execution model. The parent builds everything address-sensitive BEFORE
// forking — the model (weights become copy-on-write in every child), the
// stage partition, one SPSC ring per boundary+direction in
// MAP_SHARED|MAP_ANONYMOUS regions, and a shared result region — then
// forks spec.n_devices children. Child d executes the step plan
// (pipeline/step_plan.h, the exact graph PipelineRuntime::step() runs)
// filtered to tasks with lane == d, in ascending plan index. Because every
// dependency edge points at a smaller plan index, per-lane index order is
// a valid linear extension of the global DAG: whenever a child blocks in
// recv(), the producing task has a smaller index on some other lane whose
// child is not past it, so progress is guaranteed (no cross-process
// deadlock) and the gradient-fold deps that pin bitwise determinism are
// honored.
//
// Channels are keyed by GLOBAL micro id g = step·n_micro + m and never
// cleared between steps — a child may race one step ahead of a slow peer,
// and its sends must land in the ring, not be wiped by the laggard's step
// boundary. The rings stay bounded regardless: a producer's step-(t+1)
// sends transitively depend (through its own optimizer and backward
// chain) on the consumer having drained every step-t message, so at most
// n_micro messages are ever in flight per ring.
//
// Data path: each child re-draws the full deterministic batch stream from
// its own Rng(data_seed) — identical bytes in every process, no batch
// shipping. Each child builds its own ThreadPool/ExecContexts/KfacEngines/
// optimizers AFTER the fork (a forked child inherits a pool's state but
// none of its threads; engines must be handed the child's pool, never the
// process-global one). Results flow back through the shared region: the
// last stage's owner writes per-step losses, every child writes its owned
// stages' final parameters and its consumer-side handoff-wait stats, and
// the parent joins exit codes and assembles the result.
//
// Bitwise contract (pinned in tests/test_multiproc.cpp): losses and final
// parameters equal the in-process PipelineRuntime and the serial Trainer
// at every schedule × stages × micros probed, LAMB and K-FAC alike.
//
// Fork safety: call from a parent whose own threads are quiescent (glibc's
// malloc is fork-safe via atexit handlers; our locks must simply not be
// held at fork, which a single-threaded caller guarantees).
#pragma once

#include <string>
#include <vector>

#include "src/train/pipeline_runtime.h"

namespace pf {

struct MultiprocConfig {
  // Schedule/model/optimizer knobs, shared with the in-process runtime.
  // `workers` is ignored (parallelism comes from one process per device;
  // stage_threads is each child's intra-stage budget) and `transport` is
  // ignored (the wire is always the shm ring — that is the point).
  PipelineRuntimeConfig runtime;
  // Bound on every blocking channel wait (recv and ring-full sends). A
  // peer that stalls longer is a bug (or a dead child) and surfaces as a
  // pf::Error naming the channel, micro and pending keys.
  double channel_timeout_seconds = 120.0;
};

// Consumer-endpoint handoff accounting for one ring (waits that actually
// blocked; a recv satisfied from the reorder box costs nothing).
struct MultiprocHandoff {
  std::string channel;     // e.g. "fwd[0->1]"
  std::size_t waits = 0;   // recv() calls that blocked on the ring
  double wait_p50 = 0.0;   // seconds, nearest-rank over blocked waits
  double wait_p95 = 0.0;
  double wait_mean = 0.0;
};

struct MultiprocResult {
  // Per-step losses + LR, shaped exactly like Trainer::run()'s trace.
  TrainTrace trace;
  // Final parameter values, one vector per tensor in model.params() order
  // (the concatenation of the stages' params — pinned equal to the model
  // ordering in test_stage_partition).
  std::vector<std::vector<double>> params;
  // One entry per ring, fwd[0..S-2] then bwd[0..S-2].
  std::vector<MultiprocHandoff> handoff;
  // Slowest child's step-loop wall time (fork/model-build excluded) — the
  // multi-process analog of summing PipelineRuntime step makespans.
  double wall_seconds = 0.0;
  int n_processes = 0;
};

// Runs cfg.runtime.total_steps synchronous steps across one forked process
// per device and returns the joined result. The parent's `model` is left
// untouched (children mutate copy-on-write pages); read the trained
// parameters from the result. Throws pf::Error if any child exits
// non-zero, with the child's stderr already on the parent's stderr.
MultiprocResult run_multiproc(BertModel& model, const MlmBatcher& batcher,
                              const MultiprocConfig& cfg);

}  // namespace pf
