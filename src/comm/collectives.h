// Analytic collective-communication models (alpha-beta cost model).
//
// The paper's distributed K-FAC variants rely on three collectives:
// sync-grad (allreduce of gradients), sync-curvature (allreduce of
// Kronecker factors), and the broadcast/allgather of inverses under
// inversion parallelism. This module models their cost for the standard
// algorithms so the simulator can charge realistic times:
//
//   ring allreduce            2(w-1)/w · n/β + 2(w-1)·α
//   recursive halving-doubling  ~2 n/β + 2 log2(w)·α  (w power of two)
//   binomial-tree broadcast    ceil(log2 w) · (α + n/β)
//   ring allgather            (w-1)/w · n/β + (w-1)·α
//
// with α = per-message latency and β = link bandwidth. Small messages favor
// recursive doubling (fewer rounds), large ones the ring (bandwidth
// optimal) — allreduce_best() picks the cheaper, which is what NCCL's
// autotuner effectively does.
#pragma once

#include <cstddef>

namespace pf {

struct LinkModel {
  double bandwidth;  // bytes/s per direction
  double latency;    // seconds per message
};

double ring_allreduce_time(const LinkModel& link, double bytes,
                           std::size_t world);
double recursive_doubling_allreduce_time(const LinkModel& link, double bytes,
                                         std::size_t world);
double allreduce_best_time(const LinkModel& link, double bytes,
                           std::size_t world);
double broadcast_time(const LinkModel& link, double bytes, std::size_t world);
double ring_allgather_time(const LinkModel& link, double bytes,
                           std::size_t world);
double p2p_time(const LinkModel& link, double bytes);

// Message size at which the ring starts beating recursive doubling.
double allreduce_crossover_bytes(const LinkModel& link, std::size_t world);

}  // namespace pf
