// Channel implementation over the lock-free shared-memory ring — the wire
// behind comm/stage_channel.h's micro-keyed contract.
//
// A TransportChannel is one endpoint handle onto one ShmRing
// (boundary+direction). The producer side serializes the Matrix straight
// into the acquired ring slot (tensor_wire.h — the only copies on the
// whole path are the memcpy into shared memory and the one out); the
// consumer side drains arrived messages into a local reorder box keyed by
// micro id, because schedules consume micros in their own order while the
// ring is strictly FIFO.
//
// Endpoint state (the send log, the reorder box, wait-latency samples) is
// process-local: in-process both lanes share one TransportChannel object;
// across fork() each process's inherited copy becomes its own endpoint
// over the same ring, so send_order() reports what THIS process sent and
// pending() counts the local box plus in-flight wire messages.
//
// SPSC contract inherited from the ring: one sending thread, one receiving
// thread per channel. Every single-pipeline schedule satisfies this (the
// producer stage's lane is the unique sender); the runtime PF_CHECKs
// n_pipelines == 1 before selecting this transport. The small endpoint
// mutexes below only guard the process-local bookkeeping against
// introspection calls (pending()/send_order() from the main thread after a
// run) — the cross-thread/cross-process handoff itself is the lock-free
// ring.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/comm/shm_ring.h"
#include "src/comm/stage_channel.h"

namespace pf {

class TransportChannel : public Channel {
 public:
  // `ring` is a view over a region some creator formatted (the runtime or
  // the multiproc launcher). `send_timeout_seconds` bounds ring-full waits.
  TransportChannel(std::string name, ShmRing ring,
                   double send_timeout_seconds = 60.0);

  void send(int micro, Matrix payload) override;
  Matrix take(int micro) override;
  Matrix recv(int micro, double timeout_seconds = 60.0) override;
  bool has(int micro) const override;
  std::size_t pending() const override;
  std::vector<int> send_order() const override;
  void clear() override;
  const std::string& name() const override { return name_; }

  // Seconds recv() spent blocked per call that actually waited — the
  // realized handoff latency seen by this consumer endpoint (feeds the
  // multiproc per-boundary stats and the calibration accumulator).
  std::vector<double> recv_wait_seconds() const;

 private:
  // Moves every message already on the wire into the reorder box.
  void drain_available() const;

  std::string name_;
  mutable ShmRing ring_;
  double send_timeout_;

  mutable std::mutex send_mu_;  // producer-endpoint bookkeeping
  std::vector<int> order_;
  std::set<int> sent_;

  mutable std::mutex box_mu_;  // consumer-endpoint bookkeeping
  mutable std::map<int, Matrix> box_;
  mutable std::vector<double> waits_;
};

// Transport selection: "" resolves through the PF_TRANSPORT environment
// variable, then defaults to "inproc". Valid values: "inproc" (mutex
// StageChannel), "shm" (TransportChannel over a ShmRing). Throws pf::Error
// on anything else.
std::string resolve_transport(const std::string& requested);

}  // namespace pf
