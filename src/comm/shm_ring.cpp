#include "src/comm/shm_ring.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include <sys/mman.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

#include "src/common/check.h"

namespace pf {

// ---------------------------------------------------------------------------
// SharedRegion

SharedRegion::SharedRegion(std::size_t bytes) : bytes_(bytes) {
  PF_CHECK(bytes > 0) << "SharedRegion: zero-byte mapping";
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  PF_CHECK(p != MAP_FAILED)
      << "SharedRegion: mmap of " << bytes << " bytes failed";
  data_ = p;
}

SharedRegion::~SharedRegion() {
  if (data_ != nullptr) ::munmap(data_, bytes_);
}

SharedRegion::SharedRegion(SharedRegion&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)), bytes_(std::exchange(o.bytes_, 0)) {}

SharedRegion& SharedRegion::operator=(SharedRegion&& o) noexcept {
  if (this != &o) {
    if (data_ != nullptr) ::munmap(data_, bytes_);
    data_ = std::exchange(o.data_, nullptr);
    bytes_ = std::exchange(o.bytes_, 0);
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Futex-parked waiting

namespace {

constexpr int kSpinIters = 4096;
// A lost wakeup (benign race between the waiter-count check and the park)
// costs at most one slice, never a hang.
constexpr double kParkSliceSeconds = 0.002;

double now_monotonic() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef __linux__
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

void park_on(std::atomic<std::uint32_t>* word, std::uint32_t expected,
             double max_seconds) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(max_seconds);
  ts.tv_nsec = static_cast<long>((max_seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
            expected, &ts, nullptr, 0);
}

void wake_all(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
            INT32_MAX, nullptr, nullptr, 0);
}
#else
void park_on(std::atomic<std::uint32_t>* word, std::uint32_t expected,
             double max_seconds) {
  (void)word;
  (void)expected;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      std::min(max_seconds, 100e-6)));
}

void wake_all(std::atomic<std::uint32_t>*) {}
#endif

}  // namespace

// ---------------------------------------------------------------------------
// Ring layout

struct ShmRing::Header {
  std::uint64_t magic = 0;
  std::uint64_t slot_count = 0;
  std::uint64_t slot_bytes = 0;
  std::uint64_t slot_stride = 0;
  // Published message count (producer-owned) and consumed count
  // (consumer-owned), on their own cache lines so the two sides never
  // false-share.
  alignas(64) std::atomic<std::uint64_t> tail{0};
  alignas(64) std::atomic<std::uint64_t> head{0};
  // Wake words: bumped by the owning side after every publish/consume;
  // waiter counts gate the wake syscall to the contended case.
  alignas(64) std::atomic<std::uint32_t> tail_seq{0};
  std::atomic<std::uint32_t> tail_waiters{0};
  alignas(64) std::atomic<std::uint32_t> head_seq{0};
  std::atomic<std::uint32_t> head_waiters{0};
};

struct ShmRing::Slot {
  std::uint64_t len = 0;
  // Payload bytes follow at +sizeof(std::uint64_t); stride keeps slots
  // cache-line aligned.
};

namespace {
constexpr std::uint64_t kRingMagic = 0x5046'5249'4e47'3031ULL;  // PFRING01

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}
}  // namespace

std::size_t ShmRing::slots_offset() { return align_up(sizeof(Header), 64); }

std::size_t ShmRing::required_bytes(std::size_t slot_count,
                                    std::size_t slot_bytes) {
  PF_CHECK(slot_count >= 1) << "ShmRing: slot_count must be >= 1";
  const std::size_t stride = align_up(sizeof(std::uint64_t) + slot_bytes, 64);
  return slots_offset() + slot_count * stride;
}

ShmRing ShmRing::create(void* mem, std::size_t slot_count,
                        std::size_t slot_bytes, std::string name) {
  PF_CHECK(mem != nullptr);
  auto* h = new (mem) Header();
  h->slot_count = slot_count;
  h->slot_bytes = slot_bytes;
  h->slot_stride = align_up(sizeof(std::uint64_t) + slot_bytes, 64);
  // Magic last: an attach() racing create() sees either no ring or a
  // fully-formed one. (In practice creation happens before fork/threads.)
  h->magic = kRingMagic;
  ShmRing r;
  r.h_ = h;
  r.name_ = std::move(name);
  return r;
}

ShmRing ShmRing::attach(void* mem, std::string name) {
  PF_CHECK(mem != nullptr);
  auto* h = static_cast<Header*>(mem);
  PF_CHECK(h->magic == kRingMagic)
      << name << ": attach to a region with no formatted ring";
  ShmRing r;
  r.h_ = h;
  r.name_ = std::move(name);
  return r;
}

ShmRing::Slot* ShmRing::slot(std::uint64_t index) const {
  auto* base = reinterpret_cast<unsigned char*>(h_);
  return reinterpret_cast<Slot*>(base + slots_offset() +
                                 (index % h_->slot_count) * h_->slot_stride);
}

std::size_t ShmRing::slot_count() const { return h_->slot_count; }
std::size_t ShmRing::slot_bytes() const { return h_->slot_bytes; }

std::size_t ShmRing::size() const {
  return static_cast<std::size_t>(
      h_->tail.load(std::memory_order_acquire) -
      h_->head.load(std::memory_order_acquire));
}

unsigned char* ShmRing::acquire_slot(double timeout_seconds) {
  PF_CHECK(h_ != nullptr) << "ShmRing: unattached view";
  const std::uint64_t t = h_->tail.load(std::memory_order_relaxed);
  auto has_room = [&] {
    return t - h_->head.load(std::memory_order_seq_cst) < h_->slot_count;
  };
  if (!has_room()) {
    for (int i = 0; i < kSpinIters && !has_room(); ++i)
      std::this_thread::yield();
    const double deadline = now_monotonic() + timeout_seconds;
    while (!has_room()) {
      h_->head_waiters.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t seq = h_->head_seq.load(std::memory_order_seq_cst);
      if (!has_room()) {
        const double left = deadline - now_monotonic();
        if (left <= 0) {
          h_->head_waiters.fetch_sub(1, std::memory_order_seq_cst);
          PF_CHECK(false)
              << name_ << ": producer timed out after " << timeout_seconds
              << "s waiting for a free slot (all " << h_->slot_count
              << " full — consumer stalled or dead)";
        }
        park_on(&h_->head_seq, seq, std::min(left, kParkSliceSeconds));
      }
      h_->head_waiters.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  return reinterpret_cast<unsigned char*>(slot(t)) + sizeof(std::uint64_t);
}

void ShmRing::publish(std::size_t len) {
  const std::uint64_t t = h_->tail.load(std::memory_order_relaxed);
  PF_CHECK(len <= h_->slot_bytes)
      << name_ << ": publish of " << len << " bytes into " << h_->slot_bytes
      << "-byte slots";
  slot(t)->len = len;
  // The release store is the happens-before edge carrying the slot bytes
  // (and len) to the consumer's acquire load of tail.
  h_->tail.store(t + 1, std::memory_order_release);
  h_->tail_seq.fetch_add(1, std::memory_order_seq_cst);
  if (h_->tail_waiters.load(std::memory_order_seq_cst) > 0)
    wake_all(&h_->tail_seq);
}

const unsigned char* ShmRing::try_peek(std::size_t* len) {
  PF_CHECK(h_ != nullptr) << "ShmRing: unattached view";
  const std::uint64_t hd = h_->head.load(std::memory_order_relaxed);
  if (h_->tail.load(std::memory_order_acquire) == hd) return nullptr;
  Slot* sl = slot(hd);
  *len = sl->len;
  return reinterpret_cast<const unsigned char*>(sl) + sizeof(std::uint64_t);
}

const unsigned char* ShmRing::peek(std::size_t* len, double timeout_seconds) {
  PF_CHECK(h_ != nullptr) << "ShmRing: unattached view";
  const std::uint64_t hd = h_->head.load(std::memory_order_relaxed);
  auto ready = [&] {
    return h_->tail.load(std::memory_order_seq_cst) != hd;
  };
  if (!ready()) {
    for (int i = 0; i < kSpinIters && !ready(); ++i) std::this_thread::yield();
    const double deadline = now_monotonic() + timeout_seconds;
    while (!ready()) {
      h_->tail_waiters.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t seq = h_->tail_seq.load(std::memory_order_seq_cst);
      if (!ready()) {
        const double left = deadline - now_monotonic();
        if (left <= 0) {
          h_->tail_waiters.fetch_sub(1, std::memory_order_seq_cst);
          PF_CHECK(false)
              << name_ << ": consumer timed out after " << timeout_seconds
              << "s waiting for a message (producer stalled or dead)";
        }
        park_on(&h_->tail_seq, seq, std::min(left, kParkSliceSeconds));
      }
      h_->tail_waiters.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  Slot* sl = slot(hd);
  *len = sl->len;
  return reinterpret_cast<const unsigned char*>(sl) + sizeof(std::uint64_t);
}

void ShmRing::pop() {
  const std::uint64_t hd = h_->head.load(std::memory_order_relaxed);
  PF_CHECK(h_->tail.load(std::memory_order_acquire) != hd)
      << name_ << ": pop on an empty ring";
  h_->head.store(hd + 1, std::memory_order_release);
  h_->head_seq.fetch_add(1, std::memory_order_seq_cst);
  if (h_->head_waiters.load(std::memory_order_seq_cst) > 0)
    wake_all(&h_->head_seq);
}

}  // namespace pf
