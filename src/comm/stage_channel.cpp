#include "src/comm/stage_channel.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace pf {

StageChannel::StageChannel(std::string name) : name_(std::move(name)) {}

void StageChannel::send(int micro, Matrix payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PF_CHECK(!box_.contains(micro))
        << name_ << ": duplicate send for micro " << micro;
    box_.emplace(micro, std::move(payload));
    order_.push_back(micro);
  }
  cv_.notify_all();
}

Matrix StageChannel::take(int micro) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = box_.find(micro);
  PF_CHECK(it != box_.end())
      << name_ << ": take(" << micro
      << ") before the producer sent it (missing task dependency?)";
  Matrix out = std::move(it->second);
  box_.erase(it);
  return out;
}

Matrix StageChannel::recv(int micro, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool arrived = cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return box_.contains(micro); });
  if (!arrived) {
    // Name the boundary and what IS here: a protocol bug (consumer
    // dispatched before its producer) diagnoses fastest from the set of
    // micros that did arrive and were never claimed.
    std::string pending_keys;
    for (const auto& [k, v] : box_)
      pending_keys += (pending_keys.empty() ? "" : ", ") + std::to_string(k);
    PF_CHECK(false) << name_ << ": recv(" << micro << ") timed out after "
                    << timeout_seconds << "s; pending micros: ["
                    << pending_keys << "]";
  }
  auto it = box_.find(micro);
  Matrix out = std::move(it->second);
  box_.erase(it);
  return out;
}

bool StageChannel::has(int micro) const {
  std::lock_guard<std::mutex> lock(mu_);
  return box_.contains(micro);
}

std::size_t StageChannel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return box_.size();
}

std::vector<int> StageChannel::send_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

void StageChannel::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  box_.clear();
  order_.clear();
}

}  // namespace pf
