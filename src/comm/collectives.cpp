#include "src/comm/collectives.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pf {

namespace {
double log2_ceil(std::size_t w) {
  return std::ceil(std::log2(static_cast<double>(w)));
}
}  // namespace

double ring_allreduce_time(const LinkModel& link, double bytes,
                           std::size_t world) {
  PF_CHECK(bytes >= 0.0 && world >= 1);
  if (world == 1) return 0.0;
  const double w = static_cast<double>(world);
  // Reduce-scatter + allgather: each phase moves (w-1)/w of the data in
  // w-1 latency-bound rounds.
  return 2.0 * (w - 1.0) / w * bytes / link.bandwidth +
         2.0 * (w - 1.0) * link.latency;
}

double recursive_doubling_allreduce_time(const LinkModel& link, double bytes,
                                         std::size_t world) {
  PF_CHECK(bytes >= 0.0 && world >= 1);
  if (world == 1) return 0.0;
  const double rounds = log2_ceil(world);
  // Halving-doubling: ~2·n/β of traffic total, 2·log2(w) rounds.
  return 2.0 * bytes / link.bandwidth + 2.0 * rounds * link.latency;
}

double allreduce_best_time(const LinkModel& link, double bytes,
                           std::size_t world) {
  return std::min(ring_allreduce_time(link, bytes, world),
                  recursive_doubling_allreduce_time(link, bytes, world));
}

double broadcast_time(const LinkModel& link, double bytes,
                      std::size_t world) {
  PF_CHECK(bytes >= 0.0 && world >= 1);
  if (world == 1) return 0.0;
  return log2_ceil(world) * (link.latency + bytes / link.bandwidth);
}

double ring_allgather_time(const LinkModel& link, double bytes,
                           std::size_t world) {
  PF_CHECK(bytes >= 0.0 && world >= 1);
  if (world == 1) return 0.0;
  const double w = static_cast<double>(world);
  return (w - 1.0) / w * bytes / link.bandwidth +
         (w - 1.0) * link.latency;
}

double p2p_time(const LinkModel& link, double bytes) {
  PF_CHECK(bytes >= 0.0);
  return link.latency + bytes / link.bandwidth;
}

double allreduce_crossover_bytes(const LinkModel& link, std::size_t world) {
  PF_CHECK(world >= 2);
  const double w = static_cast<double>(world);
  // Solve ring(n) = doubling(n):
  //   2(w-1)/w·n/β + 2(w-1)α = 2n/β + 2·ceil(log2 w)·α
  //   n·(2(w-1)/w − 2)/β = 2α(ceil(log2 w) − (w−1))
  const double lhs_coeff = (2.0 * (w - 1.0) / w - 2.0) / link.bandwidth;
  const double rhs = 2.0 * link.latency * (log2_ceil(world) - (w - 1.0));
  if (lhs_coeff == 0.0) return 0.0;  // w == 1 degenerate
  return rhs / lhs_coeff;
}

}  // namespace pf
