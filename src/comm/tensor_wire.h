// Wire format for tensors crossing a process boundary (comm/shm_ring.h).
//
// One message = one micro-keyed Matrix: a fixed 32-byte header (magic,
// micro id, rows, cols) followed by rows·cols doubles memcpy'd straight
// from the row-major backing store. Raw byte copies are the whole codec —
// NaN payloads, signed zeros and denormals cross the wire bit-for-bit,
// which is what lets the multi-process runtime (train/multiproc.h) keep
// the serial Trainer's bitwise contract.
//
// serialize_tensor writes into caller-provided storage (a mapped ring
// slot — the zero-copy half of the transport: the only copy between
// producer Matrix and consumer Matrix is the one unavoidable memcpy into
// shared memory and the one out). deserialize_tensor validates the magic,
// the header length and the payload length against the header's shape and
// throws pf::Error on any mismatch, so a truncated or torn message
// surfaces as a protocol error instead of a garbage gradient.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/linalg/matrix.h"

namespace pf {

// Fixed-size message header. Serialized via memcpy of the individual
// fields (not the struct) so padding bytes never reach the wire.
struct WireHeader {
  static constexpr std::uint64_t kMagic = 0x5046'5749'5245'3031ULL;  // PFWIRE01
  std::uint64_t magic = kMagic;
  std::int64_t micro = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

inline constexpr std::size_t kWireHeaderBytes = 32;

// Bytes serialize_tensor will write for this matrix.
std::size_t wire_bytes(const Matrix& m);
// Bytes for a rows×cols payload without materializing it (ring sizing).
std::size_t wire_bytes(std::size_t rows, std::size_t cols);

// Serializes `m` keyed by `micro` into dst[0, capacity). Returns the bytes
// written (== wire_bytes(m)). Throws pf::Error when capacity is too small
// — the transport sizes slots for the largest boundary tensor up front, so
// a failure here means a mis-sized ring, not a runtime race.
std::size_t serialize_tensor(int micro, const Matrix& m, unsigned char* dst,
                             std::size_t capacity);

struct WireMessage {
  int micro = 0;
  Matrix payload;
};

// Parses one message from src[0, len). Throws pf::Error on a short
// header, wrong magic, or len != header-implied size (truncation and
// trailing garbage are both protocol errors).
WireMessage deserialize_tensor(const unsigned char* src, std::size_t len);

}  // namespace pf
