// Lock-free SPSC ring over shared memory — the wire beneath
// comm/transport_channel.h.
//
// One ShmRing carries one direction of one stage boundary: a fixed number
// of fixed-size slots in a memory region both endpoints can see. The
// region is caller-provided — SharedRegion below maps it
// MAP_SHARED|MAP_ANONYMOUS, so a parent that creates rings before fork()
// shares them with every child at the same address (train/multiproc.h);
// in-process both endpoints simply hold the same pointers.
//
// Single-producer / single-consumer by contract: exactly one thread (or
// process) calls the produce side, exactly one the consume side. The
// pipeline runtime satisfies this per boundary+direction for every
// single-pipeline schedule (the producer stage's lane is the only sender);
// Chimera's two pipelines put two producer devices on one boundary, which
// is why the shm transport PF_CHECKs n_pipelines == 1.
//
// Synchronization is two cache-line-padded monotonic cursors:
//   tail — messages published (producer writes, release)
//   head — messages consumed (consumer writes, release)
// The producer writes slot bytes, then stores tail+1 with release; the
// consumer loads tail with acquire before reading the slot — that edge is
// the only ordering the data transfer needs, so the hot path is two atomic
// ops and a memcpy, no locks anywhere. Waiting (ring full / ring empty)
// spins briefly, then parks on a futex keyed by a 32-bit sequence counter
// the peer bumps after every publish/consume (nanosleep fallback off
// Linux). Waits take a timeout and throw pf::Error when it expires — a
// protocol bug (consumer scheduled before its producer) surfaces as an
// error naming the ring, not a silent hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pf {

// A MAP_SHARED|MAP_ANONYMOUS mapping: plain memory in-process, inherited
// (same address, same physical pages) by every child forked after
// construction. Movable, munmap'd once by the final owner.
class SharedRegion {
 public:
  explicit SharedRegion(std::size_t bytes);
  ~SharedRegion();
  SharedRegion(SharedRegion&& o) noexcept;
  SharedRegion& operator=(SharedRegion&& o) noexcept;
  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  void* data() const { return data_; }
  std::size_t bytes() const { return bytes_; }

 private:
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
};

// Non-owning SPSC ring view over a shared region. Copyable — a copy is
// another handle onto the same ring (each process holds its own view).
class ShmRing {
 public:
  ShmRing() = default;

  // Region bytes needed for `slot_count` slots of `slot_bytes` payload.
  static std::size_t required_bytes(std::size_t slot_count,
                                    std::size_t slot_bytes);

  // Formats a ring in `mem` (>= required_bytes, zero-initialized — fresh
  // SharedRegions are) and returns a view. Called once, by the creating
  // process, before any endpoint attaches.
  static ShmRing create(void* mem, std::size_t slot_count,
                        std::size_t slot_bytes, std::string name = "ring");

  // View onto a ring some other endpoint create()d in the same region.
  static ShmRing attach(void* mem, std::string name = "ring");

  std::size_t slot_count() const;
  std::size_t slot_bytes() const;
  // Messages published and not yet consumed. Racy by nature (either cursor
  // may move concurrently) but exact when the caller knows its side is
  // quiescent — how the runtime asserts rings drained at step exit.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  const std::string& name() const { return name_; }

  // --- Producer side ----------------------------------------------------
  // Waits for a free slot and returns its payload pointer (capacity
  // slot_bytes()); the caller serializes in place, then publish()es the
  // actual length. Throws pf::Error after timeout_seconds of ring-full.
  unsigned char* acquire_slot(double timeout_seconds);
  void publish(std::size_t len);

  // --- Consumer side ----------------------------------------------------
  // Waits for the oldest unconsumed message and returns its payload
  // pointer + length; pop() retires it. Throws pf::Error after
  // timeout_seconds of ring-empty. try_peek returns nullptr instead of
  // waiting.
  const unsigned char* peek(std::size_t* len, double timeout_seconds);
  const unsigned char* try_peek(std::size_t* len);
  void pop();

 private:
  struct Header;
  struct Slot;

  static std::size_t slots_offset();
  Slot* slot(std::uint64_t index) const;

  Header* h_ = nullptr;
  std::string name_;
};

}  // namespace pf
