// Stage-boundary handover channel for the executable pipeline runtime.
//
// One StageChannel carries one direction of one stage boundary: forward
// activations stage s -> s+1, or grad-activations stage s+1 -> s. Payloads
// are keyed by micro-batch id (globally unique within a step, across
// pipelines — Chimera's two pipelines share the model boundary, so one
// channel per boundary and direction serves both).
//
// The runtime's task graph guarantees a send() happens-before the matching
// take() (the consumer task depends on the producer task), so the hot path
// is the non-blocking take(). recv() additionally waits — with a timeout
// that turns a protocol bug (a consumer dispatched before its producer)
// into a pf::Error instead of a hang.
//
// The channel records the order in which micro-batches were handed over;
// tests pin this realized handover order against the schedule
// (tests/test_pipeline_runtime.cpp).
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"

namespace pf {

class StageChannel {
 public:
  explicit StageChannel(std::string name = "channel");

  // Deposits the payload for `micro`. Throws on a duplicate key (a
  // double-send means the schedule executed an op twice).
  void send(int micro, Matrix payload);

  // Removes and returns the payload for `micro`; throws if absent.
  Matrix take(int micro);

  // Blocking variant: waits up to `timeout_seconds` for the payload.
  Matrix recv(int micro, double timeout_seconds = 60.0);

  bool has(int micro) const;
  std::size_t pending() const;

  // Micro ids in send() order — the realized handover order.
  std::vector<int> send_order() const;
  // Drops pending payloads and the send log (step-entry reset after a
  // failed step, so stale handovers cannot masquerade as duplicates).
  void clear();

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, Matrix> box_;
  std::vector<int> order_;
};

}  // namespace pf
