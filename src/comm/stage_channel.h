// Stage-boundary handover channels for the executable pipeline runtime.
//
// One channel carries one direction of one stage boundary: forward
// activations stage s -> s+1, or grad-activations stage s+1 -> s. Payloads
// are keyed by micro-batch id (globally unique within a step, across
// pipelines — Chimera's two pipelines share the model boundary, so one
// channel per boundary and direction serves both).
//
// The runtime's task graph guarantees a send() happens-before the matching
// take() (the consumer task depends on the producer task), so the hot path
// is the non-blocking take(). recv() additionally waits — with a timeout
// that turns a protocol bug (a consumer dispatched before its producer)
// into a pf::Error instead of a hang.
//
// `Channel` is the abstract contract; two transports implement it:
//   * StageChannel (this file) — in-process mutex + condvar box, the
//     default when producer and consumer share an address space;
//   * TransportChannel (comm/transport_channel.h) — a lock-free SPSC
//     shared-memory ring carrying serialized tensors, usable in-process or
//     across fork()ed stage processes (train/multiproc.h).
// PipelineRuntime and the serving engine program against Channel, so they
// run unchanged over either backend (`transport` config / PF_TRANSPORT).
//
// Channels record the order in which micro-batches were handed over; tests
// pin this realized handover order against the schedule
// (tests/test_pipeline_runtime.cpp).
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"

namespace pf {

class Channel {
 public:
  virtual ~Channel() = default;

  // Deposits the payload for `micro`. Throws on a duplicate key (a
  // double-send means the schedule executed an op twice).
  virtual void send(int micro, Matrix payload) = 0;

  // Removes and returns the payload for `micro`; throws if absent.
  virtual Matrix take(int micro) = 0;

  // Blocking variant: waits up to `timeout_seconds` for the payload.
  virtual Matrix recv(int micro, double timeout_seconds = 60.0) = 0;

  virtual bool has(int micro) const = 0;
  // Payloads sent and not yet taken (counts in-flight wire messages too).
  virtual std::size_t pending() const = 0;

  // Micro ids in send() order — the realized handover order.
  virtual std::vector<int> send_order() const = 0;
  // Drops pending payloads and the send log (step-entry reset after a
  // failed step, so stale handovers cannot masquerade as duplicates).
  virtual void clear() = 0;

  virtual const std::string& name() const = 0;
};

// The in-process transport: a mutex-guarded micro-keyed box with a condvar
// for the blocking recv().
class StageChannel : public Channel {
 public:
  explicit StageChannel(std::string name = "channel");

  void send(int micro, Matrix payload) override;
  Matrix take(int micro) override;
  Matrix recv(int micro, double timeout_seconds = 60.0) override;
  bool has(int micro) const override;
  std::size_t pending() const override;
  std::vector<int> send_order() const override;
  void clear() override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, Matrix> box_;
  std::vector<int> order_;
};

}  // namespace pf
