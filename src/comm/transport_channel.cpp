#include "src/comm/transport_channel.h"

#include <chrono>
#include <utility>

#include "src/comm/tensor_wire.h"
#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

namespace {
double now_seconds_mono() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

TransportChannel::TransportChannel(std::string name, ShmRing ring,
                                   double send_timeout_seconds)
    : name_(std::move(name)),
      ring_(std::move(ring)),
      send_timeout_(send_timeout_seconds) {}

void TransportChannel::send(int micro, Matrix payload) {
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    PF_CHECK(sent_.insert(micro).second)
        << name_ << ": duplicate send for micro " << micro;
    order_.push_back(micro);
  }
  unsigned char* slot = ring_.acquire_slot(send_timeout_);
  const std::size_t len =
      serialize_tensor(micro, payload, slot, ring_.slot_bytes());
  ring_.publish(len);
}

void TransportChannel::drain_available() const {
  std::size_t len = 0;
  while (const unsigned char* p = ring_.try_peek(&len)) {
    WireMessage msg = deserialize_tensor(p, len);
    ring_.pop();
    std::lock_guard<std::mutex> lock(box_mu_);
    PF_CHECK(box_.emplace(msg.micro, std::move(msg.payload)).second)
        << name_ << ": duplicate delivery for micro " << msg.micro;
  }
}

Matrix TransportChannel::take(int micro) {
  drain_available();
  std::lock_guard<std::mutex> lock(box_mu_);
  auto it = box_.find(micro);
  PF_CHECK(it != box_.end())
      << name_ << ": take(" << micro
      << ") before the producer sent it (missing task dependency?)";
  Matrix out = std::move(it->second);
  box_.erase(it);
  return out;
}

Matrix TransportChannel::recv(int micro, double timeout_seconds) {
  const double t0 = now_seconds_mono();
  const double deadline = t0 + timeout_seconds;
  bool waited = false;
  for (;;) {
    drain_available();
    {
      std::lock_guard<std::mutex> lock(box_mu_);
      auto it = box_.find(micro);
      if (it != box_.end()) {
        Matrix out = std::move(it->second);
        box_.erase(it);
        if (waited) waits_.push_back(now_seconds_mono() - t0);
        return out;
      }
    }
    const double left = deadline - now_seconds_mono();
    if (left <= 0) {
      std::string pending_keys;
      {
        std::lock_guard<std::mutex> lock(box_mu_);
        for (const auto& [k, v] : box_)
          pending_keys +=
              (pending_keys.empty() ? "" : ", ") + std::to_string(k);
      }
      PF_CHECK(false) << name_ << ": recv(" << micro << ") timed out after "
                      << timeout_seconds << "s; pending micros: ["
                      << pending_keys << "]";
    }
    waited = true;
    // Block on the wire for the NEXT message (whatever its micro), then
    // loop: the reorder box absorbs out-of-order arrivals. A ring-level
    // timeout is swallowed — the deadline check above rethrows it as the
    // channel-level diagnostic naming the micro and the pending keys.
    try {
      std::size_t len = 0;
      (void)ring_.peek(&len, left);
    } catch (const Error&) {
    }
  }
}

bool TransportChannel::has(int micro) const {
  drain_available();
  std::lock_guard<std::mutex> lock(box_mu_);
  return box_.find(micro) != box_.end();
}

std::size_t TransportChannel::pending() const {
  std::lock_guard<std::mutex> lock(box_mu_);
  return box_.size() + ring_.size();
}

std::vector<int> TransportChannel::send_order() const {
  std::lock_guard<std::mutex> lock(send_mu_);
  return order_;
}

void TransportChannel::clear() {
  // Drain whatever is still on the wire, then drop the endpoint state.
  std::size_t len = 0;
  while (ring_.try_peek(&len) != nullptr) ring_.pop();
  std::lock_guard<std::mutex> lock_s(send_mu_);
  std::lock_guard<std::mutex> lock_b(box_mu_);
  order_.clear();
  sent_.clear();
  box_.clear();
  waits_.clear();
}

std::vector<double> TransportChannel::recv_wait_seconds() const {
  std::lock_guard<std::mutex> lock(box_mu_);
  return waits_;
}

std::string resolve_transport(const std::string& requested) {
  std::string t = requested;
  if (t.empty()) t = env_str("PF_TRANSPORT", "inproc");
  PF_CHECK(t == "inproc" || t == "shm")
      << "unknown transport '" << t << "' (valid: inproc, shm)";
  return t;
}

}  // namespace pf
