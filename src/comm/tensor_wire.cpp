#include "src/comm/tensor_wire.h"

#include <cstring>

#include "src/common/check.h"

namespace pf {

namespace {

void put_u64(unsigned char* dst, std::uint64_t v) {
  std::memcpy(dst, &v, sizeof(v));
}

std::uint64_t get_u64(const unsigned char* src) {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

}  // namespace

std::size_t wire_bytes(std::size_t rows, std::size_t cols) {
  return kWireHeaderBytes + rows * cols * sizeof(double);
}

std::size_t wire_bytes(const Matrix& m) { return wire_bytes(m.rows(), m.cols()); }

std::size_t serialize_tensor(int micro, const Matrix& m, unsigned char* dst,
                             std::size_t capacity) {
  const std::size_t need = wire_bytes(m);
  PF_CHECK(need <= capacity)
      << "serialize_tensor: " << m.rows() << "x" << m.cols() << " message ("
      << need << " bytes) exceeds the " << capacity
      << "-byte slot — ring slots are sized for the largest boundary tensor, "
         "so this is a mis-sized transport, not a race";
  put_u64(dst, WireHeader::kMagic);
  put_u64(dst + 8, static_cast<std::uint64_t>(static_cast<std::int64_t>(micro)));
  put_u64(dst + 16, static_cast<std::uint64_t>(m.rows()));
  put_u64(dst + 24, static_cast<std::uint64_t>(m.cols()));
  if (m.size() > 0)
    std::memcpy(dst + kWireHeaderBytes, m.data(), m.size() * sizeof(double));
  return need;
}

WireMessage deserialize_tensor(const unsigned char* src, std::size_t len) {
  PF_CHECK(len >= kWireHeaderBytes)
      << "deserialize_tensor: " << len << "-byte message is shorter than the "
      << kWireHeaderBytes << "-byte header (truncated)";
  const std::uint64_t magic = get_u64(src);
  PF_CHECK(magic == WireHeader::kMagic)
      << "deserialize_tensor: bad magic 0x" << std::hex << magic
      << " (torn or foreign message)";
  const auto micro = static_cast<std::int64_t>(get_u64(src + 8));
  const std::uint64_t rows = get_u64(src + 16);
  const std::uint64_t cols = get_u64(src + 24);
  const std::size_t expect = wire_bytes(static_cast<std::size_t>(rows),
                                        static_cast<std::size_t>(cols));
  PF_CHECK(len == expect)
      << "deserialize_tensor: header says " << rows << "x" << cols << " ("
      << expect << " bytes) but the message is " << len
      << " bytes (truncated payload or trailing garbage)";
  WireMessage msg;
  msg.micro = static_cast<int>(micro);
  msg.payload = Matrix(static_cast<std::size_t>(rows),
                       static_cast<std::size_t>(cols));
  if (msg.payload.size() > 0)
    std::memcpy(msg.payload.data(), src + kWireHeaderBytes,
                msg.payload.size() * sizeof(double));
  return msg;
}

}  // namespace pf
