#include "src/trace/timeline.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pf {

const char* work_kind_name(WorkKind k) {
  switch (k) {
    case WorkKind::kForward: return "forward";
    case WorkKind::kBackward: return "backward";
    case WorkKind::kBackwardWeight: return "backward-w";
    case WorkKind::kRecomputeForward: return "recompute";
    case WorkKind::kCurvatureA: return "curvatureA";
    case WorkKind::kCurvatureB: return "curvatureB";
    case WorkKind::kInversionA: return "inversionA";
    case WorkKind::kInversionB: return "inversionB";
    case WorkKind::kPrecondition: return "precondition";
    case WorkKind::kSyncGrad: return "sync-grad";
    case WorkKind::kSyncCurvature: return "sync-curvature";
    case WorkKind::kOptimizerUpdate: return "optimizer";
    case WorkKind::kP2P: return "p2p";
    case WorkKind::kEigendecomposition: return "eigendecomposition";
    case WorkKind::kSamForward: return "sam-forward";
    case WorkKind::kSamBackward: return "sam-backward";
    case WorkKind::kAdmission: return "admission";
  }
  return "?";
}

char work_kind_glyph(WorkKind k) {
  switch (k) {
    case WorkKind::kForward: return 'F';
    case WorkKind::kBackward: return 'B';
    case WorkKind::kBackwardWeight: return 'W';
    case WorkKind::kRecomputeForward: return 'f';
    case WorkKind::kCurvatureA: return 'a';
    case WorkKind::kCurvatureB: return 'b';
    case WorkKind::kInversionA: return 'I';
    case WorkKind::kInversionB: return 'J';
    case WorkKind::kPrecondition: return 'P';
    case WorkKind::kSyncGrad: return 'g';
    case WorkKind::kSyncCurvature: return 'c';
    case WorkKind::kOptimizerUpdate: return 'U';
    case WorkKind::kP2P: return '>';
    case WorkKind::kEigendecomposition: return 'E';
    case WorkKind::kSamForward: return 's';
    case WorkKind::kSamBackward: return 'S';
    case WorkKind::kAdmission: return 'Q';
  }
  return '?';
}

bool counts_as_busy(WorkKind k) {
  // The paper colors forward/backward/curvature/inverse/sync/precondition;
  // P2P wait is idle. The optimizer update is a real kernel, so it counts.
  // Admission is queue-wait dominated (it blocks on request arrival), so
  // utilization treats it as idle time like P2P.
  return k != WorkKind::kP2P && k != WorkKind::kAdmission;
}

void Timeline::add(const Interval& iv) {
  PF_CHECK(iv.device < per_device_.size())
      << "device " << iv.device << " out of range";
  PF_CHECK(iv.end >= iv.start)
      << "interval ends before it starts: " << iv.start << ".." << iv.end;
  auto& v = per_device_[iv.device];
  if (!v.empty()) {
    PF_CHECK(iv.start >= v.back().end - 1e-12)
        << "overlapping interval on device " << iv.device << ": new start "
        << iv.start << " < previous end " << v.back().end;
  }
  v.push_back(iv);
}

const std::vector<Interval>& Timeline::device_intervals(std::size_t d) const {
  PF_CHECK(d < per_device_.size());
  return per_device_[d];
}

std::vector<Interval> Timeline::all_intervals() const {
  std::vector<Interval> out;
  for (const auto& v : per_device_) out.insert(out.end(), v.begin(), v.end());
  return out;
}

double Timeline::makespan() const {
  double m = 0.0;
  for (const auto& v : per_device_)
    if (!v.empty()) m = std::max(m, v.back().end);
  return m;
}

double Timeline::earliest_start() const {
  double m = makespan();
  bool any = false;
  for (const auto& v : per_device_)
    if (!v.empty()) {
      m = std::min(m, v.front().start);
      any = true;
    }
  return any ? m : 0.0;
}

double Timeline::busy_time(std::size_t device, double t0, double t1) const {
  PF_CHECK(device < per_device_.size());
  PF_CHECK(t1 >= t0);
  double busy = 0.0;
  for (const auto& iv : per_device_[device]) {
    if (!counts_as_busy(iv.kind)) continue;
    const double s = std::max(iv.start, t0);
    const double e = std::min(iv.end, t1);
    if (e > s) busy += e - s;
  }
  return busy;
}

double Timeline::utilization(double t0, double t1) const {
  PF_CHECK(t1 > t0);
  double total = 0.0;
  for (std::size_t d = 0; d < per_device_.size(); ++d)
    total += busy_time(d, t0, t1) / (t1 - t0);
  return total / static_cast<double>(per_device_.size());
}

double Timeline::utilization() const {
  const double t0 = earliest_start();
  const double t1 = makespan();
  PF_CHECK(t1 > t0) << "empty timeline";
  return utilization(t0, t1);
}

std::vector<Timeline::Gap> Timeline::gaps(std::size_t device, double t0,
                                          double t1) const {
  PF_CHECK(device < per_device_.size());
  std::vector<Gap> out;
  double cursor = t0;
  for (const auto& iv : per_device_[device]) {
    if (iv.end <= t0) continue;
    if (iv.start >= t1) break;
    if (iv.start > cursor) out.push_back({cursor, std::min(iv.start, t1)});
    cursor = std::max(cursor, iv.end);
    if (cursor >= t1) break;
  }
  if (cursor < t1) out.push_back({cursor, t1});
  // Drop zero-width artifacts.
  std::erase_if(out, [](const Gap& g) { return g.duration() <= 1e-12; });
  return out;
}

double Timeline::bubble_time(std::size_t device, double t0, double t1) const {
  double total = 0.0;
  for (const auto& g : gaps(device, t0, t1)) total += g.duration();
  return total;
}

void Timeline::append_shifted(const Timeline& other, double dt) {
  PF_CHECK(other.n_devices() == n_devices());
  for (std::size_t d = 0; d < n_devices(); ++d) {
    for (Interval iv : other.per_device_[d]) {
      iv.start += dt;
      iv.end += dt;
      add(iv);
    }
  }
}

std::map<std::pair<WorkKind, int>, Timeline::DurationStat>
Timeline::duration_stats() const {
  std::map<std::pair<WorkKind, int>, DurationStat> out;
  for (const auto& lane : per_device_) {
    for (const Interval& iv : lane) {
      DurationStat& st = out[{iv.kind, iv.stage}];
      ++st.count;
      st.total += iv.duration();
    }
  }
  return out;
}

}  // namespace pf
