#include "src/trace/ascii_plot.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

std::string render_ascii_plot(const std::vector<std::vector<double>>& series,
                              const std::vector<std::string>& labels,
                              const AsciiPlotOptions& opt) {
  PF_CHECK(!series.empty());
  PF_CHECK(labels.size() == series.size());
  std::size_t n = 0;
  double lo = 0.0, hi = 1.0;
  bool first = true;
  for (const auto& s : series) {
    PF_CHECK(!s.empty());
    n = std::max(n, s.size());
    for (double v : s) {
      if (first) {
        lo = hi = v;
        first = false;
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  const std::size_t w = std::max<std::size_t>(opt.width, 20);
  const std::size_t h = std::max<std::size_t>(opt.height, 5);
  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = opt.glyphs[si % opt.glyphs.size()];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const std::size_t col =
          s.size() == 1 ? 0
                        : i * (w - 1) / (s.size() - 1);
      const double frac = (s[i] - lo) / (hi - lo);
      const std::size_t row =
          h - 1 - static_cast<std::size_t>(
                      std::lround(frac * static_cast<double>(h - 1)));
      grid[row][col] = glyph;
    }
  }

  std::string out;
  if (!opt.title.empty()) out += opt.title + "\n";
  for (std::size_t r = 0; r < h; ++r) {
    const double y = hi - (hi - lo) * static_cast<double>(r) /
                              static_cast<double>(h - 1);
    out += format("%8.3f |", y) + grid[r] + "\n";
  }
  out += std::string(9, ' ') + '+' + std::string(w, '-') + "\n";
  out += format("%9s 0%*s%.0f (%s)\n", "", static_cast<int>(w - 4), "",
                static_cast<double>(n - 1) * opt.x_scale,
                opt.x_label.c_str());
  std::vector<std::string> legend;
  for (std::size_t si = 0; si < series.size(); ++si)
    legend.push_back(format("%c=%s", opt.glyphs[si % opt.glyphs.size()],
                            labels[si].c_str()));
  out += "          legend: " + join(legend, "  ") + "\n";
  return out;
}

}  // namespace pf
