// Minimal ASCII line plots for loss curves (the terminal rendering of the
// paper's Figure 7 panels).
#pragma once

#include <string>
#include <vector>

namespace pf {

struct AsciiPlotOptions {
  std::size_t width = 80;
  std::size_t height = 20;
  std::string title;
  // Glyph per series, e.g. {'*', '+'}.
  std::vector<char> glyphs = {'*', '+', 'o', 'x'};
  // Optional x scaling (e.g., seconds per step for a time axis).
  double x_scale = 1.0;
  std::string x_label = "step";
};

// Plots one or more equally-long series against their index.
std::string render_ascii_plot(const std::vector<std::vector<double>>& series,
                              const std::vector<std::string>& labels,
                              const AsciiPlotOptions& opt = {});

}  // namespace pf
