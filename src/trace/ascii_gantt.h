// ASCII Gantt renderer — the terminal analog of the paper's Figures 1/3/4.
//
// Each device is one text row; time is quantized into columns; each column
// shows the glyph of the work occupying most of it ('.' when idle).
#pragma once

#include <string>

#include "src/trace/timeline.h"

namespace pf {

struct GanttOptions {
  std::size_t width = 100;   // columns
  double t0 = -1.0;          // window start (default: earliest_start)
  double t1 = -1.0;          // window end (default: makespan)
  bool legend = true;
  bool time_axis = true;
};

std::string render_ascii_gantt(const Timeline& tl,
                               const GanttOptions& opt = {});

}  // namespace pf
