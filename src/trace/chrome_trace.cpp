#include "src/trace/chrome_trace.h"

#include <fstream>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

std::string to_chrome_trace_json(const Timeline& tl) {
  std::string out = "[\n";
  bool first = true;
  for (std::size_t d = 0; d < tl.n_devices(); ++d) {
    for (const auto& iv : tl.device_intervals(d)) {
      if (!first) out += ",\n";
      first = false;
      std::string args = format("{\"stage\":%d,\"micro\":%d", iv.stage,
                                iv.micro);
      if (iv.layer >= 0) args += format(",\"layer\":%d", iv.layer);
      if (iv.factor >= 0) args += format(",\"factor\":%d", iv.factor);
      args += "}";
      out += format(
          "  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%zu,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
          work_kind_name(iv.kind), d, iv.start * 1e6, iv.duration() * 1e6,
          args.c_str());
    }
  }
  out += "\n]\n";
  return out;
}

void write_chrome_trace(const Timeline& tl, const std::string& path) {
  std::ofstream f(path);
  PF_CHECK(f.good()) << "cannot open " << path;
  f << to_chrome_trace_json(tl);
  PF_CHECK(f.good()) << "write failed for " << path;
}

}  // namespace pf
