// Chrome-trace (about://tracing, Perfetto) JSON exporter for timelines,
// the shareable analog of the paper's Nsight screenshots.
#pragma once

#include <string>

#include "src/trace/timeline.h"

namespace pf {

// Serializes the timeline as a Chrome trace-event JSON array. Times are
// emitted in microseconds as the format requires.
std::string to_chrome_trace_json(const Timeline& tl);

// Writes the JSON to `path`; throws pf::Error on I/O failure.
void write_chrome_trace(const Timeline& tl, const std::string& path);

}  // namespace pf
