#include "src/trace/ascii_gantt.h"

#include <algorithm>
#include <map>

#include "src/common/strings.h"

namespace pf {

std::string render_ascii_gantt(const Timeline& tl, const GanttOptions& opt) {
  const double t0 = opt.t0 >= 0 ? opt.t0 : tl.earliest_start();
  const double t1 = opt.t1 >= 0 ? opt.t1 : tl.makespan();
  if (t1 <= t0) return "(empty timeline)\n";
  const std::size_t w = std::max<std::size_t>(opt.width, 10);
  const double dt = (t1 - t0) / static_cast<double>(w);

  std::string out;
  std::map<char, WorkKind> seen;
  for (std::size_t d = 0; d < tl.n_devices(); ++d) {
    std::string row(w, '.');
    // Per column, the kind covering most of the column wins.
    std::vector<double> coverage(w, 0.0);
    for (const auto& iv : tl.device_intervals(d)) {
      if (iv.end <= t0 || iv.start >= t1) continue;
      const double s = std::max(iv.start, t0);
      const double e = std::min(iv.end, t1);
      const auto c0 = static_cast<std::size_t>((s - t0) / dt);
      auto c1 = static_cast<std::size_t>((e - t0) / dt);
      c1 = std::min(c1, w - 1);
      for (std::size_t c = c0; c <= c1; ++c) {
        const double cs = t0 + static_cast<double>(c) * dt;
        const double ce = cs + dt;
        const double cover = std::min(e, ce) - std::max(s, cs);
        if (cover > coverage[c]) {
          coverage[c] = cover;
          row[c] = work_kind_glyph(iv.kind);
          seen[work_kind_glyph(iv.kind)] = iv.kind;
        }
      }
    }
    out += format("dev%-2zu |", d) + row + "|\n";
  }
  if (opt.time_axis) {
    out += "      ";
    out += pad_right("|" + human_time(t0), w / 2);
    out += pad_left(human_time(t1) + "|", w / 2 + 2);
    out += "\n";
  }
  if (opt.legend && !seen.empty()) {
    std::vector<std::string> parts;
    for (const auto& [g, k] : seen)
      parts.push_back(format("%c=%s", g, work_kind_name(k)));
    out += "      legend: " + join(parts, "  ") + "\n";
  }
  return out;
}

}  // namespace pf
