// Timeline: the simulated analog of the paper's Nsight kernel profiles.
//
// Every piece of simulated work is recorded as a per-device interval tagged
// with a WorkKind. "GPU utilization" (Figures 3 & 4) is the fraction of the
// plotted window covered by work intervals, per device, averaged — the same
// definition the paper derives from CUPTI kernel activities.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pf {

enum class WorkKind {
  kForward,
  kBackward,
  // Zero-bubble split (ZB-H1): kBackward is the B (dx) pass, this is the
  // deferred W (dW) pass slotted into what would otherwise be bubbles.
  kBackwardWeight,
  kRecomputeForward,
  kCurvatureA,
  kCurvatureB,
  kInversionA,
  kInversionB,
  kPrecondition,
  kSyncGrad,
  kSyncCurvature,
  kOptimizerUpdate,
  kP2P,
  // §5 extensions: Shampoo eigendecompositions and SAM's extra passes.
  kEigendecomposition,
  kSamForward,
  kSamBackward,
  // Serving-mode admission/refill work (src/serve): forming the next
  // micro-batch from the request queue, dispatched into lane idle gaps.
  kAdmission,
};

// Short display name ("fwd", "bwd", "curvA", ...).
const char* work_kind_name(WorkKind k);
// Single character used by the ASCII Gantt ('F', 'B', 'a', 'b', 'I', ...).
char work_kind_glyph(WorkKind k);
// Whether the paper's utilization metric counts this kind as busy.
bool counts_as_busy(WorkKind k);

struct Interval {
  std::size_t device;
  double start;
  double end;
  WorkKind kind;
  // Work identity, for assertions and labels.
  int stage = -1;
  int micro = -1;
  int layer = -1;   // block index within stage, or -1
  int factor = -1;  // linear index within block, or -1

  double duration() const { return end - start; }
};

class Timeline {
 public:
  Timeline() = default;  // zero devices; reassign before use
  explicit Timeline(std::size_t n_devices) : per_device_(n_devices) {}

  std::size_t n_devices() const { return per_device_.size(); }

  // Adds an interval; intervals on one device must not overlap.
  void add(const Interval& iv);

  const std::vector<Interval>& device_intervals(std::size_t d) const;
  std::vector<Interval> all_intervals() const;

  // Latest end time across devices (0 if empty).
  double makespan() const;
  // Earliest start across devices (0 if empty).
  double earliest_start() const;

  // Busy time of one device inside [t0, t1], counting only kinds for which
  // counts_as_busy() is true.
  double busy_time(std::size_t device, double t0, double t1) const;

  // Paper-style utilization over [t0, t1]: mean over devices of
  // busy/(t1-t0).
  double utilization(double t0, double t1) const;
  double utilization() const;  // over [earliest_start, makespan]

  // Idle gaps of a device inside [t0, t1] (the pipeline bubbles).
  struct Gap {
    double start;
    double end;
    double duration() const { return end - start; }
  };
  std::vector<Gap> gaps(std::size_t device, double t0, double t1) const;

  // Total bubble time of a device in the window.
  double bubble_time(std::size_t device, double t0, double t1) const;

  // Append all intervals of `other` shifted by dt (device-aligned).
  void append_shifted(const Timeline& other, double dt);

  // Realized-duration aggregation keyed by (kind, stage): every executed
  // interval contributes its wall-clock duration to its op kind's bucket.
  // This is the per-task duration export the perfmodel calibration fit
  // consumes (CalibrationAccumulator::ingest); intervals without a stage
  // label aggregate under stage -1.
  struct DurationStat {
    std::size_t count = 0;
    double total = 0.0;
    double mean() const { return count > 0 ? total / static_cast<double>(count) : 0.0; }
  };
  std::map<std::pair<WorkKind, int>, DurationStat> duration_stats() const;

 private:
  std::vector<std::vector<Interval>> per_device_;
};

}  // namespace pf
