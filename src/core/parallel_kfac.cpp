#include "src/core/parallel_kfac.h"

#include "src/common/check.h"

namespace pf {

Timeline replicate_for_data_parallel(const Timeline& base, int world) {
  PF_CHECK(world >= 1);
  const std::size_t d0 = base.n_devices();
  Timeline out(d0 * static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    for (std::size_t d = 0; d < d0; ++d) {
      for (Interval iv : base.device_intervals(d)) {
        iv.device = d + static_cast<std::size_t>(r) * d0;
        out.add(iv);
      }
    }
  }
  return out;
}

}  // namespace pf
