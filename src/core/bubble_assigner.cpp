#include "src/core/bubble_assigner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "src/common/check.h"

namespace pf {

namespace {

// Free intervals of one device, lazily extended one step at a time.
class FreeList {
 public:
  FreeList(const Timeline& base_step, double step_time, std::size_t device)
      : base_(base_step), step_time_(step_time), device_(device) {}

  // Ensure gaps exist up to `horizon_steps` steps.
  void extend_to(int horizon_steps) {
    while (steps_ < horizon_steps) {
      const double off = static_cast<double>(steps_) * step_time_;
      for (const auto& g : base_.gaps(device_, 0.0, step_time_))
        free_.emplace(off + g.start, off + g.end);
      ++steps_;
    }
  }

  // Earliest placement of a chunk of length `len` (len <= gap capacity)
  // starting at or after `t0`. Returns start time or +inf if none within
  // the current horizon. If `any_len` > 0, accept a partial placement of at
  // least any_len (for splittable tasks): the chosen chunk length is
  // min(len, available) and returned via *placed_len.
  double place(double t0, double len, double min_piece, bool splittable,
               double* placed_len) {
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      const double s = std::max(it->first, t0);
      const double avail = it->second - s;
      if (avail <= 1e-12) continue;
      double take;
      if (splittable) {
        if (avail + 1e-12 < std::min(min_piece, len)) continue;
        take = std::min(len, avail);
      } else {
        if (avail + 1e-12 < len) continue;
        take = len;
      }
      // Consume [s, s+take) from [it->first, it->second).
      const double gs = it->first, ge = it->second;
      free_.erase(it);
      if (s - gs > 1e-12) free_.emplace(gs, s);
      if (ge - (s + take) > 1e-12) free_.emplace(s + take, ge);
      *placed_len = take;
      return s;
    }
    return std::numeric_limits<double>::infinity();
  }

  int horizon() const { return steps_; }

 private:
  const Timeline& base_;
  double step_time_;
  std::size_t device_;
  int steps_ = 0;
  std::map<double, double> free_;  // start -> end
};

}  // namespace

AssignmentResult assign_to_bubbles(const Timeline& base_step,
                                   double step_time,
                                   const std::vector<BubbleTask>& tasks,
                                   const AssignOptions& opts) {
  PF_CHECK(step_time > 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    PF_CHECK(tasks[i].id == i) << "task ids must be dense and ordered";

  const std::size_t n_dev = base_step.n_devices();
  AssignmentResult res;
  res.task_end.assign(tasks.size(),
                      std::numeric_limits<double>::quiet_NaN());

  std::vector<FreeList> free;
  free.reserve(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d)
    free.emplace_back(base_step, step_time, d);
  int horizon = 1;
  for (auto& f : free) f.extend_to(horizon);

  // Diagnostics on the unmodified schedule.
  res.utilization_before = base_step.utilization(0.0, step_time);
  double bubble = 0.0;
  for (std::size_t d = 0; d < n_dev; ++d)
    bubble += base_step.bubble_time(d, 0.0, step_time);
  res.bubble_per_step = bubble / static_cast<double>(n_dev);

  // Placed intervals collected per device (merged into the schedule later).
  std::vector<Interval> placed;

  // Process tasks in id order, but a task waits for its deps; since
  // make_kfac_tasks emits deps with smaller ids (curvature before
  // inversion), a single forward pass suffices.
  for (const auto& task : tasks) {
    PF_CHECK(task.device < n_dev)
        << "task device " << task.device << " outside timeline";
    double ready = task.earliest_start;
    for (std::size_t dep : task.deps) {
      PF_CHECK(dep < task.id) << "dependency ids must precede the task";
      PF_CHECK(!std::isnan(res.task_end[dep]));
      ready = std::max(ready, res.task_end[dep]);
    }

    double remaining = task.duration;
    double cursor = ready;
    while (remaining > 1e-12) {
      double placed_len = 0.0;
      const double at = free[task.device].place(
          cursor, remaining, task.min_chunk, task.splittable, &placed_len);
      if (!std::isfinite(at)) {
        ++horizon;
        PF_CHECK(horizon <= opts.max_steps)
            << "K-FAC work does not fit within " << opts.max_steps
            << " steps of bubbles (task kind " << work_kind_name(task.kind)
            << ", duration " << task.duration << ")";
        for (auto& f : free) f.extend_to(horizon);
        continue;
      }
      Interval iv;
      iv.device = task.device;
      iv.start = at;
      iv.end = at + placed_len;
      iv.kind = task.kind;
      iv.stage = task.stage;
      iv.micro = task.micro;
      iv.layer = task.layer;
      iv.factor = task.factor;
      placed.push_back(iv);
      remaining -= placed_len;
      cursor = iv.end;
    }
    res.task_end[task.id] = cursor;
  }

  // Steps actually consumed by the queue.
  double last_end = 0.0;
  for (double e : res.task_end) last_end = std::max(last_end, e);
  res.steps_used = std::max(
      1, static_cast<int>(std::ceil(last_end / step_time - 1e-9)));
  res.window = static_cast<double>(res.steps_used) * step_time;

  // Assemble the final static schedule: base steps + placed intervals.
  Timeline out(n_dev);
  std::vector<std::vector<Interval>> per_dev(n_dev);
  for (int k = 0; k < res.steps_used; ++k) {
    const double off = static_cast<double>(k) * step_time;
    for (std::size_t d = 0; d < n_dev; ++d)
      for (Interval iv : base_step.device_intervals(d)) {
        iv.start += off;
        iv.end += off;
        per_dev[d].push_back(iv);
      }
  }
  for (const auto& iv : placed)
    if (iv.start < res.window) per_dev[iv.device].push_back(iv);
  for (std::size_t d = 0; d < n_dev; ++d) {
    std::sort(per_dev[d].begin(), per_dev[d].end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (const auto& iv : per_dev[d]) out.add(iv);
  }
  res.schedule = std::move(out);
  res.utilization_after = res.schedule.utilization(0.0, res.window);
  return res;
}

}  // namespace pf
