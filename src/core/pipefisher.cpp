#include "src/core/pipefisher.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/parallel_kfac.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {

ScheduleParams schedule_params(const PipeFisherConfig& cfg) {
  ScheduleParams p;
  p.n_stages = cfg.n_stages;
  p.n_micro = cfg.n_micro;
  // Virtual-pipeline schedules keep the default two chunks per device;
  // `blocks_per_stage` counts blocks per virtual chunk, so the modeled
  // model is `virtual_chunks` times as deep.
  return p;
}

ScheduleSpec build_schedule(const PipeFisherConfig& cfg) {
  return build_schedule(cfg.schedule, schedule_params(cfg));
}

StepCosts derive_step_costs(const PipeFisherConfig& cfg, bool with_kfac) {
  const CostModel cm(cfg.hw);
  const StageShape shape{cfg.arch, static_cast<std::size_t>(cfg.blocks_per_stage),
                         static_cast<std::size_t>(cfg.b_micro)};
  StepCosts c;
  c.t_forward = cm.time_forward_stage(shape);
  c.t_backward = cfg.recompute ? cm.time_backward_stage_recompute(shape)
                               : cm.time_backward_stage(shape);
  c.t_p2p = cfg.model_p2p ? cm.time_p2p_activation(shape) : 0.0;

  // Gradient sync: the traits say how the schedule multiplies the group
  // (Chimera allreduces across its two pipelines); data parallelism
  // multiplies it further.
  const ScheduleTraits& traits = traits_of(cfg.schedule);
  std::size_t sync_world =
      static_cast<std::size_t>(cfg.data_parallel_world) *
      static_cast<std::size_t>(traits.grad_sync_world_multiplier);
  if (sync_world > 1) {
    // Per device: the gradients of every stage it owns.
    const std::size_t stages_per_dev = static_cast<std::size_t>(
        traits.stages_per_device_for(schedule_params(cfg)));
    c.t_sync_grad =
        cm.time_sync_grad_stage(cfg.arch,
                                static_cast<std::size_t>(cfg.blocks_per_stage) *
                                    stages_per_dev,
                                sync_world);
  }
  c.t_optimizer = cm.time_optimizer_update_stage(
      cfg.arch, static_cast<std::size_t>(cfg.blocks_per_stage));
  if (with_kfac) {
    c.t_precondition = cm.time_precondition_stage(
        cfg.arch, static_cast<std::size_t>(cfg.blocks_per_stage));
  }
  return c;
}

PipeFisherReport run_pipefisher(const PipeFisherConfig& cfg) {
  PF_CHECK(traits_of(cfg.schedule).flush)
      << cfg.schedule << " is flushless: PipeFisher fills the bubbles of "
      << "synchronous (flush) schedules; the async stream is modeled by "
      << "simulate_async_1f1b";
  PF_CHECK(cfg.data_parallel_world >= 1);
  PF_CHECK(!cfg.inversion_parallel || cfg.data_parallel_world > 1)
      << "inversion parallelism needs data-parallel replicas to split over";
  const CostModel cm(cfg.hw);
  const auto spec = build_schedule(cfg);

  PipeFisherReport rep;

  // --- Baseline step (first-order optimizer) ---
  const auto base = simulate_step(spec, derive_step_costs(cfg, false));
  rep.step_time_baseline = base.step_time;
  rep.baseline_step =
      cfg.data_parallel_world > 1
          ? replicate_for_data_parallel(base.timeline,
                                        cfg.data_parallel_world)
          : base.timeline;
  rep.utilization_baseline =
      rep.baseline_step.utilization(0.0, base.step_time);

  // --- PipeFisher step: same pipeline + precondition in the tail ---
  const auto kstep = simulate_step(spec, derive_step_costs(cfg, true));
  rep.step_time = kstep.step_time;
  rep.pipe_makespan = kstep.pipe_makespan;

  const Timeline kstep_full =
      cfg.data_parallel_world > 1
          ? replicate_for_data_parallel(kstep.timeline,
                                        cfg.data_parallel_world)
          : kstep.timeline;

  KfacWorkOptions wopts;
  wopts.world = cfg.data_parallel_world;
  wopts.inversion_parallel = cfg.inversion_parallel;
  const auto tasks = make_kfac_tasks(
      spec, kstep, cm, cfg.arch,
      static_cast<std::size_t>(cfg.blocks_per_stage),
      static_cast<std::size_t>(cfg.b_micro), wopts);

  const auto assignment =
      assign_to_bubbles(kstep_full, kstep.step_time, tasks);
  rep.pipefisher_window = assignment.schedule;
  rep.utilization = assignment.utilization_after;
  rep.refresh_interval_steps = assignment.steps_used;
  rep.bubble_per_step = assignment.bubble_per_step;

  double per_dev = 0.0;
  for (std::size_t d = 0; d < kstep_full.n_devices(); ++d)
    per_dev += total_task_seconds(tasks, d);
  rep.curv_inv_seconds_per_device =
      per_dev / static_cast<double>(kstep_full.n_devices());
  return rep;
}

}  // namespace pf
