// Combination of PipeFisher with data and inversion parallelism (§3.2).
//
// With W data-parallel replicas per pipeline, the base step timeline is
// replicated onto devices d + r·D (every replica runs the identical pipeline
// schedule on different micro-batches), a sync-grad collective is appended
// per step, curvature factors are allreduced across replicas
// (sync-curvature) and inversion work is split round-robin across the
// replicas of a stage.
#pragma once

#include "src/pipeline/simulator.h"
#include "src/trace/timeline.h"

namespace pf {

// Replicates a one-replica step timeline for `world` data-parallel replicas:
// the returned timeline has world × base.n_devices() devices with identical
// per-replica contents. (Replicas process different data but the work shape
// and therefore the profile is the same.)
Timeline replicate_for_data_parallel(const Timeline& base, int world);

}  // namespace pf
