#include "src/core/kfac_work.h"

#include <algorithm>

#include "src/common/check.h"

namespace pf {

namespace {

// Accumulates the tasks for one (replica, pipeline, stage) and wires the
// curvature → [sync] → inversion dependency chain.
struct StageTaskBuilder {
  std::vector<BubbleTask>& out;
  std::size_t next_id() const { return out.size(); }

  std::size_t add(BubbleTask t) {
    t.id = next_id();
    out.push_back(std::move(t));
    return out.back().id;
  }
};

}  // namespace

std::vector<BubbleTask> make_kfac_tasks(const ScheduleSpec& spec,
                                        const StepSimResult& step,
                                        const CostModel& cm,
                                        const TransformerConfig& cfg,
                                        std::size_t blocks_per_stage,
                                        std::size_t b_micro,
                                        const KfacWorkOptions& opts) {
  PF_CHECK(opts.world >= 1);
  PF_CHECK(blocks_per_stage >= 1);
  const std::size_t tokens = b_micro * cfg.seq_len;
  const auto linears = cfg.kfac_linears_per_block();

  std::vector<BubbleTask> out;
  StageTaskBuilder b{out};

  const auto base_devices = static_cast<std::size_t>(spec.n_devices);

  for (int pl = 0; pl < spec.n_pipelines; ++pl) {
    const auto& micros = spec.micros_of_pipeline[static_cast<std::size_t>(pl)];
    for (int s = 0; s < spec.n_stages; ++s) {
      const auto base_dev =
          static_cast<std::size_t>(spec.device_of(pl, s));

      // Readiness anchors from the profiled base step (rule 1).
      std::vector<double> fwd_end(micros.size());
      std::vector<double> bwd_end(micros.size());
      for (std::size_t mi = 0; mi < micros.size(); ++mi) {
        fwd_end[mi] = step.op_end({OpType::kForward, pl, s, micros[mi]});
        bwd_end[mi] = step.op_end({OpType::kBackward, pl, s, micros[mi]});
      }

      // Global linear index across blocks, for inversion round-robin.
      int factor_counter = 0;
      for (std::size_t blk = 0; blk < blocks_per_stage; ++blk) {
        for (std::size_t li = 0; li < linears.size(); ++li) {
          const auto& shape = linears[li];

          for (int rep = 0; rep < opts.world; ++rep) {
            const std::size_t dev =
                base_dev + static_cast<std::size_t>(rep) * base_devices;

            // Curvature tasks per micro-batch (rule 1).
            std::vector<std::size_t> curv_a_ids, curv_b_ids;
            for (std::size_t mi = 0; mi < micros.size(); ++mi) {
              BubbleTask ca;
              ca.device = dev;
              ca.kind = WorkKind::kCurvatureA;
              ca.duration = cm.time_curvature_factor(shape.d_in, tokens);
              ca.earliest_start = fwd_end[mi];
              ca.stage = s;
              ca.micro = micros[mi];
              ca.layer = static_cast<int>(blk);
              ca.factor = static_cast<int>(li);
              curv_a_ids.push_back(b.add(ca));

              BubbleTask cb = ca;
              cb.kind = WorkKind::kCurvatureB;
              cb.duration = cm.time_curvature_factor(shape.d_out, tokens);
              cb.earliest_start = bwd_end[mi];
              curv_b_ids.push_back(b.add(cb));
            }

            // Sync-curvature collective (replica allreduce of A_l and B_l)
            // before inversion; modeled per replica with a dependency on
            // this replica's own curvature (the cross-replica alignment is
            // resolved by the assigner through the shared dependency ids
            // added below).
            std::vector<std::size_t> inv_deps_a = curv_a_ids;
            std::vector<std::size_t> inv_deps_b = curv_b_ids;
            if (opts.world > 1 && opts.sync_curvature) {
              BubbleTask sync;
              sync.device = dev;
              sync.kind = WorkKind::kSyncCurvature;
              const double factor_bytes =
                  (static_cast<double>(shape.d_in) * shape.d_in +
                   static_cast<double>(shape.d_out) * shape.d_out) *
                  4.0;
              sync.duration = cm.time_allreduce(
                  factor_bytes, static_cast<std::size_t>(opts.world));
              sync.earliest_start = 0.0;
              sync.deps = curv_a_ids;
              sync.deps.insert(sync.deps.end(), curv_b_ids.begin(),
                               curv_b_ids.end());
              sync.splittable = false;
              sync.stage = s;
              sync.layer = static_cast<int>(blk);
              sync.factor = static_cast<int>(li);
              const std::size_t sync_id = b.add(sync);
              inv_deps_a = {sync_id};
              inv_deps_b = {sync_id};
            }

            // Inversion tasks (rule 2). Under inversion parallelism only
            // the owning replica inverts this factor.
            const bool owns_inverse =
                !opts.inversion_parallel ||
                (factor_counter % opts.world) == rep;
            if (owns_inverse) {
              BubbleTask ia;
              ia.device = dev;
              ia.kind = WorkKind::kInversionA;
              ia.duration = cm.time_inversion_factor(shape.d_in);
              ia.earliest_start = 0.0;
              ia.deps = inv_deps_a;
              ia.stage = s;
              ia.layer = static_cast<int>(blk);
              ia.factor = static_cast<int>(li);
              b.add(ia);

              BubbleTask ib = ia;
              ib.id = 0;
              ib.kind = WorkKind::kInversionB;
              ib.duration = cm.time_inversion_factor(shape.d_out);
              ib.deps = inv_deps_b;
              b.add(ib);
            }
          }
          ++factor_counter;
        }
      }
    }
  }
  return out;
}

double total_task_seconds(const std::vector<BubbleTask>& tasks,
                          std::size_t device) {
  double t = 0.0;
  for (const auto& task : tasks)
    if (task.device == device) t += task.duration;
  return t;
}

}  // namespace pf
