// Extra-work generators beyond K-FAC (paper §5: "the application of the
// idea of assigning extra work to bubbles is not limited to K-FAC").
//
// * Shampoo: statistics updates (GGᵀ / GᵀG per micro-batch — same shapes as
//   K-FAC curvature) plus an eigendecomposition per factor. Since a single
//   eigendecomposition can exceed any bubble, the tasks are splittable —
//   exactly the "method that divides the work for a single matrix into
//   multiple pieces" the paper says would be necessary.
// * SAM: one extra forward and backward per (stage, micro-batch), ready
//   after that micro-batch's backward (the perturbed weights need the
//   step's gradient first). Overflowing work slides into the next step's
//   bubbles, giving the one-step-stale sharpness estimate discussed in the
//   paper's Appendix C.1 staleness analysis.
#pragma once

#include "src/core/kfac_work.h"

namespace pf {

// Shampoo bubble tasks for every stage of the schedule.
std::vector<BubbleTask> make_shampoo_tasks(const ScheduleSpec& spec,
                                           const StepSimResult& step,
                                           const CostModel& cm,
                                           const TransformerConfig& cfg,
                                           std::size_t blocks_per_stage,
                                           std::size_t b_micro);

// SAM extra forward/backward bubble tasks.
std::vector<BubbleTask> make_sam_tasks(const ScheduleSpec& spec,
                                       const StepSimResult& step,
                                       const CostModel& cm,
                                       const TransformerConfig& cfg,
                                       std::size_t blocks_per_stage,
                                       std::size_t b_micro);

}  // namespace pf
