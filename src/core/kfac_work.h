// K-FAC work-item generation for PipeFisher (paper §3.1).
//
// For every pipeline stage a device owns, K-FAC adds:
//   * curvature work  — one task per (block, linear, factor, micro-batch):
//       A_l needs the layer inputs   → ready after Forward(stage, micro)
//       B_l needs the output errors  → ready after Backward(stage, micro)
//   * inversion work  — one task per (block, linear, factor):
//       ready after the factor's curvature tasks for ALL micro-batches
//       (plus sync-curvature when data-parallel replicas share factors).
//
// Preconditioning is NOT generated here: it runs every step in the step tail
// (rule 3) and is part of the base step produced by the simulator.
#pragma once

#include <vector>

#include "src/hw/cost_model.h"
#include "src/pipeline/simulator.h"
#include "src/trace/timeline.h"

namespace pf {

// A unit of bubble-fillable work with dependencies, owned by one device.
struct BubbleTask {
  std::size_t id = 0;
  std::size_t device = 0;
  WorkKind kind = WorkKind::kCurvatureA;
  double duration = 0.0;
  // Absolute earliest start (e.g., end of the forward that produced the
  // activations), within the first unrolled step.
  double earliest_start = 0.0;
  // Ids of tasks that must complete before this one starts.
  std::vector<std::size_t> deps;
  // Splittable work may be placed across several bubbles as chunks of at
  // least `min_chunk` seconds (blocked SYRK / blocked Cholesky panels).
  bool splittable = true;
  double min_chunk = 1e-4;
  // Labels for tracing.
  int stage = -1;
  int micro = -1;
  int layer = -1;   // block index within the stage
  int factor = -1;  // linear index within the block (0..5)
};

struct KfacWorkOptions {
  // Round-robin split of inversion work across data-parallel replicas
  // (Osawa et al. 2019 inversion parallelism).
  bool inversion_parallel = false;
  // Number of data-parallel replicas per pipeline (1 = none). Replica r of
  // device d is device d + r*n_base_devices.
  int world = 1;
  // Insert sync-curvature collectives (factor allreduce before inversion,
  // inverse allgather after) when world > 1.
  bool sync_curvature = true;
};

// Generates the K-FAC task list for one pipeline step.
//
// `spec`/`step` describe the base pipeline step of ONE replica (devices
// 0..D-1); when opts.world > 1 the caller is expected to have replicated the
// base timeline for devices d + r*D and this function emits tasks for every
// replica. Durations come from `cm` for the given architecture/shape.
std::vector<BubbleTask> make_kfac_tasks(const ScheduleSpec& spec,
                                        const StepSimResult& step,
                                        const CostModel& cm,
                                        const TransformerConfig& cfg,
                                        std::size_t blocks_per_stage,
                                        std::size_t b_micro,
                                        const KfacWorkOptions& opts = {});

// Total seconds of curvature + inversion work per device (diagnostics).
double total_task_seconds(const std::vector<BubbleTask>& tasks,
                          std::size_t device);

}  // namespace pf
