// Automatic assignment of K-FAC work to pipeline bubbles (paper §3.1).
//
// Input: the profiled timeline of ONE pipeline step (including its tail —
// sync-grad / precondition / optimizer), the step period, and the queue of
// K-FAC tasks with readiness rules. The assigner unrolls the step k times
// (k grows lazily), walks each device's idle gaps in time order, and packs
// tasks greedily:
//   * a task may start no earlier than its earliest_start and no earlier
//     than the completion of its dependencies (curvature before inversion);
//   * a task that does not fit the current bubble uses subsequent bubbles —
//     splittable work (blocked SYRK / blocked Cholesky) is placed as chunks
//     of at least min_chunk, non-splittable work waits for a large enough
//     bubble;
//   * once the queue is empty the schedule is finalized; the number of
//     steps consumed is the curvature refresh interval.
#pragma once

#include <vector>

#include "src/core/kfac_work.h"
#include "src/trace/timeline.h"

namespace pf {

struct AssignmentResult {
  // Base step replicated `steps_used` times with all K-FAC work inserted.
  Timeline schedule;
  // Number of pipeline steps needed to drain the queue — how often the
  // curvature information is refreshed (paper: "once in 2-3 steps").
  int steps_used = 0;
  double window = 0.0;           // steps_used * step_time
  std::vector<double> task_end;  // completion time per task id
  // Paper-style utilization over the refresh window, and over one base step
  // for the unmodified schedule.
  double utilization_before = 0.0;
  double utilization_after = 0.0;
  // Mean per-device bubble seconds per step in the base schedule.
  double bubble_per_step = 0.0;
};

struct AssignOptions {
  int max_steps = 256;  // horizon cap; exceeded → pf::Error
};

AssignmentResult assign_to_bubbles(const Timeline& base_step,
                                   double step_time,
                                   const std::vector<BubbleTask>& tasks,
                                   const AssignOptions& opts = {});

}  // namespace pf
