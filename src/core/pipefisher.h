// PipeFisher end-to-end driver: builds the pipeline schedule, simulates the
// base step on the modeled hardware, generates the K-FAC work queue, packs
// it into the bubbles, and reports the quantities the paper's evaluation
// uses — per-step time, GPU utilization before/after, refresh interval.
#pragma once

#include <string>

#include "src/core/bubble_assigner.h"
#include "src/core/kfac_work.h"
#include "src/hw/cost_model.h"
#include "src/pipeline/schedule_registry.h"
#include "src/pipeline/simulator.h"

namespace pf {

struct PipeFisherConfig {
  std::string schedule = "chimera";  // any name in list_schedules()
  TransformerConfig arch;
  HardwareProfile hw;
  int n_stages = 4;          // pipeline depth D
  int blocks_per_stage = 1;  // transformer blocks per stage
  int n_micro = 4;           // micro-batches per device per step
  int b_micro = 32;          // micro-batch size (sequences)
  int data_parallel_world = 1;     // replicas per stage (W)
  bool inversion_parallel = false; // split inversion across replicas
  bool recompute = false;          // activation recomputation (R)
  // Include P2P latency on stage boundaries (0 disables, as in the paper's
  // performance model).
  bool model_p2p = true;
};

struct PipeFisherReport {
  // --- Base (first-order optimizer, e.g. Adam/NVLAMB) step ---
  double step_time_baseline = 0.0;
  double utilization_baseline = 0.0;
  Timeline baseline_step;  // one step, includes sync-grad + optimizer

  // --- PipeFisher step ---
  double step_time = 0.0;  // includes precondition (the only overhead)
  double utilization = 0.0;              // over the refresh window
  int refresh_interval_steps = 0;        // steps to drain curvature+inversion
  double bubble_per_step = 0.0;          // mean per-device bubble seconds
  double curv_inv_seconds_per_device = 0.0;
  double pipe_makespan = 0.0;
  Timeline pipefisher_window;  // refresh_interval steps with K-FAC filled

  // Step-time inflation of PipeFisher over the baseline (≈ precondition).
  double overhead_fraction() const {
    return step_time / step_time_baseline - 1.0;
  }
};

// Runs the full PipeFisher pipeline-level experiment.
PipeFisherReport run_pipefisher(const PipeFisherConfig& cfg);

// The base StepCosts used for a config (exposed for tests / perf model
// cross-checks). `with_kfac` adds the per-stage precondition time.
StepCosts derive_step_costs(const PipeFisherConfig& cfg, bool with_kfac);

// The registry-shape view of a config — the single mapping from
// PipeFisherConfig to ScheduleParams, shared by the driver and by anything
// querying traits for the same shape it simulates.
ScheduleParams schedule_params(const PipeFisherConfig& cfg);

// Builds the ScheduleSpec for cfg.schedule via the schedule registry
// (src/pipeline/schedule_registry.h); unknown names throw an Error listing
// the registered schedules.
ScheduleSpec build_schedule(const PipeFisherConfig& cfg);

}  // namespace pf
