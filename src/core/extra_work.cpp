#include "src/core/extra_work.h"

namespace pf {

std::vector<BubbleTask> make_shampoo_tasks(const ScheduleSpec& spec,
                                           const StepSimResult& step,
                                           const CostModel& cm,
                                           const TransformerConfig& cfg,
                                           std::size_t blocks_per_stage,
                                           std::size_t b_micro) {
  const std::size_t tokens = b_micro * cfg.seq_len;
  const auto linears = cfg.kfac_linears_per_block();
  std::vector<BubbleTask> out;

  for (int pl = 0; pl < spec.n_pipelines; ++pl) {
    const auto& micros = spec.micros_of_pipeline[static_cast<std::size_t>(pl)];
    for (int s = 0; s < spec.n_stages; ++s) {
      const auto dev = static_cast<std::size_t>(spec.device_of(pl, s));
      for (std::size_t blk = 0; blk < blocks_per_stage; ++blk) {
        for (std::size_t li = 0; li < linears.size(); ++li) {
          const auto& shape = linears[li];
          // Statistics L += GGᵀ, R += GᵀG need the layer gradient, i.e.,
          // that micro-batch's backward. Cost is SYRK-like (same as
          // curvature but over the gradient, once per factor pair).
          std::vector<std::size_t> stat_ids;
          for (int m : micros) {
            BubbleTask st;
            st.id = out.size();
            st.device = dev;
            st.kind = WorkKind::kCurvatureB;  // statistics (SYRK) work
            st.duration = cm.time_curvature_factor(shape.d_in, tokens) +
                          cm.time_curvature_factor(shape.d_out, tokens);
            st.earliest_start =
                step.op_end({OpType::kBackward, pl, s, m});
            st.stage = s;
            st.micro = m;
            st.layer = static_cast<int>(blk);
            st.factor = static_cast<int>(li);
            stat_ids.push_back(st.id);
            out.push_back(std::move(st));
          }
          // Inverse-4th-root eigendecompositions for L and R, splittable
          // into panels (§5: required for efficient bubble utilization).
          for (std::size_t dim : {shape.d_in, shape.d_out}) {
            BubbleTask eig;
            eig.id = out.size();
            eig.device = dev;
            eig.kind = WorkKind::kEigendecomposition;
            eig.duration = cm.time_eigendecomposition_factor(dim);
            eig.deps = stat_ids;
            eig.splittable = true;
            eig.stage = s;
            eig.layer = static_cast<int>(blk);
            eig.factor = static_cast<int>(li);
            out.push_back(std::move(eig));
          }
        }
      }
    }
  }
  return out;
}

std::vector<BubbleTask> make_sam_tasks(const ScheduleSpec& spec,
                                       const StepSimResult& step,
                                       const CostModel& cm,
                                       const TransformerConfig& cfg,
                                       std::size_t blocks_per_stage,
                                       std::size_t b_micro) {
  const StageShape shape{cfg, blocks_per_stage, b_micro};
  std::vector<BubbleTask> out;
  for (int pl = 0; pl < spec.n_pipelines; ++pl) {
    const auto& micros = spec.micros_of_pipeline[static_cast<std::size_t>(pl)];
    for (int s = 0; s < spec.n_stages; ++s) {
      const auto dev = static_cast<std::size_t>(spec.device_of(pl, s));
      for (int m : micros) {
        const double ready = step.op_end({OpType::kBackward, pl, s, m});
        BubbleTask fwd;
        fwd.id = out.size();
        fwd.device = dev;
        fwd.kind = WorkKind::kSamForward;
        fwd.duration = cm.time_forward_stage(shape);
        fwd.earliest_start = ready;
        fwd.splittable = false;  // a pass over a micro-batch is atomic
        fwd.stage = s;
        fwd.micro = m;
        out.push_back(fwd);

        BubbleTask bwd;
        bwd.id = out.size();
        bwd.device = dev;
        bwd.kind = WorkKind::kSamBackward;
        bwd.duration = cm.time_backward_stage(shape);
        bwd.deps = {fwd.id};
        bwd.splittable = false;
        bwd.stage = s;
        bwd.micro = m;
        out.push_back(bwd);
      }
    }
  }
  return out;
}

}  // namespace pf
