#include "src/perfmodel/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pf {

ScheduleFamily schedule_family_by_name(const std::string& name) {
  // Interleaved 1F1B shares 1F1B's flush-based closed form; its smaller
  // realized bubble (÷ virtual chunks) is captured by the simulator, the
  // closed form here is the conservative upper bound.
  if (name == "gpipe" || name == "1f1b" || name == "interleaved-1f1b")
    return ScheduleFamily::kGpipe1F1B;
  if (name == "chimera") return ScheduleFamily::kChimera;
  PF_CHECK(false) << "unknown schedule family: " << name;
  __builtin_unreachable();
}

PerfModelResult run_perf_model(const PerfModelInput& in) {
  PF_CHECK(in.depth >= 2 && in.n_micro >= 1 && in.b_micro >= 1);
  const CostModel cm(in.hw);
  const StageShape shape{in.cfg, in.blocks_per_stage, in.b_micro};
  const double n = static_cast<double>(in.n_micro);
  const double d = static_cast<double>(in.depth);

  PerfModelResult r;
  r.t_forward = cm.time_forward_stage(shape);
  r.t_backward = in.recompute ? cm.time_backward_stage_recompute(shape)
                              : cm.time_backward_stage(shape);
  const std::size_t k = std::max<std::size_t>(1, in.block_diag_k);
  if (k == 1) {
    r.t_curvature = cm.time_curvature_block(shape) *
                    static_cast<double>(in.blocks_per_stage);
    r.t_inversion = cm.time_inversion_block(in.cfg) *
                    static_cast<double>(in.blocks_per_stage);
  } else {
    // Appendix A.2: only the k diagonal blocks of each factor are built and
    // inverted.
    double curv = 0.0, inv = 0.0;
    const std::size_t tokens = shape.tokens();
    for (const auto& l : in.cfg.kfac_linears_per_block()) {
      for (std::size_t dim : {l.d_in, l.d_out}) {
        const std::size_t block = std::max<std::size_t>(1, dim / k);
        curv += static_cast<double>(k) *
                cm.time_curvature_factor(block, tokens);
        inv += static_cast<double>(k) * cm.time_inversion_factor(block);
      }
    }
    r.t_curvature = curv * static_cast<double>(in.blocks_per_stage);
    r.t_inversion = inv * static_cast<double>(in.blocks_per_stage);
  }
  r.t_precondition = cm.time_precondition_stage(in.cfg, in.blocks_per_stage);

  double cf = 0.0, cb = 0.0;
  switch (in.family) {
    case ScheduleFamily::kGpipe1F1B:
      cf = cb = n + d - 1.0;
      break;
    case ScheduleFamily::kChimera:
      cf = n;
      cb = n + d - 2.0;
      break;
  }
  r.t_pipe = cf * r.t_forward + cb * r.t_backward;
  r.t_bubble = r.t_pipe - n * (r.t_forward + r.t_backward);

  const double curv_inv = n * r.t_curvature + r.t_inversion;
  r.curv_inv_bubble_ratio = curv_inv / r.t_bubble;
  r.refresh_steps =
      std::max(1, static_cast<int>(std::ceil(r.curv_inv_bubble_ratio)));

  const double seqs = n * static_cast<double>(in.b_micro);
  r.throughput_pipeline = seqs / r.t_pipe;
  const double t_pf = r.t_pipe + r.t_precondition;
  r.throughput_pipefisher = seqs / t_pf;
  r.throughput_kfac_naive = seqs / (t_pf + curv_inv);
  r.throughput_kfac_skip =
      seqs / (t_pf + curv_inv / static_cast<double>(r.refresh_steps));
  r.speedup_vs_kfac_skip =
      r.throughput_pipefisher / r.throughput_kfac_skip;

  MemoryModelInput mm;
  mm.cfg = in.cfg;
  mm.blocks_per_stage = in.blocks_per_stage;
  mm.stages_per_device = in.family == ScheduleFamily::kChimera ? 2 : 1;
  mm.b_micro = in.b_micro;
  mm.n_micro = in.n_micro;
  mm.recompute = in.recompute;
  r.memory = model_memory(mm);
  return r;
}

}  // namespace pf
