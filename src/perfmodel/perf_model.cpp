#include "src/perfmodel/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/perfmodel/calibration.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {

PerfModelResult run_perf_model(const PerfModelInput& in) {
  PF_CHECK(in.depth >= 2 && in.n_micro >= 1 && in.b_micro >= 1);
  const ScheduleTraits& traits = traits_of(in.schedule);
  PF_CHECK(traits.flush)
      << in.schedule << " is flushless: the per-step bubble model does not "
      << "apply (stream it with the async simulator or "
      << "PipelineRuntime::run_flushless)";
  ScheduleParams sp;
  sp.n_stages = static_cast<int>(in.depth);
  sp.n_micro = static_cast<int>(in.n_micro);
  sp.virtual_chunks = static_cast<int>(in.virtual_chunks);
  // The closed form is only meaningful for shapes the schedule can actually
  // take (e.g. Chimera's even stages/micros) — reject the rest up front.
  traits.check_params(sp);
  const CostModel cm(in.hw);
  const StageShape shape{in.cfg, in.blocks_per_stage, in.b_micro};
  const double n = static_cast<double>(in.n_micro);
  const double d = static_cast<double>(in.depth);

  PerfModelResult r;
  if (in.calibrated != nullptr) {
    // Trace-fitted stage costs. The closed form is stage-uniform, so the
    // profile's per-stage fits collapse to means; stages with no K-FAC
    // factors (relay stages of over-partitioned shallow models) are
    // excluded from the K-FAC means by the n_factors weighting.
    const CalibratedCosts& cal = *in.calibrated;
    PF_CHECK(cal.n_stages == traits.model_stages(sp))
        << in.schedule << ": profile fitted at " << cal.n_stages
        << " model stages, this input needs " << traits.model_stages(sp);
    r.t_forward = cal.mean_forward();
    r.t_backward = cal.mean_backward();
    PF_CHECK(r.t_forward > 0.0 && r.t_backward > 0.0)
        << "calibrated profile has no fitted forward/backward costs";
    if (traits.split_backward) {
      // The FITTED split, not the 50/50 prior (see StepCosts).
      r.t_backward_w = cal.backward_w_fraction * r.t_backward;
      r.t_backward_b = r.t_backward - r.t_backward_w;
    }
    double curv = 0.0, inv = 0.0, prec = 0.0;
    std::size_t kfac_stages = 0;
    for (int s = 0; s < cal.n_stages; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const double f = cal.n_factors[si];
      if (f <= 0.0) continue;
      ++kfac_stages;
      curv += f * (cal.t_curvature_a[si] + cal.t_curvature_b[si]);
      // Commit folds the per-micro curvature sums into the factor state
      // once per refresh — same cadence as the inversion, so it is lumped
      // into T_inv here.
      inv += f * (cal.t_commit[si] + cal.t_inversion_a[si] +
                  cal.t_inversion_b[si]);
      prec += f * cal.t_precondition[si];
    }
    if (kfac_stages > 0) {
      r.t_curvature = curv / static_cast<double>(kfac_stages);
      r.t_inversion = inv / static_cast<double>(kfac_stages);
      r.t_precondition = prec / static_cast<double>(kfac_stages);
    }
  } else {
  r.t_forward = cm.time_forward_stage(shape);
  r.t_backward = in.recompute ? cm.time_backward_stage_recompute(shape)
                              : cm.time_backward_stage(shape);
  if (traits.split_backward) {
    // ZB-H1's modeling assumption: dW GEMM ≈ dx GEMM + db reduction, so the
    // split is 50/50 with the halves summing exactly to the fused cost.
    r.t_backward_w = 0.5 * r.t_backward;
    r.t_backward_b = r.t_backward - r.t_backward_w;
  }
  const std::size_t k = std::max<std::size_t>(1, in.block_diag_k);
  if (k == 1) {
    r.t_curvature = cm.time_curvature_block(shape) *
                    static_cast<double>(in.blocks_per_stage);
    r.t_inversion = cm.time_inversion_block(in.cfg) *
                    static_cast<double>(in.blocks_per_stage);
  } else {
    // Appendix A.2: only the k diagonal blocks of each factor are built and
    // inverted.
    double curv = 0.0, inv = 0.0;
    const std::size_t tokens = shape.tokens();
    for (const auto& l : in.cfg.kfac_linears_per_block()) {
      for (std::size_t dim : {l.d_in, l.d_out}) {
        const std::size_t block = std::max<std::size_t>(1, dim / k);
        curv += static_cast<double>(k) *
                cm.time_curvature_factor(block, tokens);
        inv += static_cast<double>(k) * cm.time_inversion_factor(block);
      }
    }
    r.t_curvature = curv * static_cast<double>(in.blocks_per_stage);
    r.t_inversion = inv * static_cast<double>(in.blocks_per_stage);
  }
  r.t_precondition = cm.time_precondition_stage(in.cfg, in.blocks_per_stage);
  }

  const double cf = traits.critical_path_forwards(sp);
  const double cb = traits.critical_path_backwards(sp);
  // Pipeline ops per device per micro-batch (1 for single-stage-per-device
  // and Chimera, V for interleaved) — scales the useful work, the per-device
  // K-FAC work, and the precondition tail alike.
  const double w = traits.useful_ops_per_micro(sp);
  r.t_pipe = cf * r.t_forward + cb * r.t_backward;
  r.t_bubble = r.t_pipe - n * w * (r.t_forward + r.t_backward);
  // Degenerate shapes (e.g. Chimera at D=2) have a zero closed-form bubble;
  // the ratio/refresh quantities below would be infinite.
  PF_CHECK(r.t_bubble > 0.0)
      << in.schedule << " at D=" << in.depth << " N=" << in.n_micro
      << " has no pipeline bubble; the closed-form ratio is undefined";

  // Inversion accounting: the w multiplier is CORRECT for the per-device
  // K-FAC total, not folklore. Every model stage's factors are inverted
  // exactly once per refresh by the device that owns the stage's
  // pipeline-0 copy (PipelineRuntime assigns inversions to device_of(0, s)).
  // A Chimera device owns two stages but only ONE of pipeline 0, so it
  // runs 1× per-stage inversion work (w = 1); an interleaved device owns
  // its V chunks outright and runs V× (w = V). Pinned against executed
  // traces by InversionAccounting.CountsMatchStageOwnership
  // (tests/test_calibration.cpp).
  const double curv_inv = w * (n * r.t_curvature + r.t_inversion);
  r.curv_inv_bubble_ratio = curv_inv / r.t_bubble;
  r.refresh_steps =
      std::max(1, static_cast<int>(std::ceil(r.curv_inv_bubble_ratio)));

  const double seqs = n * static_cast<double>(in.b_micro);
  r.throughput_pipeline = seqs / r.t_pipe;
  const double t_pf = r.t_pipe + w * r.t_precondition;
  r.throughput_pipefisher = seqs / t_pf;
  r.throughput_kfac_naive = seqs / (t_pf + curv_inv);
  r.throughput_kfac_skip =
      seqs / (t_pf + curv_inv / static_cast<double>(r.refresh_steps));
  r.speedup_vs_kfac_skip =
      r.throughput_pipefisher / r.throughput_kfac_skip;

  MemoryModelInput mm;
  mm.cfg = in.cfg;
  mm.blocks_per_stage = in.blocks_per_stage;
  mm.stages_per_device =
      static_cast<std::size_t>(traits.stages_per_device_for(sp));
  mm.b_micro = in.b_micro;
  mm.n_micro = in.n_micro;
  mm.recompute = in.recompute;
  r.memory = model_memory(mm);
  return r;
}

}  // namespace pf
