#include "src/perfmodel/autotune.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/pipeline/simulator.h"
#include "src/pipeline/step_plan.h"
#include "src/train/pipeline_runtime.h"

namespace pf {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The sweep grid with every profile-independent viability check applied.
// Skipped entries keep their reasons so reports never silently drop a
// combination.
std::vector<AutotuneCandidate> enumerate_candidates(
    const AutotuneOptions& o) {
  const std::vector<std::string> names =
      o.schedules.empty() ? list_schedules() : o.schedules;
  const std::vector<int> stages = o.stage_candidates.empty()
                                      ? std::vector<int>{o.n_devices}
                                      : o.stage_candidates;
  const std::vector<int> micros = o.micro_candidates.empty()
                                      ? std::vector<int>{o.n_micro}
                                      : o.micro_candidates;
  std::vector<AutotuneCandidate> out;
  for (const std::string& name : names) {
    for (const int d : stages) {
      for (const int n : micros) {
        AutotuneCandidate c;
        c.schedule = name;
        c.params.n_stages = d;
        c.params.n_micro = n;
        c.params.virtual_chunks = o.virtual_chunks;
        const ScheduleTraits& tr = traits_of(name);
        if (!tr.flush) {
          c.skip_reason =
              "flushless: streams across step boundaries, no synchronous "
              "step to plan";
          out.push_back(c);
          continue;
        }
        if (tr.n_pipelines > 2) {
          c.skip_reason = format(
              "maps %d pipelines onto the devices; the executable runtime "
              "supports at most 2",
              tr.n_pipelines);
          out.push_back(c);
          continue;
        }
        try {
          tr.check_params(c.params);
        } catch (const Error& e) {
          c.skip_reason = e.what();
          out.push_back(c);
          continue;
        }
        c.model_stages = tr.model_stages(c.params);
        c.viable = true;  // provisional: ranking still needs a profile
        out.push_back(c);
      }
    }
  }
  PF_CHECK(!out.empty()) << "autotune sweep enumerated no candidates";
  return out;
}

// The exact StepPlan PipelineRuntime would execute for this candidate:
// same spec, same normalized event order (greedy realized order for
// dynamic schedules), factor counts from the fitted profile.
StepPlan candidate_plan(const AutotuneCandidate& c,
                        const CalibratedCosts& prof, bool use_kfac,
                        bool curv_step, bool inv_step) {
  const ScheduleSpec spec = build_schedule(c.schedule, c.params);
  PF_CHECK(spec.n_stages == prof.n_stages)
      << c.schedule << ": profile fitted at " << prof.n_stages
      << " model stages, candidate needs " << spec.n_stages;
  std::vector<std::vector<PipeOp>> order =
      spec.dynamic_order ? simulate_step(spec, StepCosts{}).realized_programs
                         : spec.programs;
  normalize_backward_order(order);
  std::vector<std::size_t> factors(static_cast<std::size_t>(spec.n_stages),
                                   0);
  if (use_kfac)
    for (int s = 0; s < spec.n_stages; ++s)
      factors[static_cast<std::size_t>(s)] = static_cast<std::size_t>(
          prof.n_factors[static_cast<std::size_t>(s)] + 0.5);
  return build_step_plan(spec, order, factors, use_kfac && curv_step,
                         use_kfac && inv_step);
}

struct BurstResult {
  std::vector<double> makespans;  // executed, cold step excluded
  std::size_t threads = 0;
  StepPlan plan;  // the runtime's own curv+inv plan (burst intervals = 1)
};

// One live calibration run feeding `acc`. The first step is discarded
// (first-touch allocation + cache warmup); with curvature_interval =
// inverse_interval = 1 every remaining step exercises the full K-FAC
// cycle, maximizing samples per kind.
BurstResult run_burst(const BertConfig& model_cfg, const MlmBatcher& batcher,
                      const AutotuneOptions& o, const std::string& schedule,
                      int n_stages, CalibrationAccumulator& acc) {
  Rng rng(o.model_seed);
  BertModel model(model_cfg, rng);
  PipelineRuntimeConfig pc;
  pc.schedule = schedule;
  pc.n_stages = n_stages;
  pc.n_micro = std::max(o.n_micro, n_stages);
  pc.micro_batch_size = o.micro_batch_size;
  pc.total_steps = std::max<std::size_t>(o.burst_steps, 2);
  pc.lr = PolyWarmupSchedule(o.lr, 0, pc.total_steps);
  pc.data_seed = o.data_seed;
  pc.workers = o.workers;
  pc.stage_threads = o.stage_threads;
  pc.use_kfac = o.use_kfac;
  pc.kfac.curvature_interval = 1;
  pc.kfac.inverse_interval = 1;
  BurstResult r;
  std::size_t idx = 0;
  pc.step_observer = [&](const Timeline& tl) {
    if (idx++ == 0) return;
    acc.ingest(tl);
    r.makespans.push_back(tl.makespan() - tl.earliest_start());
  };
  PipelineRuntime rt(model, batcher, pc);
  rt.run();
  r.threads = rt.executor_threads();
  r.plan = rt.make_step_plan(o.use_kfac, o.use_kfac);
  return r;
}

double mean(const std::vector<double>& v) {
  double t = 0.0;
  for (const double x : v) t += x;
  return v.empty() ? 0.0 : t / static_cast<double>(v.size());
}

}  // namespace

const AutotuneCandidate& AutotuneReport::winner() const {
  PF_CHECK(!ranked.empty() && ranked.front().viable)
      << "autotune produced no viable candidate";
  return ranked.front();
}

std::vector<AutotuneCandidate> rank_candidates(
    const std::map<int, CalibratedCosts>& profiles,
    const AutotuneOptions& options) {
  std::vector<AutotuneCandidate> out = enumerate_candidates(options);
  for (AutotuneCandidate& c : out) {
    if (!c.viable) continue;
    const auto it = profiles.find(c.model_stages);
    if (it == profiles.end()) {
      c.viable = false;
      c.skip_reason =
          format("no calibrated profile at %d model stages", c.model_stages);
      continue;
    }
    const CalibratedCosts& prof = it->second;
    try {
      const auto threads = static_cast<std::size_t>(prof.n_threads);
      const auto pred_curv =
          predict_step(candidate_plan(c, prof, options.use_kfac, true, false),
                       prof, threads);
      const auto pred_inv =
          predict_step(candidate_plan(c, prof, options.use_kfac, true, true),
                       prof, threads);
      const double interval =
          static_cast<double>(std::max(1, options.inverse_interval));
      c.predicted_makespan =
          ((interval - 1.0) * pred_curv.makespan + pred_inv.makespan) /
          interval;
      c.predicted_utilization =
          (interval > 1.0 ? pred_curv : pred_inv).utilization();
      c.predicted_seconds_per_sequence =
          c.predicted_makespan /
          (static_cast<double>(c.params.n_micro) *
           static_cast<double>(options.micro_batch_size));
    } catch (const Error& e) {
      c.viable = false;
      c.skip_reason = e.what();
    }
  }
  // Fastest predicted first; skipped candidates sink to the bottom. The
  // tie-breaks keep the order a pure function of (profiles, options).
  std::stable_sort(out.begin(), out.end(),
                   [](const AutotuneCandidate& a, const AutotuneCandidate& b) {
                     if (a.viable != b.viable) return a.viable;
                     if (!a.viable) return false;
                     if (a.predicted_seconds_per_sequence !=
                         b.predicted_seconds_per_sequence)
                       return a.predicted_seconds_per_sequence <
                              b.predicted_seconds_per_sequence;
                     if (a.schedule != b.schedule) return a.schedule < b.schedule;
                     if (a.params.n_stages != b.params.n_stages)
                       return a.params.n_stages < b.params.n_stages;
                     return a.params.n_micro < b.params.n_micro;
                   });
  return out;
}

AutotuneReport autotune(const BertConfig& model_cfg, const MlmBatcher& batcher,
                        const AutotuneOptions& options) {
  AutotuneReport report;
  const std::vector<AutotuneCandidate> grid = enumerate_candidates(options);

  // Profiles are keyed by MODEL-stage count: a D-device interleaved
  // candidate with V chunks reads per-stage costs at D·V stages, so its
  // burst partitions the model that finely too.
  std::set<int> needed, needed_split;
  for (const AutotuneCandidate& c : grid) {
    if (!c.viable) continue;
    needed.insert(c.model_stages);
    if (traits_of(c.schedule).split_backward)
      needed_split.insert(c.model_stages);
  }

  const double t0 = now_seconds();
  for (const int s : needed) {
    CalibrationAccumulator acc(s);
    try {
      const BurstResult fused = run_burst(model_cfg, batcher, options, "1f1b",
                                          s, acc);
      if (needed_split.count(s) > 0)
        run_burst(model_cfg, batcher, options, "zb-h1", s, acc);
      CalibratedCosts prof = acc.fit(static_cast<int>(fused.threads));
      // Residual: executed over replayed makespan of the burst itself.
      // Per-task means can't see dispatch latency or contention variance;
      // this one scalar folds them back in.
      const double replayed =
          predict_step(fused.plan, prof, fused.threads).makespan;
      const double executed = mean(fused.makespans);
      PF_CHECK(replayed > 0.0 && executed > 0.0);
      prof.residual_scale = executed / replayed;
      report.profiles[s] = prof;
      report.burst_steps_run += acc.steps_ingested();
    } catch (const Error&) {
      // No profile at this stage count (model too shallow, schedule
      // constraints, ...); rank_candidates reports the affected
      // candidates as skipped.
    }
  }
  report.burst_seconds = now_seconds() - t0;

  report.ranked = rank_candidates(report.profiles, options);

  if (options.measure_steps > 0) {
    PF_CHECK(options.measure_steps >= 2)
        << "measure_steps >= 2 required (the cold step is discarded)";
    for (AutotuneCandidate& c : report.ranked) {
      if (!c.viable) continue;
      Rng rng(options.model_seed);
      BertModel model(model_cfg, rng);
      PipelineRuntimeConfig pc;
      pc.schedule = c.schedule;
      pc.n_stages = c.params.n_stages;
      pc.n_micro = c.params.n_micro;
      pc.virtual_chunks = c.params.virtual_chunks;
      pc.micro_batch_size = options.micro_batch_size;
      pc.total_steps = options.measure_steps;
      pc.lr = PolyWarmupSchedule(options.lr, 0, pc.total_steps);
      pc.data_seed = options.data_seed;
      pc.workers = options.workers;
      pc.stage_threads = options.stage_threads;
      pc.use_kfac = options.use_kfac;
      pc.kfac.curvature_interval = 1;
      pc.kfac.inverse_interval = options.inverse_interval;
      double total = 0.0;
      std::size_t n = 0, idx = 0;
      pc.step_observer = [&](const Timeline& tl) {
        if (idx++ == 0) return;  // cold step
        total += tl.makespan() - tl.earliest_start();
        ++n;
      };
      PipelineRuntime rt(model, batcher, pc);
      rt.run();
      if (n > 0) c.executed_makespan = total / static_cast<double>(n);
    }
  }
  return report;
}

}  // namespace pf
