// Model-partitioning tradeoff analysis (paper introduction).
//
// The intro contrasts three ways to split an LLM over W accelerators:
//   (i)   operator (tensor) parallelism — allreduce of activations twice
//         per block per forward (and twice per backward): communication
//         grows with activation volume and W;
//   (ii)  state partitioning (ZeRO-3-style) — data parallelism whose
//         parameters are allgathered before use and gradients
//         reduce-scattered: communication grows with MODEL size;
//   (iii) pipeline parallelism — tiny P2P messages, but bubbles idle the
//         accelerators.
// "All approaches have overhead, and the one that achieves the highest
// throughput depends on the number of parallel accelerators, model size,
// and interconnect performance." This module quantifies exactly that
// sentence with the library's cost model, and is what motivates PipeFisher:
// the pipeline's overhead is IDLENESS, which bubbles-as-resource can
// reclaim, unlike communication overhead.
#pragma once

#include "src/hw/cost_model.h"

namespace pf {

struct PartitioningInput {
  TransformerConfig cfg;
  HardwareProfile hw;
  std::size_t world = 8;       // accelerators W
  std::size_t b_micro = 32;    // micro-batch per accelerator (sequences)
  std::size_t n_micro = 8;     // micro-batches per step (pipeline) /
                               // accumulation sub-steps (others)
};

struct PartitioningResult {
  // Per-step time and throughput (sequences/s) for each strategy.
  double t_operator_parallel = 0.0;
  double t_state_partitioning = 0.0;
  double t_pipeline = 0.0;
  double thr_operator_parallel = 0.0;
  double thr_state_partitioning = 0.0;
  double thr_pipeline = 0.0;
  // Overhead decomposition: seconds of communication (i, ii) vs seconds of
  // bubble idleness (iii) per step — the intro's qualitative distinction.
  double comm_operator_parallel = 0.0;
  double comm_state_partitioning = 0.0;
  double bubble_pipeline = 0.0;
  // Which strategy wins ("operator" | "zero" | "pipeline").
  const char* best = "";
};

PartitioningResult analyze_partitioning(const PartitioningInput& in);

}  // namespace pf
