// Schedule autotuner: calibrate, sweep, rank, execute, cross-check.
//
// The paper picks its schedule by hand (1F1B for the main results, Chimera
// in §5); this module makes the choice empirical on the machine at hand:
//
//   1. Calibration burst — short live PipelineRuntime runs (1f1b for the
//      fused costs + K-FAC terms at every model-stage count the sweep
//      needs, zb-h1 for the B/W split) feed a CalibrationAccumulator; the
//      fitted CalibratedCosts carries a residual_scale anchored on the
//      burst's own executed-vs-replayed makespan.
//   2. rank_candidates() — a PURE function of (profiles, options): for
//      every registry schedule × stage count × micro count it builds the
//      exact StepPlan the runtime would execute, replays it under the
//      fitted costs (perfmodel/calibration.h), amortizes the K-FAC
//      inversion cycle, and ranks by predicted seconds per sequence.
//      Purity makes the ranking reproducible from a committed profile
//      artifact alone — asserted in tests/test_calibration.cpp.
//   3. autotune() — runs the burst, ranks, and (measure_steps > 0)
//      executes the candidates so the winner's realized makespan can be
//      PF_CHECKed against its prediction — DNNsim's simulate-with-CHECK
//      idiom, gated in bench/autotune_baseline + CI.
//
// Skipped candidates are reported with reasons, never silently dropped:
// flushless schedules (no synchronous step to plan), >2 pipelines (runtime
// ceiling), parameter-constraint violations, missing profiles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/data/mlm_batcher.h"
#include "src/nn/bert.h"
#include "src/perfmodel/calibration.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {

struct AutotuneOptions {
  // Device budget D and the shape knobs swept. Empty candidate lists
  // default to {n_devices} / {n_micro} / every registered schedule.
  int n_devices = 4;
  int n_micro = 8;
  std::size_t micro_batch_size = 8;
  std::vector<std::string> schedules;
  std::vector<int> stage_candidates;
  std::vector<int> micro_candidates;
  int virtual_chunks = 2;  // interleaved-1f1b sweep point

  // Execution environment (must match between burst and candidates — a
  // profile is only valid at the worker count it was fitted under).
  int workers = 2;
  int stage_threads = 1;

  // K-FAC production cycle for the candidates; the burst itself always
  // runs curvature_interval = inverse_interval = 1 for maximal samples.
  bool use_kfac = true;
  int inverse_interval = 3;

  // Burst length per needed stage count (>= 2; step 0 is discarded as the
  // cold step — first-touch allocation and cache warmup inflate it).
  std::size_t burst_steps = 4;
  // 0 = predict-only sweep. Otherwise each viable candidate is executed
  // for this many steps (inverse_interval + 1 makes the measured window
  // exactly one amortization cycle after the discarded cold step).
  std::size_t measure_steps = 0;

  unsigned model_seed = 7;
  std::uint64_t data_seed = 99;
  double lr = 1e-2;
};

struct AutotuneCandidate {
  std::string schedule;
  ScheduleParams params;
  int model_stages = 0;

  bool viable = false;
  std::string skip_reason;  // set when !viable

  // Amortized over the K-FAC inversion cycle: ((I-1)·curv + inv) / I.
  double predicted_makespan = 0.0;
  double predicted_seconds_per_sequence = 0.0;
  double predicted_utilization = 0.0;

  // Mean executed makespan over the measured window (0 until measured).
  double executed_makespan = 0.0;
};

struct AutotuneReport {
  // Fitted profiles keyed by MODEL-stage count (interleaved candidates
  // look up D·V, everything else D).
  std::map<int, CalibratedCosts> profiles;
  // Viable candidates first (fastest predicted first), then skipped ones.
  std::vector<AutotuneCandidate> ranked;
  double burst_seconds = 0.0;   // wall clock spent calibrating
  std::size_t burst_steps_run = 0;

  const AutotuneCandidate& winner() const;
};

// The pure ranking core: deterministic in (profiles, options); touches no
// model, no clock, no RNG. Throws pf::Error only on structurally invalid
// options (no candidates at all).
std::vector<AutotuneCandidate> rank_candidates(
    const std::map<int, CalibratedCosts>& profiles,
    const AutotuneOptions& options);

// Full loop: burst -> fit -> rank -> (optionally) execute candidates.
AutotuneReport autotune(const BertConfig& model_cfg, const MlmBatcher& batcher,
                        const AutotuneOptions& options);

}  // namespace pf
