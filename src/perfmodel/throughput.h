// Sweep + reporting helpers shared by the perf-model benches
// (Figures 5, 6, 9-16). Each bench prints the same series the paper plots.
#pragma once

#include <string>
#include <vector>

#include "src/perfmodel/perf_model.h"

namespace pf {

struct SweepPoint {
  PerfModelInput input;
  PerfModelResult result;
};

// The paper's Figure 5 grid: B ∈ b_micros, D ∈ depths, N = N_micro = D·k.
// `schedule` is any name registered in the schedule registry.
std::vector<SweepPoint> sweep_depth_bmicro(
    const TransformerConfig& cfg, const HardwareProfile& hw,
    const std::string& schedule, const std::vector<std::size_t>& depths,
    const std::vector<std::size_t>& b_micros, std::size_t n_micro_per_depth,
    bool recompute);

// The paper's Figure 6/11-16 sweep: for each hardware, D ∈ {4,8,16,32},
// N ∈ {D, 2D, 3D}, B ∈ b_micros.
std::vector<SweepPoint> sweep_figure6(const TransformerConfig& cfg,
                                      const HardwareProfile& hw,
                                      const std::vector<std::size_t>& depths,
                                      const std::vector<std::size_t>& n_over_d,
                                      const std::vector<std::size_t>& b_micros);

// Text rendering used by the bench binaries.
std::string render_time_memory_breakdown(const SweepPoint& p);
std::string render_throughput_row(const SweepPoint& p);
std::string sweep_header();

}  // namespace pf
