#include "src/perfmodel/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <queue>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

namespace {

double vec_at(const std::vector<double>& v, int stage) {
  PF_CHECK(stage >= 0 && static_cast<std::size_t>(stage) < v.size())
      << "stage " << stage << " outside the profile's " << v.size()
      << " stages";
  return v[static_cast<std::size_t>(stage)];
}

double mean_nonzero(const std::vector<double>& v) {
  double total = 0.0;
  std::size_t n = 0;
  for (const double x : v)
    if (x > 0.0) {
      total += x;
      ++n;
    }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

double CalibratedCosts::fused_backward(int stage) const {
  const double fused = vec_at(t_backward, stage);
  if (fused > 0.0) return fused;
  return vec_at(t_backward_b, stage) + vec_at(t_backward_w, stage);
}

double CalibratedCosts::split_backward_b(int stage) const {
  const double b = vec_at(t_backward_b, stage);
  if (b > 0.0) return b;
  return fused_backward(stage) * (1.0 - backward_w_fraction);
}

double CalibratedCosts::split_backward_w(int stage) const {
  const double w = vec_at(t_backward_w, stage);
  if (w > 0.0) return w;
  return fused_backward(stage) * backward_w_fraction;
}

double CalibratedCosts::mean_forward() const { return mean_nonzero(t_forward); }

double CalibratedCosts::mean_backward() const {
  double total = 0.0;
  std::size_t n = 0;
  for (int s = 0; s < n_stages; ++s) {
    const double b = fused_backward(s);
    if (b > 0.0) {
      total += b;
      ++n;
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

bool CalibratedCosts::has_kfac() const {
  for (const double f : n_factors)
    if (f > 0.0) return true;
  return false;
}

double CalibratedCosts::task_seconds(WorkKind kind, int stage,
                                     bool split) const {
  double v = 0.0;
  bool may_be_zero = false;
  switch (kind) {
    case WorkKind::kForward:
      v = vec_at(t_forward, stage);
      break;
    case WorkKind::kBackward:
      v = split ? split_backward_b(stage) : fused_backward(stage);
      break;
    case WorkKind::kBackwardWeight:
      v = split_backward_w(stage);
      break;
    case WorkKind::kCurvatureA:
      v = vec_at(t_curvature_a, stage);
      break;
    case WorkKind::kCurvatureB:
      v = vec_at(t_curvature_b, stage);
      break;
    case WorkKind::kSyncCurvature:
      v = vec_at(t_commit, stage);
      may_be_zero = true;
      break;
    case WorkKind::kInversionA:
      v = vec_at(t_inversion_a, stage);
      break;
    case WorkKind::kInversionB:
      v = vec_at(t_inversion_b, stage);
      break;
    case WorkKind::kPrecondition:
      v = vec_at(t_precondition, stage);
      break;
    // The tail bookkeeping tasks are legitimately near-free (g *= 1/N on a
    // tiny stage) and synthetic traces may not record them at all.
    case WorkKind::kSyncGrad:
      v = vec_at(t_grad_final, stage);
      may_be_zero = true;
      break;
    case WorkKind::kOptimizerUpdate:
      v = vec_at(t_optimizer, stage);
      may_be_zero = true;
      break;
    default:
      PF_CHECK(false) << "no fitted cost bucket for kind "
                      << work_kind_name(kind);
  }
  PF_CHECK(may_be_zero || v > 0.0)
      << "profile has no fitted " << work_kind_name(kind) << " cost for stage "
      << stage << " — the calibration burst must exercise this kind";
  return v;
}

StepCosts CalibratedCosts::to_step_costs() const {
  StepCosts sc;
  sc.t_forward = mean_forward();
  sc.t_backward = mean_backward();
  PF_CHECK(sc.t_forward > 0.0 && sc.t_backward > 0.0)
      << "profile has no fitted forward/backward costs";
  sc.stage_forward_scale.assign(static_cast<std::size_t>(n_stages), 1.0);
  sc.stage_backward_scale.assign(static_cast<std::size_t>(n_stages), 1.0);
  for (int s = 0; s < n_stages; ++s) {
    const auto si = static_cast<std::size_t>(s);
    if (vec_at(t_forward, s) > 0.0)
      sc.stage_forward_scale[si] = vec_at(t_forward, s) / sc.t_forward;
    if (fused_backward(s) > 0.0)
      sc.stage_backward_scale[si] = fused_backward(s) / sc.t_backward;
  }
  sc.t_p2p = t_handoff;
  if (backward_w_fraction > 0.0 && backward_w_fraction < 1.0)
    sc.backward_w_fraction = backward_w_fraction;
  sc.t_sync_grad = mean_nonzero(t_grad_final);
  sc.t_optimizer = mean_nonzero(t_optimizer);
  // StepCosts models preconditioning as one per-stage tail cost; the
  // profile fits it per factor, so scale by the stage's factor count.
  std::vector<double> precond_per_stage(static_cast<std::size_t>(n_stages),
                                        0.0);
  for (int s = 0; s < n_stages; ++s)
    precond_per_stage[static_cast<std::size_t>(s)] =
        vec_at(n_factors, s) * vec_at(t_precondition, s);
  sc.t_precondition = mean_nonzero(precond_per_stage);
  return sc;
}

// --- Accumulator ----------------------------------------------------------

CalibrationAccumulator::CalibrationAccumulator(int n_stages)
    : n_stages_(n_stages),
      factors_seen_(static_cast<std::size_t>(n_stages)) {
  PF_CHECK(n_stages >= 1);
}

void CalibrationAccumulator::ingest(const Timeline& timeline) {
  // Split-backward detection: zb-h1 steps always contain W intervals, so
  // their kBackward intervals are B (dx) passes, not fused backwards.
  bool split = false;
  for (std::size_t d = 0; d < timeline.n_devices() && !split; ++d)
    for (const Interval& iv : timeline.device_intervals(d))
      if (iv.kind == WorkKind::kBackwardWeight) {
        split = true;
        break;
      }

  // Producer end times for handoff fitting: forward chains flow s-1 -> s,
  // backward chains s+1 -> s; (stage, micro) is unique per step.
  std::map<std::pair<int, int>, Interval> fwd_by_sm, bwd_by_sm;
  for (std::size_t d = 0; d < timeline.n_devices(); ++d) {
    for (const Interval& iv : timeline.device_intervals(d)) {
      if (iv.micro < 0 || iv.stage < 0) continue;
      if (iv.kind == WorkKind::kForward) fwd_by_sm[{iv.stage, iv.micro}] = iv;
      if (iv.kind == WorkKind::kBackward) bwd_by_sm[{iv.stage, iv.micro}] = iv;
    }
  }

  for (std::size_t d = 0; d < timeline.n_devices(); ++d) {
    double prev_end = 0.0;
    for (const Interval& iv : timeline.device_intervals(d)) {
      if (iv.stage >= 0) {
        PF_CHECK(iv.stage < n_stages_)
            << "interval stage " << iv.stage << " outside the accumulator's "
            << n_stages_ << " stages";
        if (split && iv.kind == WorkKind::kBackward) {
          Stat& st = split_b_[iv.stage];
          ++st.count;
          st.total += iv.duration();
        } else {
          Stat& st = fused_[{iv.kind, iv.stage}];
          ++st.count;
          st.total += iv.duration();
        }
        if (iv.layer >= 0 && is_kfac_kind(iv.kind))
          factors_seen_[static_cast<std::size_t>(iv.stage)].insert(
              {iv.layer, iv.factor});
        ++samples_;
      }

      // Handoff sample: the consumer's lane was idle before the producer
      // finished (prev_end <= producer.end), so the whole gap between
      // producer end and consumer start is channel handoff + dispatch
      // latency, not contention.
      const Interval* producer = nullptr;
      if (iv.kind == WorkKind::kForward && iv.stage > 0) {
        const auto it = fwd_by_sm.find({iv.stage - 1, iv.micro});
        if (it != fwd_by_sm.end()) producer = &it->second;
      } else if (iv.kind == WorkKind::kBackward && iv.stage + 1 < n_stages_) {
        const auto it = bwd_by_sm.find({iv.stage + 1, iv.micro});
        if (it != bwd_by_sm.end()) producer = &it->second;
      }
      if (producer != nullptr && producer->device != iv.device &&
          prev_end <= producer->end)
        handoff_samples_.push_back(std::max(0.0, iv.start - producer->end));
      prev_end = std::max(prev_end, iv.end);
    }
  }
  ++steps_;
}

void CalibrationAccumulator::add_handoff_sample(double seconds) {
  PF_CHECK(seconds >= 0.0) << "negative handoff sample";
  handoff_samples_.push_back(seconds);
}

CalibratedCosts CalibrationAccumulator::fit(int n_threads) const {
  PF_CHECK(steps_ > 0 || !handoff_samples_.empty())
      << "fit() before any timeline or handoff sample was ingested";
  CalibratedCosts c;
  c.n_stages = n_stages_;
  c.n_threads = n_threads;
  c.samples = samples_;

  const auto zeros = std::vector<double>(static_cast<std::size_t>(n_stages_),
                                         0.0);
  c.n_factors = zeros;
  c.t_forward = zeros;
  c.t_backward = zeros;
  c.t_backward_b = zeros;
  c.t_backward_w = zeros;
  c.t_curvature_a = zeros;
  c.t_curvature_b = zeros;
  c.t_commit = zeros;
  c.t_inversion_a = zeros;
  c.t_inversion_b = zeros;
  c.t_precondition = zeros;
  c.t_grad_final = zeros;
  c.t_optimizer = zeros;

  auto fill = [&](WorkKind kind, std::vector<double>& dst) {
    for (int s = 0; s < n_stages_; ++s) {
      const auto it = fused_.find({kind, s});
      if (it != fused_.end() && it->second.count > 0)
        dst[static_cast<std::size_t>(s)] =
            it->second.total / static_cast<double>(it->second.count);
    }
  };
  fill(WorkKind::kForward, c.t_forward);
  fill(WorkKind::kBackward, c.t_backward);
  fill(WorkKind::kBackwardWeight, c.t_backward_w);
  fill(WorkKind::kCurvatureA, c.t_curvature_a);
  fill(WorkKind::kCurvatureB, c.t_curvature_b);
  fill(WorkKind::kSyncCurvature, c.t_commit);
  fill(WorkKind::kInversionA, c.t_inversion_a);
  fill(WorkKind::kInversionB, c.t_inversion_b);
  fill(WorkKind::kPrecondition, c.t_precondition);
  fill(WorkKind::kSyncGrad, c.t_grad_final);
  fill(WorkKind::kOptimizerUpdate, c.t_optimizer);
  for (const auto& [s, st] : split_b_)
    if (st.count > 0)
      c.t_backward_b[static_cast<std::size_t>(s)] =
          st.total / static_cast<double>(st.count);

  for (int s = 0; s < n_stages_; ++s)
    c.n_factors[static_cast<std::size_t>(s)] = static_cast<double>(
        factors_seen_[static_cast<std::size_t>(s)].size());

  // The executed B/W split: totals across stages so factor-heavy stages
  // weigh in proportionally.
  double total_b = 0.0, total_w = 0.0;
  for (const auto& [s, st] : split_b_) total_b += st.total;
  for (int s = 0; s < n_stages_; ++s) {
    const auto it = fused_.find({WorkKind::kBackwardWeight, s});
    if (it != fused_.end()) total_w += it->second.total;
  }
  if (total_w > 0.0 && total_b > 0.0)
    c.backward_w_fraction = total_w / (total_b + total_w);

  // Handoff: a low percentile of the idle-consumer gap samples — the fixed
  // channel + wakeup cost, robust to samples inflated by thread shortage.
  if (!handoff_samples_.empty()) {
    std::vector<double> sorted = handoff_samples_;
    std::sort(sorted.begin(), sorted.end());
    c.t_handoff = sorted[sorted.size() / 10];
  }
  return c;
}

// --- JSON -----------------------------------------------------------------

namespace {

constexpr const char* kSchema = "pf-calibrated-costs-v1";

void append_num(std::string& out, double v) {
  out += format("%.17g", v);
}

void append_vec(std::string& out, const char* name,
                const std::vector<double>& v) {
  out += format("  \"%s\": [", name);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    append_num(out, v[i]);
  }
  out += "],\n";
}

// Minimal recursive-descent parser for the flat profile subset: one object
// of "key": number | string | [numbers]. No dependencies, throws pf::Error
// (via PF_CHECK) on anything malformed.
struct JsonReader {
  const std::string& s;
  std::size_t i = 0;

  std::map<std::string, double> nums;
  std::map<std::string, std::vector<double>> vecs;
  std::map<std::string, std::string> strs;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  char peek() {
    skip_ws();
    PF_CHECK(i < s.size()) << "calibrated-costs JSON: unexpected end of input";
    return s[i];
  }
  void expect(char c) {
    PF_CHECK(peek() == c) << "calibrated-costs JSON: expected '" << c
                          << "' at offset " << i;
    ++i;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      PF_CHECK(i < s.size()) << "calibrated-costs JSON: unterminated string";
      const char c = s[i++];
      if (c == '"') break;
      PF_CHECK(c != '\\')
          << "calibrated-costs JSON: escapes are not part of the profile "
             "schema";
      out += c;
    }
    return out;
  }
  double parse_number() {
    skip_ws();
    PF_CHECK(i < s.size()) << "calibrated-costs JSON: unexpected end of input";
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    PF_CHECK(end != nullptr && end != begin)
        << "calibrated-costs JSON: expected a number at offset " << i;
    PF_CHECK(std::isfinite(v))
        << "calibrated-costs JSON: non-finite number at offset " << i;
    i += static_cast<std::size_t>(end - begin);
    return v;
  }
  void parse() {
    expect('{');
    if (peek() == '}') {
      ++i;
    } else {
      while (true) {
        const std::string key = parse_string();
        expect(':');
        const char c = peek();
        if (c == '[') {
          ++i;
          std::vector<double> v;
          if (peek() == ']') {
            ++i;
          } else {
            while (true) {
              v.push_back(parse_number());
              const char d = peek();
              if (d == ',') {
                ++i;
                continue;
              }
              expect(']');
              break;
            }
          }
          vecs[key] = std::move(v);
        } else if (c == '"') {
          strs[key] = parse_string();
        } else {
          nums[key] = parse_number();
        }
        const char d = peek();
        if (d == ',') {
          ++i;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    PF_CHECK(i == s.size())
        << "calibrated-costs JSON: trailing garbage at offset " << i;
  }

  double num(const char* key) {
    const auto it = nums.find(key);
    PF_CHECK(it != nums.end())
        << "calibrated-costs JSON: missing number field \"" << key << "\"";
    return it->second;
  }
  std::vector<double> vec(const char* key, std::size_t size) {
    const auto it = vecs.find(key);
    PF_CHECK(it != vecs.end())
        << "calibrated-costs JSON: missing array field \"" << key << "\"";
    PF_CHECK(it->second.size() == size)
        << "calibrated-costs JSON: \"" << key << "\" has " << it->second.size()
        << " entries, expected " << size;
    return it->second;
  }
};

}  // namespace

std::string CalibratedCosts::to_json() const {
  std::string out = "{\n";
  out += format("  \"schema\": \"%s\",\n", kSchema);
  out += format("  \"n_stages\": %d,\n", n_stages);
  out += format("  \"n_threads\": %d,\n", n_threads);
  out += "  \"residual_scale\": ";
  append_num(out, residual_scale);
  out += ",\n  \"t_handoff\": ";
  append_num(out, t_handoff);
  out += ",\n  \"backward_w_fraction\": ";
  append_num(out, backward_w_fraction);
  out += format(",\n  \"samples\": %zu,\n", samples);
  append_vec(out, "n_factors", n_factors);
  append_vec(out, "t_forward", t_forward);
  append_vec(out, "t_backward", t_backward);
  append_vec(out, "t_backward_b", t_backward_b);
  append_vec(out, "t_backward_w", t_backward_w);
  append_vec(out, "t_curvature_a", t_curvature_a);
  append_vec(out, "t_curvature_b", t_curvature_b);
  append_vec(out, "t_commit", t_commit);
  append_vec(out, "t_inversion_a", t_inversion_a);
  append_vec(out, "t_inversion_b", t_inversion_b);
  append_vec(out, "t_precondition", t_precondition);
  append_vec(out, "t_grad_final", t_grad_final);
  append_vec(out, "t_optimizer", t_optimizer);
  out += "  \"end\": 0\n}";
  return out;
}

CalibratedCosts CalibratedCosts::from_json(const std::string& json) {
  JsonReader r{json};
  r.parse();
  const auto schema = r.strs.find("schema");
  PF_CHECK(schema != r.strs.end() && schema->second == kSchema)
      << "calibrated-costs JSON: missing or unknown schema tag (want \""
      << kSchema << "\")";
  CalibratedCosts c;
  const double ns = r.num("n_stages");
  PF_CHECK(ns >= 1 && ns <= 4096 && ns == std::floor(ns))
      << "calibrated-costs JSON: bad n_stages " << ns;
  c.n_stages = static_cast<int>(ns);
  c.n_threads = static_cast<int>(r.num("n_threads"));
  c.residual_scale = r.num("residual_scale");
  PF_CHECK(c.residual_scale > 0.0)
      << "calibrated-costs JSON: residual_scale must be positive";
  c.t_handoff = r.num("t_handoff");
  c.backward_w_fraction = r.num("backward_w_fraction");
  c.samples = static_cast<std::size_t>(r.num("samples"));
  const auto S = static_cast<std::size_t>(c.n_stages);
  c.n_factors = r.vec("n_factors", S);
  c.t_forward = r.vec("t_forward", S);
  c.t_backward = r.vec("t_backward", S);
  c.t_backward_b = r.vec("t_backward_b", S);
  c.t_backward_w = r.vec("t_backward_w", S);
  c.t_curvature_a = r.vec("t_curvature_a", S);
  c.t_curvature_b = r.vec("t_curvature_b", S);
  c.t_commit = r.vec("t_commit", S);
  c.t_inversion_a = r.vec("t_inversion_a", S);
  c.t_inversion_b = r.vec("t_inversion_b", S);
  c.t_precondition = r.vec("t_precondition", S);
  c.t_grad_final = r.vec("t_grad_final", S);
  c.t_optimizer = r.vec("t_optimizer", S);
  return c;
}

// --- Plan replay ----------------------------------------------------------

PlanPrediction predict_step(const StepPlan& plan, const CalibratedCosts& costs,
                            std::size_t n_threads) {
  PF_CHECK(n_threads >= 1);
  PF_CHECK(costs.residual_scale > 0.0);
  const auto& tasks = plan.tasks;
  const std::size_t n = tasks.size();
  PF_CHECK(n > 0) << "empty step plan";

  std::vector<double> dur(n, 0.0);
  int max_resource = -1;
  for (std::size_t i = 0; i < n; ++i) {
    dur[i] = costs.task_seconds(tasks[i].kind, tasks[i].stage,
                                plan.split_backward) *
             costs.residual_scale;
    max_resource = std::max(max_resource, tasks[i].resource);
  }

  std::vector<std::vector<std::size_t>> children(n);
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    pending[i] = tasks[i].deps.size();
    for (const std::size_t d : tasks[i].deps) {
      PF_CHECK(d < i) << "plan deps must precede their dependents";
      children[d].push_back(i);
    }
  }

  std::vector<double> ready(n, 0.0);
  std::vector<char> started(n, 0);
  std::vector<double> start_at(n, 0.0), end_at(n, 0.0);
  std::vector<char> lane_busy(plan.n_lanes, 0);
  std::vector<char> res_busy(static_cast<std::size_t>(max_resource + 1), 0);
  // Completion events, earliest end first.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> running;
  std::size_t free_threads = n_threads;
  std::size_t remaining = n;
  double now = 0.0;

  // Dispatch mirror of TaskExecutor: whenever a thread is free, run the
  // smallest-priority task (ties by insertion id) whose deps are done,
  // whose ready time has arrived, and whose lane + resource are free.
  auto dispatch = [&] {
    while (free_threads > 0) {
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (started[i] || pending[i] != 0 || ready[i] > now) continue;
        if (lane_busy[tasks[i].lane]) continue;
        if (tasks[i].resource >= 0 &&
            res_busy[static_cast<std::size_t>(tasks[i].resource)])
          continue;
        if (best == n || tasks[i].priority < tasks[best].priority) best = i;
      }
      if (best == n) return;
      started[best] = 1;
      lane_busy[tasks[best].lane] = 1;
      if (tasks[best].resource >= 0)
        res_busy[static_cast<std::size_t>(tasks[best].resource)] = 1;
      start_at[best] = now;
      end_at[best] = now + dur[best];
      running.push({end_at[best], best});
      --free_threads;
    }
  };

  dispatch();
  while (remaining > 0) {
    double next = std::numeric_limits<double>::infinity();
    if (!running.empty()) next = running.top().first;
    for (std::size_t i = 0; i < n; ++i)
      if (!started[i] && pending[i] == 0 && ready[i] > now)
        next = std::min(next, ready[i]);
    PF_CHECK(std::isfinite(next)) << "plan replay deadlocked with " << remaining
                                  << " tasks left";
    now = next;
    while (!running.empty() && running.top().first <= now) {
      const std::size_t i = running.top().second;
      running.pop();
      lane_busy[tasks[i].lane] = 0;
      if (tasks[i].resource >= 0)
        res_busy[static_cast<std::size_t>(tasks[i].resource)] = 0;
      ++free_threads;
      --remaining;
      for (const std::size_t c : children[i]) {
        PF_CHECK(pending[c] > 0);
        --pending[c];
        // Boundary-crossing edges pay the fitted channel handoff latency.
        const double lat =
            tasks[c].lane != tasks[i].lane ? costs.t_handoff : 0.0;
        ready[c] = std::max(ready[c], end_at[i] + lat);
      }
    }
    dispatch();
  }

  PlanPrediction out;
  out.timeline = Timeline(plan.n_lanes);
  std::vector<std::vector<std::size_t>> by_lane(plan.n_lanes);
  for (std::size_t i = 0; i < n; ++i) by_lane[tasks[i].lane].push_back(i);
  for (auto& ids : by_lane) {
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return start_at[a] < start_at[b];
    });
    for (const std::size_t i : ids) {
      out.timeline.add(Interval{.device = tasks[i].lane,
                                .start = start_at[i],
                                .end = end_at[i],
                                .kind = tasks[i].kind,
                                .stage = tasks[i].stage,
                                .micro = tasks[i].micro,
                                .layer = tasks[i].layer,
                                .factor = tasks[i].factor});
      out.makespan = std::max(out.makespan, end_at[i]);
    }
  }
  return out;
}

}  // namespace pf
