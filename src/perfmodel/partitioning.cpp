#include "src/perfmodel/partitioning.h"

#include <algorithm>

#include "src/comm/collectives.h"
#include "src/common/check.h"

namespace pf {

PartitioningResult analyze_partitioning(const PartitioningInput& in) {
  PF_CHECK(in.world >= 2);
  PF_CHECK(in.cfg.n_layers % in.world == 0 || in.cfg.n_layers >= in.world)
      << "model depth " << in.cfg.n_layers << " too shallow for W="
      << in.world;
  const CostModel cm(in.hw);
  const LinkModel link{in.hw.link_bandwidth, in.hw.link_latency};
  const double n = static_cast<double>(in.n_micro);
  const double seqs = n * static_cast<double>(in.b_micro);
  const double tokens =
      static_cast<double>(in.b_micro) * static_cast<double>(in.cfg.seq_len);
  const double fp32 = 4.0;

  // Full-model compute for one micro-batch (all L blocks, fwd+bwd).
  const StageShape full{in.cfg, in.cfg.n_layers, in.b_micro};
  const double t_fwd_full = cm.time_forward_stage(full);
  const double t_bwd_full = cm.time_backward_stage(full);
  const double model_bytes =
      static_cast<double>(in.cfg.params_per_block()) *
      static_cast<double>(in.cfg.n_layers) * fp32;

  PartitioningResult r;

  // (i) Operator parallelism: compute divides by W; two activation
  // allreduces per block per forward, two per backward (Megatron-LM).
  {
    const double act_bytes = tokens * static_cast<double>(in.cfg.d_model) *
                             fp32;
    const double comm_per_micro =
        static_cast<double>(in.cfg.n_layers) * 4.0 *
        allreduce_best_time(link, act_bytes, in.world);
    const double compute_per_micro =
        (t_fwd_full + t_bwd_full) / static_cast<double>(in.world);
    r.comm_operator_parallel = n * comm_per_micro;
    r.t_operator_parallel =
        n * (compute_per_micro + comm_per_micro) +
        cm.time_optimizer_update_stage(in.cfg, in.cfg.n_layers) /
            static_cast<double>(in.world);
    r.thr_operator_parallel = seqs / r.t_operator_parallel;
  }

  // (ii) State partitioning (ZeRO-3): data parallelism over the same
  // global batch (n/W micro-batches per device) with the full model on each
  // device logically; parameters are allgathered before use (forward AND
  // backward re-gather) and gradients reduce-scattered — per step, ~2 model
  // volumes allgathered + half an allreduce.
  {
    const double comm = 2.0 * ring_allgather_time(link, model_bytes,
                                                  in.world) +
                        0.5 * ring_allreduce_time(link, model_bytes,
                                                  in.world);
    r.comm_state_partitioning = comm;
    r.t_state_partitioning =
        n / static_cast<double>(in.world) * (t_fwd_full + t_bwd_full) +
        comm +
        cm.time_optimizer_update_stage(in.cfg, in.cfg.n_layers) /
            static_cast<double>(in.world);
    r.thr_state_partitioning = seqs / r.t_state_partitioning;
  }

  // (iii) Pipeline parallelism (GPipe-style, Table 1 closed form).
  {
    const std::size_t blocks_per_stage =
        std::max<std::size_t>(1, in.cfg.n_layers / in.world);
    const StageShape stage{in.cfg, blocks_per_stage, in.b_micro};
    const double tf = cm.time_forward_stage(stage);
    const double tb = cm.time_backward_stage(stage);
    const double w = static_cast<double>(in.world);
    const double t_pipe = (n + w - 1.0) * (tf + tb);
    r.bubble_pipeline = (w - 1.0) * (tf + tb);
    r.t_pipeline = t_pipe +
                   cm.time_optimizer_update_stage(in.cfg, blocks_per_stage);
    r.thr_pipeline = seqs / r.t_pipeline;
  }

  r.best = "pipeline";
  double best = r.thr_pipeline;
  if (r.thr_operator_parallel > best) {
    best = r.thr_operator_parallel;
    r.best = "operator";
  }
  if (r.thr_state_partitioning > best) r.best = "zero";
  return r;
}

}  // namespace pf
