#include "src/perfmodel/csv.h"

#include <fstream>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

std::string sweep_csv_header() {
  return "arch,hw,schedule,depth,n_micro,b_micro,recompute,block_diag_k,"
         "t_forward,t_backward,t_curvature,t_inversion,t_precondition,"
         "t_pipe,t_bubble,ratio,refresh_steps,"
         "thr_pipeline,thr_pipefisher,thr_kfac_skip,thr_kfac_naive,"
         "speedup_vs_skip,mem_params_grads,mem_activations,mem_peak_err,"
         "mem_save_err,mem_curv_inv,mem_total";
}

std::string sweep_point_csv(const SweepPoint& p) {
  const auto& in = p.input;
  const auto& r = p.result;
  const auto& m = r.memory;
  return format(
      "%s,%s,%s,%zu,%zu,%zu,%d,%zu,"
      "%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.6g,%d,"
      "%.6g,%.6g,%.6g,%.6g,%.6g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g",
      in.cfg.name.c_str(), in.hw.name.c_str(), in.schedule.c_str(),
      in.depth, in.n_micro, in.b_micro, in.recompute ? 1 : 0,
      in.block_diag_k, r.t_forward, r.t_backward, r.t_curvature,
      r.t_inversion, r.t_precondition, r.t_pipe, r.t_bubble,
      r.curv_inv_bubble_ratio, r.refresh_steps, r.throughput_pipeline,
      r.throughput_pipefisher, r.throughput_kfac_skip,
      r.throughput_kfac_naive, r.speedup_vs_kfac_skip, m.params_and_grads,
      m.activations, m.peak_err, m.save_err, m.curv_plus_inv, m.total());
}

std::string sweep_to_csv(const std::vector<SweepPoint>& points) {
  std::string out = sweep_csv_header() + "\n";
  for (const auto& p : points) out += sweep_point_csv(p) + "\n";
  return out;
}

void write_sweep_csv(const std::vector<SweepPoint>& points,
                     const std::string& path) {
  std::ofstream f(path);
  PF_CHECK(f.good()) << "cannot open " << path;
  f << sweep_to_csv(points);
  PF_CHECK(f.good()) << "write failed for " << path;
}

}  // namespace pf
