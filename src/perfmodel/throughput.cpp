#include "src/perfmodel/throughput.h"

#include "src/common/strings.h"

namespace pf {

std::vector<SweepPoint> sweep_depth_bmicro(
    const TransformerConfig& cfg, const HardwareProfile& hw,
    const std::string& schedule, const std::vector<std::size_t>& depths,
    const std::vector<std::size_t>& b_micros, std::size_t n_micro_per_depth,
    bool recompute) {
  std::vector<SweepPoint> out;
  for (std::size_t b : b_micros) {
    for (std::size_t d : depths) {
      PerfModelInput in;
      in.cfg = cfg;
      in.hw = hw;
      in.schedule = schedule;
      in.depth = d;
      in.n_micro = d * n_micro_per_depth;
      in.b_micro = b;
      in.recompute = recompute;
      out.push_back({in, run_perf_model(in)});
    }
  }
  return out;
}

std::vector<SweepPoint> sweep_figure6(
    const TransformerConfig& cfg, const HardwareProfile& hw,
    const std::vector<std::size_t>& depths,
    const std::vector<std::size_t>& n_over_d,
    const std::vector<std::size_t>& b_micros) {
  std::vector<SweepPoint> out;
  for (std::size_t d : depths) {
    for (std::size_t k : n_over_d) {
      for (std::size_t b : b_micros) {
        PerfModelInput in;
        in.cfg = cfg;
        in.hw = hw;
        in.schedule = "chimera";
        in.depth = d;
        in.n_micro = d * k;
        in.b_micro = b;
        out.push_back({in, run_perf_model(in)});
      }
    }
  }
  return out;
}

std::string sweep_header() {
  return format("%-10s %-8s %4s %4s %4s %2s | %9s %9s %9s | %8s %8s %8s %8s "
                "| %6s %5s | %7s",
                "arch", "hw", "D", "N", "B", "R", "Tpipe(ms)", "Tbub(ms)",
                "Tprec(ms)", "thr-pipe", "thr-PF", "thr-skip", "thr-naive",
                "ratio", "steps", "speedup");
}

std::string render_throughput_row(const SweepPoint& p) {
  const auto& in = p.input;
  const auto& r = p.result;
  return format(
      "%-10s %-8s %4zu %4zu %4zu %2s | %9.2f %9.2f %9.2f | %8.1f %8.1f "
      "%8.1f %8.1f | %6.2f %5d | %7.3f",
      in.cfg.name.c_str(), in.hw.name.c_str(), in.depth, in.n_micro,
      in.b_micro, in.recompute ? "R" : "-", r.t_pipe * 1e3, r.t_bubble * 1e3,
      r.t_precondition * 1e3, r.throughput_pipeline, r.throughput_pipefisher,
      r.throughput_kfac_skip, r.throughput_kfac_naive,
      r.curv_inv_bubble_ratio, r.refresh_steps, r.speedup_vs_kfac_skip);
}

std::string render_time_memory_breakdown(const SweepPoint& p) {
  const auto& in = p.input;
  const auto& r = p.result;
  const auto& m = p.result.memory;
  std::string out;
  out += format("%s D=%zu N=%zu B=%zu %s\n", in.cfg.name.c_str(), in.depth,
                in.n_micro, in.b_micro, in.recompute ? "(R)" : "");
  out += format("  time/step: fwd %s  bwd %s  prec %s  bubble %s  curv(xN) "
                "%s  inv %s\n",
                human_time(static_cast<double>(in.n_micro) * r.t_forward)
                    .c_str(),
                human_time(static_cast<double>(in.n_micro) * r.t_backward)
                    .c_str(),
                human_time(r.t_precondition).c_str(),
                human_time(r.t_bubble).c_str(),
                human_time(static_cast<double>(in.n_micro) * r.t_curvature)
                    .c_str(),
                human_time(r.t_inversion).c_str());
  out += format("  memory: act %s  peak_err %s  save_err %s  curv+inv %s  "
                "param+grad %s  total %s\n",
                human_bytes(m.activations).c_str(),
                human_bytes(m.peak_err).c_str(),
                human_bytes(m.save_err).c_str(),
                human_bytes(m.curv_plus_inv).c_str(),
                human_bytes(m.params_and_grads).c_str(),
                human_bytes(m.total()).c_str());
  return out;
}

}  // namespace pf
