// Trace-calibrated cost model: close the simulator↔reality loop.
//
// The runtime records executed Timelines with realized wall-clock durations
// next to the simulator's prediction, and they disagree (executed
// utilization 0.45–0.53 vs a predicted 0.73 on the bench shape) — the
// closed forms assume unit costs, infinite cores and free dispatch. This
// module replaces the hand-set constants with measurements:
//
//  * CalibrationAccumulator ingests executed Timelines (live
//    PipelineRuntime runs via cfg.step_observer, or trace replays) and
//    fits the mean realized duration of every (WorkKind, stage) bucket —
//    T_f/T_b per stage, the B/W split of split-backward schedules, the
//    per-factor K-FAC curvature/commit/inversion/precondition terms, the
//    step-tail costs, and the per-boundary handoff overhead.
//  * CalibratedCosts is the fitted profile: a committable artifact
//    (to_json()/from_json() round-trip) that plugs into StepCosts
//    (to_step_costs()) and PerfModelInput (the `calibrated` pointer).
//  * predict_step() replays a StepPlan — the EXACT task graph
//    PipelineRuntime::step() executes, lanes/priorities/resources/deps and
//    all — in virtual time under the fitted durations and a concurrency
//    cap equal to the executor's thread count (pool workers + the
//    participating main thread). Because the plan is shared with the
//    runtime and the fitted durations were sampled at the same worker
//    count (so CPU-oversubscription inflation is baked into them), the
//    prediction tracks executed makespans to within ~10% where the
//    uncalibrated closed form was off by ~50%.
//
// DNNsim's simulate-with-CHECK idiom: every prediction this module emits
// is cross-checked against execution in bench/autotune_baseline and
// bench/pipeline_runtime_baseline, PF_CHECKed within a band and gated in
// CI.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/pipeline/simulator.h"
#include "src/pipeline/step_plan.h"
#include "src/trace/timeline.h"

namespace pf {

// Fitted per-op-kind, per-stage realized costs (seconds). Vectors are
// indexed by model stage (size n_stages); a bucket never observed fits to
// 0 and the fallback-aware accessors below reconstruct it where possible
// (fused backward = B + W, split halves = fused × the fitted fraction).
struct CalibratedCosts {
  int n_stages = 0;
  // Executor concurrency the samples ran under (pool workers + main
  // thread). Predictions replay at this cap by default; a profile is only
  // transferable across runs with the same core budget.
  int n_threads = 0;
  // Residual multiplier: executed / replayed makespan of the calibration
  // burst itself. Absorbs what per-task means cannot see — executor
  // dispatch latency, allocator noise, CPU contention variance. Applied to
  // every predict_step() duration.
  double residual_scale = 1.0;
  // Per boundary-crossing dependency edge: consumer-start minus
  // producer-end when the consumer's lane was provably idle (channel
  // handoff + wakeup latency).
  double t_handoff = 0.0;
  // W / (B + W) fitted from split-backward timelines; 0.5 (the ZB-H1
  // modeling prior) when no split trace was ingested.
  double backward_w_fraction = 0.5;
  std::size_t samples = 0;  // intervals ingested

  // Distinct K-FAC factors observed per stage (6 per transformer block).
  std::vector<double> n_factors;

  std::vector<double> t_forward;     // fused forward pass
  std::vector<double> t_backward;    // fused backward (non-split traces)
  std::vector<double> t_backward_b;  // B (dx) pass   (split traces)
  std::vector<double> t_backward_w;  // W (dW) pass   (split traces)
  std::vector<double> t_curvature_a;  // per (factor, micro) task
  std::vector<double> t_curvature_b;
  std::vector<double> t_commit;       // per factor
  std::vector<double> t_inversion_a;
  std::vector<double> t_inversion_b;
  std::vector<double> t_precondition;
  std::vector<double> t_grad_final;  // owner-computes g *= 1/N
  std::vector<double> t_optimizer;   // per-stage base optimizer step

  // Fused backward cost of a stage: the fused bucket when observed, else
  // B + W from a split trace. 0 if neither was ingested.
  double fused_backward(int stage) const;
  // Split halves, falling back to fused × backward_w_fraction.
  double split_backward_b(int stage) const;
  double split_backward_w(int stage) const;

  // Means over stages with observations (0 if none).
  double mean_forward() const;
  double mean_backward() const;

  // Realized duration of one planned task. `split` selects the B/W or the
  // fused reading of WorkKind::kBackward. Throws when the kind was never
  // observed and cannot be reconstructed.
  double task_seconds(WorkKind kind, int stage, bool split) const;

  bool has_kfac() const;

  // Simulator plug-in: mean T_f/T_b with per-stage forward/backward scale
  // vectors, the fitted B/W split, t_handoff as t_p2p, and the mean
  // step-tail costs.
  StepCosts to_step_costs() const;

  // Committable-artifact serialization. The JSON is flat (numbers and
  // per-stage arrays under a "pf-calibrated-costs-v1" schema tag);
  // from_json throws pf::Error on malformed input, unknown schema, or
  // size-mismatched arrays — fuzzed in tests/test_calibration.cpp.
  std::string to_json() const;
  static CalibratedCosts from_json(const std::string& json);
};

// Streaming fitter. Feed one executed Timeline per step (wire it as the
// runtime's cfg.step_observer); fit() aggregates whatever was seen.
// Split-backward timelines are auto-detected (they contain
// kBackwardWeight intervals) and route their kBackward intervals into the
// B bucket instead of the fused bucket, so one accumulator can ingest a
// fused burst and a split burst and fit both readings at once.
class CalibrationAccumulator {
 public:
  explicit CalibrationAccumulator(int n_stages);

  void ingest(const Timeline& timeline);

  // Directly measured boundary-handoff latency (seconds) — e.g. the
  // transport bench's ping-pong over a channel backend — folded into the
  // same sample pool ingest() fills from timeline gaps. fit() reads a low
  // percentile of the pool, so a handoff-only accumulator (no timelines)
  // is a valid way to fit t_handoff for one transport in isolation.
  void add_handoff_sample(double seconds);

  std::size_t steps_ingested() const { return steps_; }

  // Fit the profile. `n_threads` records the executor concurrency the
  // samples ran under (PipelineRuntime::executor_threads()).
  CalibratedCosts fit(int n_threads) const;

 private:
  struct Stat {
    std::size_t count = 0;
    double total = 0.0;
  };
  int n_stages_;
  std::size_t steps_ = 0;
  std::size_t samples_ = 0;
  // (kind, stage) -> aggregate; kBackward of split timelines is recorded
  // under kBackwardWeight's sibling key via split_b_ instead.
  std::map<std::pair<WorkKind, int>, Stat> fused_;
  std::map<int, Stat> split_b_;
  std::vector<double> handoff_samples_;
  std::vector<std::set<std::pair<int, int>>> factors_seen_;  // per stage
};

// Virtual-time replay of a StepPlan under fitted durations: a greedy list
// scheduler honoring lane serialization, resource exclusivity, dispatch
// priority (smallest first, ties by insertion id — TaskExecutor's rule)
// and a hard concurrency cap of `n_threads` simultaneously running tasks.
// Boundary-crossing dependency edges add costs.t_handoff latency; every
// duration is scaled by costs.residual_scale.
struct PlanPrediction {
  double makespan = 0.0;
  Timeline timeline;  // one lane per device, virtual clock

  double utilization() const {
    return makespan > 0.0 ? timeline.utilization(0.0, makespan) : 0.0;
  }
};

PlanPrediction predict_step(const StepPlan& plan, const CalibratedCosts& costs,
                            std::size_t n_threads);

}  // namespace pf
