// CSV export of performance-model sweeps, so the paper's figures can be
// re-plotted with external tooling (matplotlib, gnuplot, a spreadsheet).
#pragma once

#include <string>
#include <vector>

#include "src/perfmodel/throughput.h"

namespace pf {

// Header matching sweep_to_csv rows.
std::string sweep_csv_header();

// One CSV row per sweep point (times in seconds, memory in bytes).
std::string sweep_point_csv(const SweepPoint& p);

// Full document.
std::string sweep_to_csv(const std::vector<SweepPoint>& points);

// Writes to `path`; throws pf::Error on I/O failure.
void write_sweep_csv(const std::vector<SweepPoint>& points,
                     const std::string& path);

}  // namespace pf
