// Closed-form performance model (paper §3.3, Figures 5, 6, 9-16).
//
//   T_pipe   = C_f·T_f + C_b·T_b
//   T_bubble = T_pipe − N_micro·w·(T_f + T_b)
//   T⁺_kfac  = N_micro·T_curv + T_inv (fit into bubbles) + T_prec
//
// C_f/C_b and the per-micro useful-work multiplier w come from the
// schedule's registered traits (src/pipeline/schedule_registry.h), e.g.
// (Table 1, and the bubble-invariance of Chimera for N = k·D):
//   GPipe / 1F1B (flush):   C_f = C_b = N + D − 1,      w = 1
//   Chimera (2 pipelines):  C_f = N, C_b = N + D − 2,   w = 1
//   interleaved-1F1B (V):   C_f = C_b = V·N + D − 1,    w = V
//     (the ideal static-order path; the greedy simulator realizes 0-25%
//      above it for N >= D — see tests/test_schedule_registry.cpp)
//
// Under activation recomputation (R) the backward time includes one extra
// forward. Memory comes from src/hw/memory_model.h.
#pragma once

#include <string>

#include "src/hw/cost_model.h"
#include "src/hw/memory_model.h"

namespace pf {

struct CalibratedCosts;  // src/perfmodel/calibration.h

struct PerfModelInput {
  TransformerConfig cfg;
  HardwareProfile hw;
  std::string schedule = "chimera";  // any name in list_schedules()
  std::size_t depth = 4;         // D (= number of devices, 1 block/stage in
                                 // the paper's Figure 5 setting)
  std::size_t blocks_per_stage = 1;  // per (virtual) stage
  std::size_t n_micro = 4;       // N
  std::size_t b_micro = 8;       // B
  // Chunks per device for virtual-pipeline schedules (others ignore it).
  std::size_t virtual_chunks = 2;
  bool recompute = false;        // R
  // Appendix A.2: k-block-diagonal factor approximation. Curvature work for
  // a factor of dim d shrinks to k·(d/k)² per token and inversion to
  // k·(d/k)³ — enabling very wide layers.
  std::size_t block_diag_k = 1;

  // Optional fitted profile (src/perfmodel/calibration.h). When set, the
  // per-stage work times come from the trace fit instead of the hw/ FLOP
  // model: T_f/T_b are the profile's stage means, the B/W split is the
  // fitted backward_w_fraction, T_curv/T_inv/T_prec are rebuilt from the
  // per-factor terms (commit is lumped into T_inv — both run once per
  // refresh). The profile must be fitted at this input's model-stage count
  // (traits.model_stages: D, or D·V for virtual-pipeline schedules).
  // Not owned; must outlive the call.
  const CalibratedCosts* calibrated = nullptr;
};

struct PerfModelResult {
  // Per-stage work times (seconds).
  double t_forward = 0.0;
  double t_backward = 0.0;   // includes recompute when R
  // B/W halves of t_backward for split_backward schedules (ZB-H1): the
  // critical-path dx pass and the deferrable dW pass. Filled with the
  // simulator's 50/50 modeling split; zero for fused-backward schedules.
  double t_backward_b = 0.0;
  double t_backward_w = 0.0;
  double t_curvature = 0.0;  // one micro-batch, all factors of the stage
  double t_inversion = 0.0;  // all factors of the stage
  double t_precondition = 0.0;

  // Step-level times.
  double t_pipe = 0.0;
  double t_bubble = 0.0;

  // (N·T_curv + T_inv) / T_bubble — how many steps of bubbles are needed to
  // refresh the curvature information (paper's key ratio).
  double curv_inv_bubble_ratio = 0.0;
  // ceil of the ratio, at least 1: the refresh interval in steps.
  int refresh_steps = 1;

  // Throughput in sequences/s for the four schemes of Figure 5(b).
  double throughput_pipeline = 0.0;    // vanilla pipeline (no K-FAC)
  double throughput_pipefisher = 0.0;  // K-FAC + bubble filling
  double throughput_kfac_skip = 0.0;   // naive K-FAC, skipping to match freq
  double throughput_kfac_naive = 0.0;  // naive K-FAC every step

  // Speedup of PipeFisher over K-FAC+skip (Figure 6 bottom row).
  double speedup_vs_kfac_skip = 0.0;

  // Memory (bytes), paper Figure 5(a) bottom.
  MemoryBreakdown memory;
};

PerfModelResult run_perf_model(const PerfModelInput& in);

}  // namespace pf
