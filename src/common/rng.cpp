#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t base, std::uint64_t stream,
                                 std::uint64_t index) {
  std::uint64_t x = base;
  x ^= splitmix64(x) ^ stream;
  x ^= splitmix64(x) ^ index;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PF_CHECK(lo <= hi) << "lo=" << lo << " hi=" << hi;
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  PF_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PF_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  PF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PF_CHECK(w >= 0.0) << "negative weight " << w;
    total += w;
  }
  PF_CHECK(total > 0.0) << "all weights zero";
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) {
  PF_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  return uniform() < p;
}

}  // namespace pf
