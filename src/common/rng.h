// Deterministic, seedable random number generation.
//
// A thin xoshiro256** implementation so results are reproducible across
// standard libraries (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>
#include <vector>

namespace pf {

// Mixes a base seed with a (stream, index) pair into an independent derived
// seed — the counter-based partitioning behind ExecContext's
// RngPartition::kPerRow policy (e.g. Dropout draws row `index` of its
// `stream`-th forward from Rng(derive_stream_seed(seed, stream, index))).
// Deterministic and platform-independent; splitmix64 absorption per word.
std::uint64_t derive_stream_seed(std::uint64_t base, std::uint64_t stream,
                                 std::uint64_t index);

// Deterministic PRNG with convenience distributions.
// The same seed always produces the same stream on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Box-Muller (cached pair).
  double normal();

  // Normal with mean/stddev.
  double normal(double mean, double stddev);

  // Sample an index from unnormalized weights (linear scan).
  std::size_t categorical(const std::vector<double>& weights);

  // Bernoulli with probability p of true.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pf
