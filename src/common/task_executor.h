// Dependency-driven task executor over a ThreadPool — the execution engine
// beneath the pipeline runtime (src/train/pipeline_runtime.h).
//
// Tasks form a DAG (dependencies by task id) and are grouped into *lanes*;
// a lane runs at most one task at a time. The runtime maps one pipeline
// device to one lane, so lane-serial execution is exactly the "a device
// executes one kernel at a time" property the simulator models. Tasks may
// additionally name a *resource*: at most one task holding a given resource
// runs at any moment, across all lanes. The runtime uses resources for
// shared model stages (Chimera maps one model stage onto two devices);
// because resources are acquired by the scheduler before a task starts —
// never blocked on mid-task — they cannot deadlock.
//
// Dispatch rule: whenever a lane is idle, the executor starts the READY
// (all dependencies done) task with the smallest priority value whose
// resource is free. The pipeline runtime gives pipeline ops low priorities
// (their event-order position) and K-FAC work high priorities, which
// realizes PipeFisher's bubble rule: curvature/inversion work runs exactly
// when a device has no runnable pipeline op — in the realized idle gaps.
//
// Determinism: the executor makes no ordering guarantees beyond the
// dependency edges — any value the computation produces must be pinned by
// deps, not by timing. (The pipeline runtime pins every floating-point
// accumulation order this way; see pipeline_runtime.h.)
//
// Dynamic graphs: tasks may also be add()ed *while run() is executing*, but
// only from inside a task body (the serving engine grows its admission →
// forward chains this way; see src/serve/serving_engine.h). A dynamic task
// may depend on any earlier id — already-completed dependencies count as
// satisfied. run() returns when the graph drains, i.e. when every task is
// done and the last ones added no more; a dynamic task added after a task
// error is registered but abandoned like every other unstarted task.
//
// run() executes the whole graph, blocks until completion, and rethrows the
// first task exception (remaining tasks are abandoned, in-flight tasks are
// drained first). Per-task wall-clock records (seconds since run() started)
// are kept so callers can emit an executed trace::Timeline.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"

namespace pf {

class TaskExecutor {
 public:
  // `n_lanes` fixed up front; lanes are ids [0, n_lanes).
  TaskExecutor(ThreadPool& pool, std::size_t n_lanes);

  // Registers a task. `deps` are ids returned by earlier add() calls.
  // `resource` >= 0 names a mutual-exclusion token (-1: none). Returns the
  // task id.
  //
  // Legal either before run() (static graph) or, while run() executes,
  // from inside a task body (dynamic graph). A dynamic task's dependencies
  // that already completed count as satisfied; its resource must not
  // exceed the maximum named before run() (tokens are sized at run start —
  // the serving engine uses none). Calling from a thread that is not
  // currently executing a task of this graph is undefined.
  std::size_t add(std::function<void()> fn, std::size_t lane, long priority,
                  std::vector<std::size_t> deps = {}, int resource = -1);

  std::size_t n_tasks() const;
  std::size_t n_lanes() const { return n_lanes_; }

  // Executes the graph. The calling thread participates as a worker, so a
  // zero-worker pool degenerates to a deterministic serial run in priority
  // order. Throws pf::Error on dependency cycles detected as a stall.
  void run();

  struct Record {
    double start = 0.0;  // seconds since run() began
    double end = 0.0;
    bool executed = false;
  };
  // Valid after run(); indexed by task id.
  const std::vector<Record>& records() const { return records_; }

 private:
  struct Node {
    std::function<void()> fn;
    std::size_t lane = 0;
    long priority = 0;
    int resource = -1;
    std::vector<std::size_t> dependents;
    std::size_t pending_deps = 0;
  };
  struct State;  // shared with pump closures (see task_executor.cpp)

  ThreadPool& pool_;
  std::size_t n_lanes_;
  int max_resource_ = -1;
  // deque: dynamic add() must not invalidate the `Node&` a runner holds
  // across its (unlocked) fn() call.
  std::deque<Node> nodes_;
  std::vector<Record> records_;
  bool ran_ = false;
  // Non-null exactly while run() is executing; routes add() to the locked
  // dynamic path.
  std::shared_ptr<State> live_;
};

}  // namespace pf
