// Buffer recycler for the hot-path activation stashes.
//
// The pipeline runtime churns through large, repetitively-shaped tensors:
// every micro-batch forward allocates fresh activation matrices, stashes
// them for the backward and the K-FAC curvature reads, and frees the lot at
// (or before) end of step — only to allocate the same shapes again one micro
// later. ArenaAllocator turns that malloc/free churn into a free-list
// round-trip: released buffers are kept, keyed by capacity, and the next
// acquire of a compatible size gets a recycled buffer instead of a fresh
// allocation.
//
// Design notes:
//   * The currency is std::vector<double> — the storage type of Matrix
//     (matrix.h grew take_data()/adopting constructors for exactly this
//     hand-off) and of the layer caches' auxiliary vectors, so a buffer can
//     flow matrix -> arena -> different matrix without copying.
//   * acquire(n) reuses the smallest free buffer whose capacity covers n,
//     but only within a 2x waste bound — a huge buffer is not pinned under
//     a tiny matrix; past the bound (or with an empty free list) it
//     allocates fresh, so exhaustion degrades to plain allocation and the
//     arena can grow without limit ("exhaustion growth").
//   * Thread-safe: one mutex around the free list. Stage ops already
//     serialize per stage, but K-FAC bubble tasks of the same stage may
//     release from a different worker thread than the forward that
//     acquired — borrow/return must be clean under TSan.
//   * Values are never recycled, only storage: every acquire resizes and
//     (for matrix acquires) refills, so arena-backed results are bitwise
//     identical to plain-allocation results at every thread count.
//
// Telemetry (stats()): recycled vs fresh acquire counts, released-buffer
// count, and current/peak bytes parked in the free list — the
// BENCH_pipeline_runtime recycle evidence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/linalg/matrix.h"

namespace pf {

class ArenaAllocator {
 public:
  ArenaAllocator() = default;
  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  // A buffer of size exactly n (recycled storage when a free buffer with
  // capacity in [n, 2n] exists, freshly allocated otherwise). Contents are
  // unspecified — callers overwrite every element.
  std::vector<double> acquire(std::size_t n);

  // Arena-backed Matrix of the given shape, every element set to `fill` —
  // the recycling analogue of Matrix(rows, cols, fill).
  Matrix acquire_matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  // Arena-backed deep copy of `src` (shape and values).
  Matrix copy_matrix(const Matrix& src);

  // Returns a buffer to the free list. Empty buffers (capacity 0) are
  // dropped silently — moved-from vectors route here without special-casing.
  void release(std::vector<double>&& buf);
  void release(Matrix&& m);

  struct Stats {
    std::uint64_t recycled = 0;        // acquires served from the free list
    std::uint64_t fresh = 0;           // acquires that had to allocate
    std::uint64_t released = 0;        // buffers returned to the free list
    std::size_t free_bytes = 0;        // bytes parked in the free list now
    std::size_t peak_free_bytes = 0;   // high-water mark of free_bytes
  };
  Stats stats() const;

  // Drops every parked buffer and zeroes the counters (between bench runs).
  void clear();

 private:
  mutable std::mutex mu_;
  // Free buffers keyed by capacity; multimap because several same-shaped
  // tensors (one per in-flight micro) are parked at once.
  std::multimap<std::size_t, std::vector<double>> free_;
  Stats stats_;
};

// Convenience for optional-arena call sites (ctx.arena() may be null):
// arena-backed when `arena` is set, plain allocation otherwise. Values are
// identical either way.
Matrix arena_matrix(ArenaAllocator* arena, std::size_t rows, std::size_t cols,
                    double fill = 0.0);
Matrix arena_copy(ArenaAllocator* arena, const Matrix& src);
void arena_release(ArenaAllocator* arena, Matrix&& m);
void arena_release(ArenaAllocator* arena, std::vector<double>&& buf);

// Copy-assigns src into dst, recycling arena storage when dst has none. A
// layer cache in the serial trainer keeps its buffer between steps, so the
// plain copy-assign reuses that capacity; in the pipeline the stash
// machinery moved the buffer out after the last forward, leaving dst empty —
// that is the case an arena acquire serves. Values are identical either way.
inline void arena_assign(ArenaAllocator* arena, Matrix& dst,
                         const Matrix& src) {
  if (arena != nullptr && dst.empty()) {
    dst = arena->copy_matrix(src);
    return;
  }
  dst = src;
}

}  // namespace pf
