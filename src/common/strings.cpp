#include "src/common/strings.h"

#include <cerrno>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

namespace pf {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  PF_CHECK(needed >= 0) << "vsnprintf failed";
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string human_time(double seconds) {
  if (seconds < 0) return "-" + human_time(-seconds);
  if (seconds < 1e-6) return format("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return format("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return format("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return format("%.2f s", seconds);
  return format("%.1f min", seconds / 60.0);
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format("%.2f %s", bytes, units[u]);
}

std::string percent(double fraction) {
  return format("%.1f%%", fraction * 100.0);
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE || v < INT_MIN ||
      v > INT_MAX)
    return fallback;
  return static_cast<int>(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return raw;
}

}  // namespace pf
