// Small numerically-stable statistics helpers used across the library
// (loss smoothing, utilization summaries, test assertions).
#pragma once

#include <cstddef>
#include <vector>

namespace pf {

// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average with bias correction (Adam-style).
class Ema {
 public:
  explicit Ema(double decay);
  void add(double x);
  double value() const;  // bias-corrected
  bool empty() const { return n_ == 0; }

 private:
  double decay_;
  double acc_ = 0.0;
  std::size_t n_ = 0;
};

// Centered moving average smoothing with the given half-window, an offline
// stand-in for the paper's zero-phase Butterworth filtfilt smoothing of the
// pretraining loss curve (Figure 7).
std::vector<double> smooth_moving_average(const std::vector<double>& y,
                                          std::size_t half_window);

// First index where the smoothed series drops to <= target, or -1.
// `ignore_first` skips an initial transient (the paper ignores fluctuations
// around step 1000).
long first_index_at_or_below(const std::vector<double>& y, double target,
                             std::size_t ignore_first = 0);

}  // namespace pf
