#include "src/common/exec_context.h"

#include <algorithm>
#include <atomic>

namespace pf {

namespace {
// The process-default knobs. Both start at 1 — the serial seed behaviour —
// so nothing parallelizes until an example/test turns a knob.
std::atomic<int> g_default_nn_threads{1};
std::atomic<int> g_default_gemm_threads{1};
}  // namespace

std::size_t ExecContext::resolved_nn_threads() const {
  const int n = nn_threads_ == 0
                    ? g_default_nn_threads.load(std::memory_order_relaxed)
                    : nn_threads_;
  return static_cast<std::size_t>(std::max(1, n));
}

void ExecContext::set_default_nn_threads(int n) {
  g_default_nn_threads.store(std::max(1, n), std::memory_order_relaxed);
}

int ExecContext::default_nn_threads() {
  return g_default_nn_threads.load(std::memory_order_relaxed);
}

void ExecContext::set_default_gemm_threads(int n) {
  g_default_gemm_threads.store(std::max(1, n), std::memory_order_relaxed);
}

int ExecContext::default_gemm_threads() {
  return g_default_gemm_threads.load(std::memory_order_relaxed);
}

}  // namespace pf
