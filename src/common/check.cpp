#include "src/common/check.h"

namespace pf::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace pf::detail
