// Runtime CPU feature detection and SIMD dispatch level for linalg kernels.
//
// The packed GEMM driver has three ISA paths: a portable scalar microkernel,
// an AVX2+FMA microkernel, and an AVX-512F microkernel — the ISA-specific
// kernels live in dedicated TUs (src/linalg/gemm_kernels_avx2.cpp compiled
// with -mavx2 -mfma, src/linalg/gemm_kernels_avx512.cpp compiled with
// -mavx512f, each only when the toolchain supports the flags). Which path
// runs is a process-wide runtime choice:
//
//   detected_simd_level()  the highest level this host *and* this build can
//                          execute: cpuid must report the ISA and the
//                          matching TU must have been compiled in
//                          (PF_HAVE_AVX2 / PF_HAVE_AVX512).
//   active_simd_level()    what the kernels will actually use. Starts at the
//                          detected level, demoted by the PF_SIMD_LEVEL
//                          environment knob (values: scalar, avx2, avx512;
//                          the legacy PF_FORCE_SCALAR=1 is an alias for
//                          PF_SIMD_LEVEL=scalar), and adjustable with
//                          set_simd_level so tests and benches can compare
//                          paths in one process.
//
// Determinism contract (see gemm.h): within one SIMD level results are
// bitwise reproducible across thread counts; across levels results may
// differ in the last ulps because FMA rounds the multiply-add as one
// operation and wider tiles change the (fixed, documented) order in which
// each kernel walks k.
#pragma once

namespace pf {

enum class SimdLevel {
  kScalar = 0,  // portable C++ kernels, no ISA assumptions
  kAvx2 = 1,    // AVX2 + FMA packed microkernel
  kAvx512 = 2,  // AVX-512F packed microkernel (wider register tile)
};

// "scalar" / "avx2" / "avx512" — stable strings for logs and bench labels.
const char* simd_level_name(SimdLevel level);

// Parses a PF_SIMD_LEVEL-style name ("scalar", "avx2", "avx512"; case
// sensitive). Returns true and writes *out on a match, false otherwise.
bool parse_simd_level(const char* name, SimdLevel* out);

// Highest level this host + build supports. Computed once (cpuid), cached.
SimdLevel detected_simd_level();

// Level the linalg kernels dispatch on right now.
SimdLevel active_simd_level();

// Requests a level; clamped to detected_simd_level(). Returns the level
// actually in effect afterwards. Thread-safe, but callers racing concurrent
// GEMMs get whichever level each call observes — switch while quiescent.
SimdLevel set_simd_level(SimdLevel level);

}  // namespace pf
