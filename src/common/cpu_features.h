// Runtime CPU feature detection and SIMD dispatch level for linalg kernels.
//
// The packed GEMM driver has two ISA paths: a portable scalar microkernel and
// an AVX2+FMA microkernel living in a dedicated TU
// (src/linalg/gemm_kernels_avx2.cpp, compiled with -mavx2 -mfma only when the
// toolchain supports those flags). Which path runs is a process-wide runtime
// choice:
//
//   detected_simd_level()  what this host *and* this build can execute:
//                          cpuid must report AVX2+FMA and the AVX2 TU must
//                          have been compiled in (PF_HAVE_AVX2).
//   active_simd_level()    what the kernels will actually use. Starts at the
//                          detected level, demoted to scalar when the
//                          PF_FORCE_SCALAR=1 environment knob is set, and
//                          adjustable with set_simd_level so tests and
//                          benches can compare both paths in one process.
//
// Determinism contract (see gemm.h): within one SIMD level results are
// bitwise reproducible across thread counts; across levels the AVX2 path may
// differ from scalar in the last ulps because FMA rounds the multiply-add as
// one operation.
#pragma once

namespace pf {

enum class SimdLevel {
  kScalar = 0,  // portable C++ kernels, no ISA assumptions
  kAvx2 = 1,    // AVX2 + FMA packed microkernel
};

// "scalar" / "avx2" — stable strings for logs and bench labels.
const char* simd_level_name(SimdLevel level);

// Highest level this host + build supports. Computed once (cpuid), cached.
SimdLevel detected_simd_level();

// Level the linalg kernels dispatch on right now.
SimdLevel active_simd_level();

// Requests a level; clamped to detected_simd_level(). Returns the level
// actually in effect afterwards. Thread-safe, but callers racing concurrent
// GEMMs get whichever level each call observes — switch while quiescent.
SimdLevel set_simd_level(SimdLevel level);

}  // namespace pf
