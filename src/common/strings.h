// Formatting helpers used by the reporting/bench layer.
#pragma once

#include <string>
#include <vector>

namespace pf {

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "12.3 ms" / "1.20 s" style human-readable duration (seconds in).
std::string human_time(double seconds);

// "1.5 GB" style human-readable byte count.
std::string human_bytes(double bytes);

// Percentage with one decimal, e.g. "41.7%".
std::string percent(double fraction);

// Left/right pad to width with spaces.
std::string pad_right(const std::string& s, std::size_t width);
std::string pad_left(const std::string& s, std::size_t width);

// Join with separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Integer environment knob: returns fallback when the variable is unset or
// not a valid integer. Used for runtime tuning flags like PF_GEMM_THREADS.
int env_int(const char* name, int fallback);

// String environment knob: returns fallback when the variable is unset or
// empty. Used for selection flags like PF_SCHEDULE.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace pf
