#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pf {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  PF_CHECK(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  PF_CHECK(n_ > 0);
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  PF_CHECK(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  PF_CHECK(n_ > 0);
  return max_;
}

Ema::Ema(double decay) : decay_(decay) {
  PF_CHECK(decay > 0.0 && decay < 1.0) << "decay=" << decay;
}

void Ema::add(double x) {
  acc_ = decay_ * acc_ + (1.0 - decay_) * x;
  ++n_;
}

double Ema::value() const {
  PF_CHECK(n_ > 0);
  const double correction = 1.0 - std::pow(decay_, static_cast<double>(n_));
  return acc_ / correction;
}

std::vector<double> smooth_moving_average(const std::vector<double>& y,
                                          std::size_t half_window) {
  std::vector<double> out(y.size());
  const long n = static_cast<long>(y.size());
  const long h = static_cast<long>(half_window);
  for (long i = 0; i < n; ++i) {
    const long lo = std::max(0L, i - h);
    const long hi = std::min(n - 1, i + h);
    double sum = 0.0;
    for (long j = lo; j <= hi; ++j) sum += y[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

long first_index_at_or_below(const std::vector<double>& y, double target,
                             std::size_t ignore_first) {
  for (std::size_t i = ignore_first; i < y.size(); ++i) {
    if (y[i] <= target) return static_cast<long>(i);
  }
  return -1;
}

}  // namespace pf
