// Checked error handling for the pipefisher library.
//
// All invariant violations throw pf::Error (derived from std::runtime_error)
// carrying the failing expression and location. Library code uses PF_CHECK
// for conditions that depend on caller input and PF_ASSERT for internal
// invariants; both are always on (this library is not performance-bound by
// branch checks).
#pragma once

// The library uses C++20 (defaulted PipeOp::operator== in src/pipeline/ops.h,
// std::erase_if in src/trace/timeline.cpp). The CMake build asserts this via
// target_compile_features(pf PUBLIC cxx_std_20); this guard catches builds
// that bypass CMake with an older -std flag.
// (_MSVC_LANG: MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus.)
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "pipefisher requires C++20: build with the top-level CMakeLists.txt or pass /std:c++20"
#endif
#elif defined(__cplusplus) && __cplusplus < 202002L
#error "pipefisher requires C++20: build with the top-level CMakeLists.txt or pass -std=c++20"
#endif

#include <sstream>
#include <stdexcept>
#include <string>

namespace pf {

// Exception type thrown by every PF_CHECK / PF_ASSERT failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);

// Stream-collecting helper so PF_CHECK(x > 0) << "x=" << x works.
class FailureStream {
 public:
  FailureStream(const char* kind, const char* expr, const char* file, int line)
      : kind_(kind), expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~FailureStream() noexcept(false) {
    fail(kind_, expr_, file_, line_, os_.str());
  }
  template <typename T>
  FailureStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* kind_;
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pf

#define PF_CHECK(cond)                                                     \
  if (cond) {                                                              \
  } else                                                                   \
    ::pf::detail::FailureStream("PF_CHECK", #cond, __FILE__, __LINE__)

#define PF_ASSERT(cond)                                                    \
  if (cond) {                                                              \
  } else                                                                   \
    ::pf::detail::FailureStream("PF_ASSERT", #cond, __FILE__, __LINE__)
