// Explicit execution context for the compute stack.
//
// PR 1/PR 3 threaded the linalg kernels behind trailing `threads` arguments
// and the implicit set_gemm_threads global; the nn layers reached that
// parallelism only through the global, and their own row/head/token loops
// stayed serial. ExecContext makes parallelism a first-class parameter of
// every forward/backward instead: it carries the thread-pool handle, the nn
// loop chunk count, the GEMM row-block count, the SIMD dispatch level the
// kernels beneath will use, and the RNG partitioning policy for stochastic
// layers (Dropout). A process-default instance — mutated through
// set_default_nn_threads / set_default_gemm_threads (the latter is what the
// legacy set_gemm_threads free function now writes) — replaces the old
// global as the single knob; layer signatures default to it, so call sites
// without an explicit context keep compiling and keep following the knobs.
//
// Determinism contract (extends gemm.h): every layer loop parallelized over
// an ExecContext partitions its work so each memory location receives its
// accumulations in the serial order — outputs are bitwise identical for
// every nn_threads/gemm_threads combination within one SIMD level. The
// NnThreads test suite pins this for each nn layer and end to end.
#pragma once

#include <cstddef>
#include <utility>

#include "src/common/cpu_features.h"
#include "src/common/thread_pool.h"

namespace pf {

class ArenaAllocator;  // common/arena.h

// How layers that consume randomness (Dropout) map their RNG stream onto a
// parallel loop.
enum class RngPartition {
  // One sequential stream drawn in row-major order on the calling thread
  // (the seed behaviour). Mask generation stays serial — only the
  // elementwise apply parallelizes — so results match the seed bit for bit
  // at every thread count.
  kSequential = 0,
  // One counter-derived substream per row (rng.h: derive_stream_seed).
  // Fully parallel and bitwise identical for every thread count, but a
  // different (equally valid) mask than the sequential stream.
  kPerRow = 1,
};

class ExecContext {
 public:
  // Follows the process-default knobs: thread counts of 0 resolve through
  // default_nn_threads() / the gemm default at the moment of use.
  ExecContext() = default;
  explicit ExecContext(int nn_threads, int gemm_threads = 0,
                       RngPartition rng_partition = RngPartition::kSequential,
                       ThreadPool* pool = nullptr)
      : nn_threads_(nn_threads),
        gemm_threads_(gemm_threads),
        rng_partition_(rng_partition),
        pool_(pool) {}

  // Pinned {1, 1}: the serial seed execution, independent of every knob.
  // Layers use it for tiny per-task products inside an already-parallel
  // region (e.g. per-head attention GEMMs) to avoid nested fan-out.
  static ExecContext serial() { return ExecContext(1, 1); }
  // Follow-the-knobs instance — what every defaulted layer signature binds.
  static ExecContext defaults() { return ExecContext(); }

  // Raw knob values; 0 = follow the corresponding process default.
  int nn_threads() const { return nn_threads_; }
  int gemm_threads() const { return gemm_threads_; }
  RngPartition rng_partition() const { return rng_partition_; }

  // Pool the nn loops fan out on (the shared global pool unless overridden).
  ThreadPool& pool() const { return pool_ ? *pool_ : ThreadPool::global(); }

  // Buffer recycler for activation caches/stashes; nullptr (the default)
  // means plain allocation. Set by the pipeline runtime on each stage's
  // context; layers route cache storage through arena_matrix/arena_copy
  // (common/arena.h), which fall back cleanly on null. Arena-backed values
  // equal plain-allocated values bit for bit — only the storage is reused.
  ArenaAllocator* arena() const { return arena_; }
  ExecContext& set_arena(ArenaAllocator* arena) {
    arena_ = arena;
    return *this;
  }

  // SIMD level the linalg kernels beneath this context dispatch on. SIMD
  // selection stays a process-wide property (cpu_features.h); the context
  // surfaces it so consumers log/record the level their results depend on.
  SimdLevel simd_level() const { return active_simd_level(); }

  // nn_threads with the 0 = process-default convention applied, floor 1.
  std::size_t resolved_nn_threads() const;

  // Runs fn(begin, end) over [0, total) in resolved_nn_threads() contiguous
  // chunks on pool(); serial contexts call fn(0, total) inline with no
  // std::function wrap (the nn loops sit on hot paths).
  template <typename Fn>
  void parallel_for(std::size_t total, Fn&& fn) const {
    const std::size_t n = resolved_nn_threads();
    if (n <= 1 || total <= 1) {
      if (total > 0) fn(std::size_t{0}, total);
      return;
    }
    pool().parallel_for(total, n, std::forward<Fn>(fn));
  }

  // Process-default knobs. nn: chunk count for the nn row/head/token loops
  // (PF_NN_THREADS in the examples). gemm: row-block count the linalg
  // kernels use for threads == 0 calls — the storage behind the legacy
  // set_gemm_threads/gemm_threads functions in gemm.h. Both floor at 1 and
  // are safe to flip between steps (atomic), not mid-kernel.
  static void set_default_nn_threads(int n);
  static int default_nn_threads();
  static void set_default_gemm_threads(int n);
  static int default_gemm_threads();

 private:
  int nn_threads_ = 0;
  int gemm_threads_ = 0;
  RngPartition rng_partition_ = RngPartition::kSequential;
  ThreadPool* pool_ = nullptr;
  ArenaAllocator* arena_ = nullptr;
};

}  // namespace pf
