#include "src/common/cpu_features.h"

#include <atomic>

#include "src/common/strings.h"

namespace pf {

namespace {

SimdLevel detect() {
#if defined(PF_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports folds the cpuid dance (including the xgetbv
  // OS-support check for the ymm state) into one call on GCC and Clang.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel clamp_to_detected(SimdLevel level) {
  return static_cast<int>(level) > static_cast<int>(detected_simd_level())
             ? detected_simd_level()
             : level;
}

std::atomic<int>& active_storage() {
  // First use resolves the PF_FORCE_SCALAR environment override; after that
  // the level only changes through set_simd_level.
  static std::atomic<int> level{static_cast<int>(
      env_int("PF_FORCE_SCALAR", 0) != 0 ? SimdLevel::kScalar : detect())};
  return level;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel detected_simd_level() {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd_level() {
  return static_cast<SimdLevel>(
      active_storage().load(std::memory_order_relaxed));
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel clamped = clamp_to_detected(level);
  active_storage().store(static_cast<int>(clamped),
                         std::memory_order_relaxed);
  return clamped;
}

}  // namespace pf
