#include "src/common/cpu_features.h"

#include <atomic>
#include <cstring>
#include <string>

#include "src/common/strings.h"

namespace pf {

namespace {

SimdLevel detect() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports folds the cpuid dance (including the xgetbv
  // OS-support check for the ymm/zmm state) into one call on GCC and Clang.
#if defined(PF_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(PF_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdLevel::kAvx2;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel clamp_to_detected(SimdLevel level) {
  return static_cast<int>(level) > static_cast<int>(detected_simd_level())
             ? detected_simd_level()
             : level;
}

SimdLevel env_override(SimdLevel detected) {
  // PF_SIMD_LEVEL pins a tier by name; the legacy PF_FORCE_SCALAR=1 knob
  // stays working as an alias for PF_SIMD_LEVEL=scalar. An unrecognized
  // value is ignored (detected level wins) rather than aborting: the knob
  // exists for CI matrix legs and perf triage, not program logic.
  const std::string name = env_str("PF_SIMD_LEVEL", "");
  SimdLevel parsed;
  if (!name.empty() && parse_simd_level(name.c_str(), &parsed))
    return clamp_to_detected(parsed);
  if (env_int("PF_FORCE_SCALAR", 0) != 0) return SimdLevel::kScalar;
  return detected;
}

std::atomic<int>& active_storage() {
  // First use resolves the environment override; after that the level only
  // changes through set_simd_level.
  static std::atomic<int> level{static_cast<int>(env_override(detect()))};
  return level;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool parse_simd_level(const char* name, SimdLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
    return true;
  }
  return false;
}

SimdLevel detected_simd_level() {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd_level() {
  return static_cast<SimdLevel>(
      active_storage().load(std::memory_order_relaxed));
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel clamped = clamp_to_detected(level);
  active_storage().store(static_cast<int>(clamped),
                         std::memory_order_relaxed);
  return clamped;
}

}  // namespace pf
