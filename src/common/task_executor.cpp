#include "src/common/task_executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>

#include "src/common/check.h"

namespace pf {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point epoch) {
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}
}  // namespace

// Shared between run() and the pump closures submitted to the pool. Pumps
// hold a shared_ptr so a stale closure drained from the pool queue after
// run() returned (possible on a zero-worker pool, where only a later
// parallel_for drains submissions) finds `finished` and exits without
// touching freed memory.
struct TaskExecutor::State {
  explicit State(std::size_t n_lanes, int max_resource)
      : lane_ready(n_lanes),
        lane_busy(n_lanes, false),
        resource_busy(static_cast<std::size_t>(max_resource + 1), false) {}

  std::mutex mu;
  std::condition_variable cv;
  // Min-heap per lane on (priority, id): ready tasks not yet started.
  using Entry = std::pair<long, std::size_t>;
  std::vector<std::priority_queue<Entry, std::vector<Entry>,
                                  std::greater<Entry>>>
      lane_ready;
  std::vector<bool> lane_busy;
  std::vector<bool> resource_busy;
  std::size_t done = 0;
  std::size_t running = 0;
  std::size_t pumps_in_flight = 0;
  bool finished = false;
  std::exception_ptr error;
  Clock::time_point epoch;
  // The pool-side worker closure, stored here so completion paths can top
  // up pumps for lanes they just made startable (set by run() before any
  // task is seeded).
  std::function<void()> pump;
};

TaskExecutor::TaskExecutor(ThreadPool& pool, std::size_t n_lanes)
    : pool_(pool), n_lanes_(n_lanes) {
  PF_CHECK(n_lanes >= 1);
}

std::size_t TaskExecutor::add(std::function<void()> fn, std::size_t lane,
                              long priority, std::vector<std::size_t> deps,
                              int resource) {
  PF_CHECK(lane < n_lanes_) << "lane " << lane << " out of " << n_lanes_;
  PF_CHECK(fn != nullptr);
  if (!ran_) {
    const std::size_t id = nodes_.size();
    Node n;
    n.fn = std::move(fn);
    n.lane = lane;
    n.priority = priority;
    n.resource = resource;
    max_resource_ = std::max(max_resource_, resource);
    n.pending_deps = deps.size();
    nodes_.push_back(std::move(n));
    for (const std::size_t d : deps) {
      PF_CHECK(d < id) << "dependency " << d << " of task " << id
                       << " not yet added";
      nodes_[d].dependents.push_back(id);
    }
    return id;
  }

  // Dynamic path: the graph is executing; we are inside a task body (the
  // contract in the header), so `live_` is stable for the duration of this
  // call. Resource tokens were sized when run() started, so a dynamic task
  // cannot introduce a new one.
  std::shared_ptr<State> st = live_;
  PF_CHECK(st != nullptr) << "add() after run() completed";
  PF_CHECK(resource <= max_resource_)
      << "dynamic task names resource " << resource
      << " beyond the run-start maximum " << max_resource_
      << " (resource tokens are sized when run() starts)";

  std::lock_guard<std::mutex> lock(st->mu);
  const std::size_t id = nodes_.size();
  Node n;
  n.fn = std::move(fn);
  n.lane = lane;
  n.priority = priority;
  n.resource = resource;
  n.pending_deps = 0;
  for (const std::size_t d : deps) {
    PF_CHECK(d < id) << "dependency " << d << " of task " << id
                     << " not yet added";
    // A completed dependency counts as satisfied; one still pending or
    // running fires through its dependents list on completion.
    if (!records_[d].executed) ++n.pending_deps;
  }
  const std::size_t pending = n.pending_deps;
  nodes_.push_back(std::move(n));
  records_.push_back(Record{});
  for (const std::size_t d : deps)
    if (!records_[d].executed) nodes_[d].dependents.push_back(id);
  // After an error the graph is finishing and every unstarted task is
  // abandoned — the new one joins them (uniform semantics, no secondary
  // throw out of the adding task's body).
  if (!st->finished && pending == 0) {
    st->lane_ready[lane].emplace(priority, id);
    // The adding thread is occupied by its own task, so cover every
    // startable lane: wake the main thread and top up pool pumps
    // (over-provisioning is harmless — stale pumps exit immediately).
    if (st->pump && pool_.n_threads() > 0) {
      std::size_t startable = 0;
      for (std::size_t l = 0; l < n_lanes_; ++l)
        if (!st->lane_busy[l] && !st->lane_ready[l].empty()) ++startable;
      while (startable > st->pumps_in_flight &&
             st->pumps_in_flight < n_lanes_) {
        ++st->pumps_in_flight;
        pool_.submit(st->pump);
      }
    }
    st->cv.notify_all();
  }
  return id;
}

std::size_t TaskExecutor::n_tasks() const { return nodes_.size(); }

void TaskExecutor::run() {
  PF_CHECK(!ran_) << "run() is single-shot";
  ran_ = true;
  records_.assign(nodes_.size(), Record{});
  if (nodes_.empty()) return;

  auto st = std::make_shared<State>(n_lanes_, max_resource_);
  st->epoch = Clock::now();
  // Opens the dynamic add() window. Task bodies start only after the seed
  // block below acquires/releases the state mutex, so they observe this
  // write; it is cleared after the drain, when no body can be running.
  live_ = st;

  // Picks the best startable (lane, task): an idle lane whose top-priority
  // ready task has a free resource. When the head of a lane's heap is
  // blocked on its resource, lower-priority ready tasks of that lane may
  // still run (work conservation — a blocked op must not idle the device
  // when bubble work is ready). Caller holds the state mutex.
  auto pick_startable = [this, &st](std::size_t* out_task) -> bool {
    for (std::size_t lane = 0; lane < st->lane_ready.size(); ++lane) {
      if (st->lane_busy[lane] || st->lane_ready[lane].empty()) continue;
      auto& heap = st->lane_ready[lane];
      // Pop blocked heads into a side buffer, take the first startable
      // task, then push the buffer back.
      std::vector<State::Entry> blocked;
      bool found = false;
      while (!heap.empty()) {
        const auto top = heap.top();
        const int res = nodes_[top.second].resource;
        if (res >= 0 && st->resource_busy[static_cast<std::size_t>(res)]) {
          blocked.push_back(top);
          heap.pop();
          continue;
        }
        heap.pop();
        *out_task = top.second;
        found = true;
        break;
      }
      for (const auto& e : blocked) heap.push(e);
      if (found) return true;
    }
    return false;
  };

  // Executes one startable task (caller holds the lock via `lk`); returns
  // false when nothing could start.
  auto try_run_one = [&](std::unique_lock<std::mutex>& lk) -> bool {
    std::size_t id = 0;
    if (!pick_startable(&id)) return false;
    Node& node = nodes_[id];
    st->lane_busy[node.lane] = true;
    if (node.resource >= 0)
      st->resource_busy[static_cast<std::size_t>(node.resource)] = true;
    ++st->running;
    lk.unlock();

    Record rec;
    rec.start = seconds_since(st->epoch);
    std::exception_ptr err;
    try {
      node.fn();
    } catch (...) {
      err = std::current_exception();
    }
    rec.end = seconds_since(st->epoch);
    rec.executed = true;

    lk.lock();
    records_[id] = rec;
    st->lane_busy[node.lane] = false;
    if (node.resource >= 0)
      st->resource_busy[static_cast<std::size_t>(node.resource)] = false;
    --st->running;
    ++st->done;
    if (err) {
      if (!st->error) st->error = err;
      st->finished = true;  // stop dispatching; abandon the rest
    } else {
      for (const std::size_t dep : node.dependents) {
        Node& d = nodes_[dep];
        PF_ASSERT(d.pending_deps > 0);
        if (--d.pending_deps == 0)
          st->lane_ready[d.lane].emplace(d.priority, dep);
      }
      if (st->done == nodes_.size()) st->finished = true;
      // Top up pool pumps for lanes this completion made startable beyond
      // the one the current thread's loop takes next — otherwise a newly
      // runnable lane could idle until the main thread finishes its own
      // task and re-seeds.
      if (!st->finished && st->pump && pool_.n_threads() > 0) {
        std::size_t startable = 0;
        for (std::size_t lane = 0; lane < n_lanes_; ++lane)
          if (!st->lane_busy[lane] && !st->lane_ready[lane].empty())
            ++startable;
        while (startable > 1 + st->pumps_in_flight &&
               st->pumps_in_flight < n_lanes_) {
          ++st->pumps_in_flight;
          pool_.submit(st->pump);
        }
      }
    }
    st->cv.notify_all();
    return true;
  };

  // Pool-side worker: runs startable tasks until none remain for it, then
  // returns (never blocks a pool thread). Completion paths — here, in the
  // main loop, and inside try_run_one — top up pumps whenever more lanes
  // become startable than there are threads working them. The closure
  // holds the State shared_ptr, so a stale pump drained after run()
  // returned finds `finished` and exits without touching run()'s frame.
  st->pump = [st, try_run_one]() {
    std::unique_lock<std::mutex> lk(st->mu);
    --st->pumps_in_flight;  // this pump is now live, not queued
    while (!st->finished && try_run_one(lk)) {
    }
  };

  // Seed: tasks with no dependencies.
  {
    std::lock_guard<std::mutex> lock(st->mu);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (nodes_[i].pending_deps == 0)
        st->lane_ready[nodes_[i].lane].emplace(nodes_[i].priority, i);
  }

  // Main loop: participate as a worker; keep enough pumps in flight to
  // cover every idle lane with ready work; wait when nothing is startable.
  std::unique_lock<std::mutex> lk(st->mu);
  for (;;) {
    if (st->finished) break;
    // Count startable lanes beyond the one this thread takes and top up
    // pool pumps for them (over-provisioning is harmless: stale pumps
    // exit immediately).
    std::size_t startable = 0;
    for (std::size_t lane = 0; lane < n_lanes_; ++lane)
      if (!st->lane_busy[lane] && !st->lane_ready[lane].empty()) ++startable;
    while (startable > 1 + st->pumps_in_flight &&
           st->pumps_in_flight < n_lanes_ && pool_.n_threads() > 0) {
      ++st->pumps_in_flight;
      pool_.submit(st->pump);
    }
    if (!try_run_one(lk)) {
      PF_CHECK(st->running > 0 || st->done == nodes_.size())
          << "task graph stalled with " << nodes_.size() - st->done
          << " tasks pending (dependency cycle?)";
      st->cv.wait(lk);
    }
  }
  // Drain in-flight tasks before returning: their bodies may reference
  // caller-owned state.
  st->cv.wait(lk, [&] { return st->running == 0; });
  // Break the State->pump->State shared_ptr cycle (queued stale pump
  // copies hold their own State refs and self-expire on `finished`).
  st->pump = nullptr;
  live_ = nullptr;  // dynamic add() window closed
  const std::exception_ptr err = st->error;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace pf
