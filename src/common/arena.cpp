#include "src/common/arena.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace pf {

std::vector<double> ArenaAllocator::acquire(std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (n > 0) {
      // Smallest parked buffer that covers n, within a 2x waste bound so a
      // huge buffer never gets pinned under a tiny tensor.
      const auto it = free_.lower_bound(n);
      if (it != free_.end() && it->first <= 2 * n) {
        std::vector<double> buf = std::move(it->second);
        stats_.free_bytes -= it->first * sizeof(double);
        free_.erase(it);
        ++stats_.recycled;
        buf.resize(n);
        return buf;
      }
    }
    ++stats_.fresh;
  }
  // Exhaustion growth: allocate outside the lock.
  return std::vector<double>(n);
}

Matrix ArenaAllocator::acquire_matrix(std::size_t rows, std::size_t cols,
                                      double fill) {
  std::vector<double> buf = acquire(rows * cols);
  std::fill(buf.begin(), buf.end(), fill);
  return Matrix(rows, cols, std::move(buf));
}

Matrix ArenaAllocator::copy_matrix(const Matrix& src) {
  std::vector<double> buf = acquire(src.size());
  if (!buf.empty())
    std::memcpy(buf.data(), src.data(), src.size() * sizeof(double));
  return Matrix(src.rows(), src.cols(), std::move(buf));
}

void ArenaAllocator::release(std::vector<double>&& buf) {
  const std::size_t cap = buf.capacity();
  if (cap == 0) return;  // moved-from / never-allocated: nothing to park
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.released;
  stats_.free_bytes += cap * sizeof(double);
  stats_.peak_free_bytes = std::max(stats_.peak_free_bytes, stats_.free_bytes);
  free_.emplace(cap, std::move(buf));
}

void ArenaAllocator::release(Matrix&& m) { release(m.take_data()); }

ArenaAllocator::Stats ArenaAllocator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArenaAllocator::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
  stats_ = Stats{};
}

Matrix arena_matrix(ArenaAllocator* arena, std::size_t rows, std::size_t cols,
                    double fill) {
  return arena != nullptr ? arena->acquire_matrix(rows, cols, fill)
                          : Matrix(rows, cols, fill);
}

Matrix arena_copy(ArenaAllocator* arena, const Matrix& src) {
  return arena != nullptr ? arena->copy_matrix(src) : src;
}

void arena_release(ArenaAllocator* arena, Matrix&& m) {
  if (arena != nullptr) arena->release(std::move(m));
  // else: the Matrix destructor frees the storage normally.
}

void arena_release(ArenaAllocator* arena, std::vector<double>&& buf) {
  if (arena != nullptr) arena->release(std::move(buf));
}

}  // namespace pf
