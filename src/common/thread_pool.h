// Fixed worker pool for data-parallel kernels (row-block GEMM, batched
// factor work).
//
// The pool is deliberately minimal: a task queue, N workers, and a blocking
// parallel_for that splits an index range into contiguous chunks. Chunks
// are claimed from a shared atomic counter by the calling thread and by
// helper tasks enqueued on the pool — the caller only ever executes chunks
// of ITS OWN loop, never unrelated queued work. (The previous design had
// the caller help-drain the whole queue while waiting, which meant a
// forward's parallel_for could execute a blocking task some other
// subsystem had submitted — the serving engine's admission pump; see
// RequestQueue::wait_pop.) parallel_for still never deadlocks on a pool
// with zero workers or when called from inside a pool task: the caller
// claims every remaining chunk itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pf {

class ThreadPool {
 public:
  // Spawns n_threads workers. n_threads may be 0; parallel_for then runs
  // everything on the calling thread.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return workers_.size(); }

  // Runs fn(begin, end) over [0, total) split into n_chunks contiguous,
  // balanced chunks and blocks until every chunk finished. The first
  // exception thrown by fn is rethrown on the calling thread after all
  // chunks complete. n_chunks is clamped to [1, total]. The chunk -> index
  // range map is fixed up front (which THREAD runs a chunk is not), so any
  // loop whose chunks write disjoint outputs is bitwise thread-neutral.
  void parallel_for(std::size_t total, std::size_t n_chunks,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Enqueues a single fire-and-forget task. Exceptions escaping the task are
  // caught and logged to stderr (there is no caller to deliver them to);
  // parallel_for chunks propagate exceptions to their caller instead.
  void submit(std::function<void()> task);

  // True while the current thread is executing parallel_for chunks (as the
  // caller or as a pool worker running a helper task). Blocking operations
  // assert against this — a chunk body must never park its thread on an
  // unbounded external condition (RequestQueue::wait_pop PF_CHECKs it),
  // because every sibling chunk behind it in the claim loop would stall.
  static bool in_parallel_for();

  // Process-wide pool shared by the parallel linalg kernels. Sized to the
  // hardware concurrency, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pf
