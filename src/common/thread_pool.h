// Fixed worker pool for data-parallel kernels (row-block GEMM, batched
// factor work).
//
// The pool is deliberately minimal: a task queue, N workers, and a blocking
// parallel_for that splits an index range into contiguous chunks. The calling
// thread always executes the first chunk itself and helps drain the queue
// while waiting, so parallel_for never deadlocks — even on a pool with zero
// workers or when called from inside a pool task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pf {

class ThreadPool {
 public:
  // Spawns n_threads workers. n_threads may be 0; parallel_for then runs
  // everything on the calling thread.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return workers_.size(); }

  // Runs fn(begin, end) over [0, total) split into n_chunks contiguous,
  // balanced chunks and blocks until every chunk finished. The first
  // exception thrown by fn is rethrown on the calling thread after all
  // chunks complete. n_chunks is clamped to [1, total].
  void parallel_for(std::size_t total, std::size_t n_chunks,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Enqueues a single fire-and-forget task. Exceptions escaping the task are
  // caught and logged to stderr (there is no caller to deliver them to);
  // parallel_for chunks propagate exceptions to their caller instead.
  void submit(std::function<void()> task);

  // Process-wide pool shared by the parallel linalg kernels. Sized to the
  // hardware concurrency, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();
  // Pops and runs one queued task if available. Returns false when the queue
  // was empty.
  bool run_one_task();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pf
