#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "src/common/check.h"

namespace pf {

ThreadPool::ThreadPool(std::size_t n_threads) {
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
// Tasks reaching the queue via parallel_for carry their own try/catch;
// exceptions escaping here come from raw submit() tasks, which must not be
// allowed to kill the worker (std::terminate) or surface inside an
// unrelated parallel_for caller that happens to help-drain the queue.
void run_task_noexcept(const std::function<void()>& task) {
  try {
    task();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pf::ThreadPool: exception escaped a submitted task: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "pf::ThreadPool: exception escaped a submitted task\n");
  }
}
}  // namespace

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task_noexcept(task);
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task_noexcept(task);
  return true;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PF_CHECK(!stop_) << "submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t total, std::size_t n_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  n_chunks = std::clamp<std::size_t>(n_chunks, 1, total);
  if (n_chunks == 1) {
    fn(0, total);
    return;
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } shared;
  shared.remaining = n_chunks - 1;

  const std::size_t base = total / n_chunks;
  const std::size_t extra = total % n_chunks;
  // Chunk c covers base(+1 for the first `extra` chunks) indices.
  auto chunk_bounds = [&](std::size_t c) {
    const std::size_t begin = c * base + std::min(c, extra);
    return std::pair<std::size_t, std::size_t>{
        begin, begin + base + (c < extra ? 1 : 0)};
  };

  for (std::size_t c = 1; c < n_chunks; ++c) {
    const auto [begin, end] = chunk_bounds(c);
    submit([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (!shared.error) shared.error = std::current_exception();
      }
      // Notify under the lock: once remaining hits 0 the caller may destroy
      // `shared`, so the task must be done with it before the lock drops.
      std::lock_guard<std::mutex> lock(shared.mu);
      --shared.remaining;
      shared.done.notify_all();
    });
  }

  // The caller takes the first chunk, then helps drain the queue (which may
  // hold its own chunks when the pool is small or busy) instead of blocking.
  try {
    const auto [begin, end] = chunk_bounds(0);
    fn(begin, end);
  } catch (...) {
    std::lock_guard<std::mutex> lock(shared.mu);
    if (!shared.error) shared.error = std::current_exception();
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      if (shared.remaining == 0) break;
    }
    if (!run_one_task()) {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.done.wait(lock, [&] { return shared.remaining == 0; });
      break;
    }
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace pf
