#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "src/common/check.h"

namespace pf {

namespace {
// Depth, not flag: parallel_for can nest (a chunk body may open its own
// inner loop — the serial fast path usually catches it, but nothing
// forbids a real nested fan-out).
thread_local int tl_parallel_for_depth = 0;

// Tasks reaching the queue via parallel_for carry their own try/catch;
// exceptions escaping here come from raw submit() tasks, which must not be
// allowed to kill the worker (std::terminate).
void run_task_noexcept(const std::function<void()>& task) {
  try {
    task();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pf::ThreadPool: exception escaped a submitted task: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "pf::ThreadPool: exception escaped a submitted task\n");
  }
}
}  // namespace

bool ThreadPool::in_parallel_for() { return tl_parallel_for_depth > 0; }

ThreadPool::ThreadPool(std::size_t n_threads) {
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task_noexcept(task);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PF_CHECK(!stop_) << "submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t total, std::size_t n_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  n_chunks = std::clamp<std::size_t>(n_chunks, 1, total);
  if (n_chunks == 1) {
    fn(0, total);
    return;
  }

  // Chunk-claiming: a shared counter hands out chunk ids; the caller and
  // the helper tasks below loop claiming until none remain. Whoever is
  // late (queue backed up, few workers) simply claims nothing — helpers
  // never touch any other loop's work, and the caller never executes
  // unrelated queue tasks.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::size_t n_chunks = 0;
    std::size_t total = 0, base = 0, extra = 0;
    std::function<void(std::size_t, std::size_t)> fn;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  // shared_ptr: helper tasks may still sit in the queue (and no-op) after
  // the caller returned.
  auto shared = std::make_shared<Shared>();
  shared->n_chunks = n_chunks;
  shared->total = total;
  shared->base = total / n_chunks;
  shared->extra = total % n_chunks;
  shared->fn = fn;

  auto claim_loop = [](const std::shared_ptr<Shared>& s) {
    ++tl_parallel_for_depth;
    std::size_t ran = 0;
    std::exception_ptr first_error;
    for (;;) {
      const std::size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->n_chunks) break;
      // Chunk c covers base(+1 for the first `extra` chunks) indices.
      const std::size_t begin = c * s->base + std::min(c, s->extra);
      const std::size_t end = begin + s->base + (c < s->extra ? 1 : 0);
      try {
        s->fn(begin, end);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
      ++ran;
    }
    --tl_parallel_for_depth;
    if (ran > 0 || first_error) {
      std::lock_guard<std::mutex> lock(s->mu);
      if (first_error && !s->error) s->error = first_error;
      s->done += ran;
      // Notify under the lock: once done == n_chunks the caller may
      // destroy its reference, but `s` itself outlives via shared_ptr.
      if (s->done == s->n_chunks) s->done_cv.notify_all();
    }
  };

  // One helper per worker (capped by the chunks beyond the caller's first
  // claim); a zero-worker pool skips the queue — the caller claims every
  // chunk itself, so the documented degenerate mode still holds.
  const std::size_t helpers = std::min(n_chunks - 1, n_threads());
  for (std::size_t i = 0; i < helpers; ++i)
    submit([shared, claim_loop] { claim_loop(shared); });

  claim_loop(shared);

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->done_cv.wait(lock, [&] { return shared->done == shared->n_chunks; });
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace pf
