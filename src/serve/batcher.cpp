#include "src/serve/batcher.h"

#include "src/common/check.h"

namespace pf {

const char* batch_policy_name(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kContinuous: return "continuous";
    case BatchPolicy::kStatic: return "static";
  }
  return "?";
}

BatchPolicy batch_policy_from_string(const std::string& s) {
  if (s == "continuous") return BatchPolicy::kContinuous;
  if (s == "static") return BatchPolicy::kStatic;
  PF_CHECK(false) << "unknown batch policy '" << s
                  << "' (known: continuous, static)";
  return BatchPolicy::kContinuous;  // unreachable
}

BertBatch make_inference_batch(const std::vector<InferRequest>& rs,
                               std::size_t seq_len, int pad_id) {
  PF_CHECK(!rs.empty()) << "cannot form an empty inference batch";
  BertBatch b;
  b.batch = rs.size();
  b.seq = seq_len;
  b.ids.assign(rs.size() * seq_len, pad_id);
  b.segments.assign(rs.size() * seq_len, 0);
  b.mlm_labels.assign(rs.size() * seq_len, -1);
  b.nsp_labels.assign(rs.size(), 0);
  for (std::size_t r = 0; r < rs.size(); ++r) {
    const InferRequest& req = rs[r];
    PF_CHECK(!req.ids.empty())
        << "request " << req.id << " has no tokens";
    PF_CHECK(req.ids.size() <= seq_len)
        << "request " << req.id << " has " << req.ids.size()
        << " tokens > seq_len " << seq_len
        << " (requests are rejected, never truncated)";
    PF_CHECK(req.segments.size() <= req.ids.size())
        << "request " << req.id << " has more segments ("
        << req.segments.size() << ") than tokens (" << req.ids.size() << ")";
    const std::size_t base = r * seq_len;
    for (std::size_t t = 0; t < req.ids.size(); ++t)
      b.ids[base + t] = req.ids[t];
    for (std::size_t t = 0; t < req.segments.size(); ++t)
      b.segments[base + t] = req.segments[t];
  }
  return b;
}

ContinuousBatcher::ContinuousBatcher(std::size_t max_batch,
                                     std::size_t seq_len, int pad_id,
                                     std::size_t n_slots)
    : max_batch_(max_batch),
      seq_len_(seq_len),
      pad_id_(pad_id),
      in_use_(n_slots, false),
      used_before_(n_slots, false) {
  PF_CHECK(max_batch >= 1 && seq_len >= 1);
  PF_CHECK(n_slots >= max_batch)
      << "slot pool (" << n_slots << ") smaller than one micro-batch ("
      << max_batch << ")";
}

MicroBatch ContinuousBatcher::form(std::vector<InferRequest> rs) {
  PF_CHECK(!rs.empty() && rs.size() <= max_batch_)
      << "micro-batch of " << rs.size() << " requests, limit " << max_batch_;
  MicroBatch mb;
  mb.batch = make_inference_batch(rs, seq_len_, pad_id_);
  mb.slots.reserve(rs.size());
  mb.slot_reused.reserve(rs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t r = 0; r < rs.size(); ++r) {
      std::size_t slot = in_use_.size();
      for (std::size_t s = 0; s < in_use_.size(); ++s)
        if (!in_use_[s]) { slot = s; break; }
      // The engine's in-flight gate admits at most n_slots sequences at a
      // time, so a free slot always exists here.
      PF_CHECK(slot < in_use_.size())
          << "no free slot for request " << rs[r].id
          << " (engine admitted past its in-flight budget?)";
      in_use_[slot] = true;
      mb.slots.push_back(static_cast<int>(slot));
      mb.slot_reused.push_back(used_before_[slot]);
      if (used_before_[slot]) ++reuses_;
      used_before_[slot] = true;
    }
  }
  mb.requests = std::move(rs);
  return mb;
}

void ContinuousBatcher::release(const MicroBatch& mb) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int s : mb.slots) {
    const auto su = static_cast<std::size_t>(s);
    PF_CHECK(su < in_use_.size() && in_use_[su])
        << "releasing slot " << s << " that is not in use";
    in_use_[su] = false;
  }
}

std::size_t ContinuousBatcher::free_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const bool u : in_use_)
    if (!u) ++n;
  return n;
}

std::size_t ContinuousBatcher::slot_reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

}  // namespace pf
