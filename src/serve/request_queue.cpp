#include "src/serve/request_queue.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace pf {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RequestQueue::push(InferRequest r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PF_CHECK(!closed_) << "push() on a closed request queue (request "
                       << r.id << ")";
    if (r.enqueue_seconds < 0.0) r.enqueue_seconds = now_seconds();
    q_.push_back(std::move(r));
  }
  cv_.notify_all();
}

void RequestQueue::push_all(std::vector<InferRequest> rs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PF_CHECK(!closed_) << "push_all() on a closed request queue";
    for (auto& r : rs) {
      if (r.enqueue_seconds < 0.0) r.enqueue_seconds = now_seconds();
      q_.push_back(std::move(r));
    }
  }
  cv_.notify_all();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

bool RequestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && q_.empty();
}

std::vector<InferRequest> RequestQueue::wait_pop(std::size_t max_n,
                                                 std::size_t min_n,
                                                 double timeout_seconds) {
  PF_CHECK(max_n >= 1 && min_n >= 1 && min_n <= max_n)
      << "wait_pop needs 1 <= min_n <= max_n, got min_n=" << min_n
      << " max_n=" << max_n;
  // Non-reentrant from parallel_for chunks: a chunk body parking this
  // thread on live traffic would stall every sibling chunk of the loop
  // (and, before the chunk-claiming rewrite of ThreadPool::parallel_for,
  // a forward's helper could end up EXECUTING the blocking admission pump
  // — the old stage_threads = 1 serving pin). Admission must run as its
  // own executor task, never inside a data-parallel loop.
  PF_CHECK(!ThreadPool::in_parallel_for())
      << "RequestQueue::wait_pop called from inside a parallel_for chunk — "
         "blocking admission must be a task of its own, not nested in a "
         "data-parallel loop";
  std::unique_lock<std::mutex> lk(mu_);
  const bool ok = cv_.wait_for(
      lk, std::chrono::duration<double>(timeout_seconds),
      [&] { return closed_ || q_.size() >= min_n; });
  PF_CHECK(ok) << "request queue wait_pop timed out after " << timeout_seconds
               << "s with " << q_.size() << "/" << min_n
               << " requests queued and no close() — producer stuck?";
  std::vector<InferRequest> out;
  const std::size_t n = std::min(max_n, q_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

}  // namespace pf
