// Pipelined inference serving engine — continuous batching over the same
// stage-partition + task-executor machinery the training runtime uses
// (ROADMAP direction 2; the PipeFisher bubble mechanism with a new
// payload).
//
// One run() drains a RequestQueue through forward-only per-micro stage
// programs:
//
//   Admit(m):      pop requests, form micro-batch m (slots assigned by the
//                  ContinuousBatcher — freed slots refill mid-flight),
//                  then dynamically grow the task graph with the micro's
//                  forward chain and Admit(m+1).
//   Forward(s,m):  stage s's inference forward of micro m (no backward
//                  cache stashes), boundary activations handed over
//                  through micro-keyed StageChannels. The last stage
//                  slices per-request logits out of the batch, stamps
//                  completion timestamps, and releases the slots.
//
// Dispatch uses the training runtime's lane/priority rule: lane = stage,
// forwards at priority = micro id, admission at kAdmissionPriorityBase + m
// on lane 0. The executor picks the smallest priority whose lane is idle,
// so admission runs exactly in realized lane-0 idle gaps — and because
// admissions are chained (Admit(m+1) depends on Admit(m)), a blocking pop
// can only start when lane 0 has no runnable forward, and no new lane-0
// forward can become ready until it returns: queue waits never block
// compute. stage_threads > 1 is safe under LIVE traffic too:
// ThreadPool::parallel_for's chunk-claiming design means a forward's
// data-parallel fan-out only ever executes its own chunks (never an
// unrelated queued task like a blocking admission pump), and
// RequestQueue::wait_pop PF_CHECKs it is never called from inside a
// chunk. (Historically the help-drain design forced a stage_threads = 1
// pin for live serving.)
//
// In-flight gating: Admit(m) additionally depends on the completion of
// micro m - max_inflight, bounding slot usage to max_batch · max_inflight
// sequences. BatchPolicy::kStatic forces max_inflight = 1 and full-batch
// admission — the drain-between-batches baseline the bench compares
// continuous batching against.
//
// Determinism contract (pinned in tests/test_serving.cpp): every forward
// op is row/sequence-independent, so a request's logits do not depend on
// its batch composition, slot, worker count, or stage count — replaying a
// fixed arrival trace yields bitwise-identical per-request outputs, equal
// to a serial one-request-at-a-time BertModel::forward.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/comm/stage_channel.h"
#include "src/comm/transport_channel.h"
#include "src/common/task_executor.h"
#include "src/nn/stage_partition.h"
#include "src/serve/batcher.h"
#include "src/serve/request_queue.h"
#include "src/trace/timeline.h"

namespace pf {

// Admission rides above every forward priority (forwards use priority =
// micro id), same tier idiom as the training runtime's K-FAC base.
inline constexpr long kAdmissionPriorityBase = 1L << 20;

struct ServingEngineConfig {
  int n_stages = 2;
  // Sequence slots per micro-batch.
  std::size_t max_batch = 4;
  // Micros concurrently in the pipeline; 0 = n_stages + 1 (full pipe plus
  // one forming). BatchPolicy::kStatic overrides this to 1.
  int max_inflight = 0;
  // Pool worker threads (the calling thread always participates; 0 = a
  // deterministic serial run on the caller).
  int workers = 0;
  // Threads per stage forward (ExecContext). Bitwise-neutral, and safe
  // under live traffic at any value (see file comment).
  int stage_threads = 1;
  BatchPolicy policy = BatchPolicy::kContinuous;
  // Boundary transport: "" resolves through PF_TRANSPORT, default
  // "inproc"; "shm" hands activations over lock-free SPSC rings
  // (comm/transport_channel.h) — forward-only serving is single-pipeline
  // by construction, so every config is eligible.
  std::string transport;
  int pad_id = 0;
  // Admission waits this long for requests before erroring (replay queues
  // never wait; live producers that stall longer are a bug, same policy as
  // StageChannel::recv).
  double admit_timeout_seconds = 60.0;
};

// Per-request accounting. Timestamps are seconds relative to run() entry
// (enqueue may be negative for requests queued before the run started).
struct RequestRecord {
  std::uint64_t id = 0;
  int micro = -1;  // micro-batch that served the request
  int slot = -1;   // sequence slot it occupied
  double enqueue = 0.0;
  double admit = 0.0;
  double complete = 0.0;
  BertInferOutput output;  // this request's rows only
  double latency() const { return complete - enqueue; }
};

struct LatencyStats {
  std::size_t n = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double mean = 0.0, max = 0.0;
};

// Nearest-rank percentile: the ceil(pct/100 · n)-th smallest value.
// Throws on an empty sample.
double percentile_nearest_rank(std::vector<double> xs, double pct);
LatencyStats compute_latency_stats(const std::vector<double>& latencies);

struct ServingReport {
  std::vector<RequestRecord> records;  // sorted by request id
  LatencyStats latency;                // over records[i].latency()
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  // completed requests / wall_seconds
  std::size_t n_micros = 0;
  std::size_t admitted_total = 0;
  // Requests admitted while >= 1 micro was still in flight — the
  // continuous-batching signature (always 0 under BatchPolicy::kStatic).
  std::size_t admitted_while_in_flight = 0;
  // Of those, admissions into a slot a previous request had occupied.
  std::size_t slots_refilled_in_flight = 0;
  std::size_t deadline_misses = 0;
  // Realized execution trace: one lane per stage; admission intervals on
  // lane 0 (WorkKind::kAdmission counts as idle in utilization).
  Timeline timeline{1};
};

class ServingEngine {
 public:
  // Non-owning view over `model` (same contract as BertStagePartition:
  // the model must outlive the engine; weights are shared with training).
  ServingEngine(BertModel& model, const ServingEngineConfig& cfg);

  // Drains `queue` (until closed and empty) and returns the report.
  // Callable repeatedly; each call is an independent serving run.
  ServingReport run(RequestQueue& queue);

  const ServingEngineConfig& config() const { return cfg_; }

 private:
  struct RunState;

  void add_admission(TaskExecutor& ex, RunState& rs, RequestQueue& queue,
                     int micro, std::vector<std::size_t> deps);
  void admit(TaskExecutor& ex, RunState& rs, RequestQueue& queue, int micro);
  void complete_micro(RunState& rs, int micro, const BertInferOutput& out);

  ServingEngineConfig cfg_;
  std::size_t inflight_ = 1;  // effective max in-flight micros
  std::size_t seq_len_ = 0;
  BertStagePartition partition_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ExecContext> stage_ctx_;
  std::string transport_;                         // resolved backend
  std::vector<SharedRegion> regions_;             // ring storage (shm only)
  std::vector<std::unique_ptr<Channel>> fwd_ch_;  // s -> s+1
};

}  // namespace pf
