#include "src/serve/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "src/comm/tensor_wire.h"
#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

double percentile_nearest_rank(std::vector<double> xs, double pct) {
  PF_CHECK(!xs.empty()) << "percentile of an empty sample";
  PF_CHECK(pct > 0.0 && pct <= 100.0) << "percentile " << pct
                                      << " outside (0, 100]";
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(xs.size())));
  return xs[std::min(xs.size(), std::max<std::size_t>(rank, 1)) - 1];
}

LatencyStats compute_latency_stats(const std::vector<double>& latencies) {
  LatencyStats s;
  s.n = latencies.size();
  if (latencies.empty()) return s;
  s.p50 = percentile_nearest_rank(latencies, 50.0);
  s.p95 = percentile_nearest_rank(latencies, 95.0);
  s.p99 = percentile_nearest_rank(latencies, 99.0);
  double sum = 0.0;
  for (const double x : latencies) {
    sum += x;
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(latencies.size());
  return s;
}

// Everything one run() touches from task bodies. Stats and per-micro state
// are guarded by `mu`; the task-id/meta vectors are written only by the
// (dep-serialized) admission chain and the pre-run main thread, and read
// after run() returns — the executor's own mutex carries the
// happens-before edges.
struct ServingEngine::RunState {
  RunState(std::size_t max_batch, std::size_t seq_len, int pad_id,
           std::size_t n_slots)
      : batcher(max_batch, seq_len, pad_id, n_slots) {}

  double epoch = 0.0;
  ContinuousBatcher batcher;

  struct TaskMeta {
    std::size_t lane = 0;
    WorkKind kind = WorkKind::kForward;
    int stage = -1;
    int micro = -1;
  };
  std::vector<TaskMeta> meta;           // indexed by task id
  std::vector<std::size_t> admit_task;  // indexed by micro
  std::vector<std::size_t> complete_task;  // last-stage forward, per micro
  std::vector<double> admit_time;       // per micro, seconds since epoch

  std::mutex mu;
  std::map<int, MicroBatch> micros;  // in flight, keyed by micro id
  std::size_t in_flight = 0;
  std::size_t n_micros = 0;
  std::size_t admitted_total = 0;
  std::size_t admitted_while_in_flight = 0;
  std::size_t slots_refilled_in_flight = 0;
  std::size_t deadline_misses = 0;
  std::vector<RequestRecord> records;
};

ServingEngine::ServingEngine(BertModel& model, const ServingEngineConfig& cfg)
    : cfg_(cfg),
      seq_len_(model.config().seq_len),
      partition_(model, cfg.n_stages) {
  PF_CHECK(cfg.n_stages >= 1);
  PF_CHECK(cfg.max_batch >= 1);
  PF_CHECK(cfg.max_inflight >= 0);
  PF_CHECK(cfg.workers >= 0);
  PF_CHECK(cfg.stage_threads >= 1);
  PF_CHECK(cfg.admit_timeout_seconds > 0.0);
  inflight_ = cfg.policy == BatchPolicy::kStatic
                  ? 1
                  : (cfg.max_inflight > 0
                         ? static_cast<std::size_t>(cfg.max_inflight)
                         : static_cast<std::size_t>(cfg.n_stages) + 1);
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(cfg.workers));
  for (int s = 0; s < cfg.n_stages; ++s)
    stage_ctx_.emplace_back(cfg.stage_threads, cfg.stage_threads,
                            RngPartition::kSequential, pool_.get());
  transport_ = resolve_transport(cfg.transport);
  // Ring sizing mirrors the training runtime: the largest boundary tensor
  // is the full-batch (max_batch · seq_len) × d_model activation, and at
  // most `inflight_` micros can have an un-consumed handoff per boundary.
  const std::size_t slot_bytes =
      wire_bytes(cfg.max_batch * seq_len_, model.config().d_model);
  const std::size_t ring_slots = inflight_ + 1;
  for (int s = 0; s + 1 < cfg.n_stages; ++s) {
    const std::string name = format("serve-fwd[%d->%d]", s, s + 1);
    if (transport_ == "inproc") {
      fwd_ch_.push_back(std::make_unique<StageChannel>(name));
    } else {
      regions_.emplace_back(ShmRing::required_bytes(ring_slots, slot_bytes));
      fwd_ch_.push_back(std::make_unique<TransportChannel>(
          name, ShmRing::create(regions_.back().data(), ring_slots,
                                slot_bytes, name)));
    }
  }
}

void ServingEngine::add_admission(TaskExecutor& ex, RunState& rs,
                                  RequestQueue& queue, int micro,
                                  std::vector<std::size_t> deps) {
  const std::size_t id = ex.add(
      [this, &ex, &rs, &queue, micro] { admit(ex, rs, queue, micro); },
      /*lane=*/0, kAdmissionPriorityBase + micro, std::move(deps));
  PF_ASSERT(id == rs.meta.size());
  rs.meta.push_back({0, WorkKind::kAdmission, /*stage=*/-1, micro});
  PF_ASSERT(rs.admit_task.size() == static_cast<std::size_t>(micro));
  rs.admit_task.push_back(id);
}

void ServingEngine::admit(TaskExecutor& ex, RunState& rs, RequestQueue& queue,
                          int micro) {
  const std::size_t want = cfg_.max_batch;
  std::vector<InferRequest> got =
      queue.wait_pop(want,
                     cfg_.policy == BatchPolicy::kStatic ? want : 1,
                     cfg_.admit_timeout_seconds);
  // Empty means closed-and-drained: the admission chain ends here and the
  // graph drains (run() returns once in-flight forwards finish).
  if (got.empty()) return;

  const double t_admit = now_seconds() - rs.epoch;
  MicroBatch mb = rs.batcher.form(std::move(got));
  const std::size_t n_requests = mb.requests.size();
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    rs.n_micros += 1;
    rs.admitted_total += n_requests;
    if (rs.in_flight > 0) {
      rs.admitted_while_in_flight += n_requests;
      for (const bool reused : mb.slot_reused)
        if (reused) ++rs.slots_refilled_in_flight;
    }
    ++rs.in_flight;
    PF_ASSERT(rs.admit_time.size() == static_cast<std::size_t>(micro));
    rs.admit_time.push_back(t_admit);
    rs.micros.emplace(micro, std::move(mb));
  }

  // Grow the graph: this micro's forward chain, then the next admission.
  const int S = cfg_.n_stages;
  std::size_t prev = rs.admit_task[static_cast<std::size_t>(micro)];
  for (int s = 0; s < S; ++s) {
    auto body = [this, &rs, micro, s] {
      const MicroBatch* mb_ptr;
      {
        std::lock_guard<std::mutex> lock(rs.mu);
        mb_ptr = &rs.micros.at(micro);  // map nodes are stable
      }
      Matrix in;
      if (s > 0) in = fwd_ch_[static_cast<std::size_t>(s - 1)]->take(micro);
      if (s + 1 < cfg_.n_stages) {
        Matrix out = partition_.stage(s).infer(mb_ptr->batch, std::move(in),
                                               stage_ctx_[static_cast<std::size_t>(s)]);
        fwd_ch_[static_cast<std::size_t>(s)]->send(micro, std::move(out));
      } else {
        BertInferOutput out;
        partition_.stage(s).infer(mb_ptr->batch, std::move(in),
                                  stage_ctx_[static_cast<std::size_t>(s)],
                                  &out);
        complete_micro(rs, micro, out);
      }
    };
    const std::size_t fid = ex.add(std::move(body),
                                   /*lane=*/static_cast<std::size_t>(s),
                                   /*priority=*/micro, {prev});
    PF_ASSERT(fid == rs.meta.size());
    rs.meta.push_back(
        {static_cast<std::size_t>(s), WorkKind::kForward, s, micro});
    prev = fid;
  }
  PF_ASSERT(rs.complete_task.size() == static_cast<std::size_t>(micro));
  rs.complete_task.push_back(prev);

  // Admit(m+1) waits for this admission (chain order) and, once
  // `inflight_` micros are out, for the oldest one's completion — the gate
  // that bounds slot usage.
  std::vector<std::size_t> deps = {rs.admit_task[static_cast<std::size_t>(micro)]};
  const long gate = static_cast<long>(micro) + 1 - static_cast<long>(inflight_);
  if (gate >= 0)
    deps.push_back(rs.complete_task[static_cast<std::size_t>(gate)]);
  add_admission(ex, rs, queue, micro + 1, std::move(deps));
}

void ServingEngine::complete_micro(RunState& rs, int micro,
                                   const BertInferOutput& out) {
  const double t = now_seconds() - rs.epoch;
  std::lock_guard<std::mutex> lock(rs.mu);
  const auto it = rs.micros.find(micro);
  PF_ASSERT(it != rs.micros.end());
  MicroBatch& mb = it->second;
  PF_ASSERT(out.mlm_logits.rows() == mb.requests.size() * seq_len_);
  PF_ASSERT(out.nsp_logits.rows() == mb.requests.size());
  for (std::size_t r = 0; r < mb.requests.size(); ++r) {
    RequestRecord rec;
    rec.id = mb.requests[r].id;
    rec.micro = micro;
    rec.slot = mb.slots[r];
    rec.enqueue = mb.requests[r].enqueue_seconds - rs.epoch;
    rec.admit = rs.admit_time[static_cast<std::size_t>(micro)];
    rec.complete = t;
    // Slice this request's rows out of the batch logits.
    rec.output.mlm_logits = Matrix(seq_len_, out.mlm_logits.cols());
    for (std::size_t q = 0; q < seq_len_; ++q) {
      const double* src = out.mlm_logits.row(r * seq_len_ + q);
      double* dst = rec.output.mlm_logits.row(q);
      for (std::size_t c = 0; c < out.mlm_logits.cols(); ++c) dst[c] = src[c];
    }
    rec.output.nsp_logits = Matrix(1, out.nsp_logits.cols());
    {
      const double* src = out.nsp_logits.row(r);
      double* dst = rec.output.nsp_logits.row(0);
      for (std::size_t c = 0; c < out.nsp_logits.cols(); ++c) dst[c] = src[c];
    }
    if (rec.latency() > mb.requests[r].deadline_seconds)
      ++rs.deadline_misses;
    rs.records.push_back(std::move(rec));
  }
  rs.batcher.release(mb);
  PF_ASSERT(rs.in_flight > 0);
  --rs.in_flight;
  rs.micros.erase(it);
}

ServingReport ServingEngine::run(RequestQueue& queue) {
  for (auto& ch : fwd_ch_) ch->clear();
  RunState rs(cfg_.max_batch, seq_len_, cfg_.pad_id,
              cfg_.max_batch * inflight_);
  rs.epoch = now_seconds();

  TaskExecutor ex(*pool_, static_cast<std::size_t>(cfg_.n_stages));
  add_admission(ex, rs, queue, /*micro=*/0, /*deps=*/{});
  ex.run();
  const double wall = now_seconds() - rs.epoch;

  PF_ASSERT(rs.in_flight == 0);
  ServingReport rep;
  rep.records = std::move(rs.records);
  std::sort(rep.records.begin(), rep.records.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  std::vector<double> lat;
  lat.reserve(rep.records.size());
  for (const auto& r : rep.records) lat.push_back(r.latency());
  rep.latency = compute_latency_stats(lat);
  rep.wall_seconds = wall;
  rep.throughput_rps =
      rep.records.empty() ? 0.0
                          : static_cast<double>(rep.records.size()) / wall;
  rep.n_micros = rs.n_micros;
  rep.admitted_total = rs.admitted_total;
  rep.admitted_while_in_flight = rs.admitted_while_in_flight;
  rep.slots_refilled_in_flight = rs.slots_refilled_in_flight;
  rep.deadline_misses = rs.deadline_misses;

  // Realized timeline, same construction as the training runtime: per-lane
  // intervals sorted by wall-clock start.
  rep.timeline = Timeline(static_cast<std::size_t>(cfg_.n_stages));
  const auto& recs = ex.records();
  PF_ASSERT(recs.size() == rs.meta.size());
  std::vector<std::vector<std::size_t>> by_lane(
      static_cast<std::size_t>(cfg_.n_stages));
  for (std::size_t i = 0; i < recs.size(); ++i)
    if (recs[i].executed) by_lane[rs.meta[i].lane].push_back(i);
  for (auto& ids : by_lane) {
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return recs[a].start < recs[b].start;
    });
    for (const std::size_t i : ids)
      rep.timeline.add(Interval{.device = rs.meta[i].lane,
                                .start = recs[i].start,
                                .end = recs[i].end,
                                .kind = rs.meta[i].kind,
                                .stage = rs.meta[i].stage,
                                .micro = rs.meta[i].micro});
  }
  return rep;
}

}  // namespace pf
