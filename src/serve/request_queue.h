// Admission queue for the serving engine (src/serve/serving_engine.h).
//
// Producers push inference requests (token sequences + deadline metadata);
// the engine's admission task pops them in FIFO order to form micro-batches
// (src/serve/batcher.h). The queue supports two usage modes:
//
//   live:   producers push concurrently while the engine runs, then call
//           close() when traffic ends. wait_pop() blocks for work.
//   replay: a fixed arrival trace is loaded up front (push_all + close())
//           before run() starts. Admission then observes the exact same
//           FIFO sequence regardless of worker count or timing, which is
//           what makes the serving tests' bitwise-determinism grid
//           (workers × stages) possible.
//
// close() is the only end-of-stream signal: wait_pop() never returns an
// empty batch until the queue is both closed and drained.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include <condition_variable>

namespace pf {

// One inference request: a token sequence plus deadline metadata. Sequences
// may be shorter than the model's seq_len — the batcher pads them (policy
// pinned in batcher.h); longer ones are rejected at admission.
struct InferRequest {
  std::uint64_t id = 0;       // caller-chosen, unique within a run
  std::vector<int> ids;       // input tokens
  std::vector<int> segments;  // 0/1 per token; missing tail padded with 0
  // SLA metadata: latency budget in seconds. Requests completing later than
  // enqueue + deadline count as deadline_misses in the ServingReport.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  // Stamped by push() from the steady clock unless pre-set (>= 0) — a
  // replay trace pre-sets it to carry synthetic arrival times.
  double enqueue_seconds = -1.0;
};

// Steady-clock seconds; the process-wide timebase every serving timestamp
// (enqueue/admit/complete) is measured on.
double now_seconds();

class RequestQueue {
 public:
  // FIFO append; stamps enqueue_seconds if the request did not pre-set it.
  // Throws if the queue is closed.
  void push(InferRequest r);
  void push_all(std::vector<InferRequest> rs);

  // Declares end of traffic; blocked wait_pop() calls wake and return what
  // remains (possibly nothing). Idempotent.
  void close();
  bool closed() const;
  std::size_t size() const;
  // closed() and empty — nothing will ever be popped again.
  bool drained() const;

  // Pops up to `max_n` requests in FIFO order. Blocks until at least
  // `min_n` are queued or the queue is closed — a closed queue returns
  // whatever is left, down to an empty vector once drained. Throws
  // pf::Error after `timeout_seconds` without the condition holding, so a
  // stuck producer surfaces as an error instead of a hang (same policy as
  // StageChannel::recv).
  //
  // NON-REENTRANT from data-parallel loops: calling this from inside a
  // ThreadPool::parallel_for chunk is PF_CHECKed as a bug. parallel_for's
  // chunk-claiming rewrite already guarantees a compute loop never
  // *executes* someone else's blocking admission task; this assert closes
  // the remaining hole (a chunk body blocking on live traffic itself),
  // which together makes serving with stage_threads > 1 safe under live
  // producers.
  std::vector<InferRequest> wait_pop(std::size_t max_n, std::size_t min_n = 1,
                                     double timeout_seconds = 60.0);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<InferRequest> q_;
  bool closed_ = false;
};

}  // namespace pf
