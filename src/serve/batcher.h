// Dynamic micro-batch formation for the serving engine — the continuous-
// batching half of src/serve.
//
// The engine owns a fixed set of sequence *slots* (max_batch per micro ×
// max_inflight micros). ContinuousBatcher assigns admitted requests to the
// lowest-numbered free slots and returns them when the micro completes;
// under continuous batching a slot freed by a finished sequence is handed
// to a waiting request while OTHER micros are still in flight — the
// refill-mid-flight behaviour the serving tests assert via engine stats.
//
// Padding policy (pinned by ServingBatcher tests — change them on purpose
// or not at all):
//   - ids shorter than seq_len extend with pad_id; longer ones throw
//     pf::Error (explicit rejection, never silent truncation).
//   - segments extend with 0; a missing segments vector is all 0. A
//     segments vector longer than ids (but <= seq_len) is an error.
//   - mlm_labels are all -1 (no loss rows) and nsp_labels all 0: inference
//     forwards never read labels, these are inert placeholders.
// There is no length bucketing: every formed batch is exactly
// [n_requests × seq_len]. Bucketing would change GEMM shapes per batch and
// break the bitwise batch-composition-independence contract the serving
// tests pin; revisit only together with those tests.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "src/nn/bert.h"
#include "src/serve/request_queue.h"

namespace pf {

enum class BatchPolicy {
  // Admit whatever is waiting (1..max_batch requests) as soon as slots
  // free up — finished sequences' slots refill mid-flight.
  kContinuous,
  // Admit only full batches (the remainder once the queue closes) and keep
  // a single micro in flight — the pipeline drains between batches. The
  // classical baseline the serving bench compares against.
  kStatic,
};

const char* batch_policy_name(BatchPolicy p);
// "continuous" | "static"; anything else throws pf::Error naming both.
BatchPolicy batch_policy_from_string(const std::string& s);

// Builds the padded BertBatch for a group of requests, per the padding
// policy above. Exposed separately from the slot machinery so tests can
// pin the policy directly.
BertBatch make_inference_batch(const std::vector<InferRequest>& rs,
                               std::size_t seq_len, int pad_id);

// A formed micro-batch: the requests, the slots they occupy, and the
// padded tensor batch.
struct MicroBatch {
  std::vector<InferRequest> requests;
  std::vector<int> slots;          // slots[i] hosts requests[i]
  std::vector<bool> slot_reused;   // slots[i] had a previous occupant
  BertBatch batch;
};

class ContinuousBatcher {
 public:
  // `n_slots`: total sequence slots the engine rotates through.
  ContinuousBatcher(std::size_t max_batch, std::size_t seq_len, int pad_id,
                    std::size_t n_slots);

  // Forms a micro-batch from 1..max_batch requests, assigning each the
  // lowest free slot (deterministic given the admission order). Thread-safe
  // against release() from completing micros.
  MicroBatch form(std::vector<InferRequest> rs);

  // Returns the micro's slots to the free pool.
  void release(const MicroBatch& mb);

  std::size_t free_slots() const;
  // Total assignments that reused a slot some earlier request occupied.
  std::size_t slot_reuses() const;

 private:
  std::size_t max_batch_, seq_len_;
  int pad_id_;
  mutable std::mutex mu_;
  std::vector<bool> in_use_;
  std::vector<bool> used_before_;
  std::size_t reuses_ = 0;
};

}  // namespace pf
