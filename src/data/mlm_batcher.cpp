#include "src/data/mlm_batcher.h"

#include "src/common/check.h"

namespace pf {

MlmBatcher::MlmBatcher(const SyntheticCorpus& corpus,
                       const MlmBatcherConfig& cfg)
    : corpus_(corpus), cfg_(cfg) {
  PF_CHECK(cfg.seq_len >= 8) << "sequence too short for [CLS] A [SEP] B [SEP]";
  PF_CHECK(cfg.mask_prob > 0.0 && cfg.mask_prob < 1.0);
  PF_CHECK(cfg.mask_token_frac + cfg.random_token_frac <= 1.0);
}

BertBatch MlmBatcher::next_batch(std::size_t batch_size, Rng& rng) const {
  const std::size_t S = cfg_.seq_len;
  // Layout: [CLS] a₁..a_la [SEP] b₁..b_lb [SEP]; la + lb = S - 3.
  const std::size_t la = (S - 3) / 2;
  const std::size_t lb = S - 3 - la;

  BertBatch batch;
  batch.batch = batch_size;
  batch.seq = S;
  batch.ids.resize(batch_size * S);
  batch.segments.resize(batch_size * S);
  batch.mlm_labels.assign(batch_size * S, -1);
  batch.nsp_labels.resize(batch_size);

  for (std::size_t b = 0; b < batch_size; ++b) {
    const auto a = corpus_.sample_stream(la, rng);
    const bool is_next = rng.bernoulli(0.5);
    const auto bb = is_next ? corpus_.continue_stream(a.back(), lb, rng)
                            : corpus_.sample_stream(lb, rng);
    batch.nsp_labels[b] = is_next ? 1 : 0;

    std::vector<int> seq;
    std::vector<int> seg;
    seq.push_back(SpecialTokens::kCls);
    seg.push_back(0);
    for (int t : a) {
      seq.push_back(t);
      seg.push_back(0);
    }
    seq.push_back(SpecialTokens::kSep);
    seg.push_back(0);
    for (int t : bb) {
      seq.push_back(t);
      seg.push_back(1);
    }
    seq.push_back(SpecialTokens::kSep);
    seg.push_back(1);
    PF_CHECK(seq.size() == S);

    for (std::size_t i = 0; i < S; ++i) {
      int tok = seq[i];
      const std::size_t flat = b * S + i;
      batch.segments[flat] = seg[i];
      const bool maskable = tok >= SpecialTokens::kFirstWord;
      if (maskable && rng.bernoulli(cfg_.mask_prob)) {
        batch.mlm_labels[flat] = tok;
        const double u = rng.uniform();
        if (u < cfg_.mask_token_frac) {
          tok = SpecialTokens::kMask;
        } else if (u < cfg_.mask_token_frac + cfg_.random_token_frac) {
          tok = SpecialTokens::kFirstWord +
                static_cast<int>(rng.uniform_int(corpus_.n_words()));
        }  // else: keep original token
      }
      batch.ids[flat] = tok;
    }
  }
  return batch;
}

}  // namespace pf
