// Builds BERT pretraining batches from the synthetic corpus:
// [CLS] segA… [SEP] segB… [SEP] layout, 50% is-next / 50% random NSP pairs,
// and BERT's 15% MLM masking with the 80/10/10 mask/random/keep split.
#pragma once

#include "src/data/synthetic_corpus.h"
#include "src/nn/bert.h"

namespace pf {

struct MlmBatcherConfig {
  std::size_t seq_len = 16;
  double mask_prob = 0.15;
  double mask_token_frac = 0.8;   // → [MASK]
  double random_token_frac = 0.1; // → random word (rest: keep)
};

class MlmBatcher {
 public:
  MlmBatcher(const SyntheticCorpus& corpus, const MlmBatcherConfig& cfg);

  BertBatch next_batch(std::size_t batch_size, Rng& rng) const;

 private:
  const SyntheticCorpus& corpus_;
  MlmBatcherConfig cfg_;
};

}  // namespace pf
