#include "src/data/synthetic_corpus.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

SyntheticCorpus::SyntheticCorpus(const CorpusConfig& cfg) : cfg_(cfg) {
  PF_CHECK(cfg.vocab > SpecialTokens::kFirstWord + 4)
      << "vocab too small: " << cfg.vocab;
  PF_CHECK(cfg.structure_prob >= 0.0 && cfg.structure_prob <= 1.0);
  n_words_ = cfg.vocab - SpecialTokens::kFirstWord;
  PF_CHECK(cfg.successors >= 1 && cfg.successors < n_words_);

  unigram_.resize(n_words_);
  for (std::size_t i = 0; i < n_words_; ++i)
    unigram_[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                 cfg.zipf_exponent);

  // Deterministic successor structure from the corpus seed.
  Rng structure_rng(cfg.seed);
  successor_.resize(n_words_);
  for (std::size_t i = 0; i < n_words_; ++i) {
    for (std::size_t s = 0; s < cfg.successors; ++s) {
      successor_[i].push_back(static_cast<int>(
          structure_rng.uniform_int(n_words_)));
    }
  }
}

int SyntheticCorpus::sample_next(int prev, Rng& rng) const {
  const auto word = static_cast<std::size_t>(prev - SpecialTokens::kFirstWord);
  PF_CHECK(word < n_words_);
  if (rng.bernoulli(cfg_.structure_prob)) {
    const auto& succ = successor_[word];
    return SpecialTokens::kFirstWord +
           succ[rng.uniform_int(succ.size())];
  }
  return SpecialTokens::kFirstWord +
         static_cast<int>(rng.categorical(unigram_));
}

std::vector<int> SyntheticCorpus::sample_stream(std::size_t n,
                                                Rng& rng) const {
  PF_CHECK(n >= 1);
  std::vector<int> out;
  out.reserve(n);
  out.push_back(SpecialTokens::kFirstWord +
                static_cast<int>(rng.categorical(unigram_)));
  while (out.size() < n) out.push_back(sample_next(out.back(), rng));
  return out;
}

std::vector<int> SyntheticCorpus::continue_stream(int last_token,
                                                  std::size_t n,
                                                  Rng& rng) const {
  std::vector<int> out;
  out.reserve(n);
  int cur = last_token;
  for (std::size_t i = 0; i < n; ++i) {
    cur = sample_next(cur, rng);
    out.push_back(cur);
  }
  return out;
}

double SyntheticCorpus::conditional_entropy() const {
  // H(next | prev) averaged over the stationary-ish unigram of prev.
  double uz = 0.0;
  for (double w : unigram_) uz += w;

  double h = 0.0;
  for (std::size_t prev = 0; prev < n_words_; ++prev) {
    // P(next = j | prev): structure_prob spread over the successor multiset
    // plus (1-structure_prob)·unigram.
    std::vector<double> p(n_words_, 0.0);
    const auto& succ = successor_[prev];
    for (int s : succ)
      p[static_cast<std::size_t>(s)] +=
          cfg_.structure_prob / static_cast<double>(succ.size());
    for (std::size_t j = 0; j < n_words_; ++j)
      p[j] += (1.0 - cfg_.structure_prob) * unigram_[j] / uz;
    double hp = 0.0;
    for (double pj : p)
      if (pj > 0.0) hp -= pj * std::log(pj);
    h += (unigram_[prev] / uz) * hp;
  }
  return h;
}

}  // namespace pf
