// AVX-512F GEMM microkernel. This TU is the only one compiled with
// -mavx512f (see CMakeLists.txt); nothing here may be inlined elsewhere, and
// micro_kernel_avx512 must only run after cpu_features detected AVX-512F.
//
// Tile: 8×16 doubles — 16 zmm accumulators + 2 B loads + 1 A broadcast per
// row per k step = 19 of 32 registers, double the arithmetic per B load of
// the 6×8 AVX2 tile.
//
// Bitwise-reproducibility notes (the properties tests pin):
//  * Every per-element accumulation is a chain of true FMAs in ascending-k
//    order. The edge path runs the same full-width vector FMA chain with
//    lanes masked only at the C load/store, so an element computes the
//    identical value whether its tile is full (interior path) or partial
//    (masked path). Row partitioning across threads can change tile
//    membership, never values.
//  * The final C update is itself one FMA: c = fma(alpha, acc, c).
//  * Results differ from the AVX2/scalar tiers only in the last ulps (tile
//    geometry changes which k-chain an element belongs to, never its order);
//    cross-ISA comparisons use an epsilon — see the GemmSimd tests.
#include "src/linalg/gemm_kernel.h"

#if defined(PF_HAVE_AVX512)

#include <immintrin.h>

namespace pf::detail {

namespace {

// Partial tiles: full-width FMA chains per row (the B sliver is always
// kNR512 wide and zero-padded past nr, so whole-vector loads are safe);
// lane masks confine the C read-modify-write to the live nr columns.
void edge_kernel_avx512(std::size_t kc, double alpha, const double* ap,
                        std::size_t a_stride, const double* bp, double* c,
                        std::size_t ldc, std::size_t mr, std::size_t nr) {
  const __mmask8 mlo =
      nr >= 8 ? 0xFF : static_cast<__mmask8>((1u << nr) - 1u);
  const __mmask8 mhi = nr >= kNR512 ? 0xFF
                       : nr > 8
                           ? static_cast<__mmask8>((1u << (nr - 8)) - 1u)
                           : 0;
  const __m512d valpha = _mm512_set1_pd(alpha);
  for (std::size_t i = 0; i < mr; ++i) {
    __m512d lo = _mm512_setzero_pd(), hi = _mm512_setzero_pd();
    for (std::size_t k = 0; k < kc; ++k) {
      const __m512d a = _mm512_set1_pd(ap[k * a_stride + i]);
      lo = _mm512_fmadd_pd(a, _mm512_loadu_pd(bp + k * kNR512), lo);
      hi = _mm512_fmadd_pd(a, _mm512_loadu_pd(bp + k * kNR512 + 8), hi);
    }
    double* crow = c + i * ldc;
    const __m512d clo = _mm512_maskz_loadu_pd(mlo, crow);
    _mm512_mask_storeu_pd(crow, mlo, _mm512_fmadd_pd(valpha, lo, clo));
    if (mhi != 0) {
      const __m512d chi = _mm512_maskz_loadu_pd(mhi, crow + 8);
      _mm512_mask_storeu_pd(crow + 8, mhi,
                            _mm512_fmadd_pd(valpha, hi, chi));
    }
  }
}

}  // namespace

void micro_kernel_avx512(std::size_t kc, double alpha, const double* ap,
                         std::size_t a_stride, const double* bp, double* c,
                         std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr != kMR512 || nr != kNR512) {
    edge_kernel_avx512(kc, alpha, ap, a_stride, bp, c, ldc, mr, nr);
    return;
  }
  // 8×16 interior tile: 16 accumulators (2 zmm per row), 2 B loads, 1 A
  // broadcast per row per k step.
  __m512d a00 = _mm512_setzero_pd(), a01 = _mm512_setzero_pd();
  __m512d a10 = _mm512_setzero_pd(), a11 = _mm512_setzero_pd();
  __m512d a20 = _mm512_setzero_pd(), a21 = _mm512_setzero_pd();
  __m512d a30 = _mm512_setzero_pd(), a31 = _mm512_setzero_pd();
  __m512d a40 = _mm512_setzero_pd(), a41 = _mm512_setzero_pd();
  __m512d a50 = _mm512_setzero_pd(), a51 = _mm512_setzero_pd();
  __m512d a60 = _mm512_setzero_pd(), a61 = _mm512_setzero_pd();
  __m512d a70 = _mm512_setzero_pd(), a71 = _mm512_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const double* arow = ap + k * a_stride;
    const __m512d b0 = _mm512_loadu_pd(bp + k * kNR512);
    const __m512d b1 = _mm512_loadu_pd(bp + k * kNR512 + 8);
    __m512d a;
    a = _mm512_set1_pd(arow[0]);
    a00 = _mm512_fmadd_pd(a, b0, a00);
    a01 = _mm512_fmadd_pd(a, b1, a01);
    a = _mm512_set1_pd(arow[1]);
    a10 = _mm512_fmadd_pd(a, b0, a10);
    a11 = _mm512_fmadd_pd(a, b1, a11);
    a = _mm512_set1_pd(arow[2]);
    a20 = _mm512_fmadd_pd(a, b0, a20);
    a21 = _mm512_fmadd_pd(a, b1, a21);
    a = _mm512_set1_pd(arow[3]);
    a30 = _mm512_fmadd_pd(a, b0, a30);
    a31 = _mm512_fmadd_pd(a, b1, a31);
    a = _mm512_set1_pd(arow[4]);
    a40 = _mm512_fmadd_pd(a, b0, a40);
    a41 = _mm512_fmadd_pd(a, b1, a41);
    a = _mm512_set1_pd(arow[5]);
    a50 = _mm512_fmadd_pd(a, b0, a50);
    a51 = _mm512_fmadd_pd(a, b1, a51);
    a = _mm512_set1_pd(arow[6]);
    a60 = _mm512_fmadd_pd(a, b0, a60);
    a61 = _mm512_fmadd_pd(a, b1, a61);
    a = _mm512_set1_pd(arow[7]);
    a70 = _mm512_fmadd_pd(a, b0, a70);
    a71 = _mm512_fmadd_pd(a, b1, a71);
  }
  const __m512d valpha = _mm512_set1_pd(alpha);
  const auto store_row = [&](double* crow, __m512d lo, __m512d hi) {
    _mm512_storeu_pd(crow,
                     _mm512_fmadd_pd(valpha, lo, _mm512_loadu_pd(crow)));
    _mm512_storeu_pd(crow + 8,
                     _mm512_fmadd_pd(valpha, hi, _mm512_loadu_pd(crow + 8)));
  };
  store_row(c + 0 * ldc, a00, a01);
  store_row(c + 1 * ldc, a10, a11);
  store_row(c + 2 * ldc, a20, a21);
  store_row(c + 3 * ldc, a30, a31);
  store_row(c + 4 * ldc, a40, a41);
  store_row(c + 5 * ldc, a50, a51);
  store_row(c + 6 * ldc, a60, a61);
  store_row(c + 7 * ldc, a70, a71);
}

}  // namespace pf::detail

#endif  // PF_HAVE_AVX512
