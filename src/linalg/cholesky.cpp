#include "src/linalg/cholesky.h"

#include <cmath>

namespace pf {

std::optional<Matrix> try_cholesky(const Matrix& m) {
  PF_CHECK(m.rows() == m.cols()) << "cholesky needs a square matrix";
  const std::size_t n = m.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = m(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = m(i, j);
      const double* lrow_i = l.row(i);
      const double* lrow_j = l.row(j);
      for (std::size_t k = 0; k < j; ++k) s -= lrow_i[k] * lrow_j[k];
      l(i, j) = s / ljj;
    }
  }
  return l;
}

Matrix cholesky(const Matrix& m) {
  auto l = try_cholesky(m);
  PF_CHECK(l.has_value()) << "matrix is not positive definite";
  return std::move(*l);
}

std::vector<double> forward_substitute(const Matrix& l,
                                       const std::vector<double>& b) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n && b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* lrow = l.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= lrow[k] * y[k];
    y[i] = s / lrow[i];
  }
  return y;
}

std::vector<double> back_substitute(const Matrix& l,
                                    const std::vector<double>& y) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n && y.size() == n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  return back_substitute(l, forward_substitute(l, b));
}

Matrix cholesky_inverse(const Matrix& l) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n);
  // Solve (LLᵀ) X = I column by column. O(n³), matching the cost model's
  // treatment of inversion work as a cubic kernel.
  Matrix inv(n, n, 0.0);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const std::vector<double> col = cholesky_solve(l, e);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  // Symmetrize to wash out round-off asymmetry.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = v;
      inv(j, i) = v;
    }
  return inv;
}

Matrix spd_inverse(const Matrix& m, double damping) {
  PF_CHECK(damping >= 0.0);
  Matrix damped = m;
  if (damping > 0.0) add_diagonal(damped, damping);
  return cholesky_inverse(cholesky(damped));
}

void add_diagonal(Matrix& m, double eps) {
  PF_CHECK(m.rows() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += eps;
}

}  // namespace pf
