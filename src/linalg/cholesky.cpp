#include "src/linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "src/common/exec_context.h"
#include "src/common/thread_pool.h"
#include "src/linalg/gemm.h"

namespace pf {

namespace {

// Panel width for the right-looking blocked factorization. Matrices up to
// kNB take the unblocked path in one shot (identical to the seed algorithm).
constexpr std::size_t kNB = 64;

// Unblocked lower-Cholesky of the jb×jb diagonal block at (j0, j0), assuming
// trailing updates for columns < j0 were already applied. Returns false when
// the block is not (numerically) positive definite.
bool factor_diag_block(Matrix& w, std::size_t j0, std::size_t jb) {
  for (std::size_t j = j0; j < j0 + jb; ++j) {
    const double* wrow_j = w.row(j);
    double diag = w(j, j);
    for (std::size_t k = j0; k < j; ++k) diag -= wrow_j[k] * wrow_j[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    w(j, j) = ljj;
    for (std::size_t i = j + 1; i < j0 + jb; ++i) {
      double s = w(i, j);
      const double* wrow_i = w.row(i);
      for (std::size_t k = j0; k < j; ++k) s -= wrow_i[k] * wrow_j[k];
      w(i, j) = s / ljj;
    }
  }
  return true;
}

// Pool-parametric core: row blocks run in `n_threads` chunks on `pool`
// (nullptr = the process-global pool). The ExecContext overloads below route
// a pipeline stage's factorizations onto the runtime's own worker pool.
std::optional<Matrix> try_cholesky_on(const Matrix& m, std::size_t n_threads,
                                      ThreadPool* pool) {
  PF_CHECK(m.rows() == m.cols()) << "cholesky needs a square matrix";
  const std::size_t n = m.rows();
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  Matrix w = m;
  // Right-looking blocked algorithm: factor a kNB-wide diagonal block, solve
  // the panel below it, then rank-kNB-downdate the trailing matrix. The two
  // O(n²·kNB) phases parallelize over rows; each element's update is a fixed
  // ascending-k sum, so results are bitwise identical for any thread count.
  for (std::size_t j0 = 0; j0 < n; j0 += kNB) {
    const std::size_t jb = std::min(kNB, n - j0);
    if (!factor_diag_block(w, j0, jb)) return std::nullopt;
    const std::size_t row0 = j0 + jb;
    const std::size_t rest = n - row0;
    if (rest == 0) break;
    // Panel solve: L21 = A21·L11⁻ᵀ, one forward substitution per row. Every
    // row costs the same, so even row chunks balance.
    tp.parallel_for(
        rest, n_threads, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = row0 + b; i < row0 + e; ++i) {
            double* wrow_i = w.row(i);
            for (std::size_t c = j0; c < row0; ++c) {
              const double* wrow_c = w.row(c);
              double s = wrow_i[c];
              for (std::size_t k = j0; k < c; ++k) s -= wrow_i[k] * wrow_c[k];
              wrow_i[c] = s / wrow_c[c];
            }
          }
        });
    // Trailing update (lower triangle only): A22 -= L21·L21ᵀ. Row i touches
    // i−row0+1 columns, so equal row counts would load the last chunk ~2× the
    // average; instead chunk boundaries follow sqrt so each chunk covers an
    // equal share of the triangle. Per-row sums are unchanged — the balanced
    // partition is bitwise identical to any other.
    auto update_rows = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = row0 + b; i < row0 + e; ++i) {
        double* wrow_i = w.row(i);
        for (std::size_t j = row0; j <= i; ++j) {
          const double* wrow_j = w.row(j);
          double s = 0.0;
          for (std::size_t k = j0; k < row0; ++k) s += wrow_i[k] * wrow_j[k];
          wrow_i[j] -= s;
        }
      }
    };
    const std::size_t n_chunks = std::min(n_threads, rest);
    if (n_chunks <= 1) {
      update_rows(0, rest);
    } else {
      auto bound = [&](std::size_t c) {
        return c >= n_chunks
                   ? rest
                   : static_cast<std::size_t>(
                         static_cast<double>(rest) *
                         std::sqrt(static_cast<double>(c) /
                                   static_cast<double>(n_chunks)));
      };
      tp.parallel_for(
          n_chunks, n_chunks, [&](std::size_t c0, std::size_t c1) {
            for (std::size_t c = c0; c < c1; ++c)
              update_rows(bound(c), bound(c + 1));
          });
    }
  }
  // The factorization only wrote the lower triangle; clear the copied upper.
  for (std::size_t i = 0; i < n; ++i) {
    double* wrow = w.row(i);
    for (std::size_t j = i + 1; j < n; ++j) wrow[j] = 0.0;
  }
  return w;
}

Matrix cholesky_inverse_on(const Matrix& l, std::size_t n_threads,
                           ThreadPool* pool) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n);
  // Solve (LLᵀ) X = I column by column. O(n³), matching the cost model's
  // treatment of inversion work as a cubic kernel. Columns are independent,
  // so they fan out across the pool without changing any result bit.
  Matrix inv(n, n, 0.0);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  tp.parallel_for(n, n_threads, [&](std::size_t b, std::size_t e) {
    std::vector<double> unit(n, 0.0);
    for (std::size_t j = b; j < e; ++j) {
      unit[j] = 1.0;
      const std::vector<double> col = cholesky_solve(l, unit);
      unit[j] = 0.0;
      for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    }
  });
  // Symmetrize to wash out round-off asymmetry.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = v;
      inv(j, i) = v;
    }
  return inv;
}

}  // namespace

std::optional<Matrix> try_cholesky(const Matrix& m, int threads) {
  return try_cholesky_on(m, resolve_gemm_threads(threads), nullptr);
}

std::optional<Matrix> try_cholesky(const Matrix& m, const ExecContext& ctx) {
  return try_cholesky_on(m, resolve_gemm_threads(ctx.gemm_threads()),
                         &ctx.pool());
}

Matrix cholesky(const Matrix& m, int threads) {
  auto l = try_cholesky(m, threads);
  PF_CHECK(l.has_value()) << "matrix is not positive definite";
  return std::move(*l);
}

Matrix cholesky(const Matrix& m, const ExecContext& ctx) {
  auto l = try_cholesky(m, ctx);
  PF_CHECK(l.has_value()) << "matrix is not positive definite";
  return std::move(*l);
}

std::vector<double> forward_substitute(const Matrix& l,
                                       const std::vector<double>& b) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n && b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* lrow = l.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= lrow[k] * y[k];
    y[i] = s / lrow[i];
  }
  return y;
}

std::vector<double> back_substitute(const Matrix& l,
                                    const std::vector<double>& y) {
  const std::size_t n = l.rows();
  PF_CHECK(l.cols() == n && y.size() == n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  return back_substitute(l, forward_substitute(l, b));
}

Matrix cholesky_inverse(const Matrix& l, int threads) {
  return cholesky_inverse_on(l, resolve_gemm_threads(threads), nullptr);
}

Matrix cholesky_inverse(const Matrix& l, const ExecContext& ctx) {
  return cholesky_inverse_on(l, resolve_gemm_threads(ctx.gemm_threads()),
                             &ctx.pool());
}

Matrix spd_inverse(const Matrix& m, double damping, int threads) {
  PF_CHECK(damping >= 0.0);
  Matrix damped = m;
  if (damping > 0.0) add_diagonal(damped, damping);
  return cholesky_inverse(cholesky(damped, threads), threads);
}

Matrix spd_inverse(const Matrix& m, double damping, const ExecContext& ctx) {
  PF_CHECK(damping >= 0.0);
  Matrix damped = m;
  if (damping > 0.0) add_diagonal(damped, damping);
  return cholesky_inverse(cholesky(damped, ctx), ctx);
}

void add_diagonal(Matrix& m, double eps) {
  PF_CHECK(m.rows() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += eps;
}

}  // namespace pf
