#include "src/linalg/gemm.h"

#include <algorithm>
#include <atomic>

#include "src/common/thread_pool.h"

namespace pf {

namespace {
// Block size tuned for L1-resident panels of doubles.
constexpr std::size_t kBlock = 64;

std::atomic<int> g_gemm_threads{1};

// Resolves a per-call thread count: 0 = global default, floor of 1.
std::size_t resolve_threads(int threads) {
  const int n = threads == 0 ? g_gemm_threads.load(std::memory_order_relaxed)
                             : threads;
  return static_cast<std::size_t>(std::max(1, n));
}

// C rows [r0, r1) += alpha * A[r0:r1, :] · B. Per output element the k-index
// ascends exactly as in the full serial kernel, so splitting rows across
// threads cannot change the floating-point result.
void matmul_rows(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                 std::size_t r0, std::size_t r1) {
  const std::size_t K = a.cols(), N = b.cols();
  for (std::size_t i0 = r0; i0 < r1; i0 += kBlock) {
    const std::size_t i1 = std::min(r1, i0 + kBlock);
    for (std::size_t k0 = 0; k0 < K; k0 += kBlock) {
      const std::size_t k1 = std::min(K, k0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a.row(i);
        double* crow = c.row(i);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = alpha * arow[k];
          if (aik == 0.0) continue;
          const double* brow = b.row(k);
          for (std::size_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

// C rows [k0, k1) += alpha * (Aᵀ B)[k0:k1, :]. The serial kernel accumulates
// m-ascending into each output row; so does this.
void matmul_tn_rows(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                    std::size_t k0, std::size_t k1) {
  const std::size_t M = a.rows(), N = b.cols();
  for (std::size_t m = 0; m < M; ++m) {
    const double* arow = a.row(m);
    const double* brow = b.row(m);
    for (std::size_t k = k0; k < k1; ++k) {
      const double v = alpha * arow[k];
      if (v == 0.0) continue;
      double* crow = c.row(k);
      for (std::size_t j = 0; j < N; ++j) crow[j] += v * brow[j];
    }
  }
}

// C rows [r0, r1) += alpha * (A Bᵀ)[r0:r1, :].
void matmul_nt_rows(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                    std::size_t r0, std::size_t r1) {
  const std::size_t K = a.cols(), N = b.rows();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < N; ++j) {
      const double* brow = b.row(j);
      double s = 0.0;
      for (std::size_t k = 0; k < K; ++k) s += arow[k] * brow[k];
      crow[j] += alpha * s;
    }
  }
}

// Dispatches a row-range kernel serially or onto the shared pool. Row blocks
// are contiguous and disjoint, so workers never write the same cache line's
// owner row (false sharing on block edges is possible but harmless).
template <typename RowKernel>
void run_rows(std::size_t rows, std::size_t threads, RowKernel&& kernel) {
  if (threads <= 1 || rows <= 1) {
    kernel(0, rows);
    return;
  }
  ThreadPool::global().parallel_for(rows, threads, kernel);
}

}  // namespace

void set_gemm_threads(int n) {
  g_gemm_threads.store(std::max(1, n), std::memory_order_relaxed);
}

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                int threads) {
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == K) << "matmul shape: " << M << "x" << K << " * "
                          << b.rows() << "x" << N;
  PF_CHECK(c.rows() == M && c.cols() == N);
  run_rows(M, resolve_threads(threads),
           [&](std::size_t r0, std::size_t r1) {
             matmul_rows(a, b, c, alpha, r0, r1);
           });
}

Matrix matmul(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  // a: (M×K), b: (M×N), c: (K×N) += alpha * aᵀ b.
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == M) << "matmul_tn shape mismatch";
  PF_CHECK(c.rows() == K && c.cols() == N);
  run_rows(K, resolve_threads(threads),
           [&](std::size_t k0, std::size_t k1) {
             matmul_tn_rows(a, b, c, alpha, k0, k1);
           });
}

Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.cols(), b.cols(), 0.0);
  matmul_tn_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  // a: (M×K), b: (N×K), c: (M×N) += alpha * a bᵀ.
  const std::size_t M = a.rows(), K = a.cols(), N = b.rows();
  PF_CHECK(b.cols() == K) << "matmul_nt shape mismatch";
  PF_CHECK(c.rows() == M && c.cols() == N);
  run_rows(M, resolve_threads(threads),
           [&](std::size_t r0, std::size_t r1) {
             matmul_nt_rows(a, b, c, alpha, r0, r1);
           });
}

Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.rows(), 0.0);
  matmul_nt_acc(a, b, c, 1.0, threads);
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  PF_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

}  // namespace pf
