#include "src/linalg/gemm.h"

#include <algorithm>
#include <vector>

#include "src/common/cpu_features.h"
#include "src/common/exec_context.h"
#include "src/common/thread_pool.h"
#include "src/linalg/gemm_kernel.h"

namespace pf {

namespace detail {

void micro_kernel_scalar(std::size_t kc, double alpha, const double* ap,
                         const double* bp, double* c, std::size_t ldc,
                         std::size_t mr, std::size_t nr) {
  // Two output rows per pass: their 2×kNR accumulators fit the baseline
  // SSE2 register file (a full 6×8 tile would spill) while giving the
  // floating-point adders enough independent chains to hide their latency.
  // Per element the k loop ascends and alpha is applied once at the end —
  // the same structure as the AVX2 kernel, in plain mul+add arithmetic, so
  // thread partitioning is bitwise neutral here too (an element's chain does
  // not depend on whether its row ran paired or as the odd tail); the B
  // sliver is re-streamed per row pair from L1.
  std::size_t i = 0;
  for (; i + 1 < mr; i += 2) {
    double acc0[kNR] = {}, acc1[kNR] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const double a0 = ap[k * mr + i];
      const double a1 = ap[k * mr + i + 1];
      const double* brow = bp + k * kNR;
      for (std::size_t j = 0; j < kNR; ++j) {
        acc0[j] += a0 * brow[j];
        acc1[j] += a1 * brow[j];
      }
    }
    for (std::size_t j = 0; j < nr; ++j) {
      c[i * ldc + j] += alpha * acc0[j];
      c[(i + 1) * ldc + j] += alpha * acc1[j];
    }
  }
  for (; i < mr; ++i) {
    double acc[kNR] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const double a = ap[k * mr + i];
      const double* brow = bp + k * kNR;
      for (std::size_t j = 0; j < kNR; ++j) acc[j] += a * brow[j];
    }
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[j];
  }
}

MicroKernelFn active_micro_kernel() {
#if defined(PF_HAVE_AVX2)
  if (active_simd_level() == SimdLevel::kAvx2) return micro_kernel_avx2;
#endif
  return micro_kernel_scalar;
}

}  // namespace detail

namespace {

using detail::kKC;
using detail::kMC;
using detail::kMR;
using detail::kNR;

// Packs all of B (reduction dim K × output cols N, element getter b(k, j))
// into kNR-wide, zero-padded column slivers grouped by kKC block:
//   packed[block t][panel p][k*kNR + j]
// Block t occupies kb_t * n_panels * kNR doubles starting at
// t * kKC * n_panels * kNR (every block before the last is full, so the
// prefix is exact). Packing happens once, before the row-parallel phase; the
// workers only read it.
template <typename BGet>
std::vector<double> pack_b(std::size_t K, std::size_t N, const BGet& b) {
  const std::size_t n_panels = (N + kNR - 1) / kNR;
  std::vector<double> packed(K * n_panels * kNR);
  for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
    const std::size_t kb = std::min(kKC, K - k0);
    double* block = packed.data() + k0 * n_panels * kNR;
    for (std::size_t p = 0; p < n_panels; ++p) {
      const std::size_t j0 = p * kNR;
      const std::size_t jw = std::min(kNR, N - j0);
      double* dst = block + p * kb * kNR;
      for (std::size_t k = 0; k < kb; ++k)
        for (std::size_t jj = 0; jj < kNR; ++jj)
          dst[k * kNR + jj] = jj < jw ? b(k0 + k, j0 + jj) : 0.0;
    }
  }
  return packed;
}

// Computes C rows [r0, r1) += alpha * Op(A)·Op(B) from the pre-packed B.
// Loop order: row block → k block → column sliver → row tile, so each output
// element sees ascending k regardless of where [r0, r1) starts — the thread
// partition cannot change results within one SIMD level.
template <typename AGet>
void gemm_rows_packed(std::size_t r0, std::size_t r1, std::size_t N,
                      std::size_t K, double alpha, const AGet& a,
                      const double* packed_b, Matrix& cmat,
                      detail::MicroKernelFn micro) {
  const std::size_t n_panels = (N + kNR - 1) / kNR;
  const std::size_t ldc = cmat.cols();
  // Per-thread scratch for packed A tiles; reused across calls. Safe with
  // nested parallel_for help-draining: executions on one thread are
  // sequential and repack before every use.
  thread_local std::vector<double> apack;
  apack.resize(kMC * kKC);
  for (std::size_t i0 = r0; i0 < r1; i0 += kMC) {
    const std::size_t i1 = std::min(r1, i0 + kMC);
    for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
      const std::size_t kb = std::min(kKC, K - k0);
      // Pack A rows [i0, i1) × k block into kMR tiles, k-major, stride mr.
      for (std::size_t ti = i0; ti < i1; ti += kMR) {
        const std::size_t mr = std::min(kMR, i1 - ti);
        double* dst = apack.data() + (ti - i0) * kb;
        for (std::size_t k = 0; k < kb; ++k)
          for (std::size_t ii = 0; ii < mr; ++ii)
            dst[k * mr + ii] = a(ti + ii, k0 + k);
      }
      const double* bblock = packed_b + k0 * n_panels * kNR;
      for (std::size_t p = 0; p < n_panels; ++p) {
        const std::size_t j0 = p * kNR;
        const std::size_t jw = std::min(kNR, N - j0);
        const double* bp = bblock + p * kb * kNR;
        for (std::size_t ti = i0; ti < i1; ti += kMR) {
          const std::size_t mr = std::min(kMR, i1 - ti);
          micro(kb, alpha, apack.data() + (ti - i0) * kb, bp,
                cmat.row(ti) + j0, ldc, mr, jw);
        }
      }
    }
  }
}

// Shared driver: C(M×N) += alpha * Op(A)·Op(B) with element getters a(i, k),
// b(k, j) absorbing the nn/tn/nt transposes. B is packed once up front;
// output rows are then split into contiguous blocks across the pool.
template <typename AGet, typename BGet>
void gemm_driver(std::size_t M, std::size_t N, std::size_t K, double alpha,
                 const AGet& a, const BGet& b, Matrix& c, int threads) {
  if (M == 0 || N == 0 || K == 0) return;  // += alpha·0: nothing to do
  const std::vector<double> packed_b = pack_b(K, N, b);
  const detail::MicroKernelFn micro = detail::active_micro_kernel();
  const std::size_t n_threads = resolve_gemm_threads(threads);
  if (n_threads <= 1 || M <= 1) {
    // Serial fast path: skip the std::function wrap — small products in the
    // nn forward/backward loops call in here at high frequency.
    gemm_rows_packed(0, M, N, K, alpha, a, packed_b.data(), c, micro);
    return;
  }
  ThreadPool::global().parallel_for(
      M, n_threads, [&](std::size_t r0, std::size_t r1) {
        gemm_rows_packed(r0, r1, N, K, alpha, a, packed_b.data(), c, micro);
      });
}

}  // namespace

void set_gemm_threads(int n) { ExecContext::set_default_gemm_threads(n); }

int gemm_threads() { return ExecContext::default_gemm_threads(); }

std::size_t resolve_gemm_threads(int threads) {
  const int n = threads == 0 ? ExecContext::default_gemm_threads() : threads;
  return static_cast<std::size_t>(std::max(1, n));
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                int threads) {
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == K) << "matmul shape: " << M << "x" << K << " * "
                          << b.rows() << "x" << N;
  PF_CHECK(c.rows() == M && c.cols() == N);
  gemm_driver(
      M, N, K, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(i)[k]; },
      [&](std::size_t k, std::size_t j) { return b.row(k)[j]; }, c, threads);
}

Matrix matmul(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  // a: (M×K), b: (M×N), c: (K×N) += alpha * aᵀ b. Reduction dim is M.
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == M) << "matmul_tn shape mismatch";
  PF_CHECK(c.rows() == K && c.cols() == N);
  gemm_driver(
      K, N, M, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(k)[i]; },
      [&](std::size_t k, std::size_t j) { return b.row(k)[j]; }, c, threads);
}

Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.cols(), b.cols(), 0.0);
  matmul_tn_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  // a: (M×K), b: (N×K), c: (M×N) += alpha * a bᵀ. Reduction dim is K.
  const std::size_t M = a.rows(), K = a.cols(), N = b.rows();
  PF_CHECK(b.cols() == K) << "matmul_nt shape mismatch";
  PF_CHECK(c.rows() == M && c.cols() == N);
  gemm_driver(
      M, N, K, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(i)[k]; },
      [&](std::size_t k, std::size_t j) { return b.row(j)[k]; }, c, threads);
}

Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.rows(), 0.0);
  matmul_nt_acc(a, b, c, 1.0, threads);
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  PF_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

}  // namespace pf
