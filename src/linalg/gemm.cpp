#include "src/linalg/gemm.h"

#include <algorithm>

namespace pf {

namespace {
// Block size tuned for L1-resident panels of doubles.
constexpr std::size_t kBlock = 64;
}  // namespace

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha) {
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == K) << "matmul shape: " << M << "x" << K << " * "
                          << b.rows() << "x" << N;
  PF_CHECK(c.rows() == M && c.cols() == N);
  for (std::size_t i0 = 0; i0 < M; i0 += kBlock) {
    const std::size_t i1 = std::min(M, i0 + kBlock);
    for (std::size_t k0 = 0; k0 < K; k0 += kBlock) {
      const std::size_t k1 = std::min(K, k0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a.row(i);
        double* crow = c.row(i);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = alpha * arow[k];
          if (aik == 0.0) continue;
          const double* brow = b.row(k);
          for (std::size_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_acc(a, b, c);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha) {
  // a: (M×K), b: (M×N), c: (K×N) += alpha * aᵀ b.
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == M) << "matmul_tn shape mismatch";
  PF_CHECK(c.rows() == K && c.cols() == N);
  for (std::size_t m = 0; m < M; ++m) {
    const double* arow = a.row(m);
    const double* brow = b.row(m);
    for (std::size_t k = 0; k < K; ++k) {
      const double v = alpha * arow[k];
      if (v == 0.0) continue;
      double* crow = c.row(k);
      for (std::size_t j = 0; j < N; ++j) crow[j] += v * brow[j];
    }
  }
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols(), 0.0);
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha) {
  // a: (M×K), b: (N×K), c: (M×N) += alpha * a bᵀ.
  const std::size_t M = a.rows(), K = a.cols(), N = b.rows();
  PF_CHECK(b.cols() == K) << "matmul_nt shape mismatch";
  PF_CHECK(c.rows() == M && c.cols() == N);
  for (std::size_t i = 0; i < M; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < N; ++j) {
      const double* brow = b.row(j);
      double s = 0.0;
      for (std::size_t k = 0; k < K; ++k) s += arow[k] * brow[k];
      crow[j] += alpha * s;
    }
  }
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows(), 0.0);
  matmul_nt_acc(a, b, c);
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  PF_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

}  // namespace pf
