#include "src/linalg/gemm.h"

#include <algorithm>
#include <vector>

#include "src/common/cpu_features.h"
#include "src/common/exec_context.h"
#include "src/common/thread_pool.h"
#include "src/linalg/gemm_kernel.h"

// Read-prefetch with high temporal locality; a no-op where unsupported.
// Prefetching never touches architectural state, so it cannot perturb the
// bitwise determinism contract.
#if defined(__GNUC__) || defined(__clang__)
#define PF_PREFETCH_R(addr) __builtin_prefetch((addr), 0, 3)
#else
#define PF_PREFETCH_R(addr) ((void)0)
#endif

namespace pf {

namespace detail {

void micro_kernel_scalar(std::size_t kc, double alpha, const double* ap,
                         std::size_t a_stride, const double* bp, double* c,
                         std::size_t ldc, std::size_t mr, std::size_t nr) {
  // Two output rows per pass: their 2×kNR accumulators fit the baseline
  // SSE2 register file (a full 6×8 tile would spill) while giving the
  // floating-point adders enough independent chains to hide their latency.
  // Per element the k loop ascends and alpha is applied once at the end —
  // the same structure as the AVX2 kernel, in plain mul+add arithmetic, so
  // thread partitioning is bitwise neutral here too (an element's chain does
  // not depend on whether its row ran paired or as the odd tail); the B
  // sliver is re-streamed per row pair from L1.
  std::size_t i = 0;
  for (; i + 1 < mr; i += 2) {
    double acc0[kNR] = {}, acc1[kNR] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const double a0 = ap[k * a_stride + i];
      const double a1 = ap[k * a_stride + i + 1];
      const double* brow = bp + k * kNR;
      for (std::size_t j = 0; j < kNR; ++j) {
        acc0[j] += a0 * brow[j];
        acc1[j] += a1 * brow[j];
      }
    }
    for (std::size_t j = 0; j < nr; ++j) {
      c[i * ldc + j] += alpha * acc0[j];
      c[(i + 1) * ldc + j] += alpha * acc1[j];
    }
  }
  for (; i < mr; ++i) {
    double acc[kNR] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const double a = ap[k * a_stride + i];
      const double* brow = bp + k * kNR;
      for (std::size_t j = 0; j < kNR; ++j) acc[j] += a * brow[j];
    }
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[j];
  }
}

KernelSpec active_kernel_spec() {
  const SimdLevel level = active_simd_level();
#if defined(PF_HAVE_AVX512)
  if (level == SimdLevel::kAvx512)
    return KernelSpec{micro_kernel_avx512, kMR512, kNR512};
#endif
#if defined(PF_HAVE_AVX2)
  if (level == SimdLevel::kAvx2) return KernelSpec{micro_kernel_avx2, kMR, kNR};
#endif
  (void)level;
  return KernelSpec{micro_kernel_scalar, kMR, kNR};
}

}  // namespace detail

namespace {

using detail::kKC;
using detail::kMC;

// When set, Op(A) is already laid out k-major in memory — ap for the tile at
// output rows [ti, ·) and k block k0 is base + k0*stride + ti, fed to the
// microkernel with a_stride = stride instead of a packed copy. matmul_tn is
// the case: Op(A)(i, k) = a(k, i) sits at a.data()[k*lda + i], so its
// "column-wise walk" needs no A pack at all. Addressing never enters the
// arithmetic, so this is bitwise identical to the packed path.
struct DirectA {
  const double* base = nullptr;
  std::size_t stride = 0;
};

// Packs all of B (reduction dim K × output cols N, element getter b(k, j))
// into NR-wide, zero-padded column slivers grouped by kKC block:
//   packed[block t][panel p][k*NR + j]
// NR is the active kernel's full tile width (8 for scalar/AVX2, 16 for
// AVX-512). Block t occupies kb_t * n_panels * NR doubles starting at
// t * kKC * n_panels * NR (every block before the last is full, so the
// prefix is exact). Packing happens once, before the row-parallel phase; the
// workers only read it.
template <typename BGet>
std::vector<double> pack_b(std::size_t K, std::size_t N, const BGet& b,
                           std::size_t NR) {
  const std::size_t n_panels = (N + NR - 1) / NR;
  std::vector<double> packed(K * n_panels * NR);
  for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
    const std::size_t kb = std::min(kKC, K - k0);
    double* block = packed.data() + k0 * n_panels * NR;
    for (std::size_t p = 0; p < n_panels; ++p) {
      const std::size_t j0 = p * NR;
      const std::size_t jw = std::min(NR, N - j0);
      double* dst = block + p * kb * NR;
      for (std::size_t k = 0; k < kb; ++k)
        for (std::size_t jj = 0; jj < NR; ++jj)
          dst[k * NR + jj] = jj < jw ? b(k0 + k, j0 + jj) : 0.0;
    }
  }
  return packed;
}

// Computes C rows [r0, r1) += alpha * Op(A)·Op(B) from the pre-packed B.
// Loop order: row block → k block → column sliver → row tile, so each output
// element sees ascending k regardless of where [r0, r1) starts — the thread
// partition cannot change results within one SIMD level.
template <typename AGet>
void gemm_rows_packed(std::size_t r0, std::size_t r1, std::size_t N,
                      std::size_t K, double alpha, const AGet& a,
                      const DirectA& da, const double* packed_b, Matrix& cmat,
                      const detail::KernelSpec& spec) {
  const std::size_t MR = spec.mr, NR = spec.nr;
  const std::size_t n_panels = (N + NR - 1) / NR;
  const std::size_t ldc = cmat.cols();
  // Per-thread scratch for packed A tiles; reused across calls. Safe with
  // nested parallel_for help-draining: executions on one thread are
  // sequential and repack before every use.
  thread_local std::vector<double> apack;
  if (da.base == nullptr) apack.resize(kMC * kKC);
  for (std::size_t i0 = r0; i0 < r1; i0 += kMC) {
    const std::size_t i1 = std::min(r1, i0 + kMC);
    for (std::size_t k0 = 0; k0 < K; k0 += kKC) {
      const std::size_t kb = std::min(kKC, K - k0);
      if (da.base == nullptr) {
        // Pack A rows [i0, i1) × k block into MR tiles, k-major, stride mr.
        for (std::size_t ti = i0; ti < i1; ti += MR) {
          const std::size_t mr = std::min(MR, i1 - ti);
          double* dst = apack.data() + (ti - i0) * kb;
          for (std::size_t k = 0; k < kb; ++k)
            for (std::size_t ii = 0; ii < mr; ++ii)
              dst[k * mr + ii] = a(ti + ii, k0 + k);
        }
      }
      const double* bblock = packed_b + k0 * n_panels * NR;
      for (std::size_t p = 0; p < n_panels; ++p) {
        const std::size_t j0 = p * NR;
        const std::size_t jw = std::min(NR, N - j0);
        const double* bp = bblock + p * kb * NR;
        if (p + 1 < n_panels) {
          // Touch the head of the next B sliver while this one computes so
          // the hardware streamer is already running when we get there.
          const double* nb = bblock + (p + 1) * kb * NR;
          PF_PREFETCH_R(nb);
          PF_PREFETCH_R(nb + 8);
        }
        for (std::size_t ti = i0; ti < i1; ti += MR) {
          const std::size_t mr = std::min(MR, i1 - ti);
          if (ti + MR < i1) PF_PREFETCH_R(cmat.row(ti + MR) + j0);
          const double* ap = da.base != nullptr
                                 ? da.base + k0 * da.stride + ti
                                 : apack.data() + (ti - i0) * kb;
          const std::size_t a_stride = da.base != nullptr ? da.stride : mr;
          spec.fn(kb, alpha, ap, a_stride, bp, cmat.row(ti) + j0, ldc, mr,
                  jw);
        }
      }
    }
  }
}

// Shared driver: C(M×N) += alpha * Op(A)·Op(B) with element getters a(i, k),
// b(k, j) absorbing the nn/tn/nt transposes (da short-circuits the A pack
// when Op(A) is k-major in memory). B is packed once up front; output rows
// are then split into contiguous blocks of `n_threads` chunks on `pool`
// (nullptr = the process-global pool).
template <typename AGet, typename BGet>
void gemm_driver(std::size_t M, std::size_t N, std::size_t K, double alpha,
                 const AGet& a, const DirectA& da, const BGet& b, Matrix& c,
                 std::size_t n_threads, ThreadPool* pool) {
  if (M == 0 || N == 0 || K == 0) return;  // += alpha·0: nothing to do
  const detail::KernelSpec spec = detail::active_kernel_spec();
  const std::vector<double> packed_b = pack_b(K, N, b, spec.nr);
  if (n_threads <= 1 || M <= 1) {
    // Serial fast path: skip the std::function wrap — small products in the
    // nn forward/backward loops call in here at high frequency.
    gemm_rows_packed(0, M, N, K, alpha, a, da, packed_b.data(), c, spec);
    return;
  }
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  tp.parallel_for(M, n_threads, [&](std::size_t r0, std::size_t r1) {
    gemm_rows_packed(r0, r1, N, K, alpha, a, da, packed_b.data(), c, spec);
  });
}

void matmul_acc_on(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   std::size_t n_threads, ThreadPool* pool) {
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == K) << "matmul shape: " << M << "x" << K << " * "
                          << b.rows() << "x" << N;
  PF_CHECK(c.rows() == M && c.cols() == N);
  gemm_driver(
      M, N, K, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(i)[k]; }, DirectA{},
      [&](std::size_t k, std::size_t j) { return b.row(k)[j]; }, c, n_threads,
      pool);
}

void matmul_tn_acc_on(const Matrix& a, const Matrix& b, Matrix& c,
                      double alpha, std::size_t n_threads, ThreadPool* pool) {
  // a: (M×K), b: (M×N), c: (K×N) += alpha * aᵀ b. Reduction dim is M.
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  PF_CHECK(b.rows() == M) << "matmul_tn shape mismatch";
  PF_CHECK(c.rows() == K && c.cols() == N);
  // aᵀ is k-major in a's row-major storage: Op(A)(i, k) = a.data()[k*K + i]
  // — the copy-free DirectA case.
  gemm_driver(
      K, N, M, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(k)[i]; },
      DirectA{a.data(), a.cols()},
      [&](std::size_t k, std::size_t j) { return b.row(k)[j]; }, c, n_threads,
      pool);
}

void matmul_nt_acc_on(const Matrix& a, const Matrix& b, Matrix& c,
                      double alpha, std::size_t n_threads, ThreadPool* pool) {
  // a: (M×K), b: (N×K), c: (M×N) += alpha * a bᵀ. Reduction dim is K.
  const std::size_t M = a.rows(), K = a.cols(), N = b.rows();
  PF_CHECK(b.cols() == K) << "matmul_nt shape mismatch";
  PF_CHECK(c.rows() == M && c.cols() == N);
  gemm_driver(
      M, N, K, alpha,
      [&](std::size_t i, std::size_t k) { return a.row(i)[k]; }, DirectA{},
      [&](std::size_t k, std::size_t j) { return b.row(j)[k]; }, c, n_threads,
      pool);
}

}  // namespace

void set_gemm_threads(int n) { ExecContext::set_default_gemm_threads(n); }

int gemm_threads() { return ExecContext::default_gemm_threads(); }

std::size_t resolve_gemm_threads(int threads) {
  const int n = threads == 0 ? ExecContext::default_gemm_threads() : threads;
  return static_cast<std::size_t>(std::max(1, n));
}

// --- Legacy int-threads entry points (process-global pool) -----------------
// Kept deliberately on ThreadPool::global(): they serve tests, benches and
// serial-trainer call sites that have no per-stage budget to respect. Hot
// paths inside pipeline stages use the ExecContext overloads below, which
// dispatch on the context's pool.

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                int threads) {
  matmul_acc_on(a, b, c, alpha, resolve_gemm_threads(threads), nullptr);
}

Matrix matmul(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  matmul_tn_acc_on(a, b, c, alpha, resolve_gemm_threads(threads), nullptr);
}

Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.cols(), b.cols(), 0.0);
  matmul_tn_acc(a, b, c, 1.0, threads);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   int threads) {
  matmul_nt_acc_on(a, b, c, alpha, resolve_gemm_threads(threads), nullptr);
}

Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.rows(), 0.0);
  matmul_nt_acc(a, b, c, 1.0, threads);
  return c;
}

// --- ExecContext entry points (the context's pool and budget) --------------

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                const ExecContext& ctx) {
  matmul_acc_on(a, b, c, alpha, resolve_gemm_threads(ctx.gemm_threads()),
                &ctx.pool());
}

Matrix matmul(const Matrix& a, const Matrix& b, const ExecContext& ctx) {
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_acc(a, b, c, 1.0, ctx);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   const ExecContext& ctx) {
  matmul_tn_acc_on(a, b, c, alpha, resolve_gemm_threads(ctx.gemm_threads()),
                   &ctx.pool());
}

Matrix matmul_tn(const Matrix& a, const Matrix& b, const ExecContext& ctx) {
  Matrix c(a.cols(), b.cols(), 0.0);
  matmul_tn_acc(a, b, c, 1.0, ctx);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   const ExecContext& ctx) {
  matmul_nt_acc_on(a, b, c, alpha, resolve_gemm_threads(ctx.gemm_threads()),
                   &ctx.pool());
}

Matrix matmul_nt(const Matrix& a, const Matrix& b, const ExecContext& ctx) {
  Matrix c(a.rows(), b.rows(), 0.0);
  matmul_nt_acc(a, b, c, 1.0, ctx);
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  PF_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

}  // namespace pf
