#include "src/linalg/kron.h"

#include "src/linalg/gemm.h"

namespace pf {

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double aij = a(i, j);
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
    }
  return out;
}

std::vector<double> vec_cols(const Matrix& m) {
  std::vector<double> v(m.rows() * m.cols());
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i) v[j * m.rows() + i] = m(i, j);
  return v;
}

Matrix unvec_cols(const std::vector<double>& v, std::size_t rows,
                  std::size_t cols) {
  PF_CHECK(v.size() == rows * cols);
  Matrix m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) m(i, j) = v[j * rows + i];
  return m;
}

std::vector<double> kron_matvec(const Matrix& a, const Matrix& b,
                                const Matrix& x) {
  PF_CHECK(x.rows() == b.cols() && x.cols() == a.cols());
  // (A ⊗ B) vec(X) = vec(B X Aᵀ).
  const Matrix bx = matmul(b, x);
  const Matrix bxat = matmul_nt(bx, a);
  return vec_cols(bxat);
}

}  // namespace pf
