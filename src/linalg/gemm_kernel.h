// Internal microkernel ABI shared by the packed GEMM driver (gemm.cpp) and
// the per-ISA kernel TUs. Not part of the public linalg API.
//
// Register tiles (MR×NR doubles), one per ISA level:
//   scalar / AVX2   6×8   — with AVX2 that is 12 ymm accumulators + 2 B
//                           loads + 1 A broadcast = 15 of 16 registers, the
//                           double-precision analogue of the canonical 6×16
//                           single-precision AVX2 tile.
//   AVX-512         8×16  — 16 zmm accumulators + 2 B loads + 1 A broadcast
//                           = 19 of 32 registers; twice the arithmetic per B
//                           load of the AVX2 tile.
// The driver reads the tile geometry from KernelSpec at runtime and blocks
// packing accordingly; kKC/kMC cache blocking is shared by every level.
//
// Panel layouts the driver guarantees:
//   ap  A tile, k-major with row stride a_stride:  ap[k*a_stride + i].
//       Packed tiles use a_stride == mr; the copy-free matmul_tn path passes
//       a pointer straight into the source matrix with a_stride == its
//       leading dimension (aᵀ's column walk is already k-major in memory).
//   bp  packed B sliver, always spec.nr wide, zero-padded past nr:
//       bp[k*NR + j] (NR is the kernel's own full tile width).
//
// The microkernel computes, for i<mr, j<nr:
//   C[i*ldc + j] += alpha * sum_k ap[k*a_stride+i] * bp[k*NR+j]
// with k strictly ascending per element and the alpha scaling applied once
// after the k loop. Both requirements are load-bearing: ascending-k per
// element is what makes row-partitioned threading bitwise reproducible, and
// a single alpha application keeps edge tiles identical to interior tiles.
// A-element addressing (packed copy vs direct stride) never enters the
// arithmetic, so the copy-free path is bitwise identical to the packed one.
#pragma once

#include <cstddef>

namespace pf::detail {

inline constexpr std::size_t kMR = 6;    // scalar/AVX2 register-tile rows
inline constexpr std::size_t kNR = 8;    // scalar/AVX2 register-tile columns
inline constexpr std::size_t kKC = 256;  // k-panel depth (B sliver in L1)
inline constexpr std::size_t kMC = 96;   // packed A block rows (~192 KB L2;
                                         // divisible by 6 and 8)

#if defined(PF_HAVE_AVX512)
inline constexpr std::size_t kMR512 = 8;   // AVX-512 register-tile rows
inline constexpr std::size_t kNR512 = 16;  // AVX-512 register-tile columns
#endif

using MicroKernelFn = void (*)(std::size_t kc, double alpha, const double* ap,
                               std::size_t a_stride, const double* bp,
                               double* c, std::size_t ldc, std::size_t mr,
                               std::size_t nr);

// A kernel plus the tile geometry the driver must pack for it. mr/nr are the
// FULL tile sizes (the kernel's own constants); the per-call mr/nr arguments
// may be smaller at block edges.
struct KernelSpec {
  MicroKernelFn fn = nullptr;
  std::size_t mr = kMR;
  std::size_t nr = kNR;
};

// Portable fallback; mirrors the AVX2 blocking exactly (same panels, same
// per-element accumulation order), plain mul+add arithmetic.
void micro_kernel_scalar(std::size_t kc, double alpha, const double* ap,
                         std::size_t a_stride, const double* bp, double* c,
                         std::size_t ldc, std::size_t mr, std::size_t nr);

#if defined(PF_HAVE_AVX2)
// FMA kernel, compiled with -mavx2 -mfma in gemm_kernels_avx2.cpp. Must only
// be called when cpu_features reports SimdLevel::kAvx2 or higher.
void micro_kernel_avx2(std::size_t kc, double alpha, const double* ap,
                       std::size_t a_stride, const double* bp, double* c,
                       std::size_t ldc, std::size_t mr, std::size_t nr);
#endif

#if defined(PF_HAVE_AVX512)
// AVX-512F kernel, compiled with -mavx512f in gemm_kernels_avx512.cpp. Must
// only be called when cpu_features reports SimdLevel::kAvx512.
void micro_kernel_avx512(std::size_t kc, double alpha, const double* ap,
                         std::size_t a_stride, const double* bp, double* c,
                         std::size_t ldc, std::size_t mr, std::size_t nr);
#endif

// The kernel + tile geometry matching cpu_features::active_simd_level().
KernelSpec active_kernel_spec();

}  // namespace pf::detail
