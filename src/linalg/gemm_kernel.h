// Internal microkernel ABI shared by the packed GEMM driver (gemm.cpp) and
// the per-ISA kernel TUs. Not part of the public linalg API.
//
// Register tile: 6×8 doubles (MR×NR). With AVX2 that is 12 ymm accumulators
// + 2 B loads + 1 A broadcast = 15 of 16 registers — the double-precision
// analogue of the canonical 6×16 single-precision AVX2 tile (same
// 12-register accumulator footprint, half the lane width).
//
// Panel layouts the driver guarantees:
//   ap  packed A tile, k-major with row stride mr:   ap[k*mr + i]
//   bp  packed B sliver, always kNR wide, zero-padded past nr:
//       bp[k*kNR + j]
//
// The microkernel computes, for i<mr, j<nr:
//   C[i*ldc + j] += alpha * sum_k ap[k*mr+i] * bp[k*kNR+j]
// with k strictly ascending per element and the alpha scaling applied once
// after the k loop. Both requirements are load-bearing: ascending-k per
// element is what makes row-partitioned threading bitwise reproducible, and
// a single alpha application keeps edge tiles identical to interior tiles.
#pragma once

#include <cstddef>

namespace pf::detail {

inline constexpr std::size_t kMR = 6;    // register-tile rows
inline constexpr std::size_t kNR = 8;    // register-tile columns (doubles)
inline constexpr std::size_t kKC = 256;  // k-panel depth (B sliver ~16 KB L1)
inline constexpr std::size_t kMC = 96;   // packed A block rows (~192 KB L2)

using MicroKernelFn = void (*)(std::size_t kc, double alpha, const double* ap,
                               const double* bp, double* c, std::size_t ldc,
                               std::size_t mr, std::size_t nr);

// Portable fallback; mirrors the AVX2 blocking exactly (same panels, same
// per-element accumulation order), plain mul+add arithmetic.
void micro_kernel_scalar(std::size_t kc, double alpha, const double* ap,
                         const double* bp, double* c, std::size_t ldc,
                         std::size_t mr, std::size_t nr);

#if defined(PF_HAVE_AVX2)
// FMA kernel, compiled with -mavx2 -mfma in gemm_kernels_avx2.cpp. Must only
// be called when cpu_features reports SimdLevel::kAvx2.
void micro_kernel_avx2(std::size_t kc, double alpha, const double* ap,
                       const double* bp, double* c, std::size_t ldc,
                       std::size_t mr, std::size_t nr);
#endif

// The kernel matching cpu_features::active_simd_level() right now.
MicroKernelFn active_micro_kernel();

}  // namespace pf::detail
