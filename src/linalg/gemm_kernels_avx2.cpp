// AVX2+FMA GEMM microkernel. This TU is the only one compiled with
// -mavx2 -mfma (see CMakeLists.txt); nothing here may be inlined elsewhere,
// and micro_kernel_avx2 must only run after cpu_features detected AVX2.
//
// Bitwise-reproducibility notes (the properties tests pin):
//  * Every per-element accumulation is a chain of true FMAs in ascending-k
//    order. The edge path below uses std::fma, which -mfma compiles to the
//    same vfmadd instruction, so an element computes the identical value
//    whether its tile is full (vector path) or partial (edge path). Row
//    partitioning across threads can change tile membership, never values.
//  * The final C update is itself one FMA: c = fma(alpha, acc, c).
#include "src/linalg/gemm_kernel.h"

#if defined(PF_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

namespace pf::detail {

namespace {

// Partial tiles. Rows with a full 8-column sliver (the common M-edge case
// at row-block boundaries) keep the vector FMA path one row at a time; only
// the nr < 8 corner drops to scalar std::fma chains. Either way each
// element sees the identical ascending-k FMA sequence as the interior
// kernel, so tile membership never changes a value.
void edge_kernel_avx2(std::size_t kc, double alpha, const double* ap,
                      std::size_t a_stride, const double* bp, double* c,
                      std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (nr == kNR) {
    for (std::size_t i = 0; i < mr; ++i) {
      __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kc; ++k) {
        const __m256d a = _mm256_broadcast_sd(ap + k * a_stride + i);
        lo = _mm256_fmadd_pd(a, _mm256_loadu_pd(bp + k * kNR), lo);
        hi = _mm256_fmadd_pd(a, _mm256_loadu_pd(bp + k * kNR + 4), hi);
      }
      const __m256d valpha = _mm256_set1_pd(alpha);
      double* crow = c + i * ldc;
      _mm256_storeu_pd(crow,
                       _mm256_fmadd_pd(valpha, lo, _mm256_loadu_pd(crow)));
      _mm256_storeu_pd(
          crow + 4, _mm256_fmadd_pd(valpha, hi, _mm256_loadu_pd(crow + 4)));
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < kc; ++k)
        acc = std::fma(ap[k * a_stride + i], bp[k * kNR + j], acc);
      c[i * ldc + j] = std::fma(alpha, acc, c[i * ldc + j]);
    }
  }
}

}  // namespace

void micro_kernel_avx2(std::size_t kc, double alpha, const double* ap,
                       std::size_t a_stride, const double* bp, double* c,
                       std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr != kMR || nr != kNR) {
    edge_kernel_avx2(kc, alpha, ap, a_stride, bp, c, ldc, mr, nr);
    return;
  }
  // 6×8 interior tile: 12 accumulators (2 ymm per row), 2 B loads, 1 A
  // broadcast per row per k step.
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
  __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
  __m256d a40 = _mm256_setzero_pd(), a41 = _mm256_setzero_pd();
  __m256d a50 = _mm256_setzero_pd(), a51 = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const double* arow = ap + k * a_stride;
    const __m256d b0 = _mm256_loadu_pd(bp + k * kNR);
    const __m256d b1 = _mm256_loadu_pd(bp + k * kNR + 4);
    __m256d a;
    a = _mm256_broadcast_sd(arow + 0);
    a00 = _mm256_fmadd_pd(a, b0, a00);
    a01 = _mm256_fmadd_pd(a, b1, a01);
    a = _mm256_broadcast_sd(arow + 1);
    a10 = _mm256_fmadd_pd(a, b0, a10);
    a11 = _mm256_fmadd_pd(a, b1, a11);
    a = _mm256_broadcast_sd(arow + 2);
    a20 = _mm256_fmadd_pd(a, b0, a20);
    a21 = _mm256_fmadd_pd(a, b1, a21);
    a = _mm256_broadcast_sd(arow + 3);
    a30 = _mm256_fmadd_pd(a, b0, a30);
    a31 = _mm256_fmadd_pd(a, b1, a31);
    a = _mm256_broadcast_sd(arow + 4);
    a40 = _mm256_fmadd_pd(a, b0, a40);
    a41 = _mm256_fmadd_pd(a, b1, a41);
    a = _mm256_broadcast_sd(arow + 5);
    a50 = _mm256_fmadd_pd(a, b0, a50);
    a51 = _mm256_fmadd_pd(a, b1, a51);
  }
  const __m256d valpha = _mm256_set1_pd(alpha);
  const auto store_row = [&](double* crow, __m256d lo, __m256d hi) {
    _mm256_storeu_pd(crow,
                     _mm256_fmadd_pd(valpha, lo, _mm256_loadu_pd(crow)));
    _mm256_storeu_pd(crow + 4,
                     _mm256_fmadd_pd(valpha, hi, _mm256_loadu_pd(crow + 4)));
  };
  store_row(c + 0 * ldc, a00, a01);
  store_row(c + 1 * ldc, a10, a11);
  store_row(c + 2 * ldc, a20, a21);
  store_row(c + 3 * ldc, a30, a31);
  store_row(c + 4 * ldc, a40, a41);
  store_row(c + 5 * ldc, a50, a51);
}

}  // namespace pf::detail

#endif  // PF_HAVE_AVX2
