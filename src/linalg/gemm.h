// Dense matrix products.
//
// matmul     : C = A · B
// matmul_tn  : C = Aᵀ · B   (used for Kronecker factors  A_l = Uᵀ U)
// matmul_nt  : C = A · Bᵀ   (used for backward passes dX = dY · Wᵀ ... )
//
// All three products (and their _acc variants) run through one packed
// driver: B is packed once into NR-wide column slivers, A into MR-row tiles
// (matmul_tn skips the A pack entirely — aᵀ's column walk is already k-major
// in a's row-major storage, so the microkernel reads the source matrix
// directly), and an MR×NR register microkernel does the flops. The kernel
// and its tile geometry are chosen at runtime via src/common/cpu_features.h:
//   scalar   6×8 portable tile, no ISA assumptions
//   avx2     6×8 AVX2+FMA tile
//   avx512   8×16 AVX-512F tile
// PF_SIMD_LEVEL={scalar,avx2,avx512} in the environment pins a tier
// (PF_FORCE_SCALAR=1 remains an alias for scalar); set_simd_level() switches
// it programmatically.
//
// Threading — two call styles per kernel:
//   trailing int threads (legacy, the seed API):
//     threads == 1  — single-threaded (the seed behaviour).
//     threads  > 1  — output rows split into `threads` contiguous blocks
//                     executed on the process-global ThreadPool.
//     threads == 0  — use the process-wide default (set_gemm_threads).
//   trailing ExecContext (the hot-path API): row blocks = ctx.gemm_threads()
//     (0 = process default) dispatched on ctx.pool() — inside a pipeline
//     stage that is the runtime's own worker pool, so GEMMs respect the
//     per-stage budget instead of escaping to the global pool.
//
// Determinism: within one SIMD level, results are bitwise identical for
// every thread count, pool, and call style — each output element
// accumulates its k terms in ascending order no matter how the rows are
// partitioned or how A is addressed. Across SIMD levels results may differ
// in the last ulps (the FMA paths fuse each multiply-add into one rounding;
// the scalar path rounds twice), so cross-ISA comparisons need an epsilon,
// not equality — see the GemmSimd tests.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

class ExecContext;

// Process-wide default used when a kernel is called with threads == 0.
// n <= 1 selects the serial path. Since the ExecContext refactor the storage
// lives on the process-default ExecContext (src/common/exec_context.h);
// these remain as thin aliases of ExecContext::set_default_gemm_threads /
// default_gemm_threads for the seed-era call sites.
void set_gemm_threads(int n);
int gemm_threads();

// Resolves the `threads` convention every parallel linalg/K-FAC entry point
// shares: 0 = the set_gemm_threads global knob, floor of 1. Feed the result
// straight to ThreadPool::parallel_for (which already runs inline for one
// chunk and clamps to the index range).
std::size_t resolve_gemm_threads(int threads);

// C = A(M×K) · B(K×N).
Matrix matmul(const Matrix& a, const Matrix& b, int threads = 0);

// C = Aᵀ(M×K)ᵀ=(K×M) · B(M... ); precisely: a is (M×K), b is (M×N),
// result is (K×N) = aᵀ·b.
Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads = 0);

// a is (M×K), b is (N×K), result is (M×N) = a·bᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads = 0);

// In-place accumulating variants: c += alpha * product. Shapes must match.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                double alpha = 1.0, int threads = 0);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);

// ExecContext overloads: identical math, but row blocks follow
// ctx.gemm_threads() and dispatch on ctx.pool() — the per-stage worker
// budget inside the pipeline runtime. Bitwise identical to the int-threads
// forms at every setting.
Matrix matmul(const Matrix& a, const Matrix& b, const ExecContext& ctx);
Matrix matmul_tn(const Matrix& a, const Matrix& b, const ExecContext& ctx);
Matrix matmul_nt(const Matrix& a, const Matrix& b, const ExecContext& ctx);
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                const ExecContext& ctx);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   const ExecContext& ctx);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c, double alpha,
                   const ExecContext& ctx);

// y = A·x for a vector x (len = cols). Result length = rows.
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

}  // namespace pf
