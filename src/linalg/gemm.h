// Dense matrix products.
//
// matmul     : C = A · B
// matmul_tn  : C = Aᵀ · B   (used for Kronecker factors  A_l = Uᵀ U)
// matmul_nt  : C = A · Bᵀ   (used for backward passes dX = dY · Wᵀ ... )
//
// All kernels are cache-blocked implementations; accuracy over speed, but
// fast enough to train the scaled-down BERT in the convergence benchmark.
//
// Threading: every kernel takes a trailing `threads` argument.
//   threads == 1  — the serial reference kernel (the seed behaviour).
//   threads  > 1  — output rows are split into `threads` contiguous blocks
//                   executed on the shared ThreadPool. Each output element is
//                   accumulated in the same order as the serial kernel, so
//                   results are bitwise identical for every thread count.
//   threads == 0  — use the process-wide default (set_gemm_threads), which
//                   starts at 1.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

// Process-wide default used when a kernel is called with threads == 0.
// n <= 1 selects the serial path.
void set_gemm_threads(int n);
int gemm_threads();

// C = A(M×K) · B(K×N).
Matrix matmul(const Matrix& a, const Matrix& b, int threads = 0);

// C = Aᵀ(M×K)ᵀ=(K×M) · B(M... ); precisely: a is (M×K), b is (M×N),
// result is (K×N) = aᵀ·b.
Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads = 0);

// a is (M×K), b is (N×K), result is (M×N) = a·bᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads = 0);

// In-place accumulating variants: c += alpha * product. Shapes must match.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                double alpha = 1.0, int threads = 0);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);

// y = A·x for a vector x (len = cols). Result length = rows.
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

}  // namespace pf
