// Dense matrix products.
//
// matmul     : C = A · B
// matmul_tn  : C = Aᵀ · B   (used for Kronecker factors  A_l = Uᵀ U)
// matmul_nt  : C = A · Bᵀ   (used for backward passes dX = dY · Wᵀ ... )
//
// All three products (and their _acc variants) run through one packed
// driver: B is packed once into 8-wide column slivers, A into 6-row tiles,
// and a 6×8 register microkernel does the flops. The microkernel is chosen
// at runtime via src/common/cpu_features.h — an AVX2+FMA kernel on hosts
// (and builds) that support it, a scalar twin with identical blocking
// everywhere else. PF_FORCE_SCALAR=1 in the environment pins the scalar
// path; set_simd_level() switches it programmatically.
//
// Threading: every kernel takes a trailing `threads` argument.
//   threads == 1  — single-threaded (the seed behaviour).
//   threads  > 1  — output rows are split into `threads` contiguous blocks
//                   executed on the shared ThreadPool.
//   threads == 0  — use the process-wide default (set_gemm_threads), which
//                   starts at 1.
//
// Determinism: within one SIMD level, results are bitwise identical for
// every thread count — each output element accumulates its k terms in
// ascending order no matter how the rows are partitioned. Across SIMD
// levels results may differ in the last ulps (the AVX2 path fuses each
// multiply-add into one rounding; the scalar path rounds twice), so
// cross-ISA comparisons need an epsilon, not equality — see the GemmSimd
// tests.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

// Process-wide default used when a kernel is called with threads == 0.
// n <= 1 selects the serial path. Since the ExecContext refactor the storage
// lives on the process-default ExecContext (src/common/exec_context.h);
// these remain as thin aliases of ExecContext::set_default_gemm_threads /
// default_gemm_threads for the seed-era call sites.
void set_gemm_threads(int n);
int gemm_threads();

// Resolves the `threads` convention every parallel linalg/K-FAC entry point
// shares: 0 = the set_gemm_threads global knob, floor of 1. Feed the result
// straight to ThreadPool::parallel_for (which already runs inline for one
// chunk and clamps to the index range).
std::size_t resolve_gemm_threads(int threads);

// C = A(M×K) · B(K×N).
Matrix matmul(const Matrix& a, const Matrix& b, int threads = 0);

// C = Aᵀ(M×K)ᵀ=(K×M) · B(M... ); precisely: a is (M×K), b is (M×N),
// result is (K×N) = aᵀ·b.
Matrix matmul_tn(const Matrix& a, const Matrix& b, int threads = 0);

// a is (M×K), b is (N×K), result is (M×N) = a·bᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b, int threads = 0);

// In-place accumulating variants: c += alpha * product. Shapes must match.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                double alpha = 1.0, int threads = 0);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0, int threads = 0);

// y = A·x for a vector x (len = cols). Result length = rows.
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

}  // namespace pf
