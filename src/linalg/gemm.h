// Dense matrix products.
//
// matmul     : C = A · B
// matmul_tn  : C = Aᵀ · B   (used for Kronecker factors  A_l = Uᵀ U)
// matmul_nt  : C = A · Bᵀ   (used for backward passes dX = dY · Wᵀ ... )
//
// All kernels are cache-blocked single-threaded implementations; accuracy
// over speed, but fast enough to train the scaled-down BERT in the
// convergence benchmark.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

// C = A(M×K) · B(K×N).
Matrix matmul(const Matrix& a, const Matrix& b);

// C = Aᵀ(M×K)ᵀ=(K×M) · B(M... ); precisely: a is (M×K), b is (M×N),
// result is (K×N) = aᵀ·b.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

// a is (M×K), b is (N×K), result is (M×N) = a·bᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

// In-place accumulating variants: c += alpha * product. Shapes must match.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c,
                double alpha = 1.0);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c,
                   double alpha = 1.0);

// y = A·x for a vector x (len = cols). Result length = rows.
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

}  // namespace pf
