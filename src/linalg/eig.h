// Symmetric eigendecomposition via the Jacobi method with the cyclic-by-
// ROUNDS (round-robin / Brent–Luk) pivot ordering.
//
// Needed by the Shampoo optimizer (paper §5: Shampoo requires an
// eigendecomposition per Kronecker-factored matrix, which is exactly the
// "extra work" PipeFisher would split across bubbles) and useful for
// spectral diagnostics of K-FAC factors.
//
// Pivot order & threading: each sweep runs n-1 tournament rounds of ⌊n/2⌋
// DISJOINT pivots; a round's rotation angles all come from the current
// matrix (disjoint 2×2 pivot blocks), and the combined update A ← JᵀAJ is
// applied in two element-parallel phases (rows, then columns fused with
// the eigenvector update) — every element is written exactly once per
// phase, so any thread partition of the pairs produces identical bits,
// and a round costs TWO pool dispatches instead of one per rotation
// (O(n) dispatches per sweep, down from the fused-rotation scheme's
// O(n²)). The rounds ordering is used at EVERY size and thread count, so
// serial and parallel execution agree bit for bit (EigThreads tests).
// sym_matrix_function shards output rows, keeping each coordinate's
// eigenvalue accumulation in ascending order (also bitwise neutral; one
// dispatch total, so no cutoff needed).
#pragma once

#include "src/common/exec_context.h"
#include "src/linalg/matrix.h"

namespace pf {

struct EigResult {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column i is the eigenvector of values[i]
};

// Jacobi eigenvalue iteration for a symmetric matrix. Converges to machine
// precision for modest sizes (the Kronecker-factor regime).
//
// `parallel_cutoff`: matrices below this order run the rounds with serial
// dispatch even under a threaded context — a round's two dispatches cover
// O(n²) work, so the break-even sits far lower than the old per-rotation
// scheme's n ≈ 512, but tiny factors still lose to the dispatch overhead.
// The default 128 is an estimate (≈2n² flops per dispatch crosses pool
// overhead around n ~ 10²; the cgroup-limited dev container cannot
// measure wall-clock break-even — re-measure on real cores, see ROADMAP).
// The cutoff changes DISPATCH only, never the pivot order, so results are
// bitwise identical either way (tests pass 0 to force pool dispatch on
// small matrices).
EigResult sym_eig(const Matrix& m, int max_sweeps = 64, double tol = 1e-12,
                  const ExecContext& ctx = ExecContext::defaults(),
                  std::size_t parallel_cutoff = 128);

// Rebuilds V·diag(f(λ))·Vᵀ — used for inverse p-th roots in Shampoo
// (f(λ) = (λ+ε)^(-1/p)) and for spectral floors.
Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f,
                           const ExecContext& ctx = ExecContext::defaults());

// Convenience: (m + eps·I)^(-1/p) for symmetric PSD m.
Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps,
                            const ExecContext& ctx = ExecContext::defaults());

}  // namespace pf
