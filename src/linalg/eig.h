// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed by the Shampoo optimizer (paper §5: Shampoo requires an
// eigendecomposition per Kronecker-factored matrix, which is exactly the
// "extra work" PipeFisher would split across bubbles) and useful for
// spectral diagnostics of K-FAC factors.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

struct EigResult {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column i is the eigenvector of values[i]
};

// Jacobi eigenvalue iteration for a symmetric matrix. Converges to machine
// precision for modest sizes (the Kronecker-factor regime).
EigResult sym_eig(const Matrix& m, int max_sweeps = 64, double tol = 1e-12);

// Rebuilds V·diag(f(λ))·Vᵀ — used for inverse p-th roots in Shampoo
// (f(λ) = (λ+ε)^(-1/p)) and for spectral floors.
Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f);

// Convenience: (m + eps·I)^(-1/p) for symmetric PSD m.
Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps);

}  // namespace pf
