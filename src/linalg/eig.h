// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed by the Shampoo optimizer (paper §5: Shampoo requires an
// eigendecomposition per Kronecker-factored matrix, which is exactly the
// "extra work" PipeFisher would split across bubbles) and useful for
// spectral diagnostics of K-FAC factors.
//
// Threading: each Jacobi rotation's O(n) row/column/eigenvector updates are
// elementwise-independent, so (above `parallel_cutoff`) they fan out over
// the ExecContext with the 2×2 pivot block replayed serially in the seed's
// phase order — results are bitwise identical to serial for every thread
// count (EigThreads tests). sym_matrix_function shards output rows, keeping
// each coordinate's eigenvalue accumulation in ascending order (also
// bitwise neutral; one dispatch total, so no cutoff needed).
#pragma once

#include "src/common/exec_context.h"
#include "src/linalg/matrix.h"

namespace pf {

struct EigResult {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column i is the eigenvector of values[i]
};

// Jacobi eigenvalue iteration for a symmetric matrix. Converges to machine
// precision for modest sizes (the Kronecker-factor regime).
//
// `parallel_cutoff`: matrices below this order run the rotations serially
// even under a threaded context. Cyclic Jacobi can only parallelize inside
// one rotation (rotations are sequential), so each of the n(n-1)/2
// rotations per sweep pays a pool dispatch for O(n) fused work — measured
// break-even is around n ≈ 512; below that the dispatch overhead dominates
// and threading slows the sweep down. Results are bitwise identical either
// way (tests pass 0 to force the parallel path on small matrices). A
// rounds-based parallel Jacobi (n/2 disjoint pivots per dispatch) would
// move the break-even down but reorders rotations — see ROADMAP.
EigResult sym_eig(const Matrix& m, int max_sweeps = 64, double tol = 1e-12,
                  const ExecContext& ctx = ExecContext::defaults(),
                  std::size_t parallel_cutoff = 512);

// Rebuilds V·diag(f(λ))·Vᵀ — used for inverse p-th roots in Shampoo
// (f(λ) = (λ+ε)^(-1/p)) and for spectral floors.
Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f,
                           const ExecContext& ctx = ExecContext::defaults());

// Convenience: (m + eps·I)^(-1/p) for symmetric PSD m.
Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps,
                            const ExecContext& ctx = ExecContext::defaults());

}  // namespace pf
