// Cholesky factorization and symmetric positive-definite inversion.
//
// K-FAC inverts its Kronecker factors A_l, B_l (symmetric PSD + damping)
// with exactly this pair of operations — the paper calls
// torch.linalg.cholesky() followed by torch.linalg.cholesky_inverse().
//
// The factorization is right-looking and blocked (64-wide panels): the panel
// solve and trailing rank-k update parallelize over rows, and
// cholesky_inverse fans its independent column solves the same way. Two call
// styles, as in gemm.h: a trailing `int threads` (1 = serial, 0 = the
// process-wide set_gemm_threads default; dispatches on the process-global
// pool) and a trailing ExecContext (row blocks = ctx.gemm_threads() on
// ctx.pool() — the per-stage worker budget inside the pipeline runtime).
// Results are bitwise identical for every thread count, pool and call style.
#pragma once

#include <optional>

#include "src/linalg/matrix.h"

namespace pf {

class ExecContext;

// Lower-triangular L with L·Lᵀ = m. Throws pf::Error if m is not
// (numerically) positive definite or not square.
Matrix cholesky(const Matrix& m, int threads = 0);

// Same, but returns nullopt instead of throwing on a non-PD matrix.
std::optional<Matrix> try_cholesky(const Matrix& m, int threads = 0);

// Solve L·y = b (forward substitution), L lower-triangular.
std::vector<double> forward_substitute(const Matrix& l,
                                       const std::vector<double>& b);

// Solve Lᵀ·x = y (back substitution), L lower-triangular.
std::vector<double> back_substitute(const Matrix& l,
                                    const std::vector<double>& y);

// Solve (L·Lᵀ)·x = b.
std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b);

// Full inverse (L·Lᵀ)⁻¹ from the factor L (torch.cholesky_inverse analog).
Matrix cholesky_inverse(const Matrix& l, int threads = 0);

// Convenience: (m + damping·I)⁻¹ for symmetric PSD m via Cholesky.
Matrix spd_inverse(const Matrix& m, double damping = 0.0, int threads = 0);

// ExecContext overloads: identical math on ctx.gemm_threads() row blocks /
// column chunks dispatched on ctx.pool().
Matrix cholesky(const Matrix& m, const ExecContext& ctx);
std::optional<Matrix> try_cholesky(const Matrix& m, const ExecContext& ctx);
Matrix cholesky_inverse(const Matrix& l, const ExecContext& ctx);
Matrix spd_inverse(const Matrix& m, double damping, const ExecContext& ctx);

// m += eps·I in place.
void add_diagonal(Matrix& m, double eps);

}  // namespace pf
