#include "src/linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace pf {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  PF_CHECK(!rows.empty());
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    PF_CHECK(rows[r].size() == cols) << "ragged row " << r;
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  PF_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  PF_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::axpby(double a, const Matrix& o, double b) {
  PF_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] = a * data_[i] + b * o.data_[i];
  return *this;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::apply(const std::function<double(double)>& f) {
  for (auto& v : data_) v = f(v);
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

double max_abs_diff(const Matrix& a, const Matrix& b) {
  PF_CHECK(a.same_shape(b));
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
  return m;
}

}  // namespace pf
