// Dense row-major matrix of doubles — the numeric workhorse of the library.
//
// Deliberately simple: value semantics, bounds-checked access, and a handful
// of elementwise helpers. Heavy kernels (GEMM, Cholesky) live in gemm.h and
// cholesky.h as free functions.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace pf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Adopts `buf` as the backing storage, resized to rows*cols — existing
  // capacity is reused, which is how ArenaAllocator (common/arena.h) hands
  // recycled buffers back without reallocating. Element values are
  // whatever the resize left in place; callers overwrite them.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double>&& buf)
      : rows_(rows), cols_(cols), data_(std::move(buf)) {
    data_.resize(rows_ * cols_);
  }

  // Steals the backing storage (capacity intact), leaving the matrix empty
  // (0×0) — the other half of the arena hand-off.
  std::vector<double> take_data() {
    std::vector<double> out = std::move(data_);
    data_ = std::vector<double>();
    rows_ = 0;
    cols_ = 0;
    return out;
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  static Matrix identity(std::size_t n);
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double stddev = 1.0);
  // Build from nested initializer-like data (row major).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    PF_ASSERT(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    PF_ASSERT(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  // Elementwise in-place ops (shapes must match).
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  // this = this * a + o * b (axpby).
  Matrix& axpby(double a, const Matrix& o, double b);
  void fill(double v);
  void apply(const std::function<double(double)>& f);

  // Reductions.
  double frobenius_norm() const;
  double max_abs() const;
  double sum() const;

  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

// Max elementwise absolute difference, for test assertions.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace pf
