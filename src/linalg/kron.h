// Kronecker-product utilities.
//
// K-FAC's core identity — (A ⊗ B)⁻¹ vec(X) = vec(B⁻¹ X A⁻¹) — is what lets
// it avoid ever materializing the P_l × P_l block. These helpers exist to
// *test* that identity against the materialized product on small sizes and
// to express vec/unvec conventions in one place.
//
// Convention: vec(·) stacks COLUMNS (the paper's convention), and the
// parameter vector of a layer with weight W (d_out × d_in) is vec(Wᵀ)… we
// store gradients as G (d_out × d_in) and use vec_cols on G so that
// ĝ = (A ⊗ B)⁻¹ g  ⇔  Ĝ = B⁻¹ G A⁻¹.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

// Dense Kronecker product a ⊗ b.
Matrix kron(const Matrix& a, const Matrix& b);

// Column-stacking vectorization: for M (r×c), out[j*r + i] = M(i,j).
std::vector<double> vec_cols(const Matrix& m);

// Inverse of vec_cols.
Matrix unvec_cols(const std::vector<double>& v, std::size_t rows,
                  std::size_t cols);

// Computes (A ⊗ B) vec(X) without materializing the product, via B·X·Aᵀ.
// A is (n×n), B is (m×m), X is (m×n); result is vec_cols of (m×n).
std::vector<double> kron_matvec(const Matrix& a, const Matrix& b,
                                const Matrix& x);

}  // namespace pf
