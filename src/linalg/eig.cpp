#include "src/linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pf {

EigResult sym_eig(const Matrix& m, int max_sweeps, double tol) {
  PF_CHECK(m.rows() == m.cols()) << "sym_eig needs a square matrix";
  const std::size_t n = m.rows();
  Matrix a = m;
  // Symmetrize defensively.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p), aqq = a(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) < a(y, y);
  });
  EigResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    out.values[idx] = a(order[idx], order[idx]);
    for (std::size_t k = 0; k < n; ++k)
      out.vectors(k, idx) = v(k, order[idx]);
  }
  return out;
}

Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f) {
  const std::size_t n = eig.values.size();
  PF_CHECK(eig.vectors.rows() == n && eig.vectors.cols() == n);
  Matrix out(n, n, 0.0);
  for (std::size_t e = 0; e < n; ++e) {
    const double fe = f(eig.values[e]);
    if (fe == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double vie = eig.vectors(i, e) * fe;
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += vie * eig.vectors(j, e);
    }
  }
  return out;
}

Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps) {
  PF_CHECK(p >= 1.0);
  PF_CHECK(eps > 0.0);
  const auto eig = sym_eig(m);
  return sym_matrix_function(eig, [p, eps](double lambda) {
    return std::pow(std::max(lambda, 0.0) + eps, -1.0 / p);
  });
}

}  // namespace pf
