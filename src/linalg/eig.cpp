#include "src/linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pf {

namespace {

// One round of the round-robin (circle-method) pivot tournament: ⌊n'/2⌋
// disjoint pairs covering every index at most once; n'-1 rounds visit all
// n(n-1)/2 pivots exactly once per sweep. Pairs touching the padding
// element (odd n) are dropped. Deterministic in (n, round).
std::vector<std::pair<std::size_t, std::size_t>> jacobi_round_pairs(
    std::size_t n, std::size_t round) {
  const std::size_t np = n + (n % 2);  // pad to even
  const std::size_t ring = np - 1;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(np / 2);
  auto player = [&](std::size_t slot) { return (round + slot) % ring + 1; };
  // Fixed player 0 meets the rotating ring head; the rest pair up
  // symmetrically around the ring.
  {
    const std::size_t q = player(ring - 1);
    if (q < n) pairs.emplace_back(0, q);
  }
  for (std::size_t i = 0; i + 2 < ring; i += 1) {
    const std::size_t p = player(i);
    const std::size_t q = player(ring - 2 - i);
    if (i >= ring - 2 - i) break;  // symmetric half only
    if (p < n && q < n) pairs.emplace_back(std::min(p, q), std::max(p, q));
  }
  return pairs;
}

}  // namespace

EigResult sym_eig(const Matrix& m, int max_sweeps, double tol,
                  const ExecContext& ctx, std::size_t parallel_cutoff) {
  PF_CHECK(m.rows() == m.cols()) << "sym_eig needs a square matrix";
  const std::size_t n = m.rows();
  Matrix a = m;
  // Symmetrize defensively.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  Matrix v = Matrix::identity(n);

  // Below the cutoff the pool dispatches cost more than the O(n²) work of
  // a round (see eig.h); results are bitwise identical either way, so
  // clamp to serial dispatch for small factors. The PIVOT ORDER is the
  // round-robin tournament at every size and thread count — that is what
  // keeps serial and parallel execution bit-identical.
  const ExecContext rctx = n >= parallel_cutoff ? ctx : ExecContext::serial();
  const std::size_t rounds_per_sweep = n + (n % 2) - 1;

  std::vector<double> cs, ss;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t round = 0; round < rounds_per_sweep; ++round) {
      const auto pairs = jacobi_round_pairs(n, round);
      const std::size_t np = pairs.size();
      if (np == 0) continue;
      // Rotation angles from the CURRENT matrix: the pivot 2×2 blocks of a
      // round are disjoint, so all angles are well-defined together (the
      // Brent–Luk parallel ordering).
      cs.assign(np, 1.0);
      ss.assign(np, 0.0);
      for (std::size_t k = 0; k < np; ++k) {
        const auto [p, q] = pairs[k];
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;  // identity rotation
        const double app = a(p, p), aqq = a(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        cs[k] = 1.0 / std::sqrt(t * t + 1.0);
        ss[k] = t * cs[k];
      }
      // Apply A ← JᵀAJ with J = Π J(p_k, q_k, θ_k) in two element-parallel
      // phases: the row phase writes only rows {p_k, q_k} (disjoint across
      // the round's pairs), the column phase only those columns. Every
      // element is written exactly once per phase from previous-phase
      // values, so any thread partition of the pairs produces identical
      // bits — ONE pool dispatch per phase instead of one per rotation.
      rctx.parallel_for(np, [&](std::size_t k0, std::size_t k1) {
        for (std::size_t k = k0; k < k1; ++k) {
          const auto [p, q] = pairs[k];
          const double c = cs[k], s = ss[k];
          if (s == 0.0 && c == 1.0) continue;
          for (std::size_t j = 0; j < n; ++j) {
            const double apj = a(p, j), aqj = a(q, j);
            a(p, j) = c * apj - s * aqj;
            a(q, j) = s * apj + c * aqj;
          }
        }
      });
      rctx.parallel_for(np, [&](std::size_t k0, std::size_t k1) {
        for (std::size_t k = k0; k < k1; ++k) {
          const auto [p, q] = pairs[k];
          const double c = cs[k], s = ss[k];
          if (s == 0.0 && c == 1.0) continue;
          for (std::size_t i = 0; i < n; ++i) {
            const double aip = a(i, p), aiq = a(i, q);
            a(i, p) = c * aip - s * aiq;
            a(i, q) = s * aip + c * aiq;
            const double vip = v(i, p), viq = v(i, q);
            v(i, p) = c * vip - s * viq;
            v(i, q) = s * vip + c * viq;
          }
        }
      });
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) < a(y, y);
  });
  EigResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    out.values[idx] = a(order[idx], order[idx]);
    for (std::size_t k = 0; k < n; ++k)
      out.vectors(k, idx) = v(k, order[idx]);
  }
  return out;
}

Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f,
                           const ExecContext& ctx) {
  const std::size_t n = eig.values.size();
  PF_CHECK(eig.vectors.rows() == n && eig.vectors.cols() == n);
  std::vector<double> fe(n);
  for (std::size_t e = 0; e < n; ++e) fe[e] = f(eig.values[e]);
  Matrix out(n, n, 0.0);
  // Row-sharded rank-1 accumulation: every out(i, j) sums its eigenvalue
  // terms in ascending e — the serial order — for any thread partition.
  ctx.parallel_for(n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t e = 0; e < n; ++e) {
      if (fe[e] == 0.0) continue;
      for (std::size_t i = i0; i < i1; ++i) {
        const double vie = eig.vectors(i, e) * fe[e];
        for (std::size_t j = 0; j < n; ++j)
          out(i, j) += vie * eig.vectors(j, e);
      }
    }
  });
  return out;
}

Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps,
                            const ExecContext& ctx) {
  PF_CHECK(p >= 1.0);
  PF_CHECK(eps > 0.0);
  const auto eig = sym_eig(m, 64, 1e-12, ctx);
  return sym_matrix_function(eig, [p, eps](double lambda) {
    return std::pow(std::max(lambda, 0.0) + eps, -1.0 / p);
  }, ctx);
}

}  // namespace pf
