#include "src/linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pf {

EigResult sym_eig(const Matrix& m, int max_sweeps, double tol,
                  const ExecContext& ctx, std::size_t parallel_cutoff) {
  PF_CHECK(m.rows() == m.cols()) << "sym_eig needs a square matrix";
  const std::size_t n = m.rows();
  Matrix a = m;
  // Symmetrize defensively.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  Matrix v = Matrix::identity(n);

  // Below the cutoff a rotation's O(n) update is cheaper than its pool
  // dispatch (see eig.h); results are bitwise identical either way, so
  // clamp to serial for small factors.
  const ExecContext rctx = n >= parallel_cutoff ? ctx : ExecContext::serial();

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p), aqq = a(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A and accumulate eigenvectors, fused
        // into one parallel pass. For k ∉ {p, q} the column update touches
        // only columns p/q of row k and the row update only row p/q of
        // column k — disjoint locations whose inputs the serial two-phase
        // loop also leaves untouched, so the fusion (and any thread
        // partition of k) is bitwise identical to the seed. The 2×2 pivot
        // block, where the phases do interact, is replayed serially below
        // in the seed's column-then-row order.
        rctx.parallel_for(n, [&](std::size_t k0, std::size_t k1) {
          for (std::size_t k = k0; k < k1; ++k) {
            if (k != p && k != q) {
              const double akp = a(k, p), akq = a(k, q);
              a(k, p) = c * akp - s * akq;
              a(k, q) = s * akp + c * akq;
              const double apk = a(p, k), aqk = a(q, k);
              a(p, k) = c * apk - s * aqk;
              a(q, k) = s * apk + c * aqk;
            }
            const double vkp = v(k, p), vkq = v(k, q);
            v(k, p) = c * vkp - s * vkq;
            v(k, q) = s * vkp + c * vkq;
          }
        });
        // Column phase at k = p, then k = q.
        const double app2 = a(p, p), apq2 = a(p, q);
        a(p, p) = c * app2 - s * apq2;
        a(p, q) = s * app2 + c * apq2;
        const double aqp2 = a(q, p), aqq2 = a(q, q);
        a(q, p) = c * aqp2 - s * aqq2;
        a(q, q) = s * aqp2 + c * aqq2;
        // Row phase at k = p, then k = q.
        const double apk_p = a(p, p), aqk_p = a(q, p);
        a(p, p) = c * apk_p - s * aqk_p;
        a(q, p) = s * apk_p + c * aqk_p;
        const double apk_q = a(p, q), aqk_q = a(q, q);
        a(p, q) = c * apk_q - s * aqk_q;
        a(q, q) = s * apk_q + c * aqk_q;
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) < a(y, y);
  });
  EigResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    out.values[idx] = a(order[idx], order[idx]);
    for (std::size_t k = 0; k < n; ++k)
      out.vectors(k, idx) = v(k, order[idx]);
  }
  return out;
}

Matrix sym_matrix_function(const EigResult& eig,
                           const std::function<double(double)>& f,
                           const ExecContext& ctx) {
  const std::size_t n = eig.values.size();
  PF_CHECK(eig.vectors.rows() == n && eig.vectors.cols() == n);
  std::vector<double> fe(n);
  for (std::size_t e = 0; e < n; ++e) fe[e] = f(eig.values[e]);
  Matrix out(n, n, 0.0);
  // Row-sharded rank-1 accumulation: every out(i, j) sums its eigenvalue
  // terms in ascending e — the serial order — for any thread partition.
  ctx.parallel_for(n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t e = 0; e < n; ++e) {
      if (fe[e] == 0.0) continue;
      for (std::size_t i = i0; i < i1; ++i) {
        const double vie = eig.vectors(i, e) * fe[e];
        for (std::size_t j = 0; j < n; ++j)
          out(i, j) += vie * eig.vectors(j, e);
      }
    }
  });
  return out;
}

Matrix sym_inverse_pth_root(const Matrix& m, double p, double eps,
                            const ExecContext& ctx) {
  PF_CHECK(p >= 1.0);
  PF_CHECK(eps > 0.0);
  const auto eig = sym_eig(m, 64, 1e-12, ctx);
  return sym_matrix_function(eig, [p, eps](double lambda) {
    return std::pow(std::max(lambda, 0.0) + eps, -1.0 / p);
  }, ctx);
}

}  // namespace pf
