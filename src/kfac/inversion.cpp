// Inversion work: damped Cholesky inverses of the Kronecker factors.
#include <cmath>

#include "src/common/exec_context.h"
#include "src/kfac/kfac_engine.h"
#include "src/linalg/cholesky.h"

namespace pf {

namespace {

// (block-diag_k(m) + damping·I)⁻¹: inverts the k diagonal blocks
// independently and zeroes all cross-block entries (Appendix A.2).
// `ctx` reaches the blocked Cholesky + column solves (cholesky.h).
Matrix block_diag_inverse(const Matrix& m, double damping, std::size_t k,
                          const ExecContext& ctx) {
  const std::size_t n = m.rows();
  if (k <= 1 || k >= n) {
    if (k >= n && n > 0) {
      // Fully diagonal preconditioning.
      Matrix inv(n, n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        inv(i, i) = 1.0 / (m(i, i) + damping);
      return inv;
    }
    return spd_inverse(m, damping, ctx);
  }
  Matrix inv(n, n, 0.0);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t start = 0;
  for (std::size_t b = 0; b < k; ++b) {
    const std::size_t size = base + (b < extra ? 1 : 0);
    if (size == 0) continue;
    Matrix block(size, size);
    for (std::size_t i = 0; i < size; ++i)
      for (std::size_t j = 0; j < size; ++j)
        block(i, j) = m(start + i, start + j);
    const Matrix binv = spd_inverse(block, damping, ctx);
    for (std::size_t i = 0; i < size; ++i)
      for (std::size_t j = 0; j < size; ++j)
        inv(start + i, start + j) = binv(i, j);
    start += size;
  }
  return inv;
}

}  // namespace

namespace {

// trace(corrected_x(decay)) without materializing the corrected matrix:
// summing the diagonal scaled by the shared corrected_scale() reproduces
// trace() over the materialized copy bit for bit (same per-element
// multiply, same ascending-index sum).
double corrected_trace(const Matrix& ema, double decay, std::size_t n) {
  const double scale = corrected_scale(decay, n);
  double t = 0.0;
  for (std::size_t i = 0; i < ema.rows(); ++i) t += ema(i, i) * scale;
  return t;
}

}  // namespace

void KfacEngine::update_inverse_factor(std::size_t i, bool b_side) {
  PF_CHECK(i < states_.size());
  auto& st = states_[i];
  if (!st.has_curvature()) return;
  const double gamma = std::sqrt(opts_.damping);
  // Both sides recompute the π-correction (it couples the A and B
  // damping), but from the EMAs' diagonals only — materializing the full
  // corrected matrix is reserved for the side actually being inverted, so
  // splitting the factor pair into two bubble-sized work items costs no
  // extra O(n²) copies and stays bit-identical to the fused loop below.
  double damp_a = gamma, damp_b = gamma;
  if (opts_.pi_correction) {
    const double mean_tr_a =
        corrected_trace(st.a_ema, opts_.ema_decay, st.curvature_updates) /
        static_cast<double>(st.a_ema.rows());
    const double mean_tr_b =
        corrected_trace(st.b_ema, opts_.ema_decay, st.curvature_updates) /
        static_cast<double>(st.b_ema.rows());
    // Guard against degenerate traces early in training.
    const double pi = std::sqrt(std::max(mean_tr_a, 1e-12) /
                                std::max(mean_tr_b, 1e-12));
    damp_a = gamma * pi;
    damp_b = gamma / pi;
  }
  if (!b_side) {
    st.a_inv = block_diag_inverse(st.corrected_a(opts_.ema_decay), damp_a,
                                  opts_.block_diag_k, exec_);
  } else {
    st.b_inv = block_diag_inverse(st.corrected_b(opts_.ema_decay), damp_b,
                                  opts_.block_diag_k, exec_);
    // The B side completes the pair: only now may precondition() treat the
    // inverses as fresh.
    ++st.inverse_updates;
  }
}

void KfacEngine::update_inverses() {
  for_each_layer([&](std::size_t i) {
    update_inverse_factor(i, /*b_side=*/false);
    update_inverse_factor(i, /*b_side=*/true);
  });
}

}  // namespace pf
