// Inversion work: damped Cholesky inverses of the Kronecker factors.
#include <cmath>

#include "src/kfac/kfac_engine.h"
#include "src/linalg/cholesky.h"

namespace pf {

namespace {

double trace(const Matrix& m) {
  double t = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) t += m(i, i);
  return t;
}

// (block-diag_k(m) + damping·I)⁻¹: inverts the k diagonal blocks
// independently and zeroes all cross-block entries (Appendix A.2).
// `threads` reaches the blocked Cholesky + column solves (cholesky.h).
Matrix block_diag_inverse(const Matrix& m, double damping, std::size_t k,
                          int threads) {
  const std::size_t n = m.rows();
  if (k <= 1 || k >= n) {
    if (k >= n && n > 0) {
      // Fully diagonal preconditioning.
      Matrix inv(n, n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        inv(i, i) = 1.0 / (m(i, i) + damping);
      return inv;
    }
    return spd_inverse(m, damping, threads);
  }
  Matrix inv(n, n, 0.0);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t start = 0;
  for (std::size_t b = 0; b < k; ++b) {
    const std::size_t size = base + (b < extra ? 1 : 0);
    if (size == 0) continue;
    Matrix block(size, size);
    for (std::size_t i = 0; i < size; ++i)
      for (std::size_t j = 0; j < size; ++j)
        block(i, j) = m(start + i, start + j);
    const Matrix binv = spd_inverse(block, damping, threads);
    for (std::size_t i = 0; i < size; ++i)
      for (std::size_t j = 0; j < size; ++j)
        inv(start + i, start + j) = binv(i, j);
    start += size;
  }
  return inv;
}

}  // namespace

void KfacEngine::update_inverses() {
  const double gamma = std::sqrt(opts_.damping);
  for_each_layer([&](std::size_t i) {
    auto& st = states_[i];
    if (!st.has_curvature()) return;
    const Matrix a = st.corrected_a(opts_.ema_decay);
    const Matrix b = st.corrected_b(opts_.ema_decay);

    double damp_a = gamma, damp_b = gamma;
    if (opts_.pi_correction) {
      const double mean_tr_a =
          trace(a) / static_cast<double>(a.rows());
      const double mean_tr_b =
          trace(b) / static_cast<double>(b.rows());
      // Guard against degenerate traces early in training.
      const double pi = std::sqrt(std::max(mean_tr_a, 1e-12) /
                                  std::max(mean_tr_b, 1e-12));
      damp_a = gamma * pi;
      damp_b = gamma / pi;
    }
    st.a_inv =
        block_diag_inverse(a, damp_a, opts_.block_diag_k, opts_.gemm_threads);
    st.b_inv =
        block_diag_inverse(b, damp_b, opts_.block_diag_k, opts_.gemm_threads);
    ++st.inverse_updates;
  });
}

}  // namespace pf
