// Per-layer Kronecker factor state for K-FAC.
//
// Holds the EMA estimates of A_l = ⟨a_l a_lᵀ⟩ and B_l = ⟨e_l e_lᵀ⟩ and their
// damped inverses. The engine (curvature.h / inversion.h / precondition.h)
// performs exactly the three kinds of work PipeFisher schedules into
// bubbles.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

struct KfacFactorState {
  Matrix a_ema;  // [d_in × d_in]
  Matrix b_ema;  // [d_out × d_out]
  Matrix a_inv;
  Matrix b_inv;
  std::size_t curvature_updates = 0;
  std::size_t inverse_updates = 0;

  bool has_curvature() const { return curvature_updates > 0; }
  bool has_inverse() const { return inverse_updates > 0; }

  // Bias-corrected EMA values (Adam-style correction for the warm-up).
  Matrix corrected_a(double decay) const;
  Matrix corrected_b(double decay) const;
};

}  // namespace pf
