// Per-layer Kronecker factor state for K-FAC.
//
// Holds the EMA estimates of A_l = ⟨a_l a_lᵀ⟩ and B_l = ⟨e_l e_lᵀ⟩ and their
// damped inverses. The engine (curvature.h / inversion.h / precondition.h)
// performs exactly the three kinds of work PipeFisher schedules into
// bubbles.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

struct KfacFactorState {
  Matrix a_ema;  // [d_in × d_in]
  Matrix b_ema;  // [d_out × d_out]
  Matrix a_inv;
  Matrix b_inv;
  std::size_t curvature_updates = 0;
  std::size_t inverse_updates = 0;

  // Per-micro-batch curvature accumulation (PipeFisher's curvature work is
  // one task per factor per micro-batch): pending_a sums Xᵀ·X over the
  // micros of one step, pending_b sums N_m·dYᵀ·dY; commit averages them
  // into the EMA. Contributions MUST be folded in ascending micro order —
  // the engine's caller pins this (serially in KfacOptimizer's micro hook,
  // via dependency chains in the pipeline runtime) so both paths produce
  // bit-identical factors.
  Matrix pending_a;
  Matrix pending_b;
  double pending_rows = 0.0;    // Σ_m N_m (token rows seen by A)
  std::size_t pending_micros = 0;  // micro count folded into pending_b

  bool has_curvature() const { return curvature_updates > 0; }
  bool has_inverse() const { return inverse_updates > 0; }

  // Bias-corrected EMA values (Adam-style correction for the warm-up).
  Matrix corrected_a(double decay) const;
  Matrix corrected_b(double decay) const;
};

// The elementwise scale of the bias correction, 1 / (1 − decay^n) — the
// single definition shared by corrected_a/corrected_b and by consumers
// that only need a corrected trace (inversion's π-damping) and must match
// the materialized matrices bit for bit. Requires n > 0.
double corrected_scale(double decay, std::size_t n);

}  // namespace pf
