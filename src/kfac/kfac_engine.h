// K-FAC engine over a set of Linear layers: curvature, inversion and
// preconditioning — the numeric counterparts of the three work kinds
// PipeFisher assigns to pipeline bubbles.
//
// Conventions (weight stored [d_in × d_out], y = x·W + b, N = rows):
//   A_l = Xᵀ·X / N                        (activation second moment)
//   B_l = N · dYᵀ·dY                      (error second moment; dY holds the
//                                          mean-loss gradient, so ×N undoes
//                                          one 1/N to estimate the empirical
//                                          Fisher of per-example errors)
//   dŴ  = (A_l + π γ I)⁻¹ · dW · (B_l + γ/π I)⁻¹
// with Tikhonov damping γ = sqrt(damping) split by the standard π-correction
// π = sqrt( (tr A/d_in) / (tr B/d_out) ) of Martens & Grosse.
#pragma once

#include <functional>
#include <vector>

#include "src/kfac/factor_state.h"
#include "src/nn/linear.h"

namespace pf {
class ThreadPool;
}  // namespace pf

namespace pf {

struct KfacOptions {
  double ema_decay = 0.95;
  double damping = 1e-3;
  bool pi_correction = true;
  // Appendix A.2: approximate each factor by a k-block diagonal matrix so
  // very wide layers (d_ff ~ 16384) stay invertible in bubble-sized chunks.
  // k = 1 is exact K-FAC; k = dim degenerates to diagonal preconditioning.
  std::size_t block_diag_k = 1;
  // Row-block threads for the GEMM-dominated curvature and precondition
  // work. 1 = serial seed behaviour (results are bitwise identical for any
  // value; see gemm.h). 0 = follow the process-wide set_gemm_threads knob.
  int gemm_threads = 1;
  // Layer-level parallelism: each layer's curvature, inversion and
  // precondition work is independent of every other layer's, so the
  // per-layer loops dispatch across the shared ThreadPool (via an
  // ExecContext built in for_each_layer) in chunks of layers. Results are
  // bitwise identical for any value. 1 = serial seed behaviour, 0 = follow
  // the set_gemm_threads knob. Composes with gemm_threads: a layer task may
  // itself fan row blocks onto the pool (parallel_for callers help drain
  // the queue, so nesting cannot deadlock), but the two knobs compete for
  // the same cores — prefer layer_threads for many small layers,
  // gemm_threads for few wide ones.
  int layer_threads = 1;
};

class KfacEngine {
 public:
  // `pool`: the ThreadPool every GEMM row block, Cholesky panel and layer
  // fan-out of this engine dispatches on; nullptr = the process-global
  // pool (the serial KfacOptimizer's behaviour). The pipeline runtime
  // passes its own pool so bubble-filled K-FAC work never escapes the
  // `workers` budget. Bitwise neutral — pools change where blocks run,
  // never how results fold (see exec_context.h).
  KfacEngine(std::vector<Linear*> layers, const KfacOptions& opts,
             ThreadPool* pool = nullptr);

  // Curvature work: folds each layer's cached (a_l, e_l) into the factor
  // EMAs. Layers without caches (never ran backward) are skipped.
  void update_curvature();

  // Inversion work: recomputes the damped inverses from the current EMAs.
  void update_inverses();

  // Precondition work: replaces each layer's weight gradient with
  // B⁻¹-and-A⁻¹-preconditioned gradient. Layers whose inverses have never
  // been computed are left untouched (the paper's "stale inverse" rule
  // degenerates to identity preconditioning before the first inversion).
  void precondition();

  // ---- Per-factor / per-micro decomposition -------------------------------
  // The granularity PipeFisher schedules into bubbles: every method below is
  // one BubbleTask-shaped work item. The serial KfacOptimizer (with
  // per_micro_curvature) and the pipeline runtime both drive THESE methods,
  // which is what makes the two execution modes bit-identical.
  //
  // Ordering contract: for one layer, accumulate_curvature_{a,b} must be
  // called once per micro-batch in ascending micro order (the two factor
  // sides are independent of each other); commit_curvature after the last
  // micro; the inversion pair after commit (A then B — the B side bumps the
  // inverse counter); precondition_layer after inversion and after the
  // step's gradients are final. Different layers are fully independent.

  // Folds one micro-batch's a_l = x ([N×d_in]) / e_l = dy ([N×d_out]) into
  // the layer's pending factor sums.
  void accumulate_curvature_a(std::size_t i, const Matrix& x);
  void accumulate_curvature_b(std::size_t i, const Matrix& dy);
  // Averages the pending micro contributions into the factor EMAs (no-op
  // for a layer with nothing pending).
  void commit_curvature_layer(std::size_t i);
  // Recomputes one damped factor inverse from the current EMA. Call with
  // b_side = false then true; the B side increments inverse_updates.
  void update_inverse_factor(std::size_t i, bool b_side);
  // Preconditions one layer's weight gradient (stale-inverse rule applies).
  void precondition_layer(std::size_t i);

  std::size_t n_layers() const { return layers_.size(); }
  Linear* layer(std::size_t i) const;
  const KfacFactorState& state(std::size_t i) const;
  const KfacOptions& options() const { return opts_; }

 private:
  // Runs fn(i) for every layer index, serially or chunked across the
  // engine's pool according to opts_.layer_threads (see curvature.cpp).
  void for_each_layer(const std::function<void(std::size_t)>& fn);

  std::vector<Linear*> layers_;
  std::vector<KfacFactorState> states_;
  KfacOptions opts_;
  // Threads the engine's GEMMs/Choleskys: gemm_threads row blocks on the
  // injected pool (gemm.h ctx overloads).
  ExecContext exec_;
};

}  // namespace pf
