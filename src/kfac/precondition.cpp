// Precondition work: dŴ = A⁻¹ · dW · B⁻¹ (weight layout [d_in × d_out]).
#include "src/kfac/kfac_engine.h"
#include "src/linalg/gemm.h"

namespace pf {

void KfacEngine::precondition_layer(std::size_t i) {
  PF_CHECK(i < states_.size());
  auto& st = states_[i];
  if (!st.has_inverse()) return;  // stale-inverse rule: identity
  Linear* l = layers_[i];
  l->weight().g =
      matmul(matmul(st.a_inv, l->weight().g, exec_), st.b_inv, exec_);
}

void KfacEngine::precondition() {
  for_each_layer([&](std::size_t i) { precondition_layer(i); });
}

}  // namespace pf
