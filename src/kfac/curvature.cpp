// Curvature work: building the Kronecker factors from layer caches.
// Also home of the engine's layer-parallel dispatch helper.
#include "src/common/check.h"
#include "src/common/exec_context.h"
#include "src/kfac/kfac_engine.h"
#include "src/linalg/gemm.h"

namespace pf {

KfacEngine::KfacEngine(std::vector<Linear*> layers, const KfacOptions& opts)
    : layers_(std::move(layers)), opts_(opts) {
  PF_CHECK(!layers_.empty());
  PF_CHECK(opts_.ema_decay > 0.0 && opts_.ema_decay < 1.0);
  PF_CHECK(opts_.damping > 0.0);
  states_.resize(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    states_[i].a_ema = Matrix(layers_[i]->d_in(), layers_[i]->d_in(), 0.0);
    states_[i].b_ema = Matrix(layers_[i]->d_out(), layers_[i]->d_out(), 0.0);
  }
}

const KfacFactorState& KfacEngine::state(std::size_t i) const {
  PF_CHECK(i < states_.size());
  return states_[i];
}

void KfacEngine::for_each_layer(
    const std::function<void(std::size_t)>& fn) {
  // Layers are independent: chunking them across the pool cannot change any
  // per-layer result, so every layer_threads value is bitwise equivalent.
  // The fan-out rides the same ExecContext machinery as the nn stack (layer
  // chunks play the nn_threads role); layer_threads == 0 keeps its
  // documented follow-the-gemm-knob behaviour by resolving before the
  // context is built.
  const ExecContext ctx(
      static_cast<int>(resolve_gemm_threads(opts_.layer_threads)),
      opts_.gemm_threads);
  ctx.parallel_for(layers_.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

void KfacEngine::update_curvature() {
  for_each_layer([&](std::size_t i) {
    Linear* l = layers_[i];
    if (!l->has_kfac_caches()) return;
    const Matrix& x = l->cached_input();        // a_l  [N × d_in]
    const Matrix& dy = l->cached_output_grad();  // e_l  [N × d_out]
    const double n = static_cast<double>(x.rows());

    // A = XᵀX / N ; B = N·dYᵀdY (see kfac_engine.h for the scaling).
    Matrix a(l->d_in(), l->d_in(), 0.0);
    matmul_tn_acc(x, x, a, 1.0 / n, opts_.gemm_threads);
    Matrix b(l->d_out(), l->d_out(), 0.0);
    matmul_tn_acc(dy, dy, b, n, opts_.gemm_threads);

    auto& st = states_[i];
    st.a_ema.axpby(opts_.ema_decay, a, 1.0 - opts_.ema_decay);
    st.b_ema.axpby(opts_.ema_decay, b, 1.0 - opts_.ema_decay);
    ++st.curvature_updates;
  });
}

}  // namespace pf
