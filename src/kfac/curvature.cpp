// Curvature work: building the Kronecker factors from layer caches.
// Also home of the engine's layer-parallel dispatch helper.
#include "src/common/check.h"
#include "src/common/exec_context.h"
#include "src/kfac/kfac_engine.h"
#include "src/linalg/gemm.h"

namespace pf {

KfacEngine::KfacEngine(std::vector<Linear*> layers, const KfacOptions& opts,
                       ThreadPool* pool)
    : layers_(std::move(layers)),
      opts_(opts),
      exec_(/*nn_threads=*/1, opts.gemm_threads, RngPartition::kSequential,
            pool) {
  PF_CHECK(!layers_.empty());
  PF_CHECK(opts_.ema_decay > 0.0 && opts_.ema_decay < 1.0);
  PF_CHECK(opts_.damping > 0.0);
  states_.resize(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    states_[i].a_ema = Matrix(layers_[i]->d_in(), layers_[i]->d_in(), 0.0);
    states_[i].b_ema = Matrix(layers_[i]->d_out(), layers_[i]->d_out(), 0.0);
  }
}

const KfacFactorState& KfacEngine::state(std::size_t i) const {
  PF_CHECK(i < states_.size());
  return states_[i];
}

Linear* KfacEngine::layer(std::size_t i) const {
  PF_CHECK(i < layers_.size());
  return layers_[i];
}

void KfacEngine::for_each_layer(
    const std::function<void(std::size_t)>& fn) {
  // Layers are independent: chunking them across the pool cannot change any
  // per-layer result, so every layer_threads value is bitwise equivalent.
  // The fan-out rides the same ExecContext machinery as the nn stack (layer
  // chunks play the nn_threads role); layer_threads == 0 keeps its
  // documented follow-the-gemm-knob behaviour by resolving before the
  // context is built.
  const ExecContext ctx(
      static_cast<int>(resolve_gemm_threads(opts_.layer_threads)),
      opts_.gemm_threads, RngPartition::kSequential, &exec_.pool());
  ctx.parallel_for(layers_.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

void KfacEngine::accumulate_curvature_a(std::size_t i, const Matrix& x) {
  PF_CHECK(i < states_.size());
  Linear* l = layers_[i];
  PF_CHECK(x.cols() == l->d_in());
  auto& st = states_[i];
  if (st.pending_a.empty()) st.pending_a = Matrix(l->d_in(), l->d_in(), 0.0);
  // Ascending-k accumulation straight into the pending sum: micro m's
  // contribution lands element-wise after micros 0..m-1's (the caller
  // orders the calls), so the pending factor is bit-identical however the
  // micros were executed.
  matmul_tn_acc(x, x, st.pending_a, 1.0, exec_);
  st.pending_rows += static_cast<double>(x.rows());
}

void KfacEngine::accumulate_curvature_b(std::size_t i, const Matrix& dy) {
  PF_CHECK(i < states_.size());
  Linear* l = layers_[i];
  PF_CHECK(dy.cols() == l->d_out());
  auto& st = states_[i];
  if (st.pending_b.empty())
    st.pending_b = Matrix(l->d_out(), l->d_out(), 0.0);
  // dy holds the mean-loss gradient; ×N undoes one 1/N (see kfac_engine.h).
  matmul_tn_acc(dy, dy, st.pending_b, static_cast<double>(dy.rows()),
                exec_);
  ++st.pending_micros;
}

void KfacEngine::commit_curvature_layer(std::size_t i) {
  PF_CHECK(i < states_.size());
  auto& st = states_[i];
  if (st.pending_micros == 0 && st.pending_a.empty()) {
    // Nothing accumulated (layer never ran) — mirror update_curvature's
    // skip rule.
    return;
  }
  PF_CHECK(st.pending_micros > 0 && !st.pending_a.empty() &&
           st.pending_rows > 0.0)
      << "commit with a partial A/B accumulation";
  // A = (Σ XᵀX) / (Σ N_m); B averages the per-micro N·dYᵀdY estimates.
  // Single-micro equivalence to update_curvature (alpha applied inside the
  // GEMM): exact while the reduction fits one k-panel (N ≤ 256 token rows)
  // or when 1/N is a power of two (scaling then commutes with the
  // per-panel rounding) — e.g. the 512-row micros of the example. Beyond
  // that the legacy path scales each 256-deep panel before summing and the
  // two differ in the last bits; per-micro mode is therefore opt-in.
  Matrix a = std::move(st.pending_a);
  a *= 1.0 / st.pending_rows;
  Matrix b = std::move(st.pending_b);
  b *= 1.0 / static_cast<double>(st.pending_micros);
  st.a_ema.axpby(opts_.ema_decay, a, 1.0 - opts_.ema_decay);
  st.b_ema.axpby(opts_.ema_decay, b, 1.0 - opts_.ema_decay);
  ++st.curvature_updates;
  st.pending_a = Matrix();
  st.pending_b = Matrix();
  st.pending_rows = 0.0;
  st.pending_micros = 0;
}

void KfacEngine::update_curvature() {
  for_each_layer([&](std::size_t i) {
    Linear* l = layers_[i];
    if (!l->has_kfac_caches()) return;
    const Matrix& x = l->cached_input();        // a_l  [N × d_in]
    const Matrix& dy = l->cached_output_grad();  // e_l  [N × d_out]
    const double n = static_cast<double>(x.rows());

    // A = XᵀX / N ; B = N·dYᵀdY (see kfac_engine.h for the scaling).
    Matrix a(l->d_in(), l->d_in(), 0.0);
    matmul_tn_acc(x, x, a, 1.0 / n, exec_);
    Matrix b(l->d_out(), l->d_out(), 0.0);
    matmul_tn_acc(dy, dy, b, n, exec_);

    auto& st = states_[i];
    st.a_ema.axpby(opts_.ema_decay, a, 1.0 - opts_.ema_decay);
    st.b_ema.axpby(opts_.ema_decay, b, 1.0 - opts_.ema_decay);
    ++st.curvature_updates;
  });
}

}  // namespace pf
