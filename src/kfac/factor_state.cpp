#include "src/kfac/factor_state.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

double corrected_scale(double decay, std::size_t n) {
  PF_CHECK(n > 0) << "no curvature accumulated yet";
  return 1.0 / (1.0 - std::pow(decay, static_cast<double>(n)));
}

namespace {
Matrix corrected(const Matrix& ema, double decay, std::size_t n) {
  Matrix out = ema;
  out *= corrected_scale(decay, n);
  return out;
}
}  // namespace

Matrix KfacFactorState::corrected_a(double decay) const {
  return corrected(a_ema, decay, curvature_updates);
}

Matrix KfacFactorState::corrected_b(double decay) const {
  return corrected(b_ema, decay, curvature_updates);
}

}  // namespace pf
