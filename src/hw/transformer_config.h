// Transformer architecture configurations (the paper's Table 3).
//
// A "block" is one encoder/decoder layer: multi-head self-attention followed
// by a two-layer feed-forward network. Pipeline stages hold an integer number
// of blocks; embeddings and task heads are excluded from stage cost, exactly
// as in the paper's per-stage profiling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pf {

// One fully-connected layer K-FAC will track: factors A (d_in×d_in) and
// B (d_out×d_out).
struct LinearShape {
  std::size_t d_in;
  std::size_t d_out;
};

struct TransformerConfig {
  std::string name;
  std::size_t d_model;    // hidden size
  std::size_t d_ff;       // feed-forward intermediate size
  std::size_t n_heads;    // attention heads
  std::size_t seq_len;    // training sequence length S
  std::size_t vocab;      // vocabulary size (head layer, excluded from K-FAC)
  std::size_t n_layers;   // total blocks in the full model (e.g., 12 / 24)

  // The six K-FAC-tracked linears of one block: Wq, Wk, Wv, Wo, W1, W2.
  std::vector<LinearShape> kfac_linears_per_block() const;

  // Parameter count of one block (weights + biases + LayerNorm).
  std::size_t params_per_block() const;

  // Number of activation floats that must be held per token to run the
  // backward pass of one block (inputs of each linear, attention
  // probabilities, GELU input). Used by the memory model.
  double activation_floats_per_token() const;

  // Peak error-signal floats per token while backpropagating one block.
  double peak_error_floats_per_token() const;

  // Error floats per token K-FAC must *save* to build the B_l factors
  // (outputs-gradients of each tracked linear).
  double saved_error_floats_per_token() const;
};

// Table 3 presets.
TransformerConfig bert_base();    // 768 / 3072 / 12 / S=128
TransformerConfig bert_large();   // 1024 / 4096 / 16 / S=128
TransformerConfig t5_base();      // 768 / 3072 / 12 / S=512
TransformerConfig t5_large();     // 1024 / 4096 / 16 / S=512
TransformerConfig opt_125m();     // 768 / 3072 / 12 / S=2048
TransformerConfig opt_350m();     // 1024 / 4096 / 16 / S=2048

TransformerConfig transformer_by_name(const std::string& name);
std::vector<std::string> known_transformer_names();

}  // namespace pf
