#include "src/hw/cost_model.h"

#include <cmath>

#include "src/comm/collectives.h"
#include "src/common/check.h"

namespace pf {

namespace {
constexpr double kFp32Bytes = 4.0;
}

double CostModel::flops_forward_block(const TransformerConfig& cfg,
                                      std::size_t b_micro) {
  const double d = static_cast<double>(cfg.d_model);
  const double ff = static_cast<double>(cfg.d_ff);
  const double S = static_cast<double>(cfg.seq_len);
  const double B = static_cast<double>(b_micro);
  const double tokens = B * S;
  // QKV + output projections: 4 GEMMs of d×d → 8·d² FLOPs per token.
  // FFN: d×ff and ff×d → 4·d·ff FLOPs per token.
  // Attention logits and attention·V: 2 × 2·S·d FLOPs per token.
  return tokens * (8.0 * d * d + 4.0 * d * ff + 4.0 * S * d);
}

double CostModel::flops_backward_block(const TransformerConfig& cfg,
                                       std::size_t b_micro) {
  return 2.0 * flops_forward_block(cfg, b_micro);
}

double CostModel::flops_curvature_factor(std::size_t dim,
                                         std::size_t tokens) {
  const double n = static_cast<double>(dim);
  // Symmetric rank-k update U·Uᵀ: n²·tokens MACs / 2 for symmetry,
  // 2 FLOPs per MAC → n²·tokens.
  return n * n * static_cast<double>(tokens);
}

double CostModel::flops_inversion_factor(std::size_t dim) {
  const double n = static_cast<double>(dim);
  // Cholesky n³/3 + triangular inverse + product ≈ 1.4·n³ FLOPs total.
  return 1.4 * n * n * n;
}

double CostModel::flops_precondition_linear(const LinearShape& l) {
  const double din = static_cast<double>(l.d_in);
  const double dout = static_cast<double>(l.d_out);
  // B⁻¹(dout×dout)·G(dout×din) and ·A⁻¹(din×din): 2(dout²·din + dout·din²).
  return 2.0 * (dout * dout * din + dout * din * din);
}

double CostModel::gemm_seconds(double flops) const {
  return flops / (hw_.peak_flops * hw_.eff_gemm) + hw_.kernel_overhead;
}

double CostModel::time_forward_stage(const StageShape& s) const {
  const double flops =
      static_cast<double>(s.blocks) * flops_forward_block(s.cfg, s.b_micro);
  // Elementwise traffic (LayerNorm, GELU, softmax, residual): roughly the
  // activation footprint streamed twice.
  const double bytes = static_cast<double>(s.blocks) *
                       static_cast<double>(s.tokens()) *
                       s.cfg.activation_floats_per_token() * kFp32Bytes * 2.0;
  return flops / (hw_.peak_flops * hw_.eff_gemm) +
         bytes / (hw_.mem_bandwidth * hw_.eff_elementwise) +
         hw_.kernel_overhead * static_cast<double>(s.blocks);
}

double CostModel::time_backward_stage(const StageShape& s) const {
  const double flops =
      static_cast<double>(s.blocks) * flops_backward_block(s.cfg, s.b_micro);
  const double bytes = static_cast<double>(s.blocks) *
                       static_cast<double>(s.tokens()) *
                       s.cfg.activation_floats_per_token() * kFp32Bytes * 3.0;
  return flops / (hw_.peak_flops * hw_.eff_gemm) +
         bytes / (hw_.mem_bandwidth * hw_.eff_elementwise) +
         hw_.kernel_overhead * static_cast<double>(s.blocks);
}

double CostModel::time_backward_stage_recompute(const StageShape& s) const {
  return time_backward_stage(s) + time_forward_stage(s);
}

double CostModel::time_curvature_factor(std::size_t dim,
                                        std::size_t tokens) const {
  return flops_curvature_factor(dim, tokens) /
             (hw_.peak_flops * hw_.eff_curvature) +
         hw_.kernel_overhead;
}

double CostModel::time_curvature_block(const StageShape& s) const {
  double t = 0.0;
  for (const auto& l : s.cfg.kfac_linears_per_block()) {
    t += time_curvature_factor(l.d_in, s.tokens());
    t += time_curvature_factor(l.d_out, s.tokens());
  }
  return t;
}

double CostModel::time_inversion_factor(std::size_t dim) const {
  return flops_inversion_factor(dim) / (hw_.peak_flops * hw_.eff_inversion) +
         hw_.kernel_overhead;
}

double CostModel::time_eigendecomposition_factor(std::size_t dim) const {
  // Symmetric eigensolvers cost ~9n³ FLOPs (tridiagonalization + QR
  // iteration + backtransform) vs ~1.4n³ for Cholesky+inverse, and run at
  // similar (low) efficiency on accelerators.
  const double n = static_cast<double>(dim);
  return 9.0 * n * n * n / (hw_.peak_flops * hw_.eff_inversion) +
         hw_.kernel_overhead;
}

double CostModel::time_inversion_block(const TransformerConfig& cfg) const {
  double t = 0.0;
  for (const auto& l : cfg.kfac_linears_per_block()) {
    t += time_inversion_factor(l.d_in);
    t += time_inversion_factor(l.d_out);
  }
  return t;
}

double CostModel::time_precondition_stage(const TransformerConfig& cfg,
                                          std::size_t blocks) const {
  double flops = 0.0;
  for (const auto& l : cfg.kfac_linears_per_block())
    flops += flops_precondition_linear(l);
  flops *= static_cast<double>(blocks);
  return flops / (hw_.peak_flops * hw_.eff_precondition) +
         hw_.kernel_overhead * static_cast<double>(blocks);
}

double CostModel::time_optimizer_update_stage(const TransformerConfig& cfg,
                                              std::size_t blocks) const {
  const double params = static_cast<double>(cfg.params_per_block()) *
                        static_cast<double>(blocks);
  // LAMB reads param, grad, m, v and writes m, v, param: ~7 streams.
  const double bytes = params * kFp32Bytes * 7.0;
  return bytes / (hw_.mem_bandwidth * hw_.eff_elementwise) +
         hw_.kernel_overhead;
}

double CostModel::time_p2p_activation(const StageShape& s) const {
  const double bytes = static_cast<double>(s.tokens()) *
                       static_cast<double>(s.cfg.d_model) * kFp32Bytes;
  return p2p_time({hw_.link_bandwidth, hw_.link_latency}, bytes);
}

double CostModel::time_allreduce(double bytes, std::size_t world) const {
  PF_CHECK(world >= 1);
  // NCCL-style algorithm choice: ring for bandwidth-bound sizes, recursive
  // doubling for latency-bound ones (src/comm/collectives.h).
  return allreduce_best_time({hw_.link_bandwidth, hw_.link_latency}, bytes,
                             world);
}

double CostModel::time_sync_grad_stage(const TransformerConfig& cfg,
                                       std::size_t blocks,
                                       std::size_t world) const {
  return time_allreduce(stage_gradient_bytes(cfg, blocks), world);
}

double CostModel::time_sync_curvature_stage(const TransformerConfig& cfg,
                                            std::size_t blocks,
                                            std::size_t world) const {
  return time_allreduce(kfac_factor_bytes(cfg, blocks), world);
}

double kfac_factor_bytes(const TransformerConfig& cfg, std::size_t blocks) {
  double floats = 0.0;
  for (const auto& l : cfg.kfac_linears_per_block()) {
    floats += static_cast<double>(l.d_in) * static_cast<double>(l.d_in);
    floats += static_cast<double>(l.d_out) * static_cast<double>(l.d_out);
  }
  return floats * static_cast<double>(blocks) * kFp32Bytes;
}

double stage_gradient_bytes(const TransformerConfig& cfg,
                            std::size_t blocks) {
  return static_cast<double>(cfg.params_per_block()) *
         static_cast<double>(blocks) * kFp32Bytes;
}

}  // namespace pf
