#include "src/hw/transformer_config.h"

#include "src/common/check.h"

namespace pf {

std::vector<LinearShape> TransformerConfig::kfac_linears_per_block() const {
  return {
      {d_model, d_model},  // Wq
      {d_model, d_model},  // Wk
      {d_model, d_model},  // Wv
      {d_model, d_model},  // Wo
      {d_model, d_ff},     // W1
      {d_ff, d_model},     // W2
  };
}

std::size_t TransformerConfig::params_per_block() const {
  std::size_t weights = 0;
  std::size_t biases = 0;
  for (const auto& l : kfac_linears_per_block()) {
    weights += l.d_in * l.d_out;
    biases += l.d_out;
  }
  const std::size_t layer_norms = 2 * 2 * d_model;  // two LN, gamma+beta
  return weights + biases + layer_norms;
}

double TransformerConfig::activation_floats_per_token() const {
  const double d = static_cast<double>(d_model);
  const double ff = static_cast<double>(d_ff);
  const double hS = static_cast<double>(n_heads * seq_len);
  // Inputs of Wq/Wk/Wv share one tensor (d); Q,K,V (3d); attention
  // probabilities (h·S per token); attention output = Wo input (d); residual
  // + LN intermediates (~4d); W1 input (d); GELU input (ff); W2 input (ff);
  // block output (d).
  return 11.0 * d + 2.0 * ff + hS;
}

double TransformerConfig::peak_error_floats_per_token() const {
  const double d = static_cast<double>(d_model);
  const double ff = static_cast<double>(d_ff);
  const double hS = static_cast<double>(n_heads * seq_len);
  // While backpropagating a block, the live error signals are bounded by the
  // widest frontier: dL/d(FFN intermediate) (ff) plus attention score grads.
  return 4.0 * d + ff + hS;
}

double TransformerConfig::saved_error_floats_per_token() const {
  double total = 0.0;
  for (const auto& l : kfac_linears_per_block())
    total += static_cast<double>(l.d_out);
  return total;  // 5·d_model + d_ff
}

namespace {
TransformerConfig make(std::string name, std::size_t d, std::size_t ff,
                       std::size_t h, std::size_t s, std::size_t vocab,
                       std::size_t layers) {
  return TransformerConfig{std::move(name), d, ff, h, s, vocab, layers};
}
}  // namespace

TransformerConfig bert_base() {
  return make("bert-base", 768, 3072, 12, 128, 30522, 12);
}
TransformerConfig bert_large() {
  return make("bert-large", 1024, 4096, 16, 128, 30522, 24);
}
TransformerConfig t5_base() {
  return make("t5-base", 768, 3072, 12, 512, 32128, 12);
}
TransformerConfig t5_large() {
  return make("t5-large", 1024, 4096, 16, 512, 32128, 24);
}
TransformerConfig opt_125m() {
  return make("opt-125m", 768, 3072, 12, 2048, 50272, 12);
}
TransformerConfig opt_350m() {
  return make("opt-350m", 1024, 4096, 16, 2048, 50272, 24);
}

TransformerConfig transformer_by_name(const std::string& name) {
  if (name == "bert-base") return bert_base();
  if (name == "bert-large") return bert_large();
  if (name == "t5-base") return t5_base();
  if (name == "t5-large") return t5_large();
  if (name == "opt-125m") return opt_125m();
  if (name == "opt-350m") return opt_350m();
  PF_CHECK(false) << "unknown transformer config: " << name;
  __builtin_unreachable();
}

std::vector<std::string> known_transformer_names() {
  return {"bert-base", "bert-large", "t5-base",
          "t5-large",  "opt-125m",   "opt-350m"};
}

}  // namespace pf
