// Memory-consumption model (paper §3.3):
//
//   M_pipe  = 2·(D·W/#devices)·M_θ + N_micro·M_act + M_peak_err
//   M⁺_kfac = M_curv + M_inv + N_micro·M_save_err
//
// with the activation-recomputation (R) variant storing only stage-boundary
// activations. All quantities are per-device worst case, fp32.
#pragma once

#include "src/hw/transformer_config.h"

namespace pf {

struct MemoryBreakdown {
  double params_and_grads;  // 2·M_θ·(stages per device)
  double activations;       // N_micro·M_act (or boundary-only under R)
  double peak_err;          // M_peak_err
  double save_err;          // N_micro·M_save_err (K-FAC only)
  double curv_plus_inv;     // M_curv + M_inv (K-FAC only)

  double pipeline_total() const {
    return params_and_grads + activations + peak_err;
  }
  double kfac_extra() const { return save_err + curv_plus_inv; }
  double total() const { return pipeline_total() + kfac_extra(); }
};

struct MemoryModelInput {
  TransformerConfig cfg;
  std::size_t blocks_per_stage = 1;
  std::size_t stages_per_device = 1;  // Chimera w/ 2 pipelines → 2
  std::size_t b_micro = 8;
  std::size_t n_micro = 4;
  bool recompute = false;  // activation recomputation (R)
};

MemoryBreakdown model_memory(const MemoryModelInput& in);

// Individual terms, exposed for tests and plots.
double mem_params_stage(const TransformerConfig& cfg, std::size_t blocks);
double mem_activations_stage(const TransformerConfig& cfg, std::size_t blocks,
                             std::size_t b_micro);
double mem_boundary_activation(const TransformerConfig& cfg,
                               std::size_t b_micro);
double mem_peak_err_stage(const TransformerConfig& cfg, std::size_t blocks,
                          std::size_t b_micro);
double mem_save_err_stage(const TransformerConfig& cfg, std::size_t blocks,
                          std::size_t b_micro);
double mem_curvature_stage(const TransformerConfig& cfg, std::size_t blocks);

}  // namespace pf
