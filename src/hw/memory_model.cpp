#include "src/hw/memory_model.h"

namespace pf {

namespace {
constexpr double kFp32Bytes = 4.0;
}

double mem_params_stage(const TransformerConfig& cfg, std::size_t blocks) {
  return static_cast<double>(cfg.params_per_block()) *
         static_cast<double>(blocks) * kFp32Bytes;
}

double mem_activations_stage(const TransformerConfig& cfg, std::size_t blocks,
                             std::size_t b_micro) {
  const double tokens =
      static_cast<double>(b_micro) * static_cast<double>(cfg.seq_len);
  return tokens * cfg.activation_floats_per_token() *
         static_cast<double>(blocks) * kFp32Bytes;
}

double mem_boundary_activation(const TransformerConfig& cfg,
                               std::size_t b_micro) {
  const double tokens =
      static_cast<double>(b_micro) * static_cast<double>(cfg.seq_len);
  return tokens * static_cast<double>(cfg.d_model) * kFp32Bytes;
}

double mem_peak_err_stage(const TransformerConfig& cfg, std::size_t blocks,
                          std::size_t b_micro) {
  (void)blocks;  // peak is per-block: errors of other blocks are freed
  const double tokens =
      static_cast<double>(b_micro) * static_cast<double>(cfg.seq_len);
  return tokens * cfg.peak_error_floats_per_token() * kFp32Bytes;
}

double mem_save_err_stage(const TransformerConfig& cfg, std::size_t blocks,
                          std::size_t b_micro) {
  const double tokens =
      static_cast<double>(b_micro) * static_cast<double>(cfg.seq_len);
  return tokens * cfg.saved_error_floats_per_token() *
         static_cast<double>(blocks) * kFp32Bytes;
}

double mem_curvature_stage(const TransformerConfig& cfg, std::size_t blocks) {
  double floats = 0.0;
  for (const auto& l : cfg.kfac_linears_per_block()) {
    floats += static_cast<double>(l.d_in) * static_cast<double>(l.d_in);
    floats += static_cast<double>(l.d_out) * static_cast<double>(l.d_out);
  }
  return floats * static_cast<double>(blocks) * kFp32Bytes;
}

MemoryBreakdown model_memory(const MemoryModelInput& in) {
  MemoryBreakdown out{};
  const double m_theta =
      mem_params_stage(in.cfg, in.blocks_per_stage) *
      static_cast<double>(in.stages_per_device);
  out.params_and_grads = 2.0 * m_theta;  // parameters + gradients
  const double n = static_cast<double>(in.n_micro);
  if (in.recompute) {
    // Only the stage-input activation of each in-flight micro-batch is kept;
    // one block's activations exist transiently during recomputation.
    out.activations =
        n * mem_boundary_activation(in.cfg, in.b_micro) +
        mem_activations_stage(in.cfg, 1, in.b_micro);
  } else {
    out.activations =
        n * mem_activations_stage(in.cfg, in.blocks_per_stage, in.b_micro);
  }
  out.peak_err = mem_peak_err_stage(in.cfg, in.blocks_per_stage, in.b_micro);
  out.save_err =
      n * mem_save_err_stage(in.cfg, in.blocks_per_stage, in.b_micro);
  // Curvature (A, B) plus their inverses: 2× the factor set.
  out.curv_plus_inv = 2.0 * mem_curvature_stage(in.cfg, in.blocks_per_stage) *
                      static_cast<double>(in.stages_per_device);
  return out;
}

}  // namespace pf
