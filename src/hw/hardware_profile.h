// Hardware profiles for the simulated accelerators.
//
// The paper measures CUDA kernel times on NVIDIA P100 / V100 / RTX3090 and
// feeds them into its performance model. We have no GPUs, so a profile
// carries published peak numbers plus per-kernel-class efficiency factors;
// the cost model (cost_model.h) turns FLOP/byte counts into seconds. The
// efficiencies are chosen so the *relative* geometry of the paper's
// timelines (forward : backward : curvature : inversion : precondition)
// is reproduced; see DESIGN.md §2 for the substitution argument.
#pragma once

#include <string>
#include <vector>

namespace pf {

struct HardwareProfile {
  std::string name;
  double peak_flops;        // fp32 FLOP/s
  double mem_bandwidth;     // bytes/s (device memory)
  double link_bandwidth;    // bytes/s per inter-device link (P2P / ring hop)
  double link_latency;      // seconds per message
  double kernel_overhead;   // seconds of launch overhead per logical work item

  // Fraction of peak achieved by each kernel class.
  double eff_gemm;          // large dense GEMMs (forward/backward)
  double eff_curvature;     // SYRK-style factor builds
  double eff_inversion;     // Cholesky + triangular solves (poorly parallel)
  double eff_precondition;  // medium GEMMs
  double eff_elementwise;   // fraction of mem_bandwidth for elementwise ops

  // Device memory capacity in bytes (P100: 16 GB).
  double memory_capacity;
};

// Published-spec presets used throughout the paper's evaluation.
HardwareProfile p100();
HardwareProfile v100();
HardwareProfile rtx3090();
// A deliberately slow profile for tests that need visible contention.
HardwareProfile toy_accelerator();

// Lookup by name ("p100", "v100", "rtx3090", "toy"); throws on unknown.
HardwareProfile hardware_by_name(const std::string& name);
std::vector<std::string> known_hardware_names();

}  // namespace pf
