#include "src/hw/hardware_profile.h"

#include "src/common/check.h"

namespace pf {

HardwareProfile p100() {
  return HardwareProfile{
      .name = "p100",
      .peak_flops = 9.3e12,        // fp32, P100 PCIe
      .mem_bandwidth = 732e9,      // HBM2
      .link_bandwidth = 10e9,      // cluster interconnect, one direction
      .link_latency = 5e-6,
      .kernel_overhead = 20e-6,
      .eff_gemm = 0.45,
      .eff_curvature = 0.40,
      .eff_inversion = 0.08,
      .eff_precondition = 0.35,
      .eff_elementwise = 0.70,
      .memory_capacity = 16e9,
  };
}

HardwareProfile v100() {
  return HardwareProfile{
      .name = "v100",
      .peak_flops = 15.7e12,
      .mem_bandwidth = 900e9,
      .link_bandwidth = 25e9,  // NVLink-class
      .link_latency = 4e-6,
      .kernel_overhead = 15e-6,
      .eff_gemm = 0.50,
      .eff_curvature = 0.45,
      .eff_inversion = 0.08,
      .eff_precondition = 0.40,
      .eff_elementwise = 0.72,
      .memory_capacity = 32e9,
  };
}

HardwareProfile rtx3090() {
  return HardwareProfile{
      .name = "rtx3090",
      .peak_flops = 35.6e12,
      .mem_bandwidth = 936e9,
      .link_bandwidth = 12e9,  // PCIe 4.0-class
      .link_latency = 6e-6,
      .kernel_overhead = 12e-6,
      .eff_gemm = 0.42,  // consumer part: lower sustained GEMM fraction
      .eff_curvature = 0.38,
      .eff_inversion = 0.06,
      .eff_precondition = 0.34,
      .eff_elementwise = 0.75,
      .memory_capacity = 24e9,
  };
}

HardwareProfile toy_accelerator() {
  return HardwareProfile{
      .name = "toy",
      .peak_flops = 1e9,
      .mem_bandwidth = 1e9,
      .link_bandwidth = 1e8,
      .link_latency = 1e-4,
      .kernel_overhead = 1e-5,
      .eff_gemm = 1.0,
      .eff_curvature = 1.0,
      .eff_inversion = 1.0,
      .eff_precondition = 1.0,
      .eff_elementwise = 1.0,
      .memory_capacity = 1e9,
  };
}

HardwareProfile hardware_by_name(const std::string& name) {
  if (name == "p100") return p100();
  if (name == "v100") return v100();
  if (name == "rtx3090") return rtx3090();
  if (name == "toy") return toy_accelerator();
  PF_CHECK(false) << "unknown hardware profile: " << name;
  __builtin_unreachable();
}

std::vector<std::string> known_hardware_names() {
  return {"p100", "v100", "rtx3090", "toy"};
}

}  // namespace pf
