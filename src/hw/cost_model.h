// Analytic cost model: FLOP / byte counts for every kind of work in a
// pipeline step (forward, backward, K-FAC curvature / inversion /
// precondition, optimizer update, collectives), mapped to seconds on a
// HardwareProfile.
//
// This is the stand-in for the paper's Nsight microbenchmarks. The paper's
// performance model (§3.3) takes measured T_f, T_b, T_curv, T_inv, T_prec
// per stage; we produce the same quantities analytically.
#pragma once

#include "src/hw/hardware_profile.h"
#include "src/hw/transformer_config.h"

namespace pf {

// A "stage workload": `blocks` consecutive transformer blocks processed with
// micro-batches of `b_micro` sequences of length cfg.seq_len.
struct StageShape {
  TransformerConfig cfg;
  std::size_t blocks;    // layers per pipeline stage
  std::size_t b_micro;   // micro-batch size (sequences)

  std::size_t tokens() const { return b_micro * cfg.seq_len; }
};

class CostModel {
 public:
  explicit CostModel(HardwareProfile hw) : hw_(std::move(hw)) {}

  const HardwareProfile& hardware() const { return hw_; }

  // ---- FLOP counts (hardware independent) ----

  // Forward FLOPs of one transformer block for one micro-batch.
  static double flops_forward_block(const TransformerConfig& cfg,
                                    std::size_t b_micro);
  // Backward ≈ 2× forward (dX and dW GEMMs).
  static double flops_backward_block(const TransformerConfig& cfg,
                                     std::size_t b_micro);
  // Curvature FLOPs for ONE Kronecker factor (A uses d_in, B uses d_out):
  // a rank-N_tok symmetric update, SYRK-style (half of the full GEMM).
  static double flops_curvature_factor(std::size_t dim, std::size_t tokens);
  // Inversion FLOPs for one factor of size dim: Cholesky (n³/3) plus
  // triangular inversion (2n³/3) — ~n³ MACs = 2n³ FLOPs... we use 1.4·n³.
  static double flops_inversion_factor(std::size_t dim);
  // Precondition FLOPs for one linear: two GEMMs B⁻¹·G and (B⁻¹G)·A⁻¹.
  static double flops_precondition_linear(const LinearShape& l);

  // ---- Times (seconds) on this hardware ----

  double time_forward_stage(const StageShape& s) const;
  double time_backward_stage(const StageShape& s) const;
  // Backward including activation recomputation (R): one extra forward.
  double time_backward_stage_recompute(const StageShape& s) const;

  // Curvature work for one factor of one linear, one micro-batch.
  double time_curvature_factor(std::size_t dim, std::size_t tokens) const;
  // Total curvature work of one block for one micro-batch (all 12 factors).
  double time_curvature_block(const StageShape& s) const;
  // Inversion of one factor.
  double time_inversion_factor(std::size_t dim) const;
  // Eigendecomposition of one factor (Shampoo's inverse-4th-root work,
  // paper §5): iterative and markedly more expensive than Cholesky.
  double time_eigendecomposition_factor(std::size_t dim) const;
  // Total inversion work of one block (all 12 factors).
  double time_inversion_block(const TransformerConfig& cfg) const;
  // Preconditioning all linears of a stage (runs every step).
  double time_precondition_stage(const TransformerConfig& cfg,
                                 std::size_t blocks) const;
  // First-order optimizer update for one stage's parameters (elementwise,
  // memory bound; LAMB/Adam touch ~6 arrays of the parameter size).
  double time_optimizer_update_stage(const TransformerConfig& cfg,
                                     std::size_t blocks) const;

  // Point-to-point transfer of one micro-batch of boundary activations.
  double time_p2p_activation(const StageShape& s) const;

  // Ring allreduce of `bytes` across `world` devices.
  double time_allreduce(double bytes, std::size_t world) const;

  // Gradient sync for one stage across `world` data-parallel replicas.
  double time_sync_grad_stage(const TransformerConfig& cfg,
                              std::size_t blocks, std::size_t world) const;
  // Curvature (Kronecker factor) sync for one stage across replicas.
  double time_sync_curvature_stage(const TransformerConfig& cfg,
                                   std::size_t blocks,
                                   std::size_t world) const;

 private:
  double gemm_seconds(double flops) const;
  HardwareProfile hw_;
};

// Bytes of one Kronecker-factor set (A and B for every linear of `blocks`
// transformer blocks), fp32 as on the GPUs of the paper.
double kfac_factor_bytes(const TransformerConfig& cfg, std::size_t blocks);

// Bytes of the gradients (=parameters) of a stage, fp32.
double stage_gradient_bytes(const TransformerConfig& cfg, std::size_t blocks);

}  // namespace pf
