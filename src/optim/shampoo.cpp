#include "src/optim/shampoo.h"

#include "src/linalg/eig.h"
#include "src/linalg/gemm.h"

namespace pf {

Shampoo::Shampoo(double eps, std::size_t root_interval,
                 const ExecContext& exec)
    : eps_(eps), root_interval_(root_interval), exec_(exec) {
  PF_CHECK(eps > 0.0);
  PF_CHECK(root_interval >= 1);
}

void Shampoo::step(const std::vector<Param*>& params, double lr) {
  const bool refresh_roots = t_ % root_interval_ == 0;
  for (Param* p : params) {
    auto it = state_.find(p);
    if (it == state_.end()) {
      State st;
      st.l = Matrix(p->w.rows(), p->w.rows(), 0.0);
      st.r = Matrix(p->w.cols(), p->w.cols(), 0.0);
      it = state_.emplace(p, std::move(st)).first;
    }
    State& st = it->second;
    // Statistics update (the analog of K-FAC curvature work).
    matmul_nt_acc(p->g, p->g, st.l, 1.0, exec_);
    matmul_tn_acc(p->g, p->g, st.r, 1.0, exec_);
    // Root refresh (the analog of inversion work — eigendecompositions).
    if (refresh_roots || !st.has_roots) {
      st.l_root = sym_inverse_pth_root(st.l, 4.0, eps_, exec_);
      st.r_root = sym_inverse_pth_root(st.r, 4.0, eps_, exec_);
      st.has_roots = true;
    }
    // Precondition + update.
    const Matrix update =
        matmul(matmul(st.l_root, p->g, exec_), st.r_root, exec_);
    for (std::size_t i = 0; i < p->w.rows(); ++i)
      for (std::size_t j = 0; j < p->w.cols(); ++j)
        p->w(i, j) -= lr * update(i, j);
  }
  ++t_;
}

}  // namespace pf
