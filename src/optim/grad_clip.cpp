#include "src/optim/grad_clip.h"

#include "src/common/check.h"

namespace pf {

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  PF_CHECK(max_norm > 0.0);
  const double norm = global_grad_norm(params);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (Param* p : params) p->g *= scale;
  }
  return norm;
}

}  // namespace pf
