// Optimizer interface: consumes accumulated gradients and updates parameter
// values in place. Learning rate is passed per step so schedules stay
// outside the optimizer (paper Figure 8: warmup + polynomial decay).
#pragma once

#include <unordered_map>

#include "src/nn/param.h"

namespace pf {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<Param*>& params, double lr) = 0;

  // Called by the Trainer after EACH micro-batch backward of a gradient-
  // accumulation step (including the last, before step()). Lets curvature-
  // hungry optimizers observe every micro-batch's layer caches instead of
  // only the final one — K-FAC's per-micro curvature accumulation
  // (KfacOptimizerOptions::per_micro_curvature) hangs off this. Default:
  // no-op.
  virtual void on_micro_batch() {}
};

// Per-parameter state buffer keyed by Param identity.
class ParamBuffers {
 public:
  Matrix& get(Param* p) {
    auto it = buf_.find(p);
    if (it == buf_.end())
      it = buf_.emplace(p, Matrix(p->w.rows(), p->w.cols(), 0.0)).first;
    return it->second;
  }

 private:
  std::unordered_map<Param*, Matrix> buf_;
};

}  // namespace pf
