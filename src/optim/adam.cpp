#include "src/optim/adam.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

Adam::Adam(double beta1, double beta2, double eps, double weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  PF_CHECK(beta1 > 0 && beta1 < 1 && beta2 > 0 && beta2 < 1 && eps > 0);
}

void Adam::step(const std::vector<Param*>& params, double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    Matrix& m = m_.get(p);
    Matrix& v = v_.get(p);
    for (std::size_t i = 0; i < p->w.rows(); ++i) {
      for (std::size_t j = 0; j < p->w.cols(); ++j) {
        const double g = p->g(i, j);
        m(i, j) = beta1_ * m(i, j) + (1.0 - beta1_) * g;
        v(i, j) = beta2_ * v(i, j) + (1.0 - beta2_) * g * g;
        const double mhat = m(i, j) / bc1;
        const double vhat = v(i, j) / bc2;
        p->w(i, j) -= lr * (mhat / (std::sqrt(vhat) + eps_) +
                            weight_decay_ * p->w(i, j));
      }
    }
  }
}

}  // namespace pf
