// Sharpness-Aware Minimization (Foret et al., 2021) — the paper's §5 second
// example of bubble-fillable extra work: SAM needs an additional forward and
// backward per step to evaluate gradients at the adversarially perturbed
// point w + ρ·g/‖g‖, i.e., it contains twice the work of SGD and "has the
// potential to double the accelerator utilization".
//
// Two-phase protocol (the trainer owns the forward/backward calls):
//   1. compute grads at w;     sam.ascend(params)   — move to w + ρ·ĝ
//   2. recompute grads there;  sam.descend(params)  — restore w
//   3. base_optimizer.step(params, lr)              — update with the
//      sharpness-aware gradients
#pragma once

#include <unordered_map>

#include "src/nn/param.h"

namespace pf {

class Sam {
 public:
  explicit Sam(double rho = 0.05);

  // Saves the weights and moves them to w + ρ·g/‖g‖ (global grad norm).
  void ascend(const std::vector<Param*>& params);
  // Restores the saved weights (gradients — now evaluated at the perturbed
  // point — are left untouched for the base optimizer).
  void descend(const std::vector<Param*>& params);

  bool ascended() const { return ascended_; }
  double rho() const { return rho_; }

 private:
  double rho_;
  bool ascended_ = false;
  std::unordered_map<Param*, Matrix> saved_;
};

}  // namespace pf
