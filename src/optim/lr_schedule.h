// Learning-rate schedule of the paper (Appendix B.2, Figure 8):
// linear warmup to base_lr over `warmup_steps`, then polynomial decay
//   η_t = base_lr · (1 − t/total_steps)^power         (power = 0.5).
//
// K-FAC uses the same schedule with warmup shortened from 2000 to 600
// steps, which is exactly what makes its early learning rates larger.
#pragma once

#include <cstddef>

namespace pf {

class PolyWarmupSchedule {
 public:
  PolyWarmupSchedule(double base_lr, std::size_t warmup_steps,
                     std::size_t total_steps, double power = 0.5);

  double lr(std::size_t step) const;

  std::size_t warmup_steps() const { return warmup_; }
  std::size_t total_steps() const { return total_; }

 private:
  double base_lr_;
  std::size_t warmup_;
  std::size_t total_;
  double power_;
};

}  // namespace pf
