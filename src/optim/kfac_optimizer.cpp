#include "src/optim/kfac_optimizer.h"

#include "src/common/check.h"

namespace pf {

KfacOptimizer::KfacOptimizer(std::vector<Linear*> kfac_layers,
                             std::unique_ptr<Optimizer> base,
                             const KfacOptimizerOptions& opts)
    : engine_(std::move(kfac_layers), opts.kfac),
      base_(std::move(base)),
      opts_(opts) {
  PF_CHECK(base_ != nullptr);
  PF_CHECK(opts_.curvature_interval >= 1);
  PF_CHECK(opts_.inverse_interval >= 1);
}

void KfacOptimizer::step(const std::vector<Param*>& params, double lr) {
  if (t_ % opts_.curvature_interval == 0) engine_.update_curvature();
  if (t_ % opts_.inverse_interval == 0) engine_.update_inverses();
  engine_.precondition();
  base_->step(params, lr);
  ++t_;
}

}  // namespace pf
