#include "src/optim/kfac_optimizer.h"

#include "src/common/check.h"

namespace pf {

KfacOptimizer::KfacOptimizer(std::vector<Linear*> kfac_layers,
                             std::unique_ptr<Optimizer> base,
                             const KfacOptimizerOptions& opts)
    : engine_(std::move(kfac_layers), opts.kfac),
      base_(std::move(base)),
      opts_(opts) {
  PF_CHECK(base_ != nullptr);
  PF_CHECK(opts_.curvature_interval >= 1);
  PF_CHECK(opts_.inverse_interval >= 1);
}

void KfacOptimizer::on_micro_batch() {
  if (!opts_.per_micro_curvature) return;
  if (t_ % opts_.curvature_interval != 0) return;  // not a refresh step
  // Fold this micro-batch's caches into the pending factor sums. The
  // Trainer calls this once per micro in ascending order, giving the same
  // fold order the pipeline runtime pins with dependency chains.
  for (std::size_t i = 0; i < engine_.n_layers(); ++i) {
    Linear* l = engine_.layer(i);
    if (!l->has_kfac_caches()) continue;
    engine_.accumulate_curvature_a(i, l->cached_input());
    engine_.accumulate_curvature_b(i, l->cached_output_grad());
  }
}

void KfacOptimizer::step(const std::vector<Param*>& params, double lr) {
  if (t_ % opts_.curvature_interval == 0) {
    if (opts_.per_micro_curvature) {
      // A driver that forgot the on_micro_batch hook would otherwise
      // degrade silently to the bare base optimizer: if any layer has
      // caches (a backward ran) there must be pending contributions.
      bool caches = false, pending = false;
      for (std::size_t i = 0; i < engine_.n_layers(); ++i) {
        caches = caches || engine_.layer(i)->has_kfac_caches();
        pending = pending || engine_.state(i).pending_micros > 0;
      }
      PF_CHECK(!caches || pending)
          << "per_micro_curvature is set but no per-micro contributions "
             "were accumulated this step — the driver must call "
             "on_micro_batch() after every micro-batch backward (Trainer "
             "does)";
      for (std::size_t i = 0; i < engine_.n_layers(); ++i)
        engine_.commit_curvature_layer(i);
    } else {
      engine_.update_curvature();
    }
  }
  if (t_ % opts_.inverse_interval == 0) engine_.update_inverses();
  engine_.precondition();
  base_->step(params, lr);
  ++t_;
}

}  // namespace pf
