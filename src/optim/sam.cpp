#include "src/optim/sam.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

Sam::Sam(double rho) : rho_(rho) { PF_CHECK(rho > 0.0); }

void Sam::ascend(const std::vector<Param*>& params) {
  PF_CHECK(!ascended_) << "ascend called twice without descend";
  const double gnorm = global_grad_norm(params);
  if (gnorm == 0.0) {
    // No direction to ascend along; stay put but keep protocol state.
    saved_.clear();
    for (Param* p : params) saved_.emplace(p, p->w);
    ascended_ = true;
    return;
  }
  const double scale = rho_ / gnorm;
  saved_.clear();
  for (Param* p : params) {
    saved_.emplace(p, p->w);
    for (std::size_t i = 0; i < p->w.rows(); ++i)
      for (std::size_t j = 0; j < p->w.cols(); ++j)
        p->w(i, j) += scale * p->g(i, j);
  }
  ascended_ = true;
}

void Sam::descend(const std::vector<Param*>& params) {
  PF_CHECK(ascended_) << "descend before ascend";
  for (Param* p : params) {
    auto it = saved_.find(p);
    PF_CHECK(it != saved_.end()) << "param set changed between phases";
    p->w = it->second;
  }
  ascended_ = false;
}

}  // namespace pf
