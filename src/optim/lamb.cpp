#include "src/optim/lamb.h"

#include <cmath>

#include "src/common/check.h"

namespace pf {

Lamb::Lamb(double beta1, double beta2, double eps, double weight_decay,
           double max_trust)
    : beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      max_trust_(max_trust) {
  PF_CHECK(beta1 > 0 && beta1 < 1 && beta2 > 0 && beta2 < 1);
  PF_CHECK(max_trust > 0.0);
}

void Lamb::step(const std::vector<Param*>& params, double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    Matrix& m = m_.get(p);
    Matrix& v = v_.get(p);
    Matrix update(p->w.rows(), p->w.cols());
    for (std::size_t i = 0; i < p->w.rows(); ++i) {
      for (std::size_t j = 0; j < p->w.cols(); ++j) {
        const double g = p->g(i, j);
        m(i, j) = beta1_ * m(i, j) + (1.0 - beta1_) * g;
        v(i, j) = beta2_ * v(i, j) + (1.0 - beta2_) * g * g;
        const double mhat = m(i, j) / bc1;
        const double vhat = v(i, j) / bc2;
        update(i, j) = mhat / (std::sqrt(vhat) + eps_) +
                       weight_decay_ * p->w(i, j);
      }
    }
    const double wnorm = p->w.frobenius_norm();
    const double unorm = update.frobenius_norm();
    double trust = 1.0;
    if (wnorm > 0.0 && unorm > 0.0)
      trust = std::min(wnorm / unorm, max_trust_);
    last_trust_[p] = trust;
    for (std::size_t i = 0; i < p->w.rows(); ++i)
      for (std::size_t j = 0; j < p->w.cols(); ++j)
        p->w(i, j) -= lr * trust * update(i, j);
  }
}

double Lamb::last_trust_ratio(Param* p) const {
  auto it = last_trust_.find(p);
  PF_CHECK(it != last_trust_.end()) << "no step taken for this param";
  return it->second;
}

}  // namespace pf
