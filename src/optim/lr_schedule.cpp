#include "src/optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace pf {

PolyWarmupSchedule::PolyWarmupSchedule(double base_lr,
                                       std::size_t warmup_steps,
                                       std::size_t total_steps, double power)
    : base_lr_(base_lr),
      warmup_(warmup_steps),
      total_(total_steps),
      power_(power) {
  PF_CHECK(base_lr > 0.0);
  PF_CHECK(total_steps > 0);
  PF_CHECK(warmup_steps < total_steps);
}

double PolyWarmupSchedule::lr(std::size_t step) const {
  if (warmup_ > 0 && step < warmup_) {
    return base_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_);
  }
  const double progress = std::min(
      1.0, static_cast<double>(step) / static_cast<double>(total_));
  return base_lr_ * std::pow(1.0 - progress, power_);
}

}  // namespace pf
