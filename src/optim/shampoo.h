// Shampoo optimizer (Gupta et al., 2018) — the paper's §5 names pipelining
// Shampoo's work as "a natural extension of the PipeFisher": it maintains
// Kronecker-factored second-moment matrices of the SAME shapes as K-FAC's
// factors, but needs an eigendecomposition (inverse 4th root) per factor
// instead of a Cholesky inverse.
//
//   L ← L + G·Gᵀ,  R ← R + Gᵀ·G,   W ← W − lr · L^(-1/4) · G · R^(-1/4)
//
// The preconditioner roots are refreshed every `root_interval` steps
// (stale-root rule, like K-FAC's stale inverses).
#pragma once

#include "src/common/exec_context.h"
#include "src/optim/optimizer.h"

namespace pf {

class Shampoo : public Optimizer {
 public:
  // `exec` threads the statistics GEMMs and the eigendecomposition-based
  // root refreshes (sym_eig / sym_matrix_function fan out over it; every
  // thread count is bitwise identical — see eig.h).
  explicit Shampoo(double eps = 1e-6, std::size_t root_interval = 1,
                   const ExecContext& exec = ExecContext::defaults());
  void step(const std::vector<Param*>& params, double lr) override;

 private:
  struct State {
    Matrix l;       // [rows × rows]
    Matrix r;       // [cols × cols]
    Matrix l_root;  // L^(-1/4)
    Matrix r_root;  // R^(-1/4)
    bool has_roots = false;
  };
  double eps_;
  std::size_t root_interval_;
  ExecContext exec_;
  std::size_t t_ = 0;
  std::unordered_map<Param*, State> state_;
};

}  // namespace pf
