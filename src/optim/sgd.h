// SGD with (optional) heavy-ball momentum and decoupled weight decay.
#pragma once

#include "src/optim/optimizer.h"

namespace pf {

class Sgd : public Optimizer {
 public:
  explicit Sgd(double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<Param*>& params, double lr) override;

 private:
  double momentum_, weight_decay_;
  ParamBuffers velocity_;
};

}  // namespace pf
