// K-FAC optimizer wrapper (KAISA-style): preconditions the gradients of the
// tracked linears with the Kronecker-factored Fisher inverse, then hands ALL
// gradients to a base first-order optimizer (LAMB here, as in the paper:
// "we apply K-FAC to all fully-connected layers except the classification
// head and use NVLAMB for the rest").
//
// Curvature and inversion run at configurable intervals; PipeFisher's whole
// point is that on a pipeline these refreshes are free (hidden in bubbles)
// and can therefore be frequent (every 2-10 steps instead of every 100).
#pragma once

#include <memory>

#include "src/kfac/kfac_engine.h"
#include "src/optim/optimizer.h"

namespace pf {

struct KfacOptimizerOptions {
  KfacOptions kfac;
  std::size_t curvature_interval = 1;  // steps between curvature updates
  std::size_t inverse_interval = 1;    // steps between inversions
};

class KfacOptimizer : public Optimizer {
 public:
  KfacOptimizer(std::vector<Linear*> kfac_layers,
                std::unique_ptr<Optimizer> base,
                const KfacOptimizerOptions& opts);

  // Precondition (every step, stale inverses allowed) then base step.
  // Curvature/inversion refresh when due.
  void step(const std::vector<Param*>& params, double lr) override;

  const KfacEngine& engine() const { return engine_; }
  std::size_t steps_taken() const { return t_; }

 private:
  KfacEngine engine_;
  std::unique_ptr<Optimizer> base_;
  KfacOptimizerOptions opts_;
  std::size_t t_ = 0;
};

}  // namespace pf
