// K-FAC optimizer wrapper (KAISA-style): preconditions the gradients of the
// tracked linears with the Kronecker-factored Fisher inverse, then hands ALL
// gradients to a base first-order optimizer (LAMB here, as in the paper:
// "we apply K-FAC to all fully-connected layers except the classification
// head and use NVLAMB for the rest").
//
// Curvature and inversion run at configurable intervals; PipeFisher's whole
// point is that on a pipeline these refreshes are free (hidden in bubbles)
// and can therefore be frequent (every 2-10 steps instead of every 100).
#pragma once

#include <memory>

#include "src/kfac/kfac_engine.h"
#include "src/optim/optimizer.h"

namespace pf {

struct KfacOptimizerOptions {
  KfacOptions kfac;
  std::size_t curvature_interval = 1;  // steps between curvature updates
  std::size_t inverse_interval = 1;    // steps between inversions
  // Estimate curvature from EVERY micro-batch of an accumulation step
  // (folded per micro in ascending order via the Trainer's on_micro_batch
  // hook) instead of only the last micro's caches. This is the paper's
  // semantics — PipeFisher's curvature work is per micro-batch — and the
  // serial reference the pipeline runtime is bit-compared against. With
  // accumulation_steps = 1 the two modes agree bit for bit when a micro's
  // token count is <= the GEMM k-panel depth (256 rows) or a power of two;
  // other shapes differ in the last bits (see curvature.cpp). Default off:
  // the legacy last-micro estimate stays the behaviour of existing runs.
  bool per_micro_curvature = false;
};

class KfacOptimizer : public Optimizer {
 public:
  KfacOptimizer(std::vector<Linear*> kfac_layers,
                std::unique_ptr<Optimizer> base,
                const KfacOptimizerOptions& opts);

  // Precondition (every step, stale inverses allowed) then base step.
  // Curvature/inversion refresh when due.
  void step(const std::vector<Param*>& params, double lr) override;

  // per_micro_curvature: accumulate the current layer caches into the
  // pending factor sums when the upcoming step is a curvature refresh.
  void on_micro_batch() override;

  const KfacEngine& engine() const { return engine_; }
  std::size_t steps_taken() const { return t_; }

 private:
  KfacEngine engine_;
  std::unique_ptr<Optimizer> base_;
  KfacOptimizerOptions opts_;
  std::size_t t_ = 0;
};

}  // namespace pf
