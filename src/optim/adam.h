// Adam with bias correction and decoupled weight decay (AdamW).
#pragma once

#include "src/optim/optimizer.h"

namespace pf {

class Adam : public Optimizer {
 public:
  Adam(double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
       double weight_decay = 0.0);
  void step(const std::vector<Param*>& params, double lr) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  ParamBuffers m_, v_;
};

}  // namespace pf
