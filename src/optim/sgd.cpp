#include "src/optim/sgd.h"

#include "src/common/check.h"

namespace pf {

Sgd::Sgd(double momentum, double weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {
  PF_CHECK(momentum >= 0.0 && momentum < 1.0);
  PF_CHECK(weight_decay >= 0.0);
}

void Sgd::step(const std::vector<Param*>& params, double lr) {
  for (Param* p : params) {
    if (momentum_ > 0.0) {
      Matrix& v = velocity_.get(p);
      v.axpby(momentum_, p->g, 1.0);
      for (std::size_t i = 0; i < p->w.rows(); ++i)
        for (std::size_t j = 0; j < p->w.cols(); ++j)
          p->w(i, j) -= lr * (v(i, j) + weight_decay_ * p->w(i, j));
    } else {
      for (std::size_t i = 0; i < p->w.rows(); ++i)
        for (std::size_t j = 0; j < p->w.cols(); ++j)
          p->w(i, j) -= lr * (p->g(i, j) + weight_decay_ * p->w(i, j));
    }
  }
}

}  // namespace pf
