// LAMB (You et al., 2020) — the paper's NVLAMB baseline optimizer.
//
// Adam-style moments plus a per-tensor trust ratio
//   trust = ||w|| / ||m̂/(√v̂+ε) + wd·w||   (clamped)
// that rescales the update, enabling the 8K-64K batch training of BERT.
#pragma once

#include "src/optim/optimizer.h"

namespace pf {

class Lamb : public Optimizer {
 public:
  Lamb(double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-6,
       double weight_decay = 0.01, double max_trust = 10.0);
  void step(const std::vector<Param*>& params, double lr) override;

  // Trust ratio used for the most recent step of a parameter (diagnostics).
  double last_trust_ratio(Param* p) const;

 private:
  double beta1_, beta2_, eps_, weight_decay_, max_trust_;
  std::size_t t_ = 0;
  ParamBuffers m_, v_;
  std::unordered_map<Param*, double> last_trust_;
};

}  // namespace pf
