// Global-norm gradient clipping (standard in BERT pretraining recipes).
#pragma once

#include "src/nn/param.h"

namespace pf {

// Scales all gradients so the global L2 norm is at most max_norm.
// Returns the pre-clipping norm.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

}  // namespace pf
