// One BERT encoder block (post-LN):
//   h   = LN1(x + Attention(x))
//   out = LN2(h + W2·GELU(W1·h))
// Exposes the six K-FAC-tracked linears (Wq, Wk, Wv, Wo, W1, W2) — the
// factor shapes assumed by the cost model in src/hw.
#pragma once

#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/layer_norm.h"

namespace pf {

class TransformerBlock {
 public:
  TransformerBlock(std::size_t d_model, std::size_t d_ff, std::size_t n_heads,
                   Rng& rng, const std::string& name);

  Matrix forward(const Matrix& x, std::size_t batch, std::size_t seq,
                 bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  // `dx_only` defers the six tracked linears' dW GEMMs (zero-bubble B pass;
  // LayerNorm/GELU grads are cheap and stay on the critical path).
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults(),
                  bool dx_only = false);

  std::vector<Param*> params();
  std::vector<Linear*> kfac_linears();

  // Cache externalization for pipeline stages (see linear.h): the block's
  // full backward state for one micro-batch.
  struct Cache {
    MultiHeadSelfAttention::Cache attn;
    LayerNorm::Cache ln1, ln2;
    Linear::Cache w1, w2;
    Gelu::Cache gelu;
  };
  Cache save_cache();
  void restore_cache(const Cache& c);
  void restore_cache(Cache&& c);

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm ln1_;
  Linear w1_;
  Gelu gelu_;
  Linear w2_;
  LayerNorm ln2_;
};

}  // namespace pf
