#include "src/nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "src/common/check.h"

namespace pf {

namespace {

constexpr char kMagic[] = "PFCKPT1\n";

void write_u64(std::ofstream& f, std::uint64_t v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& f) {
  std::uint64_t v = 0;
  f.read(reinterpret_cast<char*>(&v), sizeof(v));
  PF_CHECK(f.good()) << "truncated checkpoint";
  return v;
}

}  // namespace

void save_params(const std::vector<Param*>& params,
                 const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  PF_CHECK(f.good()) << "cannot open " << path;
  f.write(kMagic, sizeof(kMagic) - 1);
  write_u64(f, params.size());
  for (const Param* p : params) {
    write_u64(f, p->name.size());
    f.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(f, p->w.rows());
    write_u64(f, p->w.cols());
    f.write(reinterpret_cast<const char*>(p->w.data()),
            static_cast<std::streamsize>(p->w.size() * sizeof(double)));
  }
  PF_CHECK(f.good()) << "write failed for " << path;
}

void load_params(const std::vector<Param*>& params,
                 const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  PF_CHECK(f.good()) << "cannot open " << path;
  char magic[sizeof(kMagic) - 1];
  f.read(magic, sizeof(magic));
  PF_CHECK(f.good() && std::string(magic, sizeof(magic)) ==
                           std::string(kMagic, sizeof(magic)))
      << path << " is not a pipefisher checkpoint";
  const std::uint64_t count = read_u64(f);
  PF_CHECK(count == params.size())
      << "checkpoint has " << count << " params, model has "
      << params.size();
  for (Param* p : params) {
    const std::uint64_t name_len = read_u64(f);
    std::string name(name_len, '\0');
    f.read(name.data(), static_cast<std::streamsize>(name_len));
    PF_CHECK(f.good() && name == p->name)
        << "checkpoint param '" << name << "' does not match model param '"
        << p->name << "'";
    const std::uint64_t rows = read_u64(f);
    const std::uint64_t cols = read_u64(f);
    PF_CHECK(rows == p->w.rows() && cols == p->w.cols())
        << "shape mismatch for " << name;
    f.read(reinterpret_cast<char*>(p->w.data()),
           static_cast<std::streamsize>(p->w.size() * sizeof(double)));
    PF_CHECK(f.good()) << "truncated checkpoint at " << name;
  }
}

}  // namespace pf
