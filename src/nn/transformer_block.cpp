#include "src/nn/transformer_block.h"

namespace pf {

TransformerBlock::TransformerBlock(std::size_t d_model, std::size_t d_ff,
                                   std::size_t n_heads, Rng& rng,
                                   const std::string& name)
    : attn_(d_model, n_heads, rng, name + ".attn"),
      ln1_(d_model, name + ".ln1"),
      w1_(d_model, d_ff, rng, name + ".ffn.w1"),
      w2_(d_ff, d_model, rng, name + ".ffn.w2"),
      ln2_(d_model, name + ".ln2") {}

Matrix TransformerBlock::forward(const Matrix& x, std::size_t batch,
                                 std::size_t seq, bool training,
                                 const ExecContext& ctx) {
  Matrix a = attn_.forward(x, batch, seq, training, ctx);
  a += x;  // residual
  const Matrix h = ln1_.forward(a, training, ctx);
  Matrix f = w2_.forward(
      gelu_.forward(w1_.forward(h, training, ctx), training, ctx), training,
      ctx);
  f += h;  // residual
  return ln2_.forward(f, training, ctx);
}

Matrix TransformerBlock::backward(const Matrix& dy, const ExecContext& ctx,
                                  bool dx_only) {
  const Matrix df = ln2_.backward(dy, ctx);
  // f = h + FFN(h): gradient flows both directly and through the FFN.
  const Matrix dg =
      gelu_.backward(dx_only ? w2_.backward_dx(df, ctx) : w2_.backward(df, ctx),
                     ctx);
  Matrix dh = dx_only ? w1_.backward_dx(dg, ctx) : w1_.backward(dg, ctx);
  dh += df;
  const Matrix da = ln1_.backward(dh, ctx);
  // a = x + Attention(x).
  Matrix dx = attn_.backward(da, ctx, dx_only);
  dx += da;
  return dx;
}

TransformerBlock::Cache TransformerBlock::save_cache() {
  Cache c;
  c.attn = attn_.save_cache();
  c.ln1 = ln1_.save_cache();
  c.w1 = w1_.save_cache();
  c.gelu = gelu_.save_cache();
  c.w2 = w2_.save_cache();
  c.ln2 = ln2_.save_cache();
  return c;
}

void TransformerBlock::restore_cache(const Cache& c) {
  attn_.restore_cache(c.attn);
  ln1_.restore_cache(c.ln1);
  w1_.restore_cache(c.w1);
  gelu_.restore_cache(c.gelu);
  w2_.restore_cache(c.w2);
  ln2_.restore_cache(c.ln2);
}

void TransformerBlock::restore_cache(Cache&& c) {
  attn_.restore_cache(std::move(c.attn));
  ln1_.restore_cache(std::move(c.ln1));
  w1_.restore_cache(std::move(c.w1));
  gelu_.restore_cache(std::move(c.gelu));
  w2_.restore_cache(std::move(c.w2));
  ln2_.restore_cache(std::move(c.ln2));
}

std::vector<Param*> TransformerBlock::params() {
  std::vector<Param*> out = attn_.params();
  for (Param* p : ln1_.params()) out.push_back(p);
  for (Param* p : w1_.params()) out.push_back(p);
  for (Param* p : w2_.params()) out.push_back(p);
  for (Param* p : ln2_.params()) out.push_back(p);
  return out;
}

std::vector<Linear*> TransformerBlock::kfac_linears() {
  std::vector<Linear*> out = attn_.kfac_linears();
  out.push_back(&w1_);
  out.push_back(&w2_);
  return out;
}

}  // namespace pf
