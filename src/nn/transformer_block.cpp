#include "src/nn/transformer_block.h"

namespace pf {

TransformerBlock::TransformerBlock(std::size_t d_model, std::size_t d_ff,
                                   std::size_t n_heads, Rng& rng,
                                   const std::string& name)
    : attn_(d_model, n_heads, rng, name + ".attn"),
      ln1_(d_model, name + ".ln1"),
      w1_(d_model, d_ff, rng, name + ".ffn.w1"),
      w2_(d_ff, d_model, rng, name + ".ffn.w2"),
      ln2_(d_model, name + ".ln2") {}

Matrix TransformerBlock::forward(const Matrix& x, std::size_t batch,
                                 std::size_t seq, bool training) {
  Matrix a = attn_.forward(x, batch, seq, training);
  a += x;  // residual
  const Matrix h = ln1_.forward(a, training);
  Matrix f = w2_.forward(gelu_.forward(w1_.forward(h, training), training),
                         training);
  f += h;  // residual
  return ln2_.forward(f, training);
}

Matrix TransformerBlock::backward(const Matrix& dy) {
  const Matrix df = ln2_.backward(dy);
  // f = h + FFN(h): gradient flows both directly and through the FFN.
  Matrix dh = w1_.backward(gelu_.backward(w2_.backward(df)));
  dh += df;
  const Matrix da = ln1_.backward(dh);
  // a = x + Attention(x).
  Matrix dx = attn_.backward(da);
  dx += da;
  return dx;
}

std::vector<Param*> TransformerBlock::params() {
  std::vector<Param*> out = attn_.params();
  for (Param* p : ln1_.params()) out.push_back(p);
  for (Param* p : w1_.params()) out.push_back(p);
  for (Param* p : w2_.params()) out.push_back(p);
  for (Param* p : ln2_.params()) out.push_back(p);
  return out;
}

std::vector<Linear*> TransformerBlock::kfac_linears() {
  std::vector<Linear*> out = attn_.kfac_linears();
  out.push_back(&w1_);
  out.push_back(&w2_);
  return out;
}

}  // namespace pf
