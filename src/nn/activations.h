// GELU activation (tanh approximation, as in BERT) and row-wise softmax.
#pragma once

#include "src/linalg/matrix.h"

namespace pf {

// Stateless forward; callers keep the pre-activation for backward.
Matrix gelu(const Matrix& x);
// dL/dx given pre-activation x and upstream gradient dy.
Matrix gelu_backward(const Matrix& x, const Matrix& dy);

// Row-wise softmax (numerically stable).
Matrix softmax_rows(const Matrix& logits);
// Backward through softmax given its output p and upstream dy:
// dx = p ∘ (dy − rowsum(dy ∘ p)).
Matrix softmax_rows_backward(const Matrix& p, const Matrix& dy);

// Stateful GELU layer for use inside blocks.
class Gelu {
 public:
  Matrix forward(const Matrix& x, bool training = true);
  Matrix backward(const Matrix& dy);

 private:
  Matrix x_cache_;
};

}  // namespace pf
