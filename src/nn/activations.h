// GELU activation (tanh approximation, as in BERT) and row-wise softmax.
//
// All four free functions parallelize their row loops over the ExecContext
// (rows are independent, so every thread count is bitwise identical to the
// serial seed path); the defaulted context keeps the seed-era signatures
// compiling and following the process knobs.
#pragma once

#include "src/common/exec_context.h"
#include "src/linalg/matrix.h"

namespace pf {

// Stateless forward; callers keep the pre-activation for backward.
Matrix gelu(const Matrix& x, const ExecContext& ctx = ExecContext::defaults());
// dL/dx given pre-activation x and upstream gradient dy.
Matrix gelu_backward(const Matrix& x, const Matrix& dy,
                     const ExecContext& ctx = ExecContext::defaults());

// Row-wise softmax (numerically stable).
Matrix softmax_rows(const Matrix& logits,
                    const ExecContext& ctx = ExecContext::defaults());
// Backward through softmax given its output p and upstream dy:
// dx = p ∘ (dy − rowsum(dy ∘ p)).
Matrix softmax_rows_backward(const Matrix& p, const Matrix& dy,
                             const ExecContext& ctx = ExecContext::defaults());

// Stateful GELU layer for use inside blocks.
class Gelu {
 public:
  Matrix forward(const Matrix& x, bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults());

  // Cache externalization for pipeline stages (see linear.h).
  struct Cache {
    Matrix x;
  };
  Cache save_cache() {
    Cache c{std::move(x_cache_)};
    x_cache_ = Matrix();
    return c;
  }
  void restore_cache(const Cache& c) { x_cache_ = c.x; }
  void restore_cache(Cache&& c) { x_cache_ = std::move(c.x); }

 private:
  Matrix x_cache_;
};

}  // namespace pf
