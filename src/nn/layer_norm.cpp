#include "src/nn/layer_norm.h"

#include <cmath>

#include "src/common/arena.h"

namespace pf {

LayerNorm::LayerNorm(std::size_t dim, const std::string& name, double eps)
    : dim_(dim),
      eps_(eps),
      gamma_(1, dim, name + ".gamma"),
      beta_(1, dim, name + ".beta") {
  gamma_.w.fill(1.0);
}

Matrix LayerNorm::forward(const Matrix& x, bool training,
                          const ExecContext& ctx) {
  PF_CHECK(x.cols() == dim_);
  const std::size_t n = x.rows();
  Matrix y(n, dim_);
  if (training) {
    // Fresh every forward (the stash machinery moved last micro's out);
    // arena-backed when the context carries a recycler. xhat is fully
    // overwritten below, so the fill value never shows.
    xhat_ = arena_matrix(ctx.arena(), n, dim_);
    inv_std_.assign(n, 0.0);
  }
  ctx.parallel_for(n, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const double* row = x.row(r);
      double mean = 0.0;
      for (std::size_t c = 0; c < dim_; ++c) mean += row[c];
      mean /= static_cast<double>(dim_);
      double var = 0.0;
      for (std::size_t c = 0; c < dim_; ++c) {
        const double d = row[c] - mean;
        var += d * d;
      }
      var /= static_cast<double>(dim_);
      const double inv = 1.0 / std::sqrt(var + eps_);
      for (std::size_t c = 0; c < dim_; ++c) {
        const double xh = (row[c] - mean) * inv;
        if (training) xhat_(r, c) = xh;
        y(r, c) = xh * gamma_.w(0, c) + beta_.w(0, c);
      }
      if (training) inv_std_[r] = inv;
    }
  });
  return y;
}

Matrix LayerNorm::backward(const Matrix& dy, const ExecContext& ctx) {
  PF_CHECK(!xhat_.empty()) << "backward before forward";
  PF_CHECK(dy.rows() == xhat_.rows() && dy.cols() == dim_);
  const std::size_t n = dy.rows();
  const double dimd = static_cast<double>(dim_);
  Matrix dx(n, dim_);
  // Phase 1, row-parallel: dxhat = dy ∘ gamma;
  // dx = inv_std·(dxhat − mean(dxhat) − xhat·mean(dxhat ∘ xhat)).
  ctx.parallel_for(n, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
      for (std::size_t c = 0; c < dim_; ++c) {
        const double dxh = dy(r, c) * gamma_.w(0, c);
        mean_dxhat += dxh;
        mean_dxhat_xhat += dxh * xhat_(r, c);
      }
      mean_dxhat /= dimd;
      mean_dxhat_xhat /= dimd;
      for (std::size_t c = 0; c < dim_; ++c) {
        const double dxh = dy(r, c) * gamma_.w(0, c);
        dx(r, c) =
            inv_std_[r] * (dxh - mean_dxhat - xhat_(r, c) * mean_dxhat_xhat);
      }
    }
  });
  // Phase 2, column-sharded parameter gradients: each gamma/beta coordinate
  // accumulates its rows in ascending order — the serial sequence per
  // memory location, so every thread count is bitwise equal to serial.
  ctx.parallel_for(dim_, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = c0; c < c1; ++c) {
        gamma_.g(0, c) += dy(r, c) * xhat_(r, c);
        beta_.g(0, c) += dy(r, c);
      }
    }
  });
  return dx;
}

}  // namespace pf
