#include "src/nn/dropout.h"

#include "src/common/check.h"

namespace pf {

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  PF_CHECK(p >= 0.0 && p < 1.0) << "dropout p=" << p;
}

Matrix Dropout::forward(const Matrix& x, bool training) {
  if (!training || p_ == 0.0) return x;
  const double scale = 1.0 / (1.0 - p_);
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double keep = rng_.bernoulli(p_) ? 0.0 : scale;
      mask_(r, c) = keep;
      y(r, c) = x(r, c) * keep;
    }
  return y;
}

Matrix Dropout::backward(const Matrix& dy) const {
  if (p_ == 0.0) return dy;
  PF_CHECK(!mask_.empty()) << "backward before training forward";
  PF_CHECK(dy.same_shape(mask_));
  Matrix dx(dy.rows(), dy.cols());
  for (std::size_t r = 0; r < dy.rows(); ++r)
    for (std::size_t c = 0; c < dy.cols(); ++c)
      dx(r, c) = dy(r, c) * mask_(r, c);
  return dx;
}

}  // namespace pf
