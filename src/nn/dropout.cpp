#include "src/nn/dropout.h"

#include "src/common/check.h"

namespace pf {

Dropout::Dropout(double p, std::uint64_t seed)
    : p_(p), seed_(seed), rng_(seed) {
  PF_CHECK(p >= 0.0 && p < 1.0) << "dropout p=" << p;
}

Matrix Dropout::forward(const Matrix& x, bool training,
                        const ExecContext& ctx) {
  if (!training || p_ == 0.0) return x;
  const double scale = 1.0 / (1.0 - p_);
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y(x.rows(), x.cols());
  const std::uint64_t draw = draw_count_++;
  if (ctx.rng_partition() == RngPartition::kPerRow) {
    // Row r of the layer's `draw`-th training forward owns an independent
    // substream — parallel and thread-count-invariant by construction.
    ctx.parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        Rng row_rng(derive_stream_seed(seed_, draw, r));
        for (std::size_t c = 0; c < x.cols(); ++c) {
          const double keep = row_rng.bernoulli(p_) ? 0.0 : scale;
          mask_(r, c) = keep;
          y(r, c) = x(r, c) * keep;
        }
      }
    });
  } else {
    // Sequential policy: draw the mask on the calling thread in the seed's
    // row-major order, then apply it row-parallel (pure elementwise math —
    // bitwise identical at every thread count and byte-compatible with the
    // seed stream).
    for (std::size_t r = 0; r < x.rows(); ++r)
      for (std::size_t c = 0; c < x.cols(); ++c)
        mask_(r, c) = rng_.bernoulli(p_) ? 0.0 : scale;
    ctx.parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
          y(r, c) = x(r, c) * mask_(r, c);
    });
  }
  return y;
}

Matrix Dropout::backward(const Matrix& dy, const ExecContext& ctx) const {
  if (p_ == 0.0) return dy;
  PF_CHECK(!mask_.empty()) << "backward before training forward";
  PF_CHECK(dy.same_shape(mask_));
  Matrix dx(dy.rows(), dy.cols());
  ctx.parallel_for(dy.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r)
      for (std::size_t c = 0; c < dy.cols(); ++c)
        dx(r, c) = dy(r, c) * mask_(r, c);
  });
  return dx;
}

}  // namespace pf
