#include "src/nn/bert.h"

#include "src/common/check.h"

namespace pf {

BertModel::BertModel(const BertConfig& cfg, Rng& rng)
    : cfg_(cfg),
      emb_(cfg.vocab, cfg.seq_len, cfg.d_model, rng, "embedding"),
      mlm_head_(cfg.d_model, cfg.vocab, rng, "mlm_head"),
      nsp_head_(cfg.d_model, 2, rng, "nsp_head") {
  for (std::size_t i = 0; i < cfg.n_layers; ++i)
    blocks_.emplace_back(cfg.d_model, cfg.d_ff, cfg.n_heads, rng,
                         "block" + std::to_string(i));
}

Matrix BertModel::encode(const BertBatch& batch, bool training,
                         const ExecContext& ctx) {
  PF_CHECK(batch.seq == cfg_.seq_len)
      << "batch seq " << batch.seq << " != config " << cfg_.seq_len;
  PF_CHECK(batch.ids.size() == batch.batch * batch.seq);
  last_batch_ = batch.batch;
  Matrix h = emb_.forward(batch.ids, batch.segments, batch.batch, batch.seq,
                          training, ctx);
  for (auto& block : blocks_)
    h = block.forward(h, batch.batch, batch.seq, training, ctx);
  return h;
}

Matrix gather_cls_rows(const Matrix& h, std::size_t batch, std::size_t seq) {
  Matrix cls(batch, h.cols());
  for (std::size_t b = 0; b < batch; ++b) {
    const double* row = h.row(b * seq);
    for (std::size_t c = 0; c < h.cols(); ++c) cls(b, c) = row[c];
  }
  return cls;
}

BertLossBreakdown BertModel::train_step_backward(const BertBatch& batch,
                                                 const ExecContext& ctx) {
  const Matrix h = encode(batch, /*training=*/true, ctx);

  const Matrix mlm_logits = mlm_head_.forward(h, true, ctx);
  const auto mlm = softmax_cross_entropy(mlm_logits, batch.mlm_labels, ctx);

  const Matrix cls = gather_cls_rows(h, batch.batch, batch.seq);
  const Matrix nsp_logits = nsp_head_.forward(cls, true, ctx);
  const auto nsp = softmax_cross_entropy(nsp_logits, batch.nsp_labels, ctx);

  // Backward: dL/dh from both heads.
  Matrix dh = mlm_head_.backward(mlm.dlogits, ctx);
  const Matrix dcls = nsp_head_.backward(nsp.dlogits, ctx);
  for (std::size_t b = 0; b < batch.batch; ++b) {
    double* row = dh.row(b * batch.seq);
    for (std::size_t c = 0; c < dh.cols(); ++c) row[c] += dcls(b, c);
  }
  for (std::size_t i = blocks_.size(); i-- > 0;)
    dh = blocks_[i].backward(dh, ctx);
  emb_.backward(dh, ctx);

  return {mlm.loss + nsp.loss, mlm.loss, nsp.loss};
}

BertInferOutput BertModel::forward(const BertBatch& batch, bool training,
                                   const ExecContext& ctx) {
  const Matrix h = encode(batch, training, ctx);
  BertInferOutput out;
  out.mlm_logits = mlm_head_.forward(h, training, ctx);
  const Matrix cls = gather_cls_rows(h, batch.batch, batch.seq);
  out.nsp_logits = nsp_head_.forward(cls, training, ctx);
  return out;
}

BertLossBreakdown BertModel::evaluate(const BertBatch& batch,
                                      const ExecContext& ctx) {
  const BertInferOutput out = forward(batch, /*training=*/false, ctx);
  const auto mlm = softmax_cross_entropy(out.mlm_logits, batch.mlm_labels, ctx);
  const auto nsp = softmax_cross_entropy(out.nsp_logits, batch.nsp_labels, ctx);
  return {mlm.loss + nsp.loss, mlm.loss, nsp.loss};
}

std::vector<Param*> BertModel::params() {
  std::vector<Param*> out = emb_.params();
  for (auto& b : blocks_)
    for (Param* p : b.params()) out.push_back(p);
  for (Param* p : mlm_head_.params()) out.push_back(p);
  for (Param* p : nsp_head_.params()) out.push_back(p);
  return out;
}

std::vector<Linear*> BertModel::kfac_linears() {
  std::vector<Linear*> out;
  for (auto& b : blocks_)
    for (Linear* l : b.kfac_linears()) out.push_back(l);
  return out;
}

std::size_t BertModel::n_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->size();
  return n;
}

}  // namespace pf
