// Trainable parameter: value + gradient accumulator, shared by all layers
// and consumed by the optimizers.
#pragma once

#include <string>
#include <vector>

#include "src/linalg/matrix.h"

namespace pf {

struct Param {
  Param(std::size_t rows, std::size_t cols, std::string n)
      : w(rows, cols), g(rows, cols), name(std::move(n)) {}

  Matrix w;  // value
  Matrix g;  // gradient (accumulated by backward passes)
  std::string name;

  void zero_grad() { g.fill(0.0); }
  std::size_t size() const { return w.size(); }
};

// Zeroes the gradients of a parameter set.
inline void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->zero_grad();
}

// Global L2 norm of all gradients (diagnostics / clipping).
double global_grad_norm(const std::vector<Param*>& params);

}  // namespace pf
