#include "src/nn/linear.h"

#include <cmath>

#include "src/common/arena.h"
#include "src/linalg/gemm.h"

namespace pf {

double global_grad_norm(const std::vector<Param*>& params) {
  double s = 0.0;
  for (const Param* p : params) {
    const double n = p->g.frobenius_norm();
    s += n * n;
  }
  return std::sqrt(s);
}

Linear::Linear(std::size_t d_in, std::size_t d_out, Rng& rng,
               const std::string& name, double init_std)
    : d_in_(d_in),
      d_out_(d_out),
      name_(name),
      w_(d_in, d_out, name + ".weight"),
      b_(1, d_out, name + ".bias") {
  w_.w = Matrix::randn(d_in, d_out, rng, init_std);
}

Matrix Linear::forward(const Matrix& x, bool training,
                       const ExecContext& ctx) {
  PF_CHECK(x.cols() == d_in_)
      << name_ << ": input cols " << x.cols() << " != d_in " << d_in_;
  Matrix y = matmul(x, w_.w, ctx);
  ctx.parallel_for(y.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      double* row = y.row(r);
      for (std::size_t c = 0; c < d_out_; ++c) row[c] += b_.w(0, c);
    }
  });
  if (training) arena_assign(ctx.arena(), x_cache_, x);
  return y;
}

Matrix Linear::backward(const Matrix& dy, const ExecContext& ctx) {
  PF_CHECK(dy.cols() == d_out_);
  PF_CHECK(!x_cache_.empty()) << name_ << ": backward before forward";
  PF_CHECK(dy.rows() == x_cache_.rows());
  arena_assign(ctx.arena(), dy_cache_, dy);
  // dW += xᵀ·dy; db += column sums; dx = dy·Wᵀ.
  matmul_tn_acc(x_cache_, dy, w_.g, 1.0, ctx);
  // db column-sharded: every bias coordinate accumulates its rows in
  // ascending order regardless of the partition — bitwise equal to serial.
  ctx.parallel_for(d_out_, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t r = 0; r < dy.rows(); ++r) {
      const double* row = dy.row(r);
      for (std::size_t c = c0; c < c1; ++c) b_.g(0, c) += row[c];
    }
  });
  return matmul_nt(dy, w_.w, ctx);
}

Matrix Linear::backward_dx(const Matrix& dy, const ExecContext& ctx) {
  PF_CHECK(dy.cols() == d_out_);
  PF_CHECK(!x_cache_.empty()) << name_ << ": backward before forward";
  PF_CHECK(dy.rows() == x_cache_.rows());
  arena_assign(ctx.arena(), dy_cache_, dy);
  // db += column sums; dx = dy·Wᵀ. The dW GEMM is deferred to backward_dw.
  ctx.parallel_for(d_out_, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t r = 0; r < dy.rows(); ++r) {
      const double* row = dy.row(r);
      for (std::size_t c = c0; c < c1; ++c) b_.g(0, c) += row[c];
    }
  });
  return matmul_nt(dy, w_.w, ctx);
}

void Linear::backward_dw(const ExecContext& ctx) {
  PF_CHECK(!x_cache_.empty() && !dy_cache_.empty())
      << name_ << ": backward_dw before backward_dx";
  matmul_tn_acc(x_cache_, dy_cache_, w_.g, 1.0, ctx);
}

void Linear::backward_dw(const Cache& c, const ExecContext& ctx) {
  PF_CHECK(!c.x.empty() && !c.dy.empty())
      << name_ << ": backward_dw on an incomplete cache";
  PF_CHECK(c.x.rows() == c.dy.rows() && c.x.cols() == d_in_ &&
           c.dy.cols() == d_out_);
  matmul_tn_acc(c.x, c.dy, w_.g, 1.0, ctx);
}

}  // namespace pf
