// Binary checkpointing of parameter sets (name + shape + doubles).
//
// Format: magic "PFCKPT1\n", u64 param count, then per param:
// u64 name length, name bytes, u64 rows, u64 cols, rows·cols doubles
// (little-endian host layout — the library targets a single host).
#pragma once

#include <string>
#include <vector>

#include "src/nn/param.h"

namespace pf {

void save_params(const std::vector<Param*>& params, const std::string& path);

// Loads into an existing parameter set; names, order and shapes must match
// exactly (throws pf::Error otherwise). Gradients are untouched.
void load_params(const std::vector<Param*>& params, const std::string& path);

}  // namespace pf
