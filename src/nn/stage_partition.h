// Pipeline-stage partition of a BertModel (paper §2: "the model is
// partitioned into D stages, one per device").
//
// BertStagePartition cuts an existing model into `n_stages` contiguous
// stage views — stage 0 additionally owns the embedding, the last stage
// the MLM/NSP heads and the loss; encoder blocks are distributed evenly
// (stages may own zero blocks on very shallow models, becoming pure
// relays). The views are NON-owning: pipeline execution trains the same
// Param objects the serial path trains, which is what makes the
// bitwise-equality contract of the pipeline runtime meaningful.
//
// Multi-micro-batch execution: a pipeline keeps several micro-batches in
// flight per stage, but every nn layer holds exactly one backward cache.
// Each stage therefore stashes its layers' caches per micro-batch
// (Layer::save_cache / restore_cache, see linear.h). Stash traffic is
// move/borrow, never copy:
//
//   forward(m):  run layer forwards, then MOVE the fresh caches into
//                fwd_stash[m]. The stash is immutable while it exists —
//                K-FAC curvature-A tasks read a_l from it as soon as the
//                forward is done (the paper's readiness rule 1).
//   backward(m): MOVE fwd_stash[m] back into the layers (the entry is
//                erased), run backwards, then harvest exactly what K-FAC
//                reads — each tracked linear's {a_l, e_l} pair — into
//                kfac_stash[m]. The borrow round trip preserves the exact
//                buffers (backward reads but never mutates a_l), so a
//                curvature-A task that runs after the backward sees a_l
//                bit for bit. Everything else the forward stashed returns
//                to the layers, where the next forward reuses (or arena-
//                recycles) the storage — peak stash bytes stay
//                O(in-flight micros) + O(n_micro) · |{a_l, e_l}| instead
//                of O(n_micro) full activation sets.
//
// set_copy_stashes(true) restores the historical copy-restore behaviour
// (stash copied into the layers at backward, entries held to end of step)
// — kept only so the stash-overhead benches can measure before/after.
//
// Gradients accumulate directly into the shared Param.g, so the caller
// (the pipeline runtime) must order each stage's backwards by ascending
// global micro id — then every gradient coordinate receives its additions
// in exactly the serial trainer's order, making the whole run bitwise
// identical to `Trainer` with accumulation_steps = n_micro.
//
// Thread safety: a stage object is NOT internally synchronized. The
// runtime serializes all ops (and stash-reading K-FAC tasks) of one stage
// through a TaskExecutor resource token; Chimera maps one model stage onto
// two devices, which is where the token actually bites.
#pragma once

#include <map>

#include "src/nn/bert.h"

namespace pf {

class ArenaAllocator;

class BertStage {
 public:
  // Per-micro forward. `in` is the boundary activation from stage s-1
  // (ignored by stage 0, which reads the batch); returns the boundary
  // activation for stage s+1 (empty for the last stage, which instead
  // records the per-micro losses). Training mode is implied.
  Matrix forward(int micro, const BertBatch& batch, Matrix in,
                 const ExecContext& ctx);

  // Inference-mode forward: the same op sequence as forward() with
  // training=false everywhere and NO stash writes — an unbounded micro
  // stream can flow through the stage without clear_stash() and without
  // growing memory (the serving engine's path). Non-last stages return the
  // boundary activation for stage s+1; the last stage fills `out` (required
  // there, ignored elsewhere) and returns an empty Matrix. Labels in
  // `batch` are never read.
  Matrix infer(const BertBatch& batch, Matrix in, const ExecContext& ctx,
               BertInferOutput* out = nullptr) const;

  // Per-micro backward. `grad_in` is d(out) from stage s+1 (ignored by the
  // last stage, whose gradient starts at its own losses); returns d(in)
  // for stage s-1 (empty for stage 0, which ends at the embedding
  // scatter). Must be called after this micro's forward; the runtime
  // orders calls by ascending micro (see file comment).
  // `keep_kfac_stash`: when false (no curvature task will read this
  // micro — LAMB-only runs, non-refresh steps) the micro's stashes are
  // dropped here instead of held to end of step, keeping peak activation
  // memory at O(in-flight micros) rather than O(n_micro).
  // `defer_dw` (zero-bubble B pass): every Linear in the stage — the six
  // tracked per block plus the heads — runs backward_dx instead of
  // backward, and its {a_l, e_l} pair is harvested into the K-FAC stash
  // (head caches appended after the tracked indices) regardless of
  // keep_kfac_stash. The dW GEMMs then run in backward_dw(micro), which
  // the runtime chains per stage by ascending micro so each weight
  // coordinate accumulates in the serial trainer's order. Embedding,
  // LayerNorm and bias grads are cheap and stay here on the critical
  // path. Incompatible with copy_stashes mode.
  Matrix backward(int micro, const BertBatch& batch, Matrix grad_in,
                  const ExecContext& ctx, bool keep_kfac_stash = true,
                  bool defer_dw = false);

  // Zero-bubble W pass for one micro: dW += a_lᵀ·e_l for every Linear
  // whose GEMM backward(defer_dw=true) deferred, reading the harvested
  // caches. `release` drops the micro's stash afterwards (parked in the
  // arena) — pass false when curvature tasks still read it this step.
  // Same thread-safety rule as backward: the runtime serializes this with
  // the stage's other work through the stage resource token.
  void backward_dw(int micro, const ExecContext& ctx, bool release,
                   ArenaAllocator* arena = nullptr);

  // Last stage only: the losses recorded by forward(micro).
  BertLossBreakdown losses(int micro) const;

  // Stashed K-FAC tensors of one micro for factor (linear) index f in
  // kfac_linears() order: a_l after forward(micro) (served from fwd_stash
  // before the micro's backward, from kfac_stash after it), e_l after
  // backward(micro).
  const Matrix& kfac_input(int micro, std::size_t f) const;
  const Matrix& kfac_output_grad(int micro, std::size_t f) const;

  // Releases all per-micro stashes (end of step). With an arena, every
  // stashed buffer is parked there for the next step's forwards to recycle
  // instead of being freed.
  void clear_stash(ArenaAllocator* arena = nullptr);

  // Legacy copy-restore stash semantics (see file comment). Flip only
  // between steps.
  void set_copy_stashes(bool v) { copy_stashes_ = v; }

  // --- Stash telemetry ---------------------------------------------------
  // Bytes currently held by this stage's per-micro stashes (fwd + kfac) and
  // the high-water mark since reset_stash_stats(). Counts matrix/vector
  // payloads, not map overhead. Read between steps.
  std::size_t stash_bytes() const { return stash_bytes_; }
  std::size_t peak_stash_bytes() const { return peak_stash_bytes_; }
  void reset_stash_stats() { peak_stash_bytes_ = stash_bytes_; }

  std::vector<Param*> params() const;
  std::vector<Linear*> kfac_linears() const { return kfac_linears_; }

  int index() const { return index_; }
  bool is_first() const { return emb_ != nullptr; }
  bool is_last() const { return mlm_head_ != nullptr; }
  std::size_t n_blocks() const { return blocks_.size(); }

 private:
  friend class BertStagePartition;

  struct StageCache {
    Embedding::Cache emb;                       // stage 0 only
    std::vector<TransformerBlock::Cache> blocks;
    Linear::Cache mlm_head, nsp_head;           // last stage only
    Matrix mlm_dlogits, nsp_dlogits;            // loss grads (last stage)
  };

  StageCache save_caches();
  void restore_caches(const StageCache& c);
  void restore_caches(StageCache&& c);
  const Linear::Cache& kfac_cache_of(const StageCache& c,
                                     std::size_t f) const;

  static std::size_t bytes_of(const StageCache& c);
  static std::size_t bytes_of(const std::vector<Linear::Cache>& kcs);
  static void release_to_arena(ArenaAllocator* arena, StageCache&& c);
  void stash_add(std::size_t bytes);
  void stash_sub(std::size_t bytes);

  int index_ = 0;
  Embedding* emb_ = nullptr;       // stage 0
  std::vector<TransformerBlock*> blocks_;
  Linear* mlm_head_ = nullptr;     // last stage
  Linear* nsp_head_ = nullptr;
  std::vector<Linear*> kfac_linears_;
  std::map<int, StageCache> fwd_stash_;
  // What K-FAC reads, harvested at backward in kfac_linears() order: a_l
  // (empty in copy_stashes mode, where fwd_stash keeps serving it) and e_l
  // of each tracked linear. Stashing the full cache set again would hold
  // every forward activation twice until end of step.
  std::map<int, std::vector<Linear::Cache>> kfac_stash_;
  // Losses live outside the cache stash: they survive a dropped stash
  // (keep_kfac_stash = false) until the step's loss fold reads them.
  std::map<int, BertLossBreakdown> loss_stash_;
  bool copy_stashes_ = false;
  std::size_t stash_bytes_ = 0;
  std::size_t peak_stash_bytes_ = 0;
};

class BertStagePartition {
 public:
  // Cuts `model` into n_stages contiguous stages (n_stages >= 1). The
  // partition keeps pointers into the model; the model must outlive it.
  BertStagePartition(BertModel& model, int n_stages);

  int n_stages() const { return static_cast<int>(stages_.size()); }
  BertStage& stage(int s);
  const BertStage& stage(int s) const;

  // Every stage's params / kfac linears concatenated in stage order equals
  // the model's own ordering (pinned in tests).
  std::vector<Param*> params() const;

 private:
  std::vector<BertStage> stages_;
};

}  // namespace pf
