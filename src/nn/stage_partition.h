// Pipeline-stage partition of a BertModel (paper §2: "the model is
// partitioned into D stages, one per device").
//
// BertStagePartition cuts an existing model into `n_stages` contiguous
// stage views — stage 0 additionally owns the embedding, the last stage
// the MLM/NSP heads and the loss; encoder blocks are distributed evenly
// (stages may own zero blocks on very shallow models, becoming pure
// relays). The views are NON-owning: pipeline execution trains the same
// Param objects the serial path trains, which is what makes the
// bitwise-equality contract of the pipeline runtime meaningful.
//
// Multi-micro-batch execution: a pipeline keeps several micro-batches in
// flight per stage, but every nn layer holds exactly one backward cache.
// Each stage therefore stashes its layers' caches per micro-batch
// (Layer::save_cache / restore_cache, see linear.h):
//
//   forward(m):  run layer forwards, then MOVE the fresh caches into
//                fwd_stash[m]. The stash is immutable afterwards — K-FAC
//                curvature-A tasks read a_l from it as soon as the forward
//                is done (the paper's readiness rule 1).
//   backward(m): COPY fwd_stash[m] back into the layers, run backwards,
//                then move the caches (now including e_l) into
//                bwd_stash[m] for the curvature-B tasks.
//
// Gradients accumulate directly into the shared Param.g, so the caller
// (the pipeline runtime) must order each stage's backwards by ascending
// global micro id — then every gradient coordinate receives its additions
// in exactly the serial trainer's order, making the whole run bitwise
// identical to `Trainer` with accumulation_steps = n_micro.
//
// Thread safety: a stage object is NOT internally synchronized. The
// runtime serializes all ops (and stash-reading K-FAC tasks) of one stage
// through a TaskExecutor resource token; Chimera maps one model stage onto
// two devices, which is where the token actually bites.
#pragma once

#include <map>

#include "src/nn/bert.h"

namespace pf {

class BertStage {
 public:
  // Per-micro forward. `in` is the boundary activation from stage s-1
  // (ignored by stage 0, which reads the batch); returns the boundary
  // activation for stage s+1 (empty for the last stage, which instead
  // records the per-micro losses). Training mode is implied.
  Matrix forward(int micro, const BertBatch& batch, Matrix in,
                 const ExecContext& ctx);

  // Per-micro backward. `grad_in` is d(out) from stage s+1 (ignored by the
  // last stage, whose gradient starts at its own losses); returns d(in)
  // for stage s-1 (empty for stage 0, which ends at the embedding
  // scatter). Must be called after this micro's forward; the runtime
  // orders calls by ascending micro (see file comment).
  // `keep_kfac_stash`: when false (no curvature task will read this
  // micro — LAMB-only runs, non-refresh steps) the micro's stashes are
  // dropped here instead of held to end of step, keeping peak activation
  // memory at O(in-flight micros) rather than O(n_micro).
  Matrix backward(int micro, const BertBatch& batch, Matrix grad_in,
                  const ExecContext& ctx, bool keep_kfac_stash = true);

  // Last stage only: the losses recorded by forward(micro).
  BertLossBreakdown losses(int micro) const;

  // Stashed K-FAC tensors of one micro for factor (linear) index f in
  // kfac_linears() order: a_l after forward(micro), e_l after
  // backward(micro).
  const Matrix& kfac_input(int micro, std::size_t f) const;
  const Matrix& kfac_output_grad(int micro, std::size_t f) const;

  // Releases all per-micro stashes (end of step).
  void clear_stash();

  std::vector<Param*> params() const;
  std::vector<Linear*> kfac_linears() const { return kfac_linears_; }

  int index() const { return index_; }
  bool is_first() const { return emb_ != nullptr; }
  bool is_last() const { return mlm_head_ != nullptr; }
  std::size_t n_blocks() const { return blocks_.size(); }

 private:
  friend class BertStagePartition;

  struct StageCache {
    Embedding::Cache emb;                       // stage 0 only
    std::vector<TransformerBlock::Cache> blocks;
    Linear::Cache mlm_head, nsp_head;           // last stage only
    Matrix mlm_dlogits, nsp_dlogits;            // loss grads (last stage)
  };

  StageCache save_caches();
  void restore_caches(const StageCache& c);
  const Linear::Cache& kfac_cache_of(const StageCache& c,
                                     std::size_t f) const;

  int index_ = 0;
  Embedding* emb_ = nullptr;       // stage 0
  std::vector<TransformerBlock*> blocks_;
  Linear* mlm_head_ = nullptr;     // last stage
  Linear* nsp_head_ = nullptr;
  std::vector<Linear*> kfac_linears_;
  std::map<int, StageCache> fwd_stash_;
  // Backward keeps only what curvature-B reads: each K-FAC linear's e_l
  // (in kfac_linears() order). Stashing the full cache set again would
  // hold every forward activation twice until end of step.
  std::map<int, std::vector<Matrix>> dy_stash_;
  // Losses live outside the cache stash: they survive a dropped stash
  // (keep_kfac_stash = false) until the step's loss fold reads them.
  std::map<int, BertLossBreakdown> loss_stash_;
};

class BertStagePartition {
 public:
  // Cuts `model` into n_stages contiguous stages (n_stages >= 1). The
  // partition keeps pointers into the model; the model must outlive it.
  BertStagePartition(BertModel& model, int n_stages);

  int n_stages() const { return static_cast<int>(stages_.size()); }
  BertStage& stage(int s);
  const BertStage& stage(int s) const;

  // Every stage's params / kfac linears concatenated in stage order equals
  // the model's own ordering (pinned in tests).
  std::vector<Param*> params() const;

 private:
  std::vector<BertStage> stages_;
};

}  // namespace pf
