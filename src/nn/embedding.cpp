#include "src/nn/embedding.h"

#include "src/common/check.h"

namespace pf {

Embedding::Embedding(std::size_t vocab, std::size_t max_seq,
                     std::size_t d_model, Rng& rng, const std::string& name)
    : vocab_(vocab),
      max_seq_(max_seq),
      d_model_(d_model),
      tokens_(vocab, d_model, name + ".tokens"),
      positions_(max_seq, d_model, name + ".positions"),
      segments_(2, d_model, name + ".segments") {
  tokens_.w = Matrix::randn(vocab, d_model, rng, 0.02);
  positions_.w = Matrix::randn(max_seq, d_model, rng, 0.02);
  segments_.w = Matrix::randn(2, d_model, rng, 0.02);
}

Matrix Embedding::forward(const std::vector<int>& ids,
                          const std::vector<int>& segments, std::size_t batch,
                          std::size_t seq, bool training,
                          const ExecContext& ctx) {
  PF_CHECK(ids.size() == batch * seq);
  PF_CHECK(segments.size() == ids.size());
  PF_CHECK(seq <= max_seq_);
  Matrix out(ids.size(), d_model_);
  // Token-parallel gather; the id/segment range checks ride inside the
  // chunks (parallel_for rethrows the first failure on the caller).
  ctx.parallel_for(ids.size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const int tok = ids[i];
      const int seg = segments[i];
      PF_CHECK(tok >= 0 && static_cast<std::size_t>(tok) < vocab_)
          << "token id " << tok << " out of vocab " << vocab_;
      PF_CHECK(seg == 0 || seg == 1);
      const std::size_t pos = i % seq;
      for (std::size_t c = 0; c < d_model_; ++c)
        out(i, c) = tokens_.w(static_cast<std::size_t>(tok), c) +
                    positions_.w(pos, c) +
                    segments_.w(static_cast<std::size_t>(seg), c);
    }
  });
  if (training) {
    ids_cache_ = ids;
    seg_cache_ = segments;
    batch_cache_ = batch;
    seq_cache_ = seq;
  }
  return out;
}

void Embedding::backward(const Matrix& dy, const ExecContext& ctx) {
  PF_CHECK(!ids_cache_.empty()) << "backward before forward";
  PF_CHECK(dy.rows() == ids_cache_.size() && dy.cols() == d_model_);
  const std::size_t n = ids_cache_.size();
  // Owner-computes scatter over the concatenated row space
  // [0, vocab) ∪ [vocab, vocab+max_seq) ∪ [vocab+max_seq, +2): every shard
  // scans all tokens in ascending order and applies only the updates whose
  // destination row it owns, so each gradient coordinate accumulates in the
  // serial order no matter how many threads run (bitwise identical).
  const std::size_t pos0 = vocab_;
  const std::size_t seg0 = vocab_ + max_seq_;
  ctx.parallel_for(seg0 + 2, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto tok = static_cast<std::size_t>(ids_cache_[i]);
      const std::size_t pos = pos0 + i % seq_cache_;
      const auto seg = seg0 + static_cast<std::size_t>(seg_cache_[i]);
      const double* g = dy.row(i);
      if (tok >= r0 && tok < r1) {
        double* dst = tokens_.g.row(tok);
        for (std::size_t c = 0; c < d_model_; ++c) dst[c] += g[c];
      }
      if (pos >= r0 && pos < r1) {
        double* dst = positions_.g.row(pos - pos0);
        for (std::size_t c = 0; c < d_model_; ++c) dst[c] += g[c];
      }
      if (seg >= r0 && seg < r1) {
        double* dst = segments_.g.row(seg - seg0);
        for (std::size_t c = 0; c < d_model_; ++c) dst[c] += g[c];
      }
    }
  });
}

}  // namespace pf
