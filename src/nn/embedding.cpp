#include "src/nn/embedding.h"

#include "src/common/check.h"

namespace pf {

Embedding::Embedding(std::size_t vocab, std::size_t max_seq,
                     std::size_t d_model, Rng& rng, const std::string& name)
    : vocab_(vocab),
      max_seq_(max_seq),
      d_model_(d_model),
      tokens_(vocab, d_model, name + ".tokens"),
      positions_(max_seq, d_model, name + ".positions"),
      segments_(2, d_model, name + ".segments") {
  tokens_.w = Matrix::randn(vocab, d_model, rng, 0.02);
  positions_.w = Matrix::randn(max_seq, d_model, rng, 0.02);
  segments_.w = Matrix::randn(2, d_model, rng, 0.02);
}

Matrix Embedding::forward(const std::vector<int>& ids,
                          const std::vector<int>& segments, std::size_t batch,
                          std::size_t seq, bool training) {
  PF_CHECK(ids.size() == batch * seq);
  PF_CHECK(segments.size() == ids.size());
  PF_CHECK(seq <= max_seq_);
  Matrix out(ids.size(), d_model_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int tok = ids[i];
    const int seg = segments[i];
    PF_CHECK(tok >= 0 && static_cast<std::size_t>(tok) < vocab_)
        << "token id " << tok << " out of vocab " << vocab_;
    PF_CHECK(seg == 0 || seg == 1);
    const std::size_t pos = i % seq;
    for (std::size_t c = 0; c < d_model_; ++c)
      out(i, c) = tokens_.w(static_cast<std::size_t>(tok), c) +
                  positions_.w(pos, c) +
                  segments_.w(static_cast<std::size_t>(seg), c);
  }
  if (training) {
    ids_cache_ = ids;
    seg_cache_ = segments;
    batch_cache_ = batch;
    seq_cache_ = seq;
  }
  return out;
}

void Embedding::backward(const Matrix& dy) {
  PF_CHECK(!ids_cache_.empty()) << "backward before forward";
  PF_CHECK(dy.rows() == ids_cache_.size() && dy.cols() == d_model_);
  for (std::size_t i = 0; i < ids_cache_.size(); ++i) {
    const auto tok = static_cast<std::size_t>(ids_cache_[i]);
    const auto seg = static_cast<std::size_t>(seg_cache_[i]);
    const std::size_t pos = i % seq_cache_;
    for (std::size_t c = 0; c < d_model_; ++c) {
      const double g = dy(i, c);
      tokens_.g(tok, c) += g;
      positions_.g(pos, c) += g;
      segments_.g(seg, c) += g;
    }
  }
}

}  // namespace pf
