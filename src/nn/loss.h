// Losses for BERT pretraining: masked-LM cross entropy (mean over masked
// positions, labels = -1 elsewhere) and next-sentence-prediction cross
// entropy. The pretraining loss is their sum, as in the paper (§4).
#pragma once

#include "src/common/exec_context.h"
#include "src/linalg/matrix.h"

namespace pf {

struct LossResult {
  double loss = 0.0;
  Matrix dlogits;      // gradient w.r.t. the logits (already divided by the
                       // number of counted labels)
  std::size_t counted = 0;
};

// Cross entropy over rows of `logits` [N × C]; rows with label < 0 are
// ignored. Mean over counted rows. The softmax and the dlogits fill are
// row-parallel over the context; the scalar loss reduction stays serial so
// its accumulation order (and hence the value) matches the seed exactly.
LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<int>& labels,
                                 const ExecContext& ctx =
                                     ExecContext::defaults());

}  // namespace pf
