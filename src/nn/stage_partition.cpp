#include "src/nn/stage_partition.h"

#include <utility>

#include "src/common/arena.h"
#include "src/common/check.h"

namespace pf {

Matrix BertStage::forward(int micro, const BertBatch& batch, Matrix in,
                          const ExecContext& ctx) {
  PF_CHECK(!fwd_stash_.contains(micro))
      << "stage " << index_ << ": duplicate forward for micro " << micro;
  Matrix h;
  if (is_first()) {
    PF_CHECK(in.empty()) << "stage 0 takes its input from the batch";
    h = emb_->forward(batch.ids, batch.segments, batch.batch, batch.seq,
                      /*training=*/true, ctx);
  } else {
    PF_CHECK(!in.empty()) << "stage " << index_ << ": missing boundary input";
    h = std::move(in);
  }
  for (TransformerBlock* b : blocks_)
    h = b->forward(h, batch.batch, batch.seq, /*training=*/true, ctx);

  Matrix mlm_dlogits, nsp_dlogits;
  if (is_last()) {
    // Identical op sequence to BertModel::train_step_backward's head/loss
    // section — the bitwise contract depends on it.
    const Matrix mlm_logits = mlm_head_->forward(h, /*training=*/true, ctx);
    const auto mlm = softmax_cross_entropy(mlm_logits, batch.mlm_labels, ctx);
    const Matrix cls = gather_cls_rows(h, batch.batch, batch.seq);
    const Matrix nsp_logits = nsp_head_->forward(cls, /*training=*/true, ctx);
    const auto nsp = softmax_cross_entropy(nsp_logits, batch.nsp_labels, ctx);
    loss_stash_[micro] = {mlm.loss + nsp.loss, mlm.loss, nsp.loss};
    mlm_dlogits = mlm.dlogits;
    nsp_dlogits = nsp.dlogits;
    h = Matrix();  // the step ends here; no boundary activation
  }

  StageCache sc = save_caches();
  sc.mlm_dlogits = std::move(mlm_dlogits);
  sc.nsp_dlogits = std::move(nsp_dlogits);
  stash_add(bytes_of(sc));
  fwd_stash_.emplace(micro, std::move(sc));
  return h;
}

Matrix BertStage::infer(const BertBatch& batch, Matrix in,
                        const ExecContext& ctx, BertInferOutput* out) const {
  Matrix h;
  if (is_first()) {
    PF_CHECK(in.empty()) << "stage 0 takes its input from the batch";
    h = emb_->forward(batch.ids, batch.segments, batch.batch, batch.seq,
                      /*training=*/false, ctx);
  } else {
    PF_CHECK(!in.empty()) << "stage " << index_ << ": missing boundary input";
    h = std::move(in);
  }
  for (TransformerBlock* b : blocks_)
    h = b->forward(h, batch.batch, batch.seq, /*training=*/false, ctx);

  if (!is_last()) return h;

  // Identical head op sequence to BertModel::forward — the serving
  // engine's bitwise serial-equivalence contract depends on it.
  PF_CHECK(out != nullptr)
      << "stage " << index_ << " is the last stage; infer() needs an output";
  out->mlm_logits = mlm_head_->forward(h, /*training=*/false, ctx);
  const Matrix cls = gather_cls_rows(h, batch.batch, batch.seq);
  out->nsp_logits = nsp_head_->forward(cls, /*training=*/false, ctx);
  return Matrix();
}

Matrix BertStage::backward(int micro, const BertBatch& batch, Matrix grad_in,
                           const ExecContext& ctx, bool keep_kfac_stash,
                           bool defer_dw) {
  const auto it = fwd_stash_.find(micro);
  PF_CHECK(it != fwd_stash_.end())
      << "stage " << index_ << ": backward(" << micro
      << ") without a stashed forward";
  PF_CHECK(!kfac_stash_.contains(micro))
      << "stage " << index_ << ": duplicate backward for micro " << micro;
  PF_CHECK(!(defer_dw && copy_stashes_))
      << "defer_dw needs borrow-mode stashes (copy mode blanks a_l)";

  // Loss gradients live outside the layer caches; in borrow mode they are
  // the only thing left of the stash entry once the layers take their
  // caches back, and they die (into the arena) at the end of this call.
  Matrix mlm_dlogits, nsp_dlogits;
  if (copy_stashes_) {
    // Legacy path: deep-copy the stash into the layers; the entry keeps
    // serving a_l to curvature-A tasks until clear_stash().
    restore_caches(it->second);
    mlm_dlogits = it->second.mlm_dlogits;
    nsp_dlogits = it->second.nsp_dlogits;
  } else {
    // Borrow path: MOVE the whole cache set back into the layers and drop
    // the entry. Backward reads but never mutates a_l, so the buffers
    // survive the round trip bit for bit and are re-harvested below for
    // the curvature tasks.
    StageCache sc = std::move(it->second);
    stash_sub(bytes_of(sc));
    fwd_stash_.erase(it);
    mlm_dlogits = std::move(sc.mlm_dlogits);
    nsp_dlogits = std::move(sc.nsp_dlogits);
    restore_caches(std::move(sc));
  }

  Matrix dh;
  if (is_last()) {
    dh = defer_dw ? mlm_head_->backward_dx(mlm_dlogits, ctx)
                  : mlm_head_->backward(mlm_dlogits, ctx);
    const Matrix dcls = defer_dw ? nsp_head_->backward_dx(nsp_dlogits, ctx)
                                 : nsp_head_->backward(nsp_dlogits, ctx);
    for (std::size_t b = 0; b < batch.batch; ++b) {
      double* row = dh.row(b * batch.seq);
      for (std::size_t c = 0; c < dh.cols(); ++c) row[c] += dcls(b, c);
    }
  } else {
    PF_CHECK(!grad_in.empty())
        << "stage " << index_ << ": missing boundary gradient";
    dh = std::move(grad_in);
  }
  for (std::size_t i = blocks_.size(); i-- > 0;)
    dh = blocks_[i]->backward(dh, ctx, defer_dw);
  if (is_first()) {
    emb_->backward(dh, ctx);
    dh = Matrix();
  }

  if (!copy_stashes_) {
    arena_release(ctx.arena(), std::move(mlm_dlogits));
    arena_release(ctx.arena(), std::move(nsp_dlogits));
  }

  if (keep_kfac_stash || defer_dw) {
    // Harvest exactly what the curvature tasks read, in kfac_linears()
    // order. Borrow mode moves each tracked linear's full {a_l, e_l} out
    // (a curvature-A task scheduled before this backward may only run
    // after it — a_l must stay addressable); copy mode keeps a_l in the
    // forward stash and takes only e_l, as the historical code did.
    // defer_dw additionally appends the head caches: the deferred W pass
    // reads the same {a_l, e_l} pairs the curvature tasks do, plus the
    // heads', without disturbing the tracked indices kfac_input() serves.
    std::vector<Linear::Cache> kcs;
    kcs.reserve(kfac_linears_.size() + (defer_dw && is_last() ? 2 : 0));
    for (Linear* l : kfac_linears_) {
      Linear::Cache c = l->save_cache();
      if (copy_stashes_) c.x = Matrix();
      kcs.push_back(std::move(c));
    }
    if (defer_dw && is_last()) {
      kcs.push_back(mlm_head_->save_cache());
      kcs.push_back(nsp_head_->save_cache());
    }
    stash_add(bytes_of(kcs));
    kfac_stash_.emplace(micro, std::move(kcs));
  } else if (copy_stashes_) {
    // No curvature task will read this micro: release its activations now
    // instead of holding every micro until end of step. (Borrow mode
    // already erased the entry above; the caches sit in the layers, where
    // the next forward reuses their storage.)
    stash_sub(bytes_of(it->second));
    fwd_stash_.erase(it);
  }
  return dh;
}

void BertStage::backward_dw(int micro, const ExecContext& ctx, bool release,
                            ArenaAllocator* arena) {
  const auto it = kfac_stash_.find(micro);
  PF_CHECK(it != kfac_stash_.end())
      << "stage " << index_ << ": backward_dw(" << micro
      << ") without a deferred backward";
  std::vector<Linear::Cache>& kcs = it->second;
  const std::size_t expect =
      kfac_linears_.size() + (is_last() ? 2 : 0);
  PF_CHECK(kcs.size() == expect)
      << "stage " << index_ << ": stash for micro " << micro
      << " was not harvested with defer_dw";
  // Within one micro the per-linear order is irrelevant to the bitwise
  // contract (each dW touches its own Param), but keep it deterministic:
  // tracked linears in kfac_linears() order, then the heads.
  for (std::size_t f = 0; f < kfac_linears_.size(); ++f)
    kfac_linears_[f]->backward_dw(kcs[f], ctx);
  if (is_last()) {
    mlm_head_->backward_dw(kcs[kfac_linears_.size()], ctx);
    nsp_head_->backward_dw(kcs[kfac_linears_.size() + 1], ctx);
  }
  if (release) {
    stash_sub(bytes_of(kcs));
    if (arena != nullptr)
      for (Linear::Cache& kc : kcs) {
        arena->release(std::move(kc.x));
        arena->release(std::move(kc.dy));
      }
    kfac_stash_.erase(it);
  }
}

BertLossBreakdown BertStage::losses(int micro) const {
  PF_CHECK(is_last()) << "losses live on the last stage";
  const auto it = loss_stash_.find(micro);
  PF_CHECK(it != loss_stash_.end())
      << "losses(" << micro << ") before its forward";
  return it->second;
}

const Matrix& BertStage::kfac_input(int micro, std::size_t f) const {
  // Before the micro's backward a_l lives in the forward stash; after it
  // (borrow mode) in the harvested K-FAC stash. Both serve the same bytes.
  const auto it = fwd_stash_.find(micro);
  if (it != fwd_stash_.end()) {
    const Matrix& x = kfac_cache_of(it->second, f).x;
    PF_CHECK(!x.empty());
    return x;
  }
  const auto kt = kfac_stash_.find(micro);
  PF_CHECK(kt != kfac_stash_.end())
      << "kfac_input(" << micro << ") before its forward";
  PF_CHECK(f < kt->second.size());
  const Matrix& x = kt->second[f].x;
  PF_CHECK(!x.empty());
  return x;
}

const Matrix& BertStage::kfac_output_grad(int micro, std::size_t f) const {
  const auto it = kfac_stash_.find(micro);
  PF_CHECK(it != kfac_stash_.end())
      << "kfac_output_grad(" << micro << ") before its backward";
  PF_CHECK(f < it->second.size());
  const Matrix& dy = it->second[f].dy;
  PF_CHECK(!dy.empty());
  return dy;
}

void BertStage::clear_stash(ArenaAllocator* arena) {
  if (arena != nullptr) {
    for (auto& [m, sc] : fwd_stash_)
      release_to_arena(arena, std::move(sc));
    for (auto& [m, kcs] : kfac_stash_)
      for (Linear::Cache& kc : kcs) {
        arena->release(std::move(kc.x));
        arena->release(std::move(kc.dy));
      }
  }
  fwd_stash_.clear();
  kfac_stash_.clear();
  loss_stash_.clear();
  stash_bytes_ = 0;
}

std::vector<Param*> BertStage::params() const {
  std::vector<Param*> out;
  if (emb_ != nullptr)
    for (Param* p : emb_->params()) out.push_back(p);
  for (TransformerBlock* b : blocks_)
    for (Param* p : b->params()) out.push_back(p);
  if (mlm_head_ != nullptr)
    for (Param* p : mlm_head_->params()) out.push_back(p);
  if (nsp_head_ != nullptr)
    for (Param* p : nsp_head_->params()) out.push_back(p);
  return out;
}

BertStage::StageCache BertStage::save_caches() {
  StageCache c;
  if (emb_ != nullptr) c.emb = emb_->save_cache();
  c.blocks.reserve(blocks_.size());
  for (TransformerBlock* b : blocks_) c.blocks.push_back(b->save_cache());
  if (mlm_head_ != nullptr) c.mlm_head = mlm_head_->save_cache();
  if (nsp_head_ != nullptr) c.nsp_head = nsp_head_->save_cache();
  return c;
}

void BertStage::restore_caches(const StageCache& c) {
  if (emb_ != nullptr) emb_->restore_cache(c.emb);
  PF_CHECK(c.blocks.size() == blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    blocks_[i]->restore_cache(c.blocks[i]);
  if (mlm_head_ != nullptr) mlm_head_->restore_cache(c.mlm_head);
  if (nsp_head_ != nullptr) nsp_head_->restore_cache(c.nsp_head);
}

void BertStage::restore_caches(StageCache&& c) {
  if (emb_ != nullptr) emb_->restore_cache(std::move(c.emb));
  PF_CHECK(c.blocks.size() == blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    blocks_[i]->restore_cache(std::move(c.blocks[i]));
  if (mlm_head_ != nullptr) mlm_head_->restore_cache(std::move(c.mlm_head));
  if (nsp_head_ != nullptr) nsp_head_->restore_cache(std::move(c.nsp_head));
}

namespace {
std::size_t mat_bytes(const Matrix& m) { return m.size() * sizeof(double); }
std::size_t lin_bytes(const Linear::Cache& c) {
  return mat_bytes(c.x) + mat_bytes(c.dy);
}
}  // namespace

std::size_t BertStage::bytes_of(const StageCache& c) {
  std::size_t n = (c.emb.ids.size() + c.emb.segments.size()) * sizeof(int);
  for (const TransformerBlock::Cache& bc : c.blocks) {
    n += mat_bytes(bc.attn.q) + mat_bytes(bc.attn.k) + mat_bytes(bc.attn.v);
    for (const Matrix& p : bc.attn.probs) n += mat_bytes(p);
    n += lin_bytes(bc.attn.wq) + lin_bytes(bc.attn.wk) +
         lin_bytes(bc.attn.wv) + lin_bytes(bc.attn.wo);
    n += mat_bytes(bc.ln1.xhat) + bc.ln1.inv_std.size() * sizeof(double);
    n += mat_bytes(bc.ln2.xhat) + bc.ln2.inv_std.size() * sizeof(double);
    n += lin_bytes(bc.w1) + lin_bytes(bc.w2) + mat_bytes(bc.gelu.x);
  }
  n += lin_bytes(c.mlm_head) + lin_bytes(c.nsp_head);
  n += mat_bytes(c.mlm_dlogits) + mat_bytes(c.nsp_dlogits);
  return n;
}

std::size_t BertStage::bytes_of(const std::vector<Linear::Cache>& kcs) {
  std::size_t n = 0;
  for (const Linear::Cache& kc : kcs) n += lin_bytes(kc);
  return n;
}

void BertStage::release_to_arena(ArenaAllocator* arena, StageCache&& c) {
  // Doubles only: int id/segment vectors cannot feed the double arena and
  // just free normally.
  for (TransformerBlock::Cache& bc : c.blocks) {
    arena->release(std::move(bc.attn.q));
    arena->release(std::move(bc.attn.k));
    arena->release(std::move(bc.attn.v));
    for (Matrix& p : bc.attn.probs) arena->release(std::move(p));
    for (Linear::Cache* lc : {&bc.attn.wq, &bc.attn.wk, &bc.attn.wv,
                              &bc.attn.wo, &bc.w1, &bc.w2}) {
      arena->release(std::move(lc->x));
      arena->release(std::move(lc->dy));
    }
    arena->release(std::move(bc.ln1.xhat));
    arena->release(std::move(bc.ln1.inv_std));
    arena->release(std::move(bc.ln2.xhat));
    arena->release(std::move(bc.ln2.inv_std));
    arena->release(std::move(bc.gelu.x));
  }
  for (Linear::Cache* lc : {&c.mlm_head, &c.nsp_head}) {
    arena->release(std::move(lc->x));
    arena->release(std::move(lc->dy));
  }
  arena->release(std::move(c.mlm_dlogits));
  arena->release(std::move(c.nsp_dlogits));
}

void BertStage::stash_add(std::size_t bytes) {
  stash_bytes_ += bytes;
  if (stash_bytes_ > peak_stash_bytes_) peak_stash_bytes_ = stash_bytes_;
}

void BertStage::stash_sub(std::size_t bytes) {
  PF_CHECK(bytes <= stash_bytes_);
  stash_bytes_ -= bytes;
}

const Linear::Cache& BertStage::kfac_cache_of(const StageCache& c,
                                              std::size_t f) const {
  // kfac_linears() order: per block wq, wk, wv, wo, w1, w2 (see
  // TransformerBlock::kfac_linears).
  PF_CHECK(f < kfac_linears_.size());
  const std::size_t blk = f / 6;
  const auto& bc = c.blocks[blk];
  switch (f % 6) {
    case 0: return bc.attn.wq;
    case 1: return bc.attn.wk;
    case 2: return bc.attn.wv;
    case 3: return bc.attn.wo;
    case 4: return bc.w1;
    default: return bc.w2;
  }
}

BertStagePartition::BertStagePartition(BertModel& model, int n_stages) {
  PF_CHECK(n_stages >= 1);
  auto& blocks = model.blocks();
  const std::size_t L = blocks.size();
  const auto S = static_cast<std::size_t>(n_stages);
  stages_.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    BertStage& st = stages_[s];
    st.index_ = static_cast<int>(s);
    // Contiguous even split; shallow models may leave middle stages
    // block-less (pure relays) — legal, if pointless beyond testing.
    const std::size_t lo = s * L / S;
    const std::size_t hi = (s + 1) * L / S;
    for (std::size_t i = lo; i < hi; ++i) st.blocks_.push_back(&blocks[i]);
    if (s == 0) st.emb_ = &model.embedding();
    if (s + 1 == S) {
      st.mlm_head_ = &model.mlm_head();
      st.nsp_head_ = &model.nsp_head();
    }
    for (TransformerBlock* b : st.blocks_) {
      // kfac_cache_of hard-codes the 6-linears-per-block layout (wq, wk,
      // wv, wo, w1, w2); fail loudly if TransformerBlock's tracked set
      // ever changes instead of silently mapping factors to the wrong
      // caches.
      PF_CHECK(b->kfac_linears().size() == 6)
          << "kfac_cache_of assumes 6 K-FAC linears per block, got "
          << b->kfac_linears().size();
      for (Linear* l : b->kfac_linears()) st.kfac_linears_.push_back(l);
    }
  }
}

BertStage& BertStagePartition::stage(int s) {
  PF_CHECK(s >= 0 && s < n_stages());
  return stages_[static_cast<std::size_t>(s)];
}

const BertStage& BertStagePartition::stage(int s) const {
  PF_CHECK(s >= 0 && s < n_stages());
  return stages_[static_cast<std::size_t>(s)];
}

std::vector<Param*> BertStagePartition::params() const {
  std::vector<Param*> out;
  for (const BertStage& s : stages_)
    for (Param* p : s.params()) out.push_back(p);
  return out;
}

}  // namespace pf
