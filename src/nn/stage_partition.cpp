#include "src/nn/stage_partition.h"

#include <utility>

#include "src/common/check.h"

namespace pf {

Matrix BertStage::forward(int micro, const BertBatch& batch, Matrix in,
                          const ExecContext& ctx) {
  PF_CHECK(!fwd_stash_.contains(micro))
      << "stage " << index_ << ": duplicate forward for micro " << micro;
  Matrix h;
  if (is_first()) {
    PF_CHECK(in.empty()) << "stage 0 takes its input from the batch";
    h = emb_->forward(batch.ids, batch.segments, batch.batch, batch.seq,
                      /*training=*/true, ctx);
  } else {
    PF_CHECK(!in.empty()) << "stage " << index_ << ": missing boundary input";
    h = std::move(in);
  }
  for (TransformerBlock* b : blocks_)
    h = b->forward(h, batch.batch, batch.seq, /*training=*/true, ctx);

  Matrix mlm_dlogits, nsp_dlogits;
  if (is_last()) {
    // Identical op sequence to BertModel::train_step_backward's head/loss
    // section — the bitwise contract depends on it.
    const Matrix mlm_logits = mlm_head_->forward(h, /*training=*/true, ctx);
    const auto mlm = softmax_cross_entropy(mlm_logits, batch.mlm_labels, ctx);
    const Matrix cls = gather_cls_rows(h, batch.batch, batch.seq);
    const Matrix nsp_logits = nsp_head_->forward(cls, /*training=*/true, ctx);
    const auto nsp = softmax_cross_entropy(nsp_logits, batch.nsp_labels, ctx);
    loss_stash_[micro] = {mlm.loss + nsp.loss, mlm.loss, nsp.loss};
    mlm_dlogits = mlm.dlogits;
    nsp_dlogits = nsp.dlogits;
    h = Matrix();  // the step ends here; no boundary activation
  }

  StageCache sc = save_caches();
  sc.mlm_dlogits = std::move(mlm_dlogits);
  sc.nsp_dlogits = std::move(nsp_dlogits);
  fwd_stash_.emplace(micro, std::move(sc));
  return h;
}

Matrix BertStage::backward(int micro, const BertBatch& batch, Matrix grad_in,
                           const ExecContext& ctx, bool keep_kfac_stash) {
  const auto it = fwd_stash_.find(micro);
  PF_CHECK(it != fwd_stash_.end())
      << "stage " << index_ << ": backward(" << micro
      << ") without a stashed forward";
  PF_CHECK(!dy_stash_.contains(micro))
      << "stage " << index_ << ": duplicate backward for micro " << micro;
  restore_caches(it->second);

  Matrix dh;
  if (is_last()) {
    const StageCache& sc = it->second;
    dh = mlm_head_->backward(sc.mlm_dlogits, ctx);
    const Matrix dcls = nsp_head_->backward(sc.nsp_dlogits, ctx);
    for (std::size_t b = 0; b < batch.batch; ++b) {
      double* row = dh.row(b * batch.seq);
      for (std::size_t c = 0; c < dh.cols(); ++c) row[c] += dcls(b, c);
    }
  } else {
    PF_CHECK(!grad_in.empty())
        << "stage " << index_ << ": missing boundary gradient";
    dh = std::move(grad_in);
  }
  for (std::size_t i = blocks_.size(); i-- > 0;)
    dh = blocks_[i]->backward(dh, ctx);
  if (is_first()) {
    emb_->backward(dh, ctx);
    dh = Matrix();
  }

  if (keep_kfac_stash) {
    // Keep e_l of each K-FAC linear for the curvature-B tasks (the
    // forward stash keeps serving a_l to curvature-A tasks); everything
    // else the backward produced is dead weight and stays in the layers
    // until the next forward overwrites it.
    std::vector<Matrix> dys;
    dys.reserve(kfac_linears_.size());
    for (Linear* l : kfac_linears_) dys.push_back(l->save_cache().dy);
    dy_stash_.emplace(micro, std::move(dys));
  } else {
    // No curvature task will read this micro: release its activations now
    // instead of holding every micro until end of step.
    fwd_stash_.erase(it);
  }
  return dh;
}

BertLossBreakdown BertStage::losses(int micro) const {
  PF_CHECK(is_last()) << "losses live on the last stage";
  const auto it = loss_stash_.find(micro);
  PF_CHECK(it != loss_stash_.end())
      << "losses(" << micro << ") before its forward";
  return it->second;
}

const Matrix& BertStage::kfac_input(int micro, std::size_t f) const {
  const auto it = fwd_stash_.find(micro);
  PF_CHECK(it != fwd_stash_.end())
      << "kfac_input(" << micro << ") before its forward";
  const Matrix& x = kfac_cache_of(it->second, f).x;
  PF_CHECK(!x.empty());
  return x;
}

const Matrix& BertStage::kfac_output_grad(int micro, std::size_t f) const {
  const auto it = dy_stash_.find(micro);
  PF_CHECK(it != dy_stash_.end())
      << "kfac_output_grad(" << micro << ") before its backward";
  PF_CHECK(f < it->second.size());
  const Matrix& dy = it->second[f];
  PF_CHECK(!dy.empty());
  return dy;
}

void BertStage::clear_stash() {
  fwd_stash_.clear();
  dy_stash_.clear();
  loss_stash_.clear();
}

std::vector<Param*> BertStage::params() const {
  std::vector<Param*> out;
  if (emb_ != nullptr)
    for (Param* p : emb_->params()) out.push_back(p);
  for (TransformerBlock* b : blocks_)
    for (Param* p : b->params()) out.push_back(p);
  if (mlm_head_ != nullptr)
    for (Param* p : mlm_head_->params()) out.push_back(p);
  if (nsp_head_ != nullptr)
    for (Param* p : nsp_head_->params()) out.push_back(p);
  return out;
}

BertStage::StageCache BertStage::save_caches() {
  StageCache c;
  if (emb_ != nullptr) c.emb = emb_->save_cache();
  c.blocks.reserve(blocks_.size());
  for (TransformerBlock* b : blocks_) c.blocks.push_back(b->save_cache());
  if (mlm_head_ != nullptr) c.mlm_head = mlm_head_->save_cache();
  if (nsp_head_ != nullptr) c.nsp_head = nsp_head_->save_cache();
  return c;
}

void BertStage::restore_caches(const StageCache& c) {
  if (emb_ != nullptr) emb_->restore_cache(c.emb);
  PF_CHECK(c.blocks.size() == blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    blocks_[i]->restore_cache(c.blocks[i]);
  if (mlm_head_ != nullptr) mlm_head_->restore_cache(c.mlm_head);
  if (nsp_head_ != nullptr) nsp_head_->restore_cache(c.nsp_head);
}

const Linear::Cache& BertStage::kfac_cache_of(const StageCache& c,
                                              std::size_t f) const {
  // kfac_linears() order: per block wq, wk, wv, wo, w1, w2 (see
  // TransformerBlock::kfac_linears).
  PF_CHECK(f < kfac_linears_.size());
  const std::size_t blk = f / 6;
  const auto& bc = c.blocks[blk];
  switch (f % 6) {
    case 0: return bc.attn.wq;
    case 1: return bc.attn.wk;
    case 2: return bc.attn.wv;
    case 3: return bc.attn.wo;
    case 4: return bc.w1;
    default: return bc.w2;
  }
}

BertStagePartition::BertStagePartition(BertModel& model, int n_stages) {
  PF_CHECK(n_stages >= 1);
  auto& blocks = model.blocks();
  const std::size_t L = blocks.size();
  const auto S = static_cast<std::size_t>(n_stages);
  stages_.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    BertStage& st = stages_[s];
    st.index_ = static_cast<int>(s);
    // Contiguous even split; shallow models may leave middle stages
    // block-less (pure relays) — legal, if pointless beyond testing.
    const std::size_t lo = s * L / S;
    const std::size_t hi = (s + 1) * L / S;
    for (std::size_t i = lo; i < hi; ++i) st.blocks_.push_back(&blocks[i]);
    if (s == 0) st.emb_ = &model.embedding();
    if (s + 1 == S) {
      st.mlm_head_ = &model.mlm_head();
      st.nsp_head_ = &model.nsp_head();
    }
    for (TransformerBlock* b : st.blocks_) {
      // kfac_cache_of hard-codes the 6-linears-per-block layout (wq, wk,
      // wv, wo, w1, w2); fail loudly if TransformerBlock's tracked set
      // ever changes instead of silently mapping factors to the wrong
      // caches.
      PF_CHECK(b->kfac_linears().size() == 6)
          << "kfac_cache_of assumes 6 K-FAC linears per block, got "
          << b->kfac_linears().size();
      for (Linear* l : b->kfac_linears()) st.kfac_linears_.push_back(l);
    }
  }
}

BertStage& BertStagePartition::stage(int s) {
  PF_CHECK(s >= 0 && s < n_stages());
  return stages_[static_cast<std::size_t>(s)];
}

const BertStage& BertStagePartition::stage(int s) const {
  PF_CHECK(s >= 0 && s < n_stages());
  return stages_[static_cast<std::size_t>(s)];
}

std::vector<Param*> BertStagePartition::params() const {
  std::vector<Param*> out;
  for (const BertStage& s : stages_)
    for (Param* p : s.params()) out.push_back(p);
  return out;
}

}  // namespace pf
