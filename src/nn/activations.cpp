#include "src/nn/activations.h"

#include <cmath>

#include "src/common/arena.h"
#include "src/common/check.h"

namespace pf {

namespace {
constexpr double kSqrt2OverPi = 0.7978845608028654;
constexpr double kGeluC = 0.044715;

double gelu_scalar(double v) {
  const double inner = kSqrt2OverPi * (v + kGeluC * v * v * v);
  return 0.5 * v * (1.0 + std::tanh(inner));
}
}  // namespace

Matrix gelu(const Matrix& x, const ExecContext& ctx) {
  Matrix y(x.rows(), x.cols());
  ctx.parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const double* xr = x.row(r);
      double* yr = y.row(r);
      for (std::size_t c = 0; c < x.cols(); ++c) yr[c] = gelu_scalar(xr[c]);
    }
  });
  return y;
}

Matrix gelu_backward(const Matrix& x, const Matrix& dy,
                     const ExecContext& ctx) {
  PF_CHECK(x.same_shape(dy));
  Matrix dx(x.rows(), x.cols());
  ctx.parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        const double v = x(r, c);
        const double inner = kSqrt2OverPi * (v + kGeluC * v * v * v);
        const double t = std::tanh(inner);
        const double dinner = kSqrt2OverPi * (1.0 + 3.0 * kGeluC * v * v);
        const double grad =
            0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner;
        dx(r, c) = grad * dy(r, c);
      }
    }
  });
  return dx;
}

Matrix softmax_rows(const Matrix& logits, const ExecContext& ctx) {
  Matrix p(logits.rows(), logits.cols());
  ctx.parallel_for(logits.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const double* row = logits.row(r);
      double mx = row[0];
      for (std::size_t c = 1; c < logits.cols(); ++c)
        mx = std::max(mx, row[c]);
      double sum = 0.0;
      for (std::size_t c = 0; c < logits.cols(); ++c) {
        const double e = std::exp(row[c] - mx);
        p(r, c) = e;
        sum += e;
      }
      const double inv = 1.0 / sum;
      for (std::size_t c = 0; c < logits.cols(); ++c) p(r, c) *= inv;
    }
  });
  return p;
}

Matrix softmax_rows_backward(const Matrix& p, const Matrix& dy,
                             const ExecContext& ctx) {
  PF_CHECK(p.same_shape(dy));
  Matrix dx(p.rows(), p.cols());
  ctx.parallel_for(p.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      double dot = 0.0;
      for (std::size_t c = 0; c < p.cols(); ++c) dot += p(r, c) * dy(r, c);
      for (std::size_t c = 0; c < p.cols(); ++c)
        dx(r, c) = p(r, c) * (dy(r, c) - dot);
    }
  });
  return dx;
}

Matrix Gelu::forward(const Matrix& x, bool training, const ExecContext& ctx) {
  if (training) arena_assign(ctx.arena(), x_cache_, x);
  return gelu(x, ctx);
}

Matrix Gelu::backward(const Matrix& dy, const ExecContext& ctx) {
  PF_CHECK(!x_cache_.empty());
  return gelu_backward(x_cache_, dy, ctx);
}

}  // namespace pf
