// Inverted dropout with a cached mask (BERT uses p = 0.1 throughout).
//
// Deterministic given the layer's RNG stream; disabled at evaluation time
// and when p == 0 (the default in BertConfig, so the reproduction
// experiments are unaffected unless explicitly enabled).
#pragma once

#include "src/common/rng.h"
#include "src/linalg/matrix.h"

namespace pf {

class Dropout {
 public:
  Dropout(double p, std::uint64_t seed);

  // Training: zeroes each element with prob p and scales survivors by
  // 1/(1-p); caches the mask for backward. Evaluation: identity.
  Matrix forward(const Matrix& x, bool training = true);
  Matrix backward(const Matrix& dy) const;

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
  Matrix mask_;  // scaled keep-mask of the last training forward
};

}  // namespace pf
