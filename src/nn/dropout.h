// Inverted dropout with a cached mask (BERT uses p = 0.1 throughout).
//
// Deterministic given the layer's RNG stream; disabled at evaluation time
// and when p == 0 (the default in BertConfig, so the reproduction
// experiments are unaffected unless explicitly enabled).
//
// Threading follows the context's RngPartition policy (exec_context.h):
//   kSequential — the seed stream: the mask is drawn serially in row-major
//                 order (byte-compatible with the seed) and only the
//                 elementwise apply parallelizes.
//   kPerRow     — counter-derived per-row substreams (rng.h:
//                 derive_stream_seed): mask generation parallelizes too and
//                 stays bitwise identical at every thread count, but draws
//                 a different (equally valid) mask than kSequential.
#pragma once

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/linalg/matrix.h"

namespace pf {

class Dropout {
 public:
  Dropout(double p, std::uint64_t seed);

  // Training: zeroes each element with prob p and scales survivors by
  // 1/(1-p); caches the mask for backward. Evaluation: identity.
  Matrix forward(const Matrix& x, bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults()) const;

  double p() const { return p_; }

 private:
  double p_;
  std::uint64_t seed_;
  Rng rng_;                       // the sequential (seed-policy) stream
  std::uint64_t draw_count_ = 0;  // training forwards taken (kPerRow stream)
  Matrix mask_;  // scaled keep-mask of the last training forward
};

}  // namespace pf
