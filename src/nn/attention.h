// Multi-head self-attention built from four K-FAC-tracked linears
// (Wq, Wk, Wv, Wo) — one of the paper's six preconditioned layers per block.
#pragma once

#include "src/nn/linear.h"

namespace pf {

class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(std::size_t d_model, std::size_t n_heads, Rng& rng,
                         const std::string& name);

  // x is [batch·seq × d_model]; attention runs within each sequence. The
  // score/softmax/AV work parallelizes one task per (batch, head) over the
  // context — tasks write disjoint slices, so every thread count is bitwise
  // identical to serial (see exec_context.h).
  Matrix forward(const Matrix& x, std::size_t batch, std::size_t seq,
                 bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  // `dx_only` routes the four projections through Linear::backward_dx (the
  // zero-bubble B pass): their dW GEMMs are deferred to a later
  // backward_dw over the harvested caches (see stage_partition.h).
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults(),
                  bool dx_only = false);

  std::vector<Param*> params();
  std::vector<Linear*> kfac_linears() { return {&wq_, &wk_, &wv_, &wo_}; }

  // Cache externalization for pipeline stages (see linear.h): bundles the
  // attention-internal caches with the four projection linears'.
  struct Cache {
    Matrix q, k, v;
    std::vector<Matrix> probs;
    std::size_t batch = 0, seq = 0;
    Linear::Cache wq, wk, wv, wo;
  };
  Cache save_cache();
  void restore_cache(const Cache& c);
  void restore_cache(Cache&& c);

 private:
  std::size_t d_model_, n_heads_, d_head_;
  Linear wq_, wk_, wv_, wo_;
  // Caches for backward.
  Matrix q_, k_, v_;
  std::vector<Matrix> probs_;  // one [seq × seq] per (batch, head)
  std::size_t batch_ = 0, seq_ = 0;
};

}  // namespace pf
