#include "src/nn/loss.h"

#include <cmath>

#include "src/common/check.h"
#include "src/nn/activations.h"

namespace pf {

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<int>& labels,
                                 const ExecContext& ctx) {
  PF_CHECK(labels.size() == logits.rows());
  LossResult res;
  res.dlogits = Matrix(logits.rows(), logits.cols(), 0.0);
  const Matrix p = softmax_rows(logits, ctx);
  // Serial scalar reduction: the loss sums counted rows in ascending order,
  // the seed sequence, so the value is thread-count-independent.
  double total = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] < 0) continue;
    PF_CHECK(static_cast<std::size_t>(labels[r]) < logits.cols())
        << "label " << labels[r] << " out of " << logits.cols();
    ++res.counted;
    total += -std::log(std::max(p(r, static_cast<std::size_t>(labels[r])),
                                1e-300));
  }
  if (res.counted == 0) return res;
  const double inv = 1.0 / static_cast<double>(res.counted);
  res.loss = total * inv;
  ctx.parallel_for(logits.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      if (labels[r] < 0) continue;
      for (std::size_t c = 0; c < logits.cols(); ++c)
        res.dlogits(r, c) = p(r, c) * inv;
      res.dlogits(r, static_cast<std::size_t>(labels[r])) -= inv;
    }
  });
  return res;
}

}  // namespace pf
