// Token + position + segment embeddings (BERT-style input layer).
//
// Excluded from K-FAC (like the paper, which preconditions only the
// fully-connected layers of the encoder blocks).
#pragma once

#include <cstdint>

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/nn/param.h"

namespace pf {

class Embedding {
 public:
  Embedding(std::size_t vocab, std::size_t max_seq, std::size_t d_model,
            Rng& rng, const std::string& name);

  // ids/segments are [batch × seq] flattened row-major; output is
  // [batch·seq × d_model]. The gather is token-parallel over the context
  // (output rows are independent).
  Matrix forward(const std::vector<int>& ids, const std::vector<int>& segments,
                 std::size_t batch, std::size_t seq, bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  // Scatter-adds gradients into the tables. Owner-computes sharding: the
  // concatenated table rows [tokens | positions | segments] are split
  // contiguously across threads and every shard scans the tokens in
  // ascending order, applying only the updates landing in its rows — each
  // table coordinate sees the serial accumulation order at every thread
  // count (bitwise identical; see exec_context.h).
  void backward(const Matrix& dy,
                const ExecContext& ctx = ExecContext::defaults());

  std::vector<Param*> params() { return {&tokens_, &positions_, &segments_}; }
  std::size_t d_model() const { return d_model_; }

  // Cache externalization for pipeline stages (see linear.h).
  struct Cache {
    std::vector<int> ids, segments;
    std::size_t batch = 0, seq = 0;
  };
  Cache save_cache() {
    Cache c{std::move(ids_cache_), std::move(seg_cache_), batch_cache_,
            seq_cache_};
    ids_cache_.clear();
    seg_cache_.clear();
    return c;
  }
  void restore_cache(const Cache& c) {
    ids_cache_ = c.ids;
    seg_cache_ = c.segments;
    batch_cache_ = c.batch;
    seq_cache_ = c.seq;
  }
  void restore_cache(Cache&& c) {
    ids_cache_ = std::move(c.ids);
    seg_cache_ = std::move(c.segments);
    batch_cache_ = c.batch;
    seq_cache_ = c.seq;
  }

 private:
  std::size_t vocab_, max_seq_, d_model_;
  Param tokens_;     // [vocab × d]
  Param positions_;  // [max_seq × d]
  Param segments_;   // [2 × d]
  std::vector<int> ids_cache_, seg_cache_;
  std::size_t batch_cache_ = 0, seq_cache_ = 0;
};

}  // namespace pf
