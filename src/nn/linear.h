// Fully-connected layer with K-FAC capture hooks.
//
// Layout: x is [N_tokens × d_in], weight is [d_in × d_out], y = x·W + b.
// During training the layer caches its input (the K-FAC activations a_l)
// and, on backward, the output gradient (the K-FAC errors e_l) — exactly
// the two tensors the curvature work of PipeFisher consumes.
#pragma once

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/nn/param.h"

namespace pf {

class Linear {
 public:
  Linear(std::size_t d_in, std::size_t d_out, Rng& rng,
         const std::string& name, double init_std = 0.02);

  // y = x·W + b. Caches x when `training`. The context threads the GEMM
  // row blocks and the bias-add row loop (bitwise identical at every thread
  // count — see exec_context.h).
  Matrix forward(const Matrix& x, bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  // Accumulates dW, db; returns dx. Caches dy for K-FAC. db is
  // column-sharded so each bias coordinate sums its rows in serial order.
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults());

  // Zero-bubble split of backward() (ZB-H1: Qi et al. 2023). backward_dx is
  // the B pass: caches dy, accumulates db, returns dx — everything on the
  // pipeline's critical path — and skips the dW GEMM. backward_dw is the W
  // pass: dW += xᵀ·dy from the live caches (or an externalized Cache), the
  // deferrable weight-gradient GEMM. Running backward_dx then backward_dw
  // is BITWISE identical to the fused backward(): the same matmul_tn_acc on
  // the same operands, and dW touches coordinates disjoint from db/dx, so
  // only the per-micro order of dW accumulation matters — the caller (the
  // pipeline runtime's per-stage W chain) keeps it ascending.
  Matrix backward_dx(const Matrix& dy,
                     const ExecContext& ctx = ExecContext::defaults());
  void backward_dw(const ExecContext& ctx = ExecContext::defaults());

  std::size_t d_in() const { return d_in_; }
  std::size_t d_out() const { return d_out_; }

  Param& weight() { return w_; }
  Param& bias() { return b_; }
  const Param& weight() const { return w_; }

  // K-FAC capture: inputs a_l [N × d_in] and errors e_l [N × d_out] of the
  // most recent forward/backward.
  const Matrix& cached_input() const { return x_cache_; }
  const Matrix& cached_output_grad() const { return dy_cache_; }
  bool has_kfac_caches() const {
    return !x_cache_.empty() && !dy_cache_.empty();
  }

  // Cache externalization for pipeline execution (stage_partition.h): a
  // stage keeps several micro-batches in flight, so the per-forward caches
  // move out into a per-micro stash after each op and come back in before
  // the matching backward. save_cache() MOVES the caches out (the layer is
  // left cache-empty). restore_cache has two forms: the rvalue overload
  // MOVES the stash entry back (the runtime's borrow path — backward reads
  // but never mutates x, so the buffer survives the round trip bit for bit
  // and is re-harvested for K-FAC afterwards); the const& overload copies,
  // leaving the stash intact (the legacy copy_stashes path kept for A/B
  // measurement).
  struct Cache {
    Matrix x;   // a_l of one micro-batch
    Matrix dy;  // e_l, present only after the micro's backward ran
  };
  Cache save_cache() {
    Cache c{std::move(x_cache_), std::move(dy_cache_)};
    x_cache_ = Matrix();
    dy_cache_ = Matrix();
    return c;
  }
  void restore_cache(const Cache& c) {
    x_cache_ = c.x;
    dy_cache_ = c.dy;
  }
  void restore_cache(Cache&& c) {
    x_cache_ = std::move(c.x);
    dy_cache_ = std::move(c.dy);
  }

  // W pass over an externalized cache (the pipeline runtime's deferred-dW
  // stash): dW += c.xᵀ·c.dy without touching the live caches.
  void backward_dw(const Cache& c,
                   const ExecContext& ctx = ExecContext::defaults());

  std::vector<Param*> params() { return {&w_, &b_}; }
  const std::string& name() const { return name_; }

 private:
  std::size_t d_in_, d_out_;
  std::string name_;
  Param w_;
  Param b_;  // [1 × d_out]
  Matrix x_cache_;
  Matrix dy_cache_;
};

}  // namespace pf
