// Finite-difference gradient checking — the test harness that certifies
// every hand-written backward pass in src/nn.
#pragma once

#include <functional>

#include "src/common/exec_context.h"
#include "src/nn/param.h"

namespace pf {

// Maximum relative error between analytic gradients (already accumulated in
// params[i]->g) and central finite differences of `loss_fn` (which must be a
// deterministic pure function of the parameter values). Checks at most
// `samples` randomly chosen coordinates per parameter.
//
// `loss_fn` receives the context so every numeric probe evaluates the model
// under the same execution context that produced the analytic gradients —
// the multi-threaded grad checks in the NnThreads suite rely on this. The
// probes themselves stay serial (they mutate the shared parameters).
//
// The relative-error denominator is floored at `denom_floor`: central
// differences of a loss L resolve gradients only down to ~eps_machine·L/eps
// (≈1e-11 here), so near-zero gradient coordinates would otherwise report
// pure cancellation noise as error.
double max_grad_check_error(
    const std::vector<Param*>& params,
    const std::function<double(const ExecContext&)>& loss_fn,
    const ExecContext& ctx, std::size_t samples = 8, double eps = 1e-5,
    std::uint64_t seed = 42, double denom_floor = 1e-5);

// Seed-era signature: evaluates under the process-default context.
double max_grad_check_error(const std::vector<Param*>& params,
                            const std::function<double()>& loss_fn,
                            std::size_t samples = 8, double eps = 1e-5,
                            std::uint64_t seed = 42,
                            double denom_floor = 1e-5);

}  // namespace pf
