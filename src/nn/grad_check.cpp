#include "src/nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace pf {

double max_grad_check_error(
    const std::vector<Param*>& params,
    const std::function<double(const ExecContext&)>& loss_fn,
    const ExecContext& ctx, std::size_t samples, double eps,
    std::uint64_t seed, double denom_floor) {
  Rng rng(seed);
  double worst = 0.0;
  for (Param* p : params) {
    const std::size_t n = p->size();
    const std::size_t count = std::min(samples, n);
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t idx = rng.uniform_int(n);
      const std::size_t r = idx / p->w.cols();
      const std::size_t c = idx % p->w.cols();
      const double orig = p->w(r, c);
      p->w(r, c) = orig + eps;
      const double up = loss_fn(ctx);
      p->w(r, c) = orig - eps;
      const double down = loss_fn(ctx);
      p->w(r, c) = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->g(r, c);
      const double denom =
          std::max({std::abs(numeric), std::abs(analytic), denom_floor});
      worst = std::max(worst, std::abs(numeric - analytic) / denom);
    }
  }
  return worst;
}

double max_grad_check_error(const std::vector<Param*>& params,
                            const std::function<double()>& loss_fn,
                            std::size_t samples, double eps,
                            std::uint64_t seed, double denom_floor) {
  return max_grad_check_error(
      params, [&](const ExecContext&) { return loss_fn(); },
      ExecContext::defaults(), samples, eps, seed, denom_floor);
}

}  // namespace pf
