// Layer normalization over the feature dimension with learnable gain/bias.
#pragma once

#include "src/nn/param.h"

namespace pf {

class LayerNorm {
 public:
  LayerNorm(std::size_t dim, const std::string& name, double eps = 1e-5);

  Matrix forward(const Matrix& x, bool training = true);
  Matrix backward(const Matrix& dy);

  std::vector<Param*> params() { return {&gamma_, &beta_}; }

 private:
  std::size_t dim_;
  double eps_;
  Param gamma_;  // [1 × dim]
  Param beta_;   // [1 × dim]
  Matrix xhat_;
  std::vector<double> inv_std_;
};

}  // namespace pf
