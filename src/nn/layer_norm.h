// Layer normalization over the feature dimension with learnable gain/bias.
#pragma once

#include "src/common/exec_context.h"
#include "src/nn/param.h"

namespace pf {

class LayerNorm {
 public:
  LayerNorm(std::size_t dim, const std::string& name, double eps = 1e-5);

  // Row-parallel over the context: each row's mean/variance/normalization
  // is independent, so every thread count matches serial bit for bit.
  Matrix forward(const Matrix& x, bool training = true,
                 const ExecContext& ctx = ExecContext::defaults());
  // dx is row-parallel; the gamma/beta gradient accumulation is
  // column-sharded (each coordinate sums rows in ascending order — the
  // serial per-location order at every thread count).
  Matrix backward(const Matrix& dy,
                  const ExecContext& ctx = ExecContext::defaults());

  std::vector<Param*> params() { return {&gamma_, &beta_}; }

  // Cache externalization for pipeline stages (see linear.h).
  struct Cache {
    Matrix xhat;
    std::vector<double> inv_std;
  };
  Cache save_cache() {
    Cache c{std::move(xhat_), std::move(inv_std_)};
    xhat_ = Matrix();
    inv_std_.clear();
    return c;
  }
  void restore_cache(const Cache& c) {
    xhat_ = c.xhat;
    inv_std_ = c.inv_std;
  }
  void restore_cache(Cache&& c) {
    xhat_ = std::move(c.xhat);
    inv_std_ = std::move(c.inv_std);
  }

 private:
  std::size_t dim_;
  double eps_;
  Param gamma_;  // [1 × dim]
  Param beta_;   // [1 × dim]
  Matrix xhat_;
  std::vector<double> inv_std_;
};

}  // namespace pf
