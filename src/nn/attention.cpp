#include "src/nn/attention.h"

#include <cmath>

#include "src/linalg/gemm.h"
#include "src/nn/activations.h"

namespace pf {

namespace {

// Copies the [seq × d_head] slice of one (batch, head) out of a
// [batch·seq × d_model] tensor.
Matrix slice_bh(const Matrix& x, std::size_t b, std::size_t h,
                std::size_t seq, std::size_t d_head) {
  Matrix out(seq, d_head);
  for (std::size_t s = 0; s < seq; ++s) {
    const double* row = x.row(b * seq + s);
    for (std::size_t c = 0; c < d_head; ++c) out(s, c) = row[h * d_head + c];
  }
  return out;
}

void add_slice_bh(Matrix& x, const Matrix& piece, std::size_t b,
                  std::size_t h, std::size_t seq, std::size_t d_head) {
  for (std::size_t s = 0; s < seq; ++s) {
    double* row = x.row(b * seq + s);
    for (std::size_t c = 0; c < d_head; ++c)
      row[h * d_head + c] += piece(s, c);
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t d_model,
                                               std::size_t n_heads, Rng& rng,
                                               const std::string& name)
    : d_model_(d_model),
      n_heads_(n_heads),
      d_head_(d_model / n_heads),
      wq_(d_model, d_model, rng, name + ".wq"),
      wk_(d_model, d_model, rng, name + ".wk"),
      wv_(d_model, d_model, rng, name + ".wv"),
      wo_(d_model, d_model, rng, name + ".wo") {
  PF_CHECK(d_model % n_heads == 0)
      << "d_model " << d_model << " not divisible by heads " << n_heads;
}

Matrix MultiHeadSelfAttention::forward(const Matrix& x, std::size_t batch,
                                       std::size_t seq, bool training) {
  PF_CHECK(x.rows() == batch * seq && x.cols() == d_model_);
  batch_ = batch;
  seq_ = seq;
  q_ = wq_.forward(x, training);
  k_ = wk_.forward(x, training);
  v_ = wv_.forward(x, training);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  Matrix context(batch * seq, d_model_, 0.0);
  if (training) probs_.assign(batch * n_heads_, Matrix());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t h = 0; h < n_heads_; ++h) {
      const Matrix qb = slice_bh(q_, b, h, seq, d_head_);
      const Matrix kb = slice_bh(k_, b, h, seq, d_head_);
      const Matrix vb = slice_bh(v_, b, h, seq, d_head_);
      Matrix scores = matmul_nt(qb, kb);
      scores *= scale;
      const Matrix p = softmax_rows(scores);
      if (training) probs_[b * n_heads_ + h] = p;
      const Matrix ctx = matmul(p, vb);
      add_slice_bh(context, ctx, b, h, seq, d_head_);
    }
  }
  return wo_.forward(context, training);
}

Matrix MultiHeadSelfAttention::backward(const Matrix& dy) {
  PF_CHECK(!probs_.empty()) << "backward before forward";
  const Matrix dcontext = wo_.backward(dy);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  Matrix dq(q_.rows(), d_model_, 0.0);
  Matrix dk(k_.rows(), d_model_, 0.0);
  Matrix dv(v_.rows(), d_model_, 0.0);
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t h = 0; h < n_heads_; ++h) {
      const Matrix& p = probs_[b * n_heads_ + h];
      const Matrix qb = slice_bh(q_, b, h, seq_, d_head_);
      const Matrix kb = slice_bh(k_, b, h, seq_, d_head_);
      const Matrix vb = slice_bh(v_, b, h, seq_, d_head_);
      const Matrix dctx = slice_bh(dcontext, b, h, seq_, d_head_);
      // ctx = p · v.
      const Matrix dp = matmul_nt(dctx, vb);
      const Matrix dvb = matmul_tn(p, dctx);
      // scores backward through softmax, then through q·kᵀ·scale.
      Matrix dscores = softmax_rows_backward(p, dp);
      dscores *= scale;
      const Matrix dqb = matmul(dscores, kb);
      const Matrix dkb = matmul_tn(dscores, qb);
      add_slice_bh(dq, dqb, b, h, seq_, d_head_);
      add_slice_bh(dk, dkb, b, h, seq_, d_head_);
      add_slice_bh(dv, dvb, b, h, seq_, d_head_);
    }
  }
  Matrix dx = wq_.backward(dq);
  dx += wk_.backward(dk);
  dx += wv_.backward(dv);
  return dx;
}

std::vector<Param*> MultiHeadSelfAttention::params() {
  std::vector<Param*> out;
  for (Linear* l : kfac_linears())
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

}  // namespace pf
