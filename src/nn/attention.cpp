#include "src/nn/attention.h"

#include <cmath>
#include <utility>

#include "src/linalg/gemm.h"
#include "src/nn/activations.h"

namespace pf {

namespace {

// Copies the [seq × d_head] slice of one (batch, head) out of a
// [batch·seq × d_model] tensor.
Matrix slice_bh(const Matrix& x, std::size_t b, std::size_t h,
                std::size_t seq, std::size_t d_head) {
  Matrix out(seq, d_head);
  for (std::size_t s = 0; s < seq; ++s) {
    const double* row = x.row(b * seq + s);
    for (std::size_t c = 0; c < d_head; ++c) out(s, c) = row[h * d_head + c];
  }
  return out;
}

void add_slice_bh(Matrix& x, const Matrix& piece, std::size_t b,
                  std::size_t h, std::size_t seq, std::size_t d_head) {
  for (std::size_t s = 0; s < seq; ++s) {
    double* row = x.row(b * seq + s);
    for (std::size_t c = 0; c < d_head; ++c)
      row[h * d_head + c] += piece(s, c);
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t d_model,
                                               std::size_t n_heads, Rng& rng,
                                               const std::string& name)
    : d_model_(d_model),
      n_heads_(n_heads),
      d_head_(d_model / n_heads),
      wq_(d_model, d_model, rng, name + ".wq"),
      wk_(d_model, d_model, rng, name + ".wk"),
      wv_(d_model, d_model, rng, name + ".wv"),
      wo_(d_model, d_model, rng, name + ".wo") {
  PF_CHECK(d_model % n_heads == 0)
      << "d_model " << d_model << " not divisible by heads " << n_heads;
}

Matrix MultiHeadSelfAttention::forward(const Matrix& x, std::size_t batch,
                                       std::size_t seq, bool training,
                                       const ExecContext& ctx) {
  PF_CHECK(x.rows() == batch * seq && x.cols() == d_model_);
  batch_ = batch;
  seq_ = seq;
  q_ = wq_.forward(x, training, ctx);
  k_ = wk_.forward(x, training, ctx);
  v_ = wv_.forward(x, training, ctx);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  Matrix context(batch * seq, d_model_, 0.0);
  if (training) probs_.assign(batch * n_heads_, Matrix());
  // One task per (batch, head): each writes its own probs_ slot and a
  // disjoint [seq × d_head] slice of `context` (rows of sequence b, columns
  // of head h), so any partition is race-free and bitwise identical. When
  // this loop actually fans out, the tiny per-head products run serial
  // inside each task (the parallelism budget is the loop itself); with a
  // serial outer loop they keep following the context's GEMM row-block
  // knob, as before the ExecContext refactor. Either choice is bitwise
  // neutral.
  const bool fan_out = ctx.resolved_nn_threads() > 1;
  const ExecContext inner = fan_out ? ExecContext::serial() : ctx;
  ctx.parallel_for(batch * n_heads_, [&](std::size_t bh0, std::size_t bh1) {
    for (std::size_t bh = bh0; bh < bh1; ++bh) {
      const std::size_t b = bh / n_heads_;
      const std::size_t h = bh % n_heads_;
      const Matrix qb = slice_bh(q_, b, h, seq, d_head_);
      const Matrix kb = slice_bh(k_, b, h, seq, d_head_);
      const Matrix vb = slice_bh(v_, b, h, seq, d_head_);
      Matrix scores = matmul_nt(qb, kb, inner);
      scores *= scale;
      const Matrix p = softmax_rows(scores, inner);
      if (training) probs_[bh] = p;
      const Matrix head_ctx = matmul(p, vb, inner);
      add_slice_bh(context, head_ctx, b, h, seq, d_head_);
    }
  });
  return wo_.forward(context, training, ctx);
}

Matrix MultiHeadSelfAttention::backward(const Matrix& dy,
                                        const ExecContext& ctx,
                                        bool dx_only) {
  PF_CHECK(!probs_.empty()) << "backward before forward";
  const Matrix dcontext =
      dx_only ? wo_.backward_dx(dy, ctx) : wo_.backward(dy, ctx);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  Matrix dq(q_.rows(), d_model_, 0.0);
  Matrix dk(k_.rows(), d_model_, 0.0);
  Matrix dv(v_.rows(), d_model_, 0.0);
  // Same task shape as forward: (batch, head) tasks write disjoint slices
  // of dq/dk/dv, with the same inner-threading rule.
  const bool fan_out = ctx.resolved_nn_threads() > 1;
  const ExecContext inner = fan_out ? ExecContext::serial() : ctx;
  ctx.parallel_for(batch_ * n_heads_, [&](std::size_t bh0, std::size_t bh1) {
    for (std::size_t bh = bh0; bh < bh1; ++bh) {
      const std::size_t b = bh / n_heads_;
      const std::size_t h = bh % n_heads_;
      const Matrix& p = probs_[bh];
      const Matrix qb = slice_bh(q_, b, h, seq_, d_head_);
      const Matrix kb = slice_bh(k_, b, h, seq_, d_head_);
      const Matrix vb = slice_bh(v_, b, h, seq_, d_head_);
      const Matrix dctx = slice_bh(dcontext, b, h, seq_, d_head_);
      // head_ctx = p · v.
      const Matrix dp = matmul_nt(dctx, vb, inner);
      const Matrix dvb = matmul_tn(p, dctx, inner);
      // scores backward through softmax, then through q·kᵀ·scale.
      Matrix dscores = softmax_rows_backward(p, dp, inner);
      dscores *= scale;
      const Matrix dqb = matmul(dscores, kb, inner);
      const Matrix dkb = matmul_tn(dscores, qb, inner);
      add_slice_bh(dq, dqb, b, h, seq_, d_head_);
      add_slice_bh(dk, dkb, b, h, seq_, d_head_);
      add_slice_bh(dv, dvb, b, h, seq_, d_head_);
    }
  });
  Matrix dx = dx_only ? wq_.backward_dx(dq, ctx) : wq_.backward(dq, ctx);
  dx += dx_only ? wk_.backward_dx(dk, ctx) : wk_.backward(dk, ctx);
  dx += dx_only ? wv_.backward_dx(dv, ctx) : wv_.backward(dv, ctx);
  return dx;
}

MultiHeadSelfAttention::Cache MultiHeadSelfAttention::save_cache() {
  Cache c;
  c.q = std::move(q_);
  c.k = std::move(k_);
  c.v = std::move(v_);
  c.probs = std::move(probs_);
  c.batch = batch_;
  c.seq = seq_;
  c.wq = wq_.save_cache();
  c.wk = wk_.save_cache();
  c.wv = wv_.save_cache();
  c.wo = wo_.save_cache();
  q_ = Matrix();
  k_ = Matrix();
  v_ = Matrix();
  probs_.clear();
  return c;
}

void MultiHeadSelfAttention::restore_cache(const Cache& c) {
  q_ = c.q;
  k_ = c.k;
  v_ = c.v;
  probs_ = c.probs;
  batch_ = c.batch;
  seq_ = c.seq;
  wq_.restore_cache(c.wq);
  wk_.restore_cache(c.wk);
  wv_.restore_cache(c.wv);
  wo_.restore_cache(c.wo);
}

void MultiHeadSelfAttention::restore_cache(Cache&& c) {
  q_ = std::move(c.q);
  k_ = std::move(c.k);
  v_ = std::move(c.v);
  probs_ = std::move(c.probs);
  batch_ = c.batch;
  seq_ = c.seq;
  wq_.restore_cache(std::move(c.wq));
  wk_.restore_cache(std::move(c.wk));
  wv_.restore_cache(std::move(c.wv));
  wo_.restore_cache(std::move(c.wo));
}

std::vector<Param*> MultiHeadSelfAttention::params() {
  std::vector<Param*> out;
  for (Linear* l : kfac_linears())
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

}  // namespace pf
