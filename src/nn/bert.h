// Scaled-down BERT: embeddings → N encoder blocks → MLM head + NSP head.
//
// Matches the paper's training target structurally: the pretraining loss is
// masked-LM cross entropy plus next-sentence-prediction cross entropy, and
// K-FAC preconditions every encoder fully-connected layer but NOT the MLM
// classification head (whose d_out = vocab would make B_l huge — paper §4).
#pragma once

#include "src/nn/embedding.h"
#include "src/nn/loss.h"
#include "src/nn/transformer_block.h"

namespace pf {

struct BertConfig {
  std::size_t vocab = 68;
  std::size_t d_model = 32;
  std::size_t d_ff = 64;
  std::size_t n_heads = 4;
  std::size_t n_layers = 2;
  std::size_t seq_len = 16;
};

struct BertBatch {
  std::size_t batch = 0;
  std::size_t seq = 0;
  std::vector<int> ids;         // [batch·seq] input tokens (post-masking)
  std::vector<int> segments;    // [batch·seq] 0/1
  std::vector<int> mlm_labels;  // [batch·seq] original token or -1
  std::vector<int> nsp_labels;  // [batch] 1 = is-next, 0 = random
};

struct BertLossBreakdown {
  double total = 0.0;
  double mlm = 0.0;
  double nsp = 0.0;
};

// Head logits from an inference forward (BertModel::forward / the serving
// engine's per-request records).
struct BertInferOutput {
  Matrix mlm_logits;  // [batch·seq × vocab]
  Matrix nsp_logits;  // [batch × 2]
};

// The [CLS] rows of a [batch·seq × d] hidden-state tensor (row b·seq of
// each sequence) — the NSP head's input. Shared by the serial model and the
// last pipeline stage so both run the identical gather.
Matrix gather_cls_rows(const Matrix& h, std::size_t batch, std::size_t seq);

class BertModel {
 public:
  BertModel(const BertConfig& cfg, Rng& rng);

  // Forward + loss + backward (accumulates gradients). Returns the losses.
  // The context threads every layer loop and GEMM beneath; losses and
  // gradients are bitwise identical for every thread count (NnThreads
  // suite pins this end to end).
  BertLossBreakdown train_step_backward(
      const BertBatch& batch, const ExecContext& ctx = ExecContext::defaults());

  // Inference forward returning the head logits. With the default
  // `training=false` every layer skips its backward cache stash (no
  // backward is possible afterwards; peak memory stays at the activations
  // in flight — pinned by ServingInference.InferenceForwardLeavesNoCaches).
  // `training=true` leaves the caches populated for callers that want
  // logits and a backward. Labels in `batch` are ignored.
  BertInferOutput forward(const BertBatch& batch, bool training = false,
                          const ExecContext& ctx = ExecContext::defaults());

  // Inference-only loss evaluation (no caches, no gradients); forward()
  // plus the two cross-entropies.
  BertLossBreakdown evaluate(const BertBatch& batch,
                             const ExecContext& ctx = ExecContext::defaults());

  std::vector<Param*> params();
  // The K-FAC-tracked linears: all encoder linears (6 per block). The MLM
  // and NSP heads are excluded, mirroring the paper.
  std::vector<Linear*> kfac_linears();

  const BertConfig& config() const { return cfg_; }
  std::size_t n_params();

  // Layer access for the pipeline stage partition (stage_partition.h),
  // which builds non-owning stage views over the same layer objects the
  // serial path trains — so pipeline and serial execution share weights,
  // gradients and optimizer state by construction.
  Embedding& embedding() { return emb_; }
  std::vector<TransformerBlock>& blocks() { return blocks_; }
  Linear& mlm_head() { return mlm_head_; }
  Linear& nsp_head() { return nsp_head_; }

 private:
  // Shared forward; returns hidden states [batch·seq × d_model].
  Matrix encode(const BertBatch& batch, bool training, const ExecContext& ctx);

  BertConfig cfg_;
  Embedding emb_;
  std::vector<TransformerBlock> blocks_;
  Linear mlm_head_;
  Linear nsp_head_;
  // Caches for backward.
  std::size_t last_batch_ = 0;
};

}  // namespace pf
