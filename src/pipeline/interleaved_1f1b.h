// Interleaved 1F1B (Megatron-LM's virtual-pipeline schedule, Narayanan et
// al. 2021b): each device owns `v` non-contiguous model chunks (virtual
// stages), shrinking the startup bubble by ~v at the cost of more P2P.
//
// PipeFisher claims to work with ANY pipeline schedule (§3.1); this
// generator exercises that claim: the spec exposes D·v virtual stages over
// D devices and relies on the simulator's greedy executor (same policy as
// Chimera) for the realized order.
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

// n_devices devices, n_virtual chunks per device (model has
// n_devices·n_virtual stages), n_micro micro-batches per step.
ScheduleSpec make_interleaved_1f1b(int n_devices, int n_virtual,
                                   int n_micro);

}  // namespace pf
