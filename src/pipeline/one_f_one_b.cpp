#include "src/pipeline/one_f_one_b.h"

#include <algorithm>

#include "src/common/check.h"

namespace pf {

ScheduleSpec make_1f1b(int n_stages, int n_micro) {
  PF_CHECK(n_stages >= 1 && n_micro >= 1);
  ScheduleSpec spec;
  spec.name = "1f1b";
  spec.n_stages = n_stages;
  spec.n_devices = n_stages;
  spec.n_micro = n_micro;
  spec.n_pipelines = 1;
  spec.stage_to_device.resize(1);
  for (int s = 0; s < n_stages; ++s) spec.stage_to_device[0].push_back(s);
  spec.micros_of_pipeline.resize(1);
  for (int m = 0; m < n_micro; ++m) spec.micros_of_pipeline[0].push_back(m);
  spec.programs.resize(static_cast<std::size_t>(n_stages));
  for (int s = 0; s < n_stages; ++s) {
    auto& prog = spec.programs[static_cast<std::size_t>(s)];
    const int warmup = std::min(n_micro, n_stages - s);
    int f = 0, b = 0;
    for (; f < warmup; ++f) prog.push_back({OpType::kForward, 0, s, f});
    while (f < n_micro) {
      prog.push_back({OpType::kBackward, 0, s, b++});
      prog.push_back({OpType::kForward, 0, s, f++});
    }
    while (b < n_micro) prog.push_back({OpType::kBackward, 0, s, b++});
  }
  spec.validate();
  return spec;
}

}  // namespace pf
