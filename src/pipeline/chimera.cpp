#include "src/pipeline/chimera.h"

#include <string>

#include "src/common/check.h"

namespace pf {

ScheduleSpec make_chimera(int n_stages, int n_micro, int n_pipelines) {
  PF_CHECK(n_pipelines >= 2 && n_pipelines % 2 == 0)
      << "Chimera needs an even pipeline count >= 2, got " << n_pipelines;
  const int n_pairs = n_pipelines / 2;
  PF_CHECK(n_stages >= 2 && n_stages % 2 == 0)
      << "Chimera needs an even number of stages, got " << n_stages;
  PF_CHECK(n_stages % n_pairs == 0)
      << "Chimera-" << n_pipelines << " needs n_stages divisible by "
      << n_pairs << " (one device offset per down-up pair), got " << n_stages;
  PF_CHECK(n_micro >= n_pipelines && n_micro % n_pipelines == 0)
      << "Chimera-" << n_pipelines
      << " needs a micro-batch count divisible by " << n_pipelines
      << ", got " << n_micro;

  ScheduleSpec spec;
  spec.name =
      n_pipelines == 2 ? "chimera" : "chimera-" + std::to_string(n_pipelines);
  spec.n_stages = n_stages;
  spec.n_devices = n_stages;
  spec.n_micro = n_micro;
  spec.n_pipelines = n_pipelines;
  spec.stage_to_device.resize(static_cast<std::size_t>(n_pipelines));
  for (int q = 0; q < n_pairs; ++q) {
    const int offset = q * (n_stages / n_pairs);
    auto& down = spec.stage_to_device[static_cast<std::size_t>(2 * q)];
    auto& up = spec.stage_to_device[static_cast<std::size_t>(2 * q + 1)];
    for (int s = 0; s < n_stages; ++s) {
      down.push_back((s + offset) % n_stages);
      up.push_back((n_stages - 1 - s + offset) % n_stages);
    }
  }
  spec.micros_of_pipeline.resize(static_cast<std::size_t>(n_pipelines));
  const int chunk = n_micro / n_pipelines;
  for (int p = 0; p < n_pipelines; ++p)
    for (int m = p * chunk; m < (p + 1) * chunk; ++m)
      spec.micros_of_pipeline[static_cast<std::size_t>(p)].push_back(m);
  spec.dynamic_order = true;
  spec.validate();
  return spec;
}

}  // namespace pf
