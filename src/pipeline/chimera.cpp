#include "src/pipeline/chimera.h"

#include "src/common/check.h"

namespace pf {

ScheduleSpec make_chimera(int n_stages, int n_micro) {
  PF_CHECK(n_stages >= 2 && n_stages % 2 == 0)
      << "Chimera needs an even number of stages, got " << n_stages;
  PF_CHECK(n_micro >= 2 && n_micro % 2 == 0)
      << "Chimera needs an even micro-batch count, got " << n_micro;
  ScheduleSpec spec;
  spec.name = "chimera";
  spec.n_stages = n_stages;
  spec.n_devices = n_stages;
  spec.n_micro = n_micro;
  spec.n_pipelines = 2;
  spec.stage_to_device.resize(2);
  for (int s = 0; s < n_stages; ++s) {
    spec.stage_to_device[0].push_back(s);                  // down
    spec.stage_to_device[1].push_back(n_stages - 1 - s);   // up
  }
  spec.micros_of_pipeline.resize(2);
  for (int m = 0; m < n_micro / 2; ++m)
    spec.micros_of_pipeline[0].push_back(m);
  for (int m = n_micro / 2; m < n_micro; ++m)
    spec.micros_of_pipeline[1].push_back(m);
  spec.dynamic_order = true;
  spec.validate();
  return spec;
}

}  // namespace pf
