// Zero-bubble ZB-H1 schedule (Qi et al. 2023, "Zero Bubble Pipeline
// Parallelism"): 1F1B's F/B skeleton with backward split into B (activation
// gradient, critical path) and W (weight gradient, deferrable). The B pass
// is what unblocks the upstream stage, so with T_b halved the drain ramp
// shortens; the W halves float into the idle slots 1F1B would have wasted,
// removing bubbles instead of filling them — the structural counterpoint to
// PipeFisher, which fills the same slots with K-FAC work.
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

// Static per-device F/B programs identical in shape to make_1f1b; the W ops
// exist in all_ops() but float outside the programs (split_backward).
ScheduleSpec make_zb_h1(int n_stages, int n_micro);

}  // namespace pf
