// Executable step plan: the task graph PipelineRuntime::step() runs, as a
// pure value — every task's lane, dispatch priority, resource token and
// dependency edges, WITHOUT the bodies that do the work.
//
// Splitting plan construction from body attachment buys two things:
//  * the runtime's graph build becomes data the rest of the library can
//    inspect (tests assert over it instead of re-deriving orders);
//  * the perfmodel calibration layer (src/perfmodel/calibration.h) can
//    replay the EXACT graph the executor will run in virtual time under
//    fitted per-(kind, stage) durations — a prediction that shares every
//    structural property (head-of-line chains, floating W priorities,
//    K-FAC gap-filling tiers, resource exclusion) with reality, instead of
//    re-approximating them from closed forms.
//
// The plan is bitwise-load-bearing: PipelineRuntime attaches bodies to the
// tasks in plan order and asserts executor ids equal plan indices, so lanes,
// priorities and dependency edges here ARE the ones that pin the serial
// gradient-fold order. Change construction order only with the
// test_pipeline_runtime / test_zero_bubble bitwise grids green.
#pragma once

#include <cstddef>
#include <vector>

#include "src/pipeline/ops.h"
#include "src/trace/timeline.h"

namespace pf {

// Dispatch-priority tiers (smallest value dispatches first). Pipeline ops
// get their event-order position; deferred W passes (zb-h1) sit above every
// program position so a lane takes one only when no pipeline op is runnable
// — the executed analog of the simulator's floating W pools; step-tail
// tasks follow; K-FAC work sits above everything so it is only dispatched
// into lane idle time (realized bubbles).
constexpr long kWeightPriorityBase = 1L << 16;
constexpr long kTailPriorityBase = 1L << 18;
constexpr long kKfacPriorityBase = 1L << 20;

struct PlannedTask {
  std::size_t lane = 0;  // device the task runs on
  long priority = 0;
  int resource = -1;  // stage resource token, -1 = none
  std::vector<std::size_t> deps;  // indices into StepPlan::tasks

  WorkKind kind = WorkKind::kForward;
  int stage = -1, micro = -1, layer = -1, factor = -1;
  PipeOp op{};        // valid when is_op
  bool is_op = false;
  // BubbleTask-shape reconstruction: curvature GEMMs are splittable work,
  // commits/inversions/preconditions are not.
  bool splittable = false;
};

struct StepPlan {
  std::vector<PlannedTask> tasks;
  std::size_t n_lanes = 0;
  bool split_backward = false;

  bool is_kfac(std::size_t i) const;
};

// True for the kinds mirrored into the BubbleTask plan (curvature A/B,
// commit, inversion A/B, precondition).
bool is_kfac_kind(WorkKind k);

// Rewrites each device's op order so that, within every (pipeline, stage)
// group, the backwards visit micros in ascending order — the gradient-
// accumulation order the bitwise contract requires (see
// train/pipeline_runtime.h). 1F1B and the greedy orders are already
// ascending per stage; GPipe's LIFO backward drain becomes FIFO (same
// critical path under uniform costs; the activation stash is keyed by
// micro, so LIFO buys nothing here).
void normalize_backward_order(std::vector<std::vector<PipeOp>>& programs);

// Builds the full step graph for one synchronous step:
//   pipeline F/B ops (creation order honors `device_order`), deferred W
//   chains (split_backward), per-stage gradient finalization, K-FAC
//   curvature/commit/inversion/precondition work for every stage with
//   factors_per_stage[s] > 0 (gated by curv_step / inv_step), and the
//   per-stage optimizer updates.
//
// `device_order` is the normalized event order (static programs or the
// greedy simulator's realized order); `factors_per_stage[s]` is the K-FAC
// engine's tracked-factor count on stage s (0 = no engine).
StepPlan build_step_plan(const ScheduleSpec& spec,
                         const std::vector<std::vector<PipeOp>>& device_order,
                         const std::vector<std::size_t>& factors_per_stage,
                         bool curv_step, bool inv_step);

}  // namespace pf
