// Discrete-event pipeline simulator.
//
// Executes a ScheduleSpec under per-op costs and produces a Timeline — the
// simulated analog of the paper's Nsight profile of one pipeline step.
//
// Semantics:
//  * Forward(pl, s, m) requires Forward(pl, s-1, m) plus a P2P delay.
//  * Backward(pl, s, m) requires Forward(pl, s, m) on the same device and
//    Backward(pl, s+1, m) plus a P2P delay.
//  * A device executes its program head-of-line (static schedules) or — for
//    dynamic_order schedules (Chimera) — greedily picks the ready op with
//    the highest priority (backward first, then lowest micro id, then the
//    down pipeline) whenever it is idle. The executor is work-conserving.
//  * split_backward schedules (ZB-H1) additionally float one
//    BackwardWeight(pl, s, m) op per backward, ready when its own B pass
//    ends, chained per (pipeline, stage) by ascending micro. A floating W
//    runs only when it can start strictly before the device's program head
//    — it fills bubbles, it never displaces the critical path.
//  * After the last pipeline op, each device runs the step tail:
//    sync-grad (Chimera: paired with the mirror device D-1-d, starting when
//    both are done), precondition (PipeFisher only), optimizer update.
//
// The step period is the tail's latest end; synchronous training repeats the
// step at that period (pipeline flush).
#pragma once

#include <map>

#include "src/pipeline/ops.h"
#include "src/trace/timeline.h"

namespace pf {

struct StepCosts {
  double t_forward = 1.0;      // per stage per micro-batch
  double t_backward = 2.0;     // per stage per micro-batch
  double t_p2p = 0.0;          // boundary-activation send/recv latency
  double t_sync_grad = 0.0;    // per device at step end (0 = skip)
  double t_precondition = 0.0; // per stage at step end (0 = skip)
  double t_optimizer = 0.0;    // per stage at step end (0 = skip)

  // Optional per-stage cost multiplier (size n_stages). Uniform transformer
  // stages use the default; non-uniform architectures (the §5 CNN
  // discussion) scale forward/backward of stage s by stage_cost_scale[s].
  std::vector<double> stage_cost_scale;

  // Optional SEPARATE per-stage multipliers for forward and backward (size
  // n_stages; empty = fall back to stage_cost_scale for both). Fitted
  // profiles need this: realized stage costs are not fwd/bwd-proportional
  // — stage 0 carries the embedding, the last stage the heads + loss —
  // so CalibratedCosts::to_step_costs() fills these from the trace.
  std::vector<double> stage_forward_scale;
  std::vector<double> stage_backward_scale;

  // Asynchronous pipelines (Appendix C.1): when > 0, each device runs a
  // device-local optimizer update (duration t_optimizer per owned stage)
  // inline after every `inline_update_every` backwards — no flush, no
  // barrier. The step tail is skipped in this mode.
  int inline_update_every = 0;

  // Zero-bubble split (split_backward schedules only): fraction of
  // t_backward spent in the deferred W (dW) pass; the B (dx) pass gets the
  // remainder so the halves always sum to the fused cost. The dW GEMM and
  // the dx GEMM + db reduction are the same FLOPs to first order, hence
  // the 50/50 default — ZB-H1's own modeling assumption. The default is a
  // MODELING prior, not a measurement: on this codebase the B pass also
  // carries all non-linear backward work (attention, norms, activations,
  // embedding scatter), so the executed split fitted from zb-h1 timelines
  // (CalibratedCosts::backward_w_fraction, perfmodel/calibration.h) is
  // well below 0.5 — BENCH_zero_bubble.json records the fitted value.
  double backward_w_fraction = 0.5;

  double forward_cost(int stage) const;
  double backward_cost(int stage) const;
  // B/W halves of backward_cost(stage); meaningful under split_backward.
  double backward_b_cost(int stage) const;
  double backward_w_cost(int stage) const;
};

class StepSimResult {
 public:
  StepSimResult(std::size_t n_devices) : timeline(n_devices) {}

  Timeline timeline;
  double pipe_makespan = 0.0;  // end of last forward/backward
  double step_time = 0.0;      // end of the step tail = step period
  // Realized per-device op order (equals the input programs for static
  // schedules; the greedy order for Chimera).
  std::vector<std::vector<PipeOp>> realized_programs;

  // End time of an executed op; throws if the op was not executed.
  double op_end(const PipeOp& op) const;
  bool has_op(const PipeOp& op) const;
  double op_start(const PipeOp& op) const;

  // End of the last backward executed by `device` (pipeline ops only).
  double last_backward_end(std::size_t device) const;

  std::map<long, double> op_end_times;
  std::map<long, double> op_start_times;
};

StepSimResult simulate_step(const ScheduleSpec& spec, const StepCosts& costs);

// k steps back-to-back at the single-step period (synchronous training).
Timeline replicate_steps(const StepSimResult& step, int k);

// Convenience: total bubble (idle) time across devices within the pipeline
// portion [0, pipe_makespan] of the step.
double total_bubble_time(const StepSimResult& step);

}  // namespace pf
