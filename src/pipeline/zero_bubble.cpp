#include "src/pipeline/zero_bubble.h"

#include "src/pipeline/one_f_one_b.h"

namespace pf {

ScheduleSpec make_zb_h1(int n_stages, int n_micro) {
  // ZB-H1 keeps 1F1B's static F/B program per device; the split is in the
  // op semantics, not the program shape. Flipping split_backward re-types
  // the program's kBackward ops as B passes and adds one floating W op per
  // (stage, micro) to all_ops() — the simulator/runtime slot those into
  // realized idle time (chained per stage by ascending micro for the
  // bitwise gradient-accumulation contract).
  ScheduleSpec spec = make_1f1b(n_stages, n_micro);
  spec.name = "zb-h1";
  spec.split_backward = true;
  spec.validate();
  return spec;
}

}  // namespace pf
