// 1F1B schedule (PipeDream-style with pipeline flush, Narayanan et al.,
// 2019): each stage runs a depth-dependent number of warmup forwards, then
// alternates one-backward-one-forward, then drains remaining backwards.
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

ScheduleSpec make_1f1b(int n_stages, int n_micro);

}  // namespace pf
