#include "src/pipeline/gpipe.h"

#include "src/common/check.h"

namespace pf {

ScheduleSpec make_gpipe(int n_stages, int n_micro) {
  PF_CHECK(n_stages >= 1 && n_micro >= 1);
  ScheduleSpec spec;
  spec.name = "gpipe";
  spec.n_stages = n_stages;
  spec.n_devices = n_stages;
  spec.n_micro = n_micro;
  spec.n_pipelines = 1;
  spec.stage_to_device.resize(1);
  for (int s = 0; s < n_stages; ++s) spec.stage_to_device[0].push_back(s);
  spec.micros_of_pipeline.resize(1);
  for (int m = 0; m < n_micro; ++m) spec.micros_of_pipeline[0].push_back(m);
  spec.programs.resize(static_cast<std::size_t>(n_stages));
  for (int s = 0; s < n_stages; ++s) {
    auto& prog = spec.programs[static_cast<std::size_t>(s)];
    for (int m = 0; m < n_micro; ++m)
      prog.push_back({OpType::kForward, 0, s, m});
    // Backward in reverse micro order (LIFO over saved activations).
    for (int m = n_micro - 1; m >= 0; --m)
      prog.push_back({OpType::kBackward, 0, s, m});
  }
  spec.validate();
  return spec;
}

}  // namespace pf
