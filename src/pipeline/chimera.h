// Chimera schedule (Li & Hoefler, 2021): two bidirectional pipelines over
// the same devices. The "down" pipeline maps stage s to device s; the "up"
// pipeline maps stage s to device D-1-s, so every device owns two stages and
// the up pipeline's work fills the down pipeline's bubbles (and vice versa).
//
// Chimera's realized op order depends on the forward/backward duration
// ratio, so the spec is marked dynamic_order: the simulator picks, per idle
// device, the ready op with the highest priority (backward before forward,
// then lowest micro id, then down pipeline first). For N_micro = D this
// reproduces the published schedule with critical path C_f = D forwards and
// C_b = 2D-2 backwards (asserted in tests).
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

// n_stages must be even; n_micro must be even (half per pipeline).
ScheduleSpec make_chimera(int n_stages, int n_micro);

}  // namespace pf
