// Chimera schedule (Li & Hoefler, 2021): bidirectional pipelines over the
// same devices. In the published 2-pipeline form the "down" pipeline maps
// stage s to device s and the "up" pipeline maps stage s to device D-1-s,
// so every device owns two stages and the up pipeline's work fills the
// down pipeline's bubbles (and vice versa).
//
// The generalized form takes n_pipelines = P (even): P/2 down-up pairs,
// pair q rotated by an offset of q·D/(P/2) devices —
//   down_q: stage s -> (s + q·D/(P/2)) mod D
//   up_q:   stage s -> (D-1-s + q·D/(P/2)) mod D
// Every device owns P stages (one per pipeline — each map is a bijection),
// micros split into P contiguous chunks. P=2, offset 0 reproduces the
// published schedule exactly.
//
// Chimera's realized op order depends on the forward/backward duration
// ratio, so the spec is marked dynamic_order: the simulator picks, per idle
// device, the ready op with the highest priority (backward before forward,
// then lowest micro id, then down pipeline first). For N_micro = D this
// reproduces the published schedule with critical path C_f = D forwards and
// C_b = 2D-2 backwards (asserted in tests).
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

// n_stages must be even and divisible by n_pipelines/2; n_micro must be
// divisible by n_pipelines (one contiguous chunk each); n_pipelines must be
// an even number >= 2.
ScheduleSpec make_chimera(int n_stages, int n_micro, int n_pipelines = 2);

}  // namespace pf
