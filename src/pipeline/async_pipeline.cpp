#include "src/pipeline/async_pipeline.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {

AsyncPipelineReport simulate_async_1f1b(int n_stages, int n_micro,
                                        int iterations,
                                        const StepCosts& costs) {
  PF_CHECK(n_stages >= 2 && n_micro >= 1 && iterations >= 2);
  // The flushless stream of `iterations` mini-batches is exactly the
  // registry's "1f1b-flushless" program over iterations·n_micro
  // micro-batches (backward of batch i overlaps forward of batch i+1),
  // with device-local updates inline.
  const int total_micros = n_micro * iterations;
  StepCosts c = costs;
  c.inline_update_every = n_micro;
  ScheduleParams p;
  p.n_stages = n_stages;
  p.n_micro = total_micros;
  const auto spec = build_schedule("1f1b-flushless", p);
  PF_ASSERT(!traits_of("1f1b-flushless").flush);
  auto res = simulate_step(spec, c);

  AsyncPipelineReport rep;
  rep.stream_makespan = res.pipe_makespan;

  // Steady-state window: drop the first and last mini-batch worth of time.
  const double t0 = rep.stream_makespan / static_cast<double>(iterations);
  const double t1 = rep.stream_makespan - t0;
  rep.utilization = res.timeline.utilization(t0, t1);
  rep.throughput_micros_per_time =
      static_cast<double>(total_micros) / rep.stream_makespan;

  // Realized staleness: forward(s, m) of mini-batch k = m / n_micro uses
  // the weights after `u` device-local updates, where u = number of update
  // intervals on that device before the op started. Staleness = k − u.
  rep.staleness_per_stage.assign(static_cast<std::size_t>(n_stages), 0.0);
  for (int s = 0; s < n_stages; ++s) {
    const auto dev = static_cast<std::size_t>(s);
    // Collect update completion times on this device.
    std::vector<double> update_ends;
    for (const auto& iv : res.timeline.device_intervals(dev))
      if (iv.kind == WorkKind::kOptimizerUpdate)
        update_ends.push_back(iv.end);
    double worst = 0.0;
    for (int m = 0; m < total_micros; ++m) {
      const double start = res.op_start({OpType::kForward, 0, s, m});
      const auto k = static_cast<double>(m / n_micro);
      const double updates_done = static_cast<double>(
          std::upper_bound(update_ends.begin(), update_ends.end(), start) -
          update_ends.begin());
      worst = std::max(worst, k - updates_done);
    }
    rep.staleness_per_stage[static_cast<std::size_t>(s)] = worst;
    rep.max_staleness = std::max(rep.max_staleness, worst);
  }
  rep.timeline = std::move(res.timeline);
  return rep;
}

}  // namespace pf
