#include "src/pipeline/ops.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace pf {

long op_key(const PipeOp& op) {
  // type(0/1/2 = F/B/W) | pipeline(4) | stage(16 bits) | micro(20 bits)
  return (((static_cast<long>(op.type) * 4 + op.pipeline) * 65536 +
           op.stage) *
              1048576 +
          op.micro);
}

std::string op_debug(const PipeOp& op) {
  const char* t = op.type == OpType::kForward
                      ? "F"
                      : (op.type == OpType::kBackward ? "B" : "W");
  return format("%s(pl=%d,s=%d,m=%d)", t, op.pipeline, op.stage, op.micro);
}

int ScheduleSpec::device_of(int pipeline, int stage) const {
  PF_CHECK(pipeline >= 0 &&
           pipeline < static_cast<int>(stage_to_device.size()));
  const auto& v = stage_to_device[pipeline];
  PF_CHECK(stage >= 0 && stage < static_cast<int>(v.size()));
  return v[static_cast<std::size_t>(stage)];
}

std::vector<std::pair<int, int>> ScheduleSpec::stages_of_device(
    int device) const {
  std::vector<std::pair<int, int>> out;
  for (int pl = 0; pl < n_pipelines; ++pl)
    for (int s = 0; s < n_stages; ++s)
      if (device_of(pl, s) == device) out.emplace_back(pl, s);
  return out;
}

std::vector<PipeOp> ScheduleSpec::all_ops() const {
  std::vector<PipeOp> out;
  for (int pl = 0; pl < n_pipelines; ++pl) {
    for (int m : micros_of_pipeline[static_cast<std::size_t>(pl)]) {
      for (int s = 0; s < n_stages; ++s) {
        out.push_back({OpType::kForward, pl, s, m});
        out.push_back({OpType::kBackward, pl, s, m});
        if (split_backward)
          out.push_back({OpType::kBackwardWeight, pl, s, m});
      }
    }
  }
  return out;
}

void ScheduleSpec::validate() const {
  PF_CHECK(n_stages > 0 && n_devices > 0 && n_micro > 0 && n_pipelines > 0);
  PF_CHECK(static_cast<int>(stage_to_device.size()) == n_pipelines);
  PF_CHECK(static_cast<int>(micros_of_pipeline.size()) == n_pipelines);
  for (const auto& v : stage_to_device) {
    PF_CHECK(static_cast<int>(v.size()) == n_stages);
    for (int d : v) PF_CHECK(d >= 0 && d < n_devices);
  }
  std::set<int> micros;
  for (const auto& v : micros_of_pipeline)
    for (int m : v) {
      PF_CHECK(m >= 0 && m < n_micro);
      PF_CHECK(micros.insert(m).second) << "micro " << m << " in 2 pipelines";
    }
  PF_CHECK(static_cast<int>(micros.size()) == n_micro)
      << "micros " << micros.size() << " != n_micro " << n_micro;

  if (dynamic_order) {
    PF_CHECK(programs.empty())
        << "dynamic-order schedules must not carry explicit programs";
    return;
  }
  PF_CHECK(static_cast<int>(programs.size()) == n_devices);
  // Programs must cover every F/B op exactly once, on the right device.
  // W ops (split_backward) float outside the programs by construction.
  std::set<long> seen;
  std::size_t n_w = 0;
  for (int d = 0; d < n_devices; ++d) {
    for (const auto& op : programs[static_cast<std::size_t>(d)]) {
      PF_CHECK(op.type != OpType::kBackwardWeight)
          << op_debug(op) << ": W ops float, they never join a program";
      PF_CHECK(device_of(op.pipeline, op.stage) == d)
          << op_debug(op) << " scheduled on wrong device " << d;
      PF_CHECK(seen.insert(op_key(op)).second)
          << op_debug(op) << " appears twice";
    }
  }
  const auto expect = all_ops();
  for (const auto& op : expect)
    if (op.type == OpType::kBackwardWeight) ++n_w;
  PF_CHECK(seen.size() == expect.size() - n_w)
      << "programs cover " << seen.size() << " ops, expected "
      << expect.size() - n_w;
}

}  // namespace pf
