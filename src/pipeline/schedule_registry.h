// First-class pipeline-schedule API.
//
// PipeFisher's central claim (paper §3.1) is that bubble filling works with
// ANY pipeline schedule. This header makes "a pipeline schedule" a value the
// rest of the library can reason about without name comparisons:
//
//  * ScheduleParams — the shape knobs a caller picks (stages, micro-batches,
//    virtual chunks).
//  * ScheduleTraits — static facts consumers need without building the
//    schedule: pipeline count, stages per device, gradient-sync world
//    multiplier, the §3.3 closed-form critical-path coefficients C_f/C_b,
//    flush semantics, and parameter constraints (e.g. Chimera's even-stage
//    requirement).
//  * a factory producing the executable ScheduleSpec.
//
// The registry maps name -> {traits, factory} and is the single name-based
// dispatch site in the library. Adding a schedule is a one-file change:
// write the factory, fill in the traits, call register_schedule() (see the
// README section "Pipeline schedule API").
#pragma once

#include <string>
#include <vector>

#include "src/pipeline/ops.h"

namespace pf {

struct ScheduleParams {
  int n_stages = 4;        // pipeline depth D (one device per depth slot)
  int n_micro = 4;         // micro-batches per device per step
  // Model chunks owned per device for virtual-pipeline schedules
  // (interleaved 1F1B); schedules without virtual stages ignore it.
  int virtual_chunks = 2;
};

// Closed-form op count c_n·N + c_d·D + c_k (§3.3 Table 1), optionally with
// N scaled by the virtual-chunk count V: a device of a virtual-pipeline
// schedule executes V ops per micro-batch.
struct PathCoeff {
  double c_n = 1.0;
  double c_d = 0.0;
  double c_k = 0.0;
  bool n_scales_with_virtual = false;

  double eval(const ScheduleParams& p) const;
};

struct ScheduleTraits {
  std::string name;
  std::string description;  // one line, shown by registry enumerations

  int n_pipelines = 1;  // Chimera: 2 (down + up over the same devices)
  // Stages a device owns. Virtual-pipeline schedules own
  // `params.virtual_chunks` (set stages_per_device_is_virtual); everything
  // else a fixed count (Chimera: one stage of each pipeline).
  int stages_per_device = 1;
  bool stages_per_device_is_virtual = false;
  // Gradient-sync group multiplier on top of data parallelism. Chimera
  // allreduces each stage across its two pipelines (the stage lives on
  // device d and D-1-d), so its multiplier is 2.
  int grad_sync_world_multiplier = 1;
  // Synchronous pipeline flush at the step boundary (all registered
  // schedules today; a flushless PipeDream-style schedule would clear it).
  bool flush = true;
  // Realized op order comes from the simulator's greedy executor rather
  // than a static per-device program.
  bool dynamic_order = false;
  // Zero-bubble backward split: backward is a B (dx) pass plus a floating
  // deferred W (dW) op per (stage, micro) — see OpType::kBackwardWeight.
  bool split_backward = false;

  // Critical path: T_pipe = C_f·T_f + C_b·T_b with per-(virtual-)stage op
  // times T_f/T_b.
  PathCoeff c_f;
  PathCoeff c_b;

  // Parameter constraints, enforced by build_schedule() before the factory
  // runs.
  int min_stages = 1;
  int min_micros = 1;
  bool even_stages = false;
  bool even_micros = false;
  // Divisibility beyond evenness (chimera-4 splits micros into 4 chunks
  // and offsets its pipeline pairs by n_stages/2 devices). 1 = no
  // constraint.
  int stages_multiple_of = 1;
  int micros_multiple_of = 1;

  // Stages a device owns under `p` (resolves virtual-chunk ownership).
  int stages_per_device_for(const ScheduleParams& p) const;
  // Total (virtual) stages the model is cut into under `p`: D for plain
  // and bidirectional schedules, D·V for virtual-pipeline schedules.
  int model_stages(const ScheduleParams& p) const;
  // C_f / C_b evaluated at `p`.
  double critical_path_forwards(const ScheduleParams& p) const;
  double critical_path_backwards(const ScheduleParams& p) const;
  // Pipeline ops a device executes per micro-batch — the useful-work
  // multiplier in T_bubble = T_pipe − N·useful·(T_f + T_b). Equals
  // stages_per_device / n_pipelines: a Chimera device owns two stages but
  // each sees only its pipeline's half of the micro-batches (= 1); an
  // interleaved device runs every micro-batch through each of its V chunks
  // (= V).
  double useful_ops_per_micro(const ScheduleParams& p) const;
  // Throws pf::Error when `p` violates the constraints above.
  void check_params(const ScheduleParams& p) const;
};

// Builds the executable spec for validated params.
using ScheduleFactory = ScheduleSpec (*)(const ScheduleParams&);

// Registers a schedule under traits.name. Throws pf::Error on an empty or
// already-registered name. Not thread-safe; register during startup.
void register_schedule(const ScheduleTraits& traits, ScheduleFactory factory);

// True when `name` is registered.
bool schedule_registered(const std::string& name);

// Traits lookup; unknown names throw an Error listing every registered
// schedule.
const ScheduleTraits& traits_of(const std::string& name);

// Sorted names of every registered schedule.
std::vector<std::string> list_schedules();

// Validates `params` against the schedule's traits and invokes its factory.
// Unknown names throw an Error listing every registered schedule.
ScheduleSpec build_schedule(const std::string& name,
                            const ScheduleParams& params);

}  // namespace pf
