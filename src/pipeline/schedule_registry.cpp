#include "src/pipeline/schedule_registry.h"

#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/pipeline/chimera.h"
#include "src/pipeline/gpipe.h"
#include "src/pipeline/interleaved_1f1b.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/zero_bubble.h"

namespace pf {

double PathCoeff::eval(const ScheduleParams& p) const {
  const double n = static_cast<double>(p.n_micro) *
                   (n_scales_with_virtual
                        ? static_cast<double>(p.virtual_chunks)
                        : 1.0);
  return c_n * n + c_d * static_cast<double>(p.n_stages) + c_k;
}

int ScheduleTraits::stages_per_device_for(const ScheduleParams& p) const {
  return stages_per_device_is_virtual ? p.virtual_chunks : stages_per_device;
}

int ScheduleTraits::model_stages(const ScheduleParams& p) const {
  return p.n_stages *
         (stages_per_device_is_virtual ? p.virtual_chunks : 1);
}

double ScheduleTraits::critical_path_forwards(const ScheduleParams& p) const {
  return c_f.eval(p);
}

double ScheduleTraits::critical_path_backwards(const ScheduleParams& p) const {
  return c_b.eval(p);
}

double ScheduleTraits::useful_ops_per_micro(const ScheduleParams& p) const {
  return static_cast<double>(stages_per_device_for(p)) /
         static_cast<double>(n_pipelines);
}

void ScheduleTraits::check_params(const ScheduleParams& p) const {
  PF_CHECK(p.n_stages >= min_stages)
      << name << " needs at least " << min_stages << " stages, got "
      << p.n_stages;
  PF_CHECK(p.n_micro >= min_micros)
      << name << " needs at least " << min_micros << " micro-batches, got "
      << p.n_micro;
  PF_CHECK(!even_stages || p.n_stages % 2 == 0)
      << name << " needs an even number of stages, got " << p.n_stages;
  PF_CHECK(!even_micros || p.n_micro % 2 == 0)
      << name << " needs an even micro-batch count, got " << p.n_micro;
  PF_CHECK(stages_multiple_of >= 1 && micros_multiple_of >= 1)
      << name << " has invalid divisibility traits";
  PF_CHECK(p.n_stages % stages_multiple_of == 0)
      << name << " needs a stage count divisible by " << stages_multiple_of
      << ", got " << p.n_stages;
  PF_CHECK(p.n_micro % micros_multiple_of == 0)
      << name << " needs a micro-batch count divisible by "
      << micros_multiple_of << ", got " << p.n_micro;
  PF_CHECK(!stages_per_device_is_virtual || p.virtual_chunks >= 1)
      << name << " needs at least 1 virtual chunk, got " << p.virtual_chunks;
}

namespace {

struct ScheduleEntry {
  ScheduleTraits traits;
  ScheduleFactory factory;
};

ScheduleSpec gpipe_factory(const ScheduleParams& p) {
  return make_gpipe(p.n_stages, p.n_micro);
}

ScheduleSpec one_f_one_b_factory(const ScheduleParams& p) {
  return make_1f1b(p.n_stages, p.n_micro);
}

ScheduleSpec chimera_factory(const ScheduleParams& p) {
  return make_chimera(p.n_stages, p.n_micro);
}

ScheduleSpec chimera4_factory(const ScheduleParams& p) {
  return make_chimera(p.n_stages, p.n_micro, /*n_pipelines=*/4);
}

ScheduleSpec interleaved_1f1b_factory(const ScheduleParams& p) {
  return make_interleaved_1f1b(p.n_stages, p.virtual_chunks, p.n_micro);
}

ScheduleSpec one_f_one_b_flushless_factory(const ScheduleParams& p) {
  // The per-step program IS 1F1B's; only the step-boundary semantics
  // differ (no flush — consumers stream steps back to back with inline
  // device-local updates, see async_pipeline.h).
  ScheduleSpec spec = make_1f1b(p.n_stages, p.n_micro);
  spec.name = "1f1b-flushless";
  return spec;
}

ScheduleTraits gpipe_traits() {
  ScheduleTraits t;
  t.name = "gpipe";
  t.description =
      "all forwards then all backwards with a flush (Huang et al. 2019)";
  t.c_f = {1.0, 1.0, -1.0};  // C_f = N + D - 1
  t.c_b = {1.0, 1.0, -1.0};  // C_b = N + D - 1
  return t;
}

ScheduleTraits one_f_one_b_traits() {
  ScheduleTraits t;
  t.name = "1f1b";
  t.description =
      "warmup forwards then one-forward-one-backward with a flush "
      "(Narayanan et al. 2019)";
  t.c_f = {1.0, 1.0, -1.0};
  t.c_b = {1.0, 1.0, -1.0};
  return t;
}

ScheduleTraits chimera_traits() {
  ScheduleTraits t;
  t.name = "chimera";
  t.description =
      "two bidirectional pipelines over the same devices (Li & Hoefler "
      "2021)";
  t.n_pipelines = 2;
  t.stages_per_device = 2;  // one stage of each pipeline
  t.grad_sync_world_multiplier = 2;
  t.dynamic_order = true;
  t.c_f = {1.0, 0.0, 0.0};   // C_f = N
  t.c_b = {1.0, 1.0, -2.0};  // C_b = N + D - 2
  t.min_stages = 2;
  t.min_micros = 2;
  t.even_stages = true;
  t.even_micros = true;
  return t;
}

ScheduleTraits chimera4_traits() {
  ScheduleTraits t;
  t.name = "chimera-4";
  t.description =
      "four bidirectional pipelines (two offset down-up pairs) over the "
      "same devices — generalized Chimera; simulator-side only, the "
      "executable runtime supports up to 2 pipelines";
  t.n_pipelines = 4;
  t.stages_per_device = 4;  // one stage of each pipeline
  t.grad_sync_world_multiplier = 4;
  t.dynamic_order = true;
  // Kept in the 2-pipeline family's closed form (C_f = N, C_b = N + D - 2)
  // as an upper-bound approximation: with four pipelines each device sees
  // quarter-chunks, so the true ramp is shorter, but the greedy executor —
  // not this closed form — is the reference for chimera-4 makespans
  // (revisit with the trace-calibrated cost model, ROADMAP direction 4).
  t.c_f = {1.0, 0.0, 0.0};
  t.c_b = {1.0, 1.0, -2.0};
  t.min_stages = 2;
  t.min_micros = 4;
  t.even_stages = true;
  t.even_micros = true;
  t.stages_multiple_of = 2;  // pipeline pairs offset by n_stages/2 devices
  t.micros_multiple_of = 4;  // one contiguous chunk per pipeline
  return t;
}

ScheduleTraits one_f_one_b_flushless_traits() {
  ScheduleTraits t;
  t.name = "1f1b-flushless";
  t.description =
      "PipeDream-style 1F1B stream, no flush: stale-gradient updates "
      "instead of bubbles (Appendix C.1; simulate via simulate_async_1f1b)";
  t.flush = false;
  // Closed form of one ISOLATED step of its program (identical to 1f1b's
  // flush path). The steady-state stream hides this ramp entirely — the
  // async simulator, not the flush-step closed form, is the perf model for
  // this schedule; flush-only consumers (run_pipefisher, run_perf_model)
  // reject it instead of misreporting.
  t.c_f = {1.0, 1.0, -1.0};
  t.c_b = {1.0, 1.0, -1.0};
  t.min_stages = 2;  // simulate_async_1f1b's own floor
  return t;
}

ScheduleSpec zb_h1_factory(const ScheduleParams& p) {
  return make_zb_h1(p.n_stages, p.n_micro);
}

ScheduleTraits zb_h1_traits() {
  ScheduleTraits t;
  t.name = "zb-h1";
  t.description =
      "1F1B with backward split into B (dx) and deferred W (dW) passes "
      "(ZB-H1, Qi et al. 2023): W ops float into the drain bubbles";
  t.split_backward = true;
  // With the even split T_B = T_W = T_b/2, the warmup ramp still costs
  // (D-1)·T_f but the drain backwards shrink to their B halves while every
  // displaced W half lands in a slot that 1F1B left idle:
  //   T_pipe = (N + D - 1)·T_f + N·T_b      for N >= D
  // i.e. C_f = N + D - 1, C_b = N — the only residual bubble is the
  // forward ramp (D-1)·T_f. Exact against the greedy executor for N >= D
  // (pinned in tests/test_schedule_registry.cpp); for N < D there is not
  // enough W work to cover the drain and the realized makespan sits above
  // this closed form (banded in the same test), like chimera's k>1 cases.
  t.c_f = {1.0, 1.0, -1.0};
  t.c_b = {1.0, 0.0, 0.0};
  t.min_stages = 2;
  return t;
}

ScheduleTraits interleaved_1f1b_traits() {
  ScheduleTraits t;
  t.name = "interleaved-1f1b";
  t.description =
      "1F1B with V virtual model chunks per device (Narayanan et al. "
      "2021b)";
  t.stages_per_device_is_virtual = true;  // owns V virtual stages
  t.dynamic_order = true;
  // Per virtual-chunk op times: a device runs V ops per micro-batch, and
  // interleaving shrinks the startup/teardown ramp to D-1 chunk slots:
  // C = V·N + D - 1 — the ideal static-order critical path (Narayanan et
  // al. 2021b). The greedy executor realizes 0-25% above it for N >= D
  // (pinned in tests/test_schedule_registry.cpp), so the traits are a
  // lower bound on the simulated makespan, not an exact replay.
  t.c_f = {1.0, 1.0, -1.0, /*n_scales_with_virtual=*/true};
  t.c_b = {1.0, 1.0, -1.0, /*n_scales_with_virtual=*/true};
  t.min_stages = 2;
  return t;
}

std::map<std::string, ScheduleEntry>& registry() {
  static std::map<std::string, ScheduleEntry> reg = [] {
    std::map<std::string, ScheduleEntry> m;
    m.emplace("gpipe", ScheduleEntry{gpipe_traits(), &gpipe_factory});
    m.emplace("1f1b", ScheduleEntry{one_f_one_b_traits(),
                                    &one_f_one_b_factory});
    m.emplace("chimera", ScheduleEntry{chimera_traits(), &chimera_factory});
    m.emplace("chimera-4",
              ScheduleEntry{chimera4_traits(), &chimera4_factory});
    m.emplace("interleaved-1f1b",
              ScheduleEntry{interleaved_1f1b_traits(),
                            &interleaved_1f1b_factory});
    m.emplace("1f1b-flushless",
              ScheduleEntry{one_f_one_b_flushless_traits(),
                            &one_f_one_b_flushless_factory});
    m.emplace("zb-h1", ScheduleEntry{zb_h1_traits(), &zb_h1_factory});
    return m;
  }();
  return reg;
}

const ScheduleEntry& entry_of(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  PF_CHECK(it != reg.end())
      << "unknown schedule: " << name
      << " (registered: " << join(list_schedules(), ", ") << ")";
  return it->second;
}

}  // namespace

void register_schedule(const ScheduleTraits& traits,
                       ScheduleFactory factory) {
  PF_CHECK(!traits.name.empty()) << "schedule name must be non-empty";
  PF_CHECK(factory != nullptr) << "schedule factory must be non-null";
  auto& reg = registry();
  PF_CHECK(!reg.contains(traits.name))
      << "schedule already registered: " << traits.name;
  reg.emplace(traits.name, ScheduleEntry{traits, factory});
}

bool schedule_registered(const std::string& name) {
  return registry().contains(name);
}

const ScheduleTraits& traits_of(const std::string& name) {
  return entry_of(name).traits;
}

std::vector<std::string> list_schedules() {
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

ScheduleSpec build_schedule(const std::string& name,
                            const ScheduleParams& params) {
  const auto& entry = entry_of(name);
  entry.traits.check_params(params);
  ScheduleSpec spec = entry.factory(params);
  PF_CHECK(spec.name == name)
      << "factory for " << name << " produced a spec named " << spec.name;
  PF_CHECK(spec.dynamic_order == entry.traits.dynamic_order)
      << name << ": spec dynamic_order disagrees with the traits";
  PF_CHECK(spec.n_pipelines == entry.traits.n_pipelines)
      << name << ": spec n_pipelines disagrees with the traits";
  PF_CHECK(spec.split_backward == entry.traits.split_backward)
      << name << ": spec split_backward disagrees with the traits";
  spec.validate();
  return spec;
}

}  // namespace pf
