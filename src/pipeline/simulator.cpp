#include "src/pipeline/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace pf {

namespace {

struct Pending {
  PipeOp op;
  std::size_t program_pos;  // position within its device program (static)
};

// Priority for dynamic (Chimera) scheduling: backward drains first, then the
// micro injected earliest *within its own pipeline* (this is what makes the
// two pipelines alternate and reproduces the published Chimera schedule),
// then the down pipeline, then shallower stage.
bool higher_priority(const PipeOp& a, const PipeOp& b,
                     const std::vector<int>& micro_index) {
  const int ta = a.type == OpType::kBackward ? 0 : 1;
  const int tb = b.type == OpType::kBackward ? 0 : 1;
  if (ta != tb) return ta < tb;
  const int ia = micro_index[static_cast<std::size_t>(a.micro)];
  const int ib = micro_index[static_cast<std::size_t>(b.micro)];
  if (ia != ib) return ia < ib;
  if (a.pipeline != b.pipeline) return a.pipeline < b.pipeline;
  return a.stage < b.stage;
}

}  // namespace

double StepCosts::forward_cost(int stage) const {
  if (!stage_forward_scale.empty()) {
    PF_ASSERT(stage >= 0 &&
              static_cast<std::size_t>(stage) < stage_forward_scale.size());
    return t_forward * stage_forward_scale[static_cast<std::size_t>(stage)];
  }
  if (stage_cost_scale.empty()) return t_forward;
  PF_ASSERT(stage >= 0 &&
            static_cast<std::size_t>(stage) < stage_cost_scale.size());
  return t_forward * stage_cost_scale[static_cast<std::size_t>(stage)];
}

double StepCosts::backward_cost(int stage) const {
  if (!stage_backward_scale.empty()) {
    PF_ASSERT(stage >= 0 &&
              static_cast<std::size_t>(stage) < stage_backward_scale.size());
    return t_backward * stage_backward_scale[static_cast<std::size_t>(stage)];
  }
  if (stage_cost_scale.empty()) return t_backward;
  PF_ASSERT(stage >= 0 &&
            static_cast<std::size_t>(stage) < stage_cost_scale.size());
  return t_backward * stage_cost_scale[static_cast<std::size_t>(stage)];
}

double StepCosts::backward_w_cost(int stage) const {
  PF_ASSERT(backward_w_fraction > 0.0 && backward_w_fraction < 1.0);
  return backward_cost(stage) * backward_w_fraction;
}

double StepCosts::backward_b_cost(int stage) const {
  // Remainder, not a second product: B + W must equal the fused cost.
  return backward_cost(stage) - backward_w_cost(stage);
}

double StepSimResult::op_end(const PipeOp& op) const {
  auto it = op_end_times.find(op_key(op));
  PF_CHECK(it != op_end_times.end()) << "op not executed: " << op_debug(op);
  return it->second;
}

bool StepSimResult::has_op(const PipeOp& op) const {
  return op_end_times.count(op_key(op)) > 0;
}

double StepSimResult::op_start(const PipeOp& op) const {
  auto it = op_start_times.find(op_key(op));
  PF_CHECK(it != op_start_times.end()) << "op not executed: " << op_debug(op);
  return it->second;
}

double StepSimResult::last_backward_end(std::size_t device) const {
  double last = 0.0;
  for (const auto& op : realized_programs[device])
    if (op.type == OpType::kBackward) last = std::max(last, op_end(op));
  return last;
}

StepSimResult simulate_step(const ScheduleSpec& spec, const StepCosts& costs) {
  spec.validate();
  PF_CHECK(costs.t_forward > 0 && costs.t_backward > 0);
  PF_CHECK(!(spec.dynamic_order && spec.split_backward))
      << "split_backward needs static programs (W floats, F/B do not)";
  const int D = spec.n_stages;

  StepSimResult res(static_cast<std::size_t>(spec.n_devices));
  res.realized_programs.resize(static_cast<std::size_t>(spec.n_devices));

  // Build pending op sets per device.
  std::vector<std::vector<PipeOp>> pending(
      static_cast<std::size_t>(spec.n_devices));
  if (spec.dynamic_order) {
    for (const auto& op : spec.all_ops())
      pending[static_cast<std::size_t>(spec.device_of(op.pipeline, op.stage))]
          .push_back(op);
  } else {
    for (int d = 0; d < spec.n_devices; ++d)
      pending[static_cast<std::size_t>(d)] =
          spec.programs[static_cast<std::size_t>(d)];
  }
  std::vector<std::size_t> head(static_cast<std::size_t>(spec.n_devices), 0);
  std::vector<double> free_at(static_cast<std::size_t>(spec.n_devices), 0.0);

  // Floating W pools (split_backward): per device, one chain per owned
  // (pipeline, stage) in ascending micro injection order. A chain head is
  // schedulable once its micro's B pass ends; advancing head-of-chain keeps
  // dW accumulation ascending — the executable runtime's bitwise contract —
  // while the greedy loop below slots heads into idle time only (a program
  // op that can start at the same instant always wins the tie).
  std::vector<std::vector<std::vector<PipeOp>>> w_chains(
      static_cast<std::size_t>(spec.n_devices));
  std::vector<std::vector<std::size_t>> w_heads(
      static_cast<std::size_t>(spec.n_devices));
  if (spec.split_backward) {
    for (int d = 0; d < spec.n_devices; ++d) {
      const auto du = static_cast<std::size_t>(d);
      for (const auto& [pl, s] : spec.stages_of_device(d)) {
        std::vector<PipeOp> chain;
        for (int m : spec.micros_of_pipeline[static_cast<std::size_t>(pl)])
          chain.push_back({OpType::kBackwardWeight, pl, s, m});
        w_heads[du].push_back(0);
        w_chains[du].push_back(std::move(chain));
      }
    }
  }

  // Asynchronous-mode bookkeeping: backwards completed per device since the
  // last device-local update.
  std::vector<int> backwards_since_update(
      static_cast<std::size_t>(spec.n_devices), 0);
  std::vector<bool> pending_update(
      static_cast<std::size_t>(spec.n_devices), false);

  // Injection index of each micro within its own pipeline.
  std::vector<int> micro_index(static_cast<std::size_t>(spec.n_micro), 0);
  for (const auto& micros : spec.micros_of_pipeline)
    for (std::size_t i = 0; i < micros.size(); ++i)
      micro_index[static_cast<std::size_t>(micros[i])] = static_cast<int>(i);

  auto ready_time = [&](const PipeOp& op, double* when) -> bool {
    double t = 0.0;
    if (op.type == OpType::kForward) {
      if (op.stage > 0) {
        const PipeOp dep{OpType::kForward, op.pipeline, op.stage - 1,
                         op.micro};
        auto it = res.op_end_times.find(op_key(dep));
        if (it == res.op_end_times.end()) return false;
        t = it->second + costs.t_p2p;
      }
    } else if (op.type == OpType::kBackwardWeight) {
      // W reads the caches its own B pass harvested; no p2p, no
      // cross-stage dependency. Chain order handles the ascending-micro
      // constraint (same device, head-of-chain).
      const PipeOp dep{OpType::kBackward, op.pipeline, op.stage, op.micro};
      auto it = res.op_end_times.find(op_key(dep));
      if (it == res.op_end_times.end()) return false;
      t = it->second;
    } else {
      const PipeOp own_fwd{OpType::kForward, op.pipeline, op.stage, op.micro};
      auto itf = res.op_end_times.find(op_key(own_fwd));
      if (itf == res.op_end_times.end()) return false;
      t = itf->second;
      if (op.stage < D - 1) {
        const PipeOp dep{OpType::kBackward, op.pipeline, op.stage + 1,
                         op.micro};
        auto it = res.op_end_times.find(op_key(dep));
        if (it == res.op_end_times.end()) return false;
        t = std::max(t, it->second + costs.t_p2p);
      }
    }
    *when = t;
    return true;
  };

  std::size_t remaining = 0;
  for (const auto& v : pending) remaining += v.size();
  for (const auto& chains : w_chains)
    for (const auto& c : chains) remaining += c.size();

  while (remaining > 0) {
    // Find the globally earliest schedulable (device, op).
    int best_dev = -1;
    std::size_t best_idx = 0;
    int best_w_chain = -1;  // >= 0: best_op is a floating W chain head
    double best_start = std::numeric_limits<double>::infinity();
    PipeOp best_op{};
    for (int d = 0; d < spec.n_devices; ++d) {
      const auto du = static_cast<std::size_t>(d);
      if (spec.dynamic_order) {
        for (std::size_t i = 0; i < pending[du].size(); ++i) {
          double when;
          if (!ready_time(pending[du][i], &when)) continue;
          const double start = std::max(when, free_at[du]);
          const bool better =
              start < best_start - 1e-15 ||
              (std::abs(start - best_start) <= 1e-15 && best_dev >= 0 &&
               higher_priority(pending[du][i], best_op, micro_index));
          if (best_dev < 0 || better) {
            best_dev = d;
            best_idx = i;
            best_w_chain = -1;
            best_start = start;
            best_op = pending[du][i];
          }
        }
      } else {
        // Program head first: at equal start times the program op wins
        // and any ready W keeps floating (strictly-earlier-only below).
        if (head[du] < pending[du].size()) {
          const PipeOp& op = pending[du][head[du]];
          double when;
          if (ready_time(op, &when)) {
            const double start = std::max(when, free_at[du]);
            if (best_dev < 0 || start < best_start - 1e-15) {
              best_dev = d;
              best_idx = head[du];
              best_w_chain = -1;
              best_start = start;
              best_op = op;
            }
          }
        }
        for (std::size_t c = 0; c < w_chains[du].size(); ++c) {
          if (w_heads[du][c] >= w_chains[du][c].size()) continue;
          const PipeOp& op = w_chains[du][c][w_heads[du][c]];
          double when;
          if (!ready_time(op, &when)) continue;
          const double start = std::max(when, free_at[du]);
          if (best_dev < 0 || start < best_start - 1e-15) {
            best_dev = d;
            best_idx = w_heads[du][c];
            best_w_chain = static_cast<int>(c);
            best_start = start;
            best_op = op;
          }
        }
      }
    }
    PF_CHECK(best_dev >= 0)
        << "pipeline schedule deadlocked with " << remaining
        << " ops remaining (schedule " << spec.name << ")";

    const auto du = static_cast<std::size_t>(best_dev);

    // Asynchronous mode: a due device-local update runs before the op.
    // Zero-duration updates are still recorded so weight-version accounting
    // (staleness analysis) sees them.
    if (costs.inline_update_every > 0 && pending_update[du]) {
      const double udur =
          costs.t_optimizer *
          static_cast<double>(spec.stages_of_device(best_dev).size());
      res.timeline.add(Interval{.device = du,
                                .start = best_start,
                                .end = best_start + udur,
                                .kind = WorkKind::kOptimizerUpdate});
      free_at[du] = best_start + udur;
      best_start += udur;
      pending_update[du] = false;
    }

    double dur;
    WorkKind kind;
    if (best_op.type == OpType::kForward) {
      dur = costs.forward_cost(best_op.stage);
      kind = WorkKind::kForward;
    } else if (best_op.type == OpType::kBackwardWeight) {
      dur = costs.backward_w_cost(best_op.stage);
      kind = WorkKind::kBackwardWeight;
    } else if (spec.split_backward) {
      dur = costs.backward_b_cost(best_op.stage);
      kind = WorkKind::kBackward;
    } else {
      dur = costs.backward_cost(best_op.stage);
      kind = WorkKind::kBackward;
    }
    const double end = best_start + dur;
    res.timeline.add(Interval{
        .device = du,
        .start = best_start,
        .end = end,
        .kind = kind,
        .stage = best_op.stage,
        .micro = best_op.micro,
    });
    res.op_start_times[op_key(best_op)] = best_start;
    res.op_end_times[op_key(best_op)] = end;
    res.realized_programs[du].push_back(best_op);
    free_at[du] = end;
    if (best_w_chain >= 0) {
      ++w_heads[du][static_cast<std::size_t>(best_w_chain)];
    } else if (spec.dynamic_order) {
      pending[du].erase(pending[du].begin() +
                        static_cast<std::ptrdiff_t>(best_idx));
    } else {
      ++head[du];
    }
    --remaining;
    res.pipe_makespan = std::max(res.pipe_makespan, end);

    if (costs.inline_update_every > 0 &&
        best_op.type == OpType::kBackward) {
      if (++backwards_since_update[du] >= costs.inline_update_every) {
        backwards_since_update[du] = 0;
        pending_update[du] = true;
      }
    }
  }

  if (costs.inline_update_every > 0) {
    // Asynchronous pipelines have no flush: the "step" is just the stream.
    // Flush any update still pending at stream end (the final mini-batch's).
    for (int d = 0; d < spec.n_devices; ++d) {
      const auto du = static_cast<std::size_t>(d);
      if (!pending_update[du]) continue;
      const double udur =
          costs.t_optimizer *
          static_cast<double>(spec.stages_of_device(d).size());
      res.timeline.add(Interval{.device = du,
                                .start = free_at[du],
                                .end = free_at[du] + udur,
                                .kind = WorkKind::kOptimizerUpdate});
      free_at[du] += udur;
      pending_update[du] = false;
    }
    res.step_time = *std::max_element(free_at.begin(), free_at.end());
    return res;
  }

  // ---- Step tail: sync-grad, precondition, optimizer update ----
  if (costs.t_sync_grad > 0.0) {
    std::vector<double> sync_start(free_at);
    if (spec.n_pipelines == 2) {
      // Chimera: device d and its mirror D-1-d hold the same two stages and
      // must allreduce their gradients together.
      for (int d = 0; d < spec.n_devices; ++d) {
        const int partner = spec.n_devices - 1 - d;
        sync_start[static_cast<std::size_t>(d)] =
            std::max(free_at[static_cast<std::size_t>(d)],
                     free_at[static_cast<std::size_t>(partner)]);
      }
    }
    for (int d = 0; d < spec.n_devices; ++d) {
      const auto du = static_cast<std::size_t>(d);
      res.timeline.add(Interval{.device = du,
                                .start = sync_start[du],
                                .end = sync_start[du] + costs.t_sync_grad,
                                .kind = WorkKind::kSyncGrad});
      free_at[du] = sync_start[du] + costs.t_sync_grad;
    }
  }
  for (int d = 0; d < spec.n_devices; ++d) {
    const auto du = static_cast<std::size_t>(d);
    const auto owned = spec.stages_of_device(d);
    if (costs.t_precondition > 0.0) {
      const double dur =
          costs.t_precondition * static_cast<double>(owned.size());
      res.timeline.add(Interval{.device = du,
                                .start = free_at[du],
                                .end = free_at[du] + dur,
                                .kind = WorkKind::kPrecondition});
      free_at[du] += dur;
    }
    if (costs.t_optimizer > 0.0) {
      const double dur = costs.t_optimizer * static_cast<double>(owned.size());
      res.timeline.add(Interval{.device = du,
                                .start = free_at[du],
                                .end = free_at[du] + dur,
                                .kind = WorkKind::kOptimizerUpdate});
      free_at[du] += dur;
    }
  }
  res.step_time = *std::max_element(free_at.begin(), free_at.end());
  return res;
}

Timeline replicate_steps(const StepSimResult& step, int k) {
  PF_CHECK(k >= 1);
  Timeline out(step.timeline.n_devices());
  for (int i = 0; i < k; ++i)
    out.append_shifted(step.timeline,
                       static_cast<double>(i) * step.step_time);
  return out;
}

double total_bubble_time(const StepSimResult& step) {
  double total = 0.0;
  for (std::size_t d = 0; d < step.timeline.n_devices(); ++d)
    total += step.timeline.bubble_time(d, 0.0, step.pipe_makespan);
  return total;
}

}  // namespace pf
