#include "src/pipeline/step_plan.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace pf {

bool is_kfac_kind(WorkKind k) {
  switch (k) {
    case WorkKind::kCurvatureA:
    case WorkKind::kCurvatureB:
    case WorkKind::kSyncCurvature:
    case WorkKind::kInversionA:
    case WorkKind::kInversionB:
    case WorkKind::kPrecondition:
      return true;
    default:
      return false;
  }
}

bool StepPlan::is_kfac(std::size_t i) const {
  return is_kfac_kind(tasks[i].kind);
}

void normalize_backward_order(std::vector<std::vector<PipeOp>>& programs) {
  for (auto& prog : programs) {
    std::map<std::pair<int, int>, std::vector<std::size_t>> group_slots;
    for (std::size_t i = 0; i < prog.size(); ++i)
      if (prog[i].type == OpType::kBackward)
        group_slots[{prog[i].pipeline, prog[i].stage}].push_back(i);
    for (auto& [key, slots] : group_slots) {
      std::vector<int> micros;
      micros.reserve(slots.size());
      for (const std::size_t p : slots) micros.push_back(prog[p].micro);
      std::sort(micros.begin(), micros.end());
      for (std::size_t k = 0; k < slots.size(); ++k)
        prog[slots[k]].micro = micros[k];
    }
  }
}

StepPlan build_step_plan(const ScheduleSpec& spec,
                         const std::vector<std::vector<PipeOp>>& device_order,
                         const std::vector<std::size_t>& factors_per_stage,
                         bool curv_step, bool inv_step) {
  const int S = spec.n_stages;
  const int N = spec.n_micro;
  const bool split = spec.split_backward;
  PF_CHECK(factors_per_stage.size() == static_cast<std::size_t>(S))
      << "factors_per_stage must have one entry per model stage";

  StepPlan plan;
  plan.n_lanes = static_cast<std::size_t>(spec.n_devices);
  plan.split_backward = split;

  std::vector<int> pipeline_of_micro(static_cast<std::size_t>(N), 0);
  for (int pl = 0; pl < spec.n_pipelines; ++pl)
    for (const int m : spec.micros_of_pipeline[static_cast<std::size_t>(pl)])
      pipeline_of_micro[static_cast<std::size_t>(m)] = pl;
  auto pl_of = [&](int m) {
    return pipeline_of_micro[static_cast<std::size_t>(m)];
  };

  auto add_task = [&](PlannedTask t) -> std::size_t {
    plan.tasks.push_back(std::move(t));
    return plan.tasks.size() - 1;
  };

  // Event-order position of every op on its device = its dispatch priority.
  std::map<long, long> op_priority;
  std::size_t planned_ops = 0;
  for (const auto& prog : device_order) {
    for (std::size_t i = 0; i < prog.size(); ++i)
      op_priority[op_key(prog[i])] = static_cast<long>(i);
    planned_ops += prog.size();
  }
  std::size_t n_w_ops = 0;
  for (const auto& op : spec.all_ops())
    if (op.type == OpType::kBackwardWeight) ++n_w_ops;
  PF_CHECK(planned_ops == spec.all_ops().size() - n_w_ops)
      << "event order does not cover the schedule's F/B ops";

  std::map<long, std::size_t> op_task;  // op_key -> plan task index

  // Pipeline-op dependencies, expressed over PipeOps:
  //   forward(pl, s, m):  forward(pl, s-1, m)            [activation]
  //   backward(pl, s, m): forward(pl, s, m)              [stashed caches]
  //                       backward(pl, s+1, m)           [grad-activation]
  //                       backward(*, s, prev micro)     [grad fold order]
  //   static schedules:   the device's previous program op [event order]
  auto op_deps = [&](const PipeOp& op) {
    std::vector<PipeOp> deps;
    if (op.type == OpType::kForward) {
      if (op.stage > 0)
        deps.push_back({OpType::kForward, op.pipeline, op.stage - 1, op.micro});
    } else {
      deps.push_back({OpType::kForward, op.pipeline, op.stage, op.micro});
      if (op.stage + 1 < S)
        deps.push_back(
            {OpType::kBackward, op.pipeline, op.stage + 1, op.micro});
      if (op.micro > 0)
        deps.push_back(
            {OpType::kBackward, pl_of(op.micro - 1), op.stage, op.micro - 1});
    }
    return deps;
  };

  auto make_op_task = [&](const PipeOp& op, std::vector<std::size_t> deps) {
    PlannedTask t;
    t.lane = static_cast<std::size_t>(spec.device_of(op.pipeline, op.stage));
    t.priority = op_priority.at(op_key(op));
    t.resource = op.stage;
    t.deps = std::move(deps);
    t.kind = op.type == OpType::kForward ? WorkKind::kForward
                                         : WorkKind::kBackward;
    t.stage = op.stage;
    t.micro = op.micro;
    t.op = op;
    t.is_op = true;
    op_task[op_key(op)] = add_task(std::move(t));
  };

  // Create op tasks in a topological order (the executor requires
  // dependencies to exist before their dependents).
  if (spec.dynamic_order) {
    // Greedy schedules execute by priority, not program chains, so any
    // topological order works for creation: forwards by (micro, stage),
    // then backwards by (micro asc, stage desc) — every dependency above
    // (upstream forward, own forward, downstream backward, previous-micro
    // backward) precedes its dependent in this order.
    for (int m = 0; m < N; ++m)
      for (int s = 0; s < S; ++s) {
        const PipeOp op{OpType::kForward, pl_of(m), s, m};
        std::vector<std::size_t> dep_ids;
        for (const PipeOp& dep : op_deps(op))
          dep_ids.push_back(op_task.at(op_key(dep)));
        make_op_task(op, std::move(dep_ids));
      }
    for (int m = 0; m < N; ++m)
      for (int s = S - 1; s >= 0; --s) {
        const PipeOp op{OpType::kBackward, pl_of(m), s, m};
        std::vector<std::size_t> dep_ids;
        for (const PipeOp& dep : op_deps(op))
          dep_ids.push_back(op_task.at(op_key(dep)));
        make_op_task(op, std::move(dep_ids));
      }
  } else {
    // Static schedules honor their programs exactly: each op additionally
    // depends on the previous op of its device program (head-of-line), so
    // the realized order IS the planned order. Creation sweeps the
    // programs; a schedule whose program fights the gradient-fold order
    // (normalize_backward_order prevents this for the built-ins) fails
    // loudly instead of deadlocking.
    std::vector<std::size_t> next_in_prog(device_order.size(), 0);
    std::size_t remaining = planned_ops;
    while (remaining > 0) {
      bool progress = false;
      for (std::size_t d = 0; d < device_order.size(); ++d) {
        while (next_in_prog[d] < device_order[d].size()) {
          const PipeOp& op = device_order[d][next_in_prog[d]];
          std::vector<PipeOp> deps = op_deps(op);
          if (next_in_prog[d] > 0)
            deps.push_back(device_order[d][next_in_prog[d] - 1]);
          std::vector<std::size_t> dep_ids;
          bool ready = true;
          for (const PipeOp& dep : deps) {
            const auto it = op_task.find(op_key(dep));
            if (it == op_task.end()) {
              ready = false;
              break;
            }
            dep_ids.push_back(it->second);
          }
          if (!ready) break;
          make_op_task(op, std::move(dep_ids));
          ++next_in_prog[d];
          --remaining;
          progress = true;
        }
      }
      PF_CHECK(progress)
          << spec.name << ": event order and gradient-fold order form a cycle";
    }
  }

  // Deferred W passes (split_backward): one task per (stage, micro),
  // chained per stage in ascending global micro order — the same fold
  // order the B chain enforces, so every dW coordinate accumulates in the
  // serial trainer's sequence. Deps: the micro's own B pass (which
  // harvested the {a_l, e_l} caches) plus the chain predecessor. Priority
  // kWeightPriorityBase sits above every program position: a lane runs a W
  // only when none of its pipeline ops is runnable, exactly like the
  // simulator's floating W pools fill realized idle gaps.
  if (split) {
    for (int s = 0; s < S; ++s) {
      std::size_t prev_w = 0;
      for (int m = 0; m < N; ++m) {
        const int pl = pl_of(m);
        const PipeOp op{OpType::kBackwardWeight, pl, s, m};
        PlannedTask t;
        t.lane = static_cast<std::size_t>(spec.device_of(pl, s));
        t.priority = kWeightPriorityBase + m;
        t.resource = s;
        t.deps = {op_task.at(op_key({OpType::kBackward, pl, s, m}))};
        if (m > 0) t.deps.push_back(prev_w);
        t.kind = WorkKind::kBackwardWeight;
        t.stage = s;
        t.micro = m;
        t.op = op;
        t.is_op = true;
        prev_w = add_task(std::move(t));
        op_task[op_key(op)] = prev_w;
      }
    }
  }

  std::vector<std::size_t> last_bwd(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    const int m = N - 1;
    // Under split_backward the gradients are final only after the stage's
    // last deferred W pass; its chain already folds every earlier W.
    last_bwd[static_cast<std::size_t>(s)] = op_task.at(op_key(
        {split ? OpType::kBackwardWeight : OpType::kBackward, pl_of(m), s,
         m}));
  }

  // Step tail per stage: owner-computes gradient finalization (the serial
  // trainer's g *= 1/n_micro), then K-FAC preconditions, then the stage's
  // base optimizer step.
  std::vector<std::size_t> grad_final(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    PlannedTask t;
    t.lane = static_cast<std::size_t>(spec.device_of(0, s));
    t.priority = kTailPriorityBase + s;
    t.resource = -1;
    t.deps = {last_bwd[static_cast<std::size_t>(s)]};
    t.kind = WorkKind::kSyncGrad;
    t.stage = s;
    grad_final[static_cast<std::size_t>(s)] = add_task(std::move(t));
  }

  // K-FAC work, BubbleTask-shaped (the executable analog of
  // core/kfac_work.cpp's generation rules + core/bubble_assigner's
  // readiness dispatch): curvature per (factor, micro) chained in
  // ascending micro order, one commit + inversion pair per factor, and a
  // precondition per factor gated on the stage's final gradient.
  std::vector<std::vector<std::size_t>> stage_precond(
      static_cast<std::size_t>(S));
  long kfac_seq = 0;
  auto kfac_priority = [&] { return kKfacPriorityBase + kfac_seq++; };

  for (int s = 0; s < S; ++s) {
    const std::size_t n_factors = factors_per_stage[static_cast<std::size_t>(s)];
    if (n_factors == 0) continue;
    const auto owner = static_cast<std::size_t>(spec.device_of(0, s));
    for (std::size_t f = 0; f < n_factors; ++f) {
      // Trace labels only (block, linear-within-block); the 6-per-block
      // layout is asserted loudly by BertStagePartition.
      const int layer = static_cast<int>(f / 6);
      const int factor = static_cast<int>(f % 6);
      std::size_t commit_id = 0;
      bool has_commit = false;
      if (curv_step) {
        // Curvature per (factor, micro): A after the forward, B after the
        // backward, each chained per factor in ascending micro order so the
        // pending sums fold in the serial order.
        std::size_t prev_a = 0, prev_b = 0;
        bool chain_a = false, chain_b = false;
        for (int m = 0; m < N; ++m) {
          const int pl = pl_of(m);
          PlannedTask ca;
          ca.lane = static_cast<std::size_t>(spec.device_of(pl, s));
          ca.priority = kfac_priority();
          ca.resource = s;
          ca.deps = {op_task.at(op_key({OpType::kForward, pl, s, m}))};
          if (chain_a) ca.deps.push_back(prev_a);
          ca.kind = WorkKind::kCurvatureA;
          ca.stage = s;
          ca.micro = m;
          ca.layer = layer;
          ca.factor = factor;
          ca.splittable = true;
          PlannedTask cb = ca;
          prev_a = add_task(std::move(ca));
          chain_a = true;

          cb.priority = kfac_priority();
          cb.deps = {op_task.at(op_key({OpType::kBackward, pl, s, m}))};
          if (chain_b) cb.deps.push_back(prev_b);
          cb.kind = WorkKind::kCurvatureB;
          prev_b = add_task(std::move(cb));
          chain_b = true;
        }
        // The EMA fold merges the factor's per-micro contributions before
        // inversion — the single-process analog of sync-curvature, and
        // distinct from the curvature GEMMs in the executed trace.
        PlannedTask cm;
        cm.lane = owner;
        cm.priority = kfac_priority();
        cm.resource = -1;
        cm.deps = {prev_a, prev_b};
        cm.kind = WorkKind::kSyncCurvature;
        cm.stage = s;
        cm.layer = layer;
        cm.factor = factor;
        commit_id = add_task(std::move(cm));
        has_commit = true;
      }
      std::size_t precond_gate = 0;
      bool has_gate = false;
      if (inv_step) {
        PlannedTask ia;
        ia.lane = owner;
        ia.priority = kfac_priority();
        ia.resource = -1;
        if (has_commit) ia.deps.push_back(commit_id);
        ia.kind = WorkKind::kInversionA;
        ia.stage = s;
        ia.layer = layer;
        ia.factor = factor;
        PlannedTask ib = ia;
        const std::size_t inv_a = add_task(std::move(ia));
        ib.priority = kfac_priority();
        ib.deps = {inv_a};
        ib.kind = WorkKind::kInversionB;
        precond_gate = add_task(std::move(ib));
        has_gate = true;
      } else if (has_commit) {
        precond_gate = commit_id;
        has_gate = true;
      }
      // Precondition every step (stale inverses allowed), after the stage's
      // gradients are final.
      PlannedTask pc;
      pc.lane = owner;
      pc.priority = kfac_priority();
      pc.resource = -1;
      pc.deps = {grad_final[static_cast<std::size_t>(s)]};
      if (has_gate) pc.deps.push_back(precond_gate);
      pc.kind = WorkKind::kPrecondition;
      pc.stage = s;
      pc.layer = layer;
      pc.factor = factor;
      stage_precond[static_cast<std::size_t>(s)].push_back(
          add_task(std::move(pc)));
    }
  }

  // Per-stage optimizer update closes the step.
  for (int s = 0; s < S; ++s) {
    PlannedTask t;
    t.lane = static_cast<std::size_t>(spec.device_of(0, s));
    t.priority = kTailPriorityBase + S + s;
    t.resource = s;
    t.deps = {grad_final[static_cast<std::size_t>(s)]};
    for (const std::size_t p : stage_precond[static_cast<std::size_t>(s)])
      t.deps.push_back(p);
    t.kind = WorkKind::kOptimizerUpdate;
    t.stage = s;
    add_task(std::move(t));
  }

  return plan;
}

}  // namespace pf
