// Asynchronous pipelines (paper Appendix C.1): PipeDream-style 1F1B with
// NO pipeline flush. Bubbles all but vanish because the next mini-batch's
// forwards flow in behind the current one's backwards — but every stage
// computes gradients with weights that are up to D steps old.
//
// The appendix frames both designs as "filling bubbles":
//   async pipeline:  bubbles filled with stale-GRADIENT work
//                    θ_{t+1} = θ_t − η·g_{t−m}        (m up to D)
//   PipeFisher:      bubbles filled with stale-CURVATURE work
//                    θ_{t+1} = θ_t − η·F̂⁻¹_{t−n}·g_t  (fresh gradients)
//
// This module simulates the async stream and reports utilization plus the
// realized per-stage weight staleness so the two designs can be compared
// quantitatively (bench/ext_async_pipeline).
#pragma once

#include "src/pipeline/simulator.h"

namespace pf {

struct AsyncPipelineReport {
  Timeline timeline;          // the simulated stream
  double stream_makespan = 0.0;
  double utilization = 0.0;   // over the steady-state middle window
  // Weight staleness (in optimization steps) of the weights each stage's
  // forward uses, max over the steady state: PipeDream's m per stage.
  std::vector<double> staleness_per_stage;
  double max_staleness = 0.0;
  double throughput_micros_per_time = 0.0;
};

// Simulates `iterations` mini-batches of `n_micro` micro-batches streaming
// through a D-stage 1F1B pipeline without flush; device-local optimizer
// updates run inline after every n_micro backwards.
AsyncPipelineReport simulate_async_1f1b(int n_stages, int n_micro,
                                        int iterations,
                                        const StepCosts& costs);

}  // namespace pf
