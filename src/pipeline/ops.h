// Pipeline schedule representation.
//
// A schedule is a set of devices, a stage→device mapping per pipeline
// (Chimera runs two pipelines — "down" and "up" — over the same devices),
// and optionally an explicit per-device op order. Schedules with explicit
// programs (GPipe, 1F1B) execute head-of-line in order; Chimera's realized
// order depends on the forward/backward cost ratio, so it is produced by the
// simulator's greedy policy (see chimera.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pf {

// kBackwardWeight exists only under split_backward (ZB-H1): kBackward then
// means the B pass (dx + db, critical path) and kBackwardWeight the
// deferred dW GEMMs. W ops float — they appear in all_ops() but never in
// per-device programs; the simulator/runtime slot them into idle time.
enum class OpType { kForward, kBackward, kBackwardWeight };

struct PipeOp {
  OpType type;
  int pipeline;  // 0 = down, 1 = up (Chimera); 0 for single-pipeline
  int stage;     // 0 .. n_stages-1, logical stage along its pipeline
  int micro;     // global micro-batch id, 0 .. n_micro-1

  bool operator==(const PipeOp&) const = default;
};

// Stable integer key for maps.
long op_key(const PipeOp& op);
std::string op_debug(const PipeOp& op);

struct ScheduleSpec {
  std::string name;
  int n_stages = 0;
  int n_devices = 0;
  int n_micro = 0;      // micro-batches per device per step (total injected)
  int n_pipelines = 1;

  // stage_to_device[pipeline][stage] = device id.
  std::vector<std::vector<int>> stage_to_device;
  // micros_of_pipeline[pipeline] = micro ids processed by that pipeline.
  std::vector<std::vector<int>> micros_of_pipeline;
  // Per-device ordered programs. Empty when `dynamic_order` is true.
  std::vector<std::vector<PipeOp>> programs;
  // When true the simulator chooses op order greedily (Chimera).
  bool dynamic_order = false;
  // Zero-bubble backward split (ZB-H1): backward ops are B-only and every
  // (pipeline, stage, micro) additionally owns a floating kBackwardWeight
  // op, absent from the programs (see OpType).
  bool split_backward = false;

  int device_of(int pipeline, int stage) const;
  // All (pipeline, stage) pairs a device owns.
  std::vector<std::pair<int, int>> stages_of_device(int device) const;
  // Every op of the step (all pipelines, stages, micros).
  std::vector<PipeOp> all_ops() const;
  // Validation: mappings consistent, programs (if present) cover all ops
  // exactly once. Throws pf::Error on problems.
  void validate() const;
};

}  // namespace pf
