#include "src/pipeline/interleaved_1f1b.h"

#include "src/common/check.h"

namespace pf {

ScheduleSpec make_interleaved_1f1b(int n_devices, int n_virtual,
                                   int n_micro) {
  PF_CHECK(n_devices >= 2);
  PF_CHECK(n_virtual >= 1);
  PF_CHECK(n_micro >= 1);
  ScheduleSpec spec;
  spec.name = "interleaved-1f1b";
  spec.n_stages = n_devices * n_virtual;
  spec.n_devices = n_devices;
  spec.n_micro = n_micro;
  spec.n_pipelines = 1;
  spec.stage_to_device.resize(1);
  // Round-robin chunk placement: stage s on device s mod D.
  for (int s = 0; s < spec.n_stages; ++s)
    spec.stage_to_device[0].push_back(s % n_devices);
  spec.micros_of_pipeline.resize(1);
  for (int m = 0; m < n_micro; ++m) spec.micros_of_pipeline[0].push_back(m);
  spec.dynamic_order = true;
  spec.validate();
  return spec;
}

}  // namespace pf
