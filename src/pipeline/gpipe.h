// GPipe schedule (Huang et al., 2019): all forwards, then all backwards in
// reverse micro order, with a pipeline flush at the step boundary.
#pragma once

#include "src/pipeline/ops.h"

namespace pf {

// One device per stage. `n_micro` micro-batches per step.
ScheduleSpec make_gpipe(int n_stages, int n_micro);

}  // namespace pf
