// Cross-module integration tests: the scheduling side (core/pipefisher)
// and the numeric side (kfac + optim + nn + train) agree with each other
// and with the closed-form performance model.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/core/pipefisher.h"
#include "src/linalg/gemm.h"
#include "src/optim/kfac_optimizer.h"
#include "src/optim/lamb.h"
#include "src/perfmodel/perf_model.h"
#include "src/trace/chrome_trace.h"
#include "src/train/convergence.h"

namespace pf {
namespace {

TEST(Integration, SchedulerRefreshFeedsNumericKfacIntervals) {
  // The pipeline-level PipeFisher run decides how often curvature can be
  // refreshed for free; plug that interval into the numeric K-FAC optimizer
  // and verify training still learns — the end-to-end story of the paper.
  PipeFisherConfig pcfg;
  pcfg.schedule = "gpipe";
  pcfg.arch = bert_base();
  pcfg.hw = p100();
  pcfg.n_stages = 4;
  pcfg.blocks_per_stage = 3;
  pcfg.n_micro = 4;
  pcfg.b_micro = 32;
  const auto rep = run_pipefisher(pcfg);
  ASSERT_GE(rep.refresh_interval_steps, 1);
  ASSERT_LE(rep.refresh_interval_steps, 8);

  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 12;
  Rng rng(3);
  BertModel model(cfg, rng);
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  TrainerConfig tc;
  tc.batch_size = 8;
  tc.total_steps = 80;
  tc.schedule = PolyWarmupSchedule(1e-2, 8, 80);
  KfacOptimizerOptions o;
  o.inverse_interval =
      static_cast<std::size_t>(rep.refresh_interval_steps);
  o.curvature_interval =
      static_cast<std::size_t>(rep.refresh_interval_steps);
  Trainer trainer(model, batcher,
                  std::make_unique<KfacOptimizer>(
                      model.kfac_linears(), std::make_unique<Lamb>(), o),
                  tc);
  const auto trace = trainer.run();
  EXPECT_LT(trace.loss.back(), trace.loss.front());
}

TEST(Integration, ParallelGemmTrainingIsBitwiseIdenticalToSerial) {
  // End-to-end guarantee behind the gemm_threads knob: a full K-FAC
  // training run (forward, backward, curvature, precondition, optimizer)
  // produces the exact same loss trajectory with row-block parallel GEMMs
  // as with the serial seed kernels.
  auto run_short_training = [](int threads) {
    set_gemm_threads(threads);  // default threads=0 call sites follow this
    BertConfig cfg;
    cfg.vocab = 36;
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.seq_len = 12;
    Rng rng(3);
    BertModel model(cfg, rng);
    CorpusConfig cc;
    cc.vocab = cfg.vocab;
    SyntheticCorpus corpus(cc);
    MlmBatcherConfig bc;
    bc.seq_len = cfg.seq_len;
    MlmBatcher batcher(corpus, bc);
    TrainerConfig tc;
    tc.batch_size = 8;
    tc.total_steps = 25;
    tc.schedule = PolyWarmupSchedule(1e-2, 4, 25);
    KfacOptimizerOptions o;
    o.kfac.gemm_threads = 0;  // follow the global knob too
    o.inverse_interval = 3;
    Trainer trainer(model, batcher,
                    std::make_unique<KfacOptimizer>(
                        model.kfac_linears(), std::make_unique<Lamb>(), o),
                    tc);
    const auto trace = trainer.run();
    set_gemm_threads(1);
    return trace.loss;
  };
  const auto serial = run_short_training(1);
  const auto parallel = run_short_training(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "step " << i;
}

TEST(Integration, PerfModelRefreshMatchesSimulatedAssignerRoughly) {
  // The closed-form ceil((N·Tcurv+Tinv)/Tbubble) and the discrete-event
  // greedy assigner must agree on the refresh interval within a step or
  // two (the assigner additionally respects readiness times).
  for (const char* sched : {"gpipe", "chimera"}) {
    PipeFisherConfig cfg;
    cfg.schedule = sched;
    cfg.arch = bert_base();
    cfg.hw = p100();
    cfg.n_stages = 8;
    cfg.blocks_per_stage = 1;
    cfg.n_micro = 8;
    cfg.b_micro = 16;
    cfg.model_p2p = false;
    const auto rep = run_pipefisher(cfg);

    PerfModelInput in;
    in.cfg = cfg.arch;
    in.hw = cfg.hw;
    in.schedule = sched;
    in.depth = 8;
    in.n_micro = 8;
    in.b_micro = 16;
    const auto pm = run_perf_model(in);
    EXPECT_LE(std::abs(rep.refresh_interval_steps - pm.refresh_steps), 2)
        << sched << ": simulated " << rep.refresh_interval_steps
        << " vs model " << pm.refresh_steps;
  }
}

TEST(Integration, UtilizationGainMatchesBubbleAccounting) {
  // utilization_after - utilization_before ≈ (filled work)/(window), a
  // conservation law of the assigner.
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  const auto rep = run_pipefisher(cfg);
  const double window =
      static_cast<double>(rep.refresh_interval_steps) * rep.step_time;
  const double filled_fraction =
      rep.curv_inv_seconds_per_device / window;
  // PipeFisher utilization ≈ baseline-with-precondition + filled work.
  const double base_with_prec =
      rep.pipefisher_window.utilization(0.0, window) - filled_fraction;
  EXPECT_NEAR(rep.utilization, base_with_prec + filled_fraction, 1e-9);
  EXPECT_GT(filled_fraction, 0.1);
}

TEST(Integration, ChromeTraceOfFullRunIsWellFormed) {
  PipeFisherConfig cfg;
  cfg.schedule = "chimera";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 1;
  cfg.n_micro = 4;
  cfg.b_micro = 8;
  const auto rep = run_pipefisher(cfg);
  const std::string json = to_chrome_trace_json(rep.pipefisher_window);
  // Balanced brackets and one event per interval.
  long braces = 0;
  std::size_t events = 0;
  for (char c : json) {
    if (c == '{') {
      ++braces;
      ++events;
    }
    if (c == '}') --braces;
  }
  EXPECT_EQ(braces, 0);
  std::size_t intervals = 0;
  for (std::size_t d = 0; d < rep.pipefisher_window.n_devices(); ++d)
    intervals += rep.pipefisher_window.device_intervals(d).size();
  // args objects add one brace pair per event.
  EXPECT_EQ(events, 2 * intervals);
}

TEST(Integration, LambVsKfacConvergenceShapeHolds) {
  // A miniature end-to-end Figure 7: K-FAC's smoothed loss at every late
  // checkpoint is at or below LAMB's. Kept small for test runtime; the
  // full-size version is bench/fig07_convergence.
  BertConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 2;
  cfg.seq_len = 16;
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  cc.structure_prob = 0.9;
  cc.successors = 2;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  const std::size_t steps = 120;

  auto run = [&](bool kfac) {
    Rng rng(7);
    BertModel model(cfg, rng);
    TrainerConfig tc;
    tc.batch_size = 16;
    tc.total_steps = steps;
    tc.schedule = PolyWarmupSchedule(2e-2, kfac ? 10 : 34, steps);
    std::unique_ptr<Optimizer> opt;
    if (kfac) {
      KfacOptimizerOptions o;
      o.inverse_interval = 3;
      opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                            std::make_unique<Lamb>(), o);
    } else {
      opt = std::make_unique<Lamb>();
    }
    Trainer t(model, batcher, std::move(opt), tc);
    return t.run();
  };
  const auto lamb = run(false);
  const auto kfac = run(true);
  const auto ls = smooth_moving_average(lamb.loss, 10);
  const auto ks = smooth_moving_average(kfac.loss, 10);
  // At the end of the run K-FAC should be at least as good.
  EXPECT_LE(ks.back(), ls.back() + 0.05);
}

}  // namespace
}  // namespace pf
