// Tests for src/linalg: Matrix, GEMM variants, Cholesky, Kronecker algebra.
//
// The Kronecker identities proven here are exactly the ones K-FAC relies on:
//   (A ⊗ B)⁻¹ = A⁻¹ ⊗ B⁻¹   and   (A ⊗ B) vec(X) = vec(B X Aᵀ).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/cpu_features.h"
#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/eig.h"
#include "src/linalg/gemm.h"
#include "src/linalg/kron.h"
#include "src/linalg/matrix.h"

namespace pf {
namespace {

Matrix random_spd(std::size_t n, Rng& rng, double damping = 0.5) {
  const Matrix u = Matrix::randn(n, n, rng);
  Matrix spd = matmul_tn(u, u);
  spd *= 1.0 / static_cast<double>(n);
  add_diagonal(spd, damping);
  return spd;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Rng rng(5);
  const Matrix a = Matrix::randn(3, 4, rng);
  const Matrix at = a.transposed();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(at(c, r), a(r, c));
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  a.axpby(0.5, b, 0.1);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5 * 2.0 + 0.1 * 10.0);
}

TEST(Matrix, Reductions) {
  const Matrix a = Matrix::from_rows({{3, -4}, {0, 0}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), -1.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Gemm, MatchesHandComputedProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::from_rows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Gemm, TnAndNtAgreeWithExplicitTranspose) {
  Rng rng(21);
  const Matrix a = Matrix::randn(7, 5, rng);
  const Matrix b = Matrix::randn(7, 4, rng);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(a.transposed(), b)), 1e-12);
  const Matrix c = Matrix::randn(6, 5, rng);
  const Matrix d = Matrix::randn(9, 5, rng);
  EXPECT_LT(max_abs_diff(matmul_nt(c, d), matmul(c, d.transposed())), 1e-12);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(23);
  const Matrix a = Matrix::randn(8, 8, rng);
  EXPECT_LT(max_abs_diff(matmul(a, Matrix::identity(8)), a), 1e-14);
  EXPECT_LT(max_abs_diff(matmul(Matrix::identity(8), a), a), 1e-14);
}

TEST(Gemm, AccumulationAddsAlphaTimesProduct) {
  Rng rng(29);
  const Matrix a = Matrix::randn(4, 3, rng);
  const Matrix b = Matrix::randn(3, 5, rng);
  Matrix c(4, 5, 1.0);
  matmul_acc(a, b, c, 2.0);
  Matrix expect = matmul(a, b);
  expect *= 2.0;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t col = 0; col < 5; ++col)
      EXPECT_NEAR(c(r, col), expect(r, col) + 1.0, 1e-12);
}

TEST(Gemm, BlockedMatchesNaiveOnLargerSizes) {
  // Exercises the kBlock tiling boundaries (sizes straddling 64).
  Rng rng(31);
  const Matrix a = Matrix::randn(65, 130, rng);
  const Matrix b = Matrix::randn(130, 67, rng);
  const Matrix c = matmul(a, b);
  // Naive reference.
  Matrix ref(65, 67, 0.0);
  for (std::size_t i = 0; i < 65; ++i)
    for (std::size_t k = 0; k < 130; ++k)
      for (std::size_t j = 0; j < 67; ++j) ref(i, j) += a(i, k) * b(k, j);
  EXPECT_LT(max_abs_diff(c, ref), 1e-10);
}

// The parallel kernels promise bitwise-identical results to the serial path
// (gemm.h): row blocks only partition the output, never reorder the
// per-element accumulation. Verified with exact equality, not a tolerance.
TEST(GemmParallel, AllVariantsBitwiseEqualSerialAcrossThreadCounts) {
  Rng rng(71);
  const Matrix a = Matrix::randn(97, 43, rng);
  const Matrix b = Matrix::randn(43, 71, rng);
  const Matrix t = Matrix::randn(97, 71, rng);   // for tn: (97x43)ᵀ·(97x71)
  const Matrix n = Matrix::randn(51, 43, rng);   // for nt: (97x43)·(51x43)ᵀ
  const Matrix s_nn = matmul(a, b, 1);
  const Matrix s_tn = matmul_tn(a, t, 1);
  const Matrix s_nt = matmul_nt(a, n, 1);
  for (int threads : {2, 3, 7, 16, 64}) {
    EXPECT_EQ(max_abs_diff(matmul(a, b, threads), s_nn), 0.0)
        << "matmul threads=" << threads;
    EXPECT_EQ(max_abs_diff(matmul_tn(a, t, threads), s_tn), 0.0)
        << "matmul_tn threads=" << threads;
    EXPECT_EQ(max_abs_diff(matmul_nt(a, n, threads), s_nt), 0.0)
        << "matmul_nt threads=" << threads;
  }
}

TEST(GemmParallel, AccumulatingVariantsBitwiseEqualSerial) {
  Rng rng(73);
  const Matrix a = Matrix::randn(66, 30, rng);
  const Matrix b = Matrix::randn(30, 20, rng);
  Matrix serial(66, 20, 0.5), parallel(66, 20, 0.5);
  matmul_acc(a, b, serial, 1.7, 1);
  matmul_acc(a, b, parallel, 1.7, 5);
  EXPECT_EQ(max_abs_diff(serial, parallel), 0.0);

  const Matrix dy = Matrix::randn(66, 20, rng);
  Matrix s_tn(30, 20, -1.0), p_tn(30, 20, -1.0);
  matmul_tn_acc(a, dy, s_tn, 0.25, 1);
  matmul_tn_acc(a, dy, p_tn, 0.25, 4);
  EXPECT_EQ(max_abs_diff(s_tn, p_tn), 0.0);

  const Matrix c = Matrix::randn(20, 30, rng);
  Matrix s_nt(66, 20, 2.0), p_nt(66, 20, 2.0);
  matmul_nt_acc(a, c, s_nt, -3.0, 1);
  matmul_nt_acc(a, c, p_nt, -3.0, 8);
  EXPECT_EQ(max_abs_diff(s_nt, p_nt), 0.0);
}

TEST(GemmParallel, GlobalThreadKnobSelectsParallelPath) {
  Rng rng(79);
  const Matrix a = Matrix::randn(40, 25, rng);
  const Matrix b = Matrix::randn(25, 33, rng);
  const Matrix serial = matmul(a, b, 1);
  EXPECT_EQ(gemm_threads(), 1);  // seed default: serial
  set_gemm_threads(4);
  EXPECT_EQ(gemm_threads(), 4);
  const Matrix via_knob = matmul(a, b);  // threads=0 → global default
  set_gemm_threads(1);
  EXPECT_EQ(max_abs_diff(via_knob, serial), 0.0);
  // The knob floors at 1: "0 threads" is not a meaningful request.
  set_gemm_threads(-3);
  EXPECT_EQ(gemm_threads(), 1);
}

TEST(GemmParallel, ShapeMismatchThrowsOnThreadedPath) {
  Matrix a(4, 3), b(5, 6), c(4, 6);
  EXPECT_THROW(matmul(a, b, 4), Error);
  EXPECT_THROW(matmul_tn(a, b, 4), Error);
  EXPECT_THROW(matmul_nt(a, b, 4), Error);
  Matrix bad_c(3, 6);
  Matrix b_ok(3, 6);
  EXPECT_THROW(matmul_acc(a, b_ok, bad_c, 1.0, 4), Error);
}

TEST(GemmParallel, ZeroSizedAndSingleRowEdgeCases) {
  // threads far exceeding the row count must clamp, not crash; empty
  // operands must yield empty/zero results on both paths.
  Rng rng(83);
  for (int threads : {1, 8}) {
    const Matrix e0 = matmul(Matrix(0, 5), Matrix(5, 3), threads);
    EXPECT_EQ(e0.rows(), 0u);
    EXPECT_EQ(e0.cols(), 3u);
    const Matrix e1 = matmul(Matrix(3, 0), Matrix(0, 2), threads);
    EXPECT_EQ(e1.rows(), 3u);
    EXPECT_EQ(e1.cols(), 2u);
    EXPECT_DOUBLE_EQ(e1.max_abs(), 0.0);  // empty K: all-zero accumulators

    const Matrix row = Matrix::randn(1, 9, rng);
    const Matrix w = Matrix::randn(9, 4, rng);
    EXPECT_EQ(max_abs_diff(matmul(row, w, threads), matmul(row, w, 1)), 0.0);
    const Matrix col = Matrix::randn(9, 1, rng);
    const Matrix tn = matmul_tn(col, Matrix::randn(9, 6, rng), threads);
    EXPECT_EQ(tn.rows(), 1u);
    const Matrix nt = matmul_nt(row, Matrix::randn(1, 9, rng), threads);
    EXPECT_EQ(nt.cols(), 1u);
  }
}

// RAII guard: force a SIMD level for one scope, restore the previous one.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(active_simd_level()) {
    set_simd_level(level);
  }
  ~ScopedSimdLevel() { set_simd_level(prev_); }

 private:
  SimdLevel prev_;
};

// The packed microkernel has two ISA paths (gemm.h): cross-ISA results may
// differ in the last ulps (FMA fuses one rounding, the AVX-512 tile walks a
// different fixed k-grouping), so the vector-vs-scalar comparisons use an
// epsilon; within one ISA thread partitioning must be bitwise neutral.
// Shapes are deliberately odd — none is a multiple of the 6×8 or 8×16
// register tiles, several straddle the 256-deep k panel — so the edge
// kernels and every pack path get exercised.

// The vector tiers this host + build can actually run (kScalar excluded).
std::vector<SimdLevel> vector_levels() {
  std::vector<SimdLevel> out;
  const auto d = static_cast<int>(detected_simd_level());
  if (d >= static_cast<int>(SimdLevel::kAvx2)) out.push_back(SimdLevel::kAvx2);
  if (d >= static_cast<int>(SimdLevel::kAvx512))
    out.push_back(SimdLevel::kAvx512);
  return out;
}

TEST(GemmSimd, DetectionAndOverrideAreConsistent) {
  const SimdLevel detected = detected_simd_level();
  EXPECT_STRNE(simd_level_name(detected), "unknown");
  EXPECT_STRNE(simd_level_name(active_simd_level()), "unknown");
  // set_simd_level clamps each request to what the host/build supports.
  const SimdLevel prev = active_simd_level();
  for (SimdLevel req : {SimdLevel::kScalar, SimdLevel::kAvx2,
                        SimdLevel::kAvx512}) {
    const SimdLevel want =
        static_cast<int>(req) <= static_cast<int>(detected) ? req : detected;
    EXPECT_EQ(set_simd_level(req), want) << simd_level_name(req);
    EXPECT_EQ(active_simd_level(), want) << simd_level_name(req);
  }
  set_simd_level(prev);
  EXPECT_EQ(active_simd_level(), prev);
}

TEST(GemmSimd, ParseSimdLevelRoundTrips) {
  // The PF_SIMD_LEVEL parser: every exposed name round-trips, junk and the
  // empty string are rejected without touching the output.
  for (SimdLevel l : {SimdLevel::kScalar, SimdLevel::kAvx2,
                      SimdLevel::kAvx512}) {
    SimdLevel out = SimdLevel::kScalar;
    EXPECT_TRUE(parse_simd_level(simd_level_name(l), &out));
    EXPECT_EQ(out, l);
  }
  SimdLevel out = SimdLevel::kAvx2;
  EXPECT_FALSE(parse_simd_level("sse9", &out));
  EXPECT_FALSE(parse_simd_level("", &out));
  EXPECT_FALSE(parse_simd_level("AVX2", &out));  // case sensitive
  EXPECT_EQ(out, SimdLevel::kAvx2);
}

TEST(GemmSimd, VectorTiersMatchScalarWithinEpsilonAcrossOddShapes) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA on this host/build";
  struct Shape {
    std::size_t m, k, n;
  };
  // Odd shapes plus AVX-512-tile stressors: n straddling one zmm lane (9),
  // exactly two lanes (16), a full 8×16 tile, and partial m rows against
  // the 8-row tile.
  const Shape shapes[] = {{1, 1, 1},    {2, 3, 4},    {5, 7, 9},
                          {6, 8, 16},   {7, 17, 33},  {13, 67, 29},
                          {97, 43, 71}, {64, 300, 5}, {3, 257, 40},
                          {8, 32, 16},  {9, 19, 17},  {15, 260, 31}};
  Rng rng(101);
  for (const auto& s : shapes) {
    const Matrix a = Matrix::randn(s.m, s.k, rng);
    const Matrix b = Matrix::randn(s.k, s.n, rng);
    const Matrix at = Matrix::randn(s.k, s.m, rng);  // tn: (k×m)ᵀ·(k×n)
    const Matrix bn = Matrix::randn(s.k, s.n, rng);
    const Matrix bt = Matrix::randn(s.n, s.k, rng);  // nt: (m×k)·(n×k)ᵀ
    const double tol = 1e-11 * static_cast<double>(s.k);
    for (int threads : {1, 3}) {
      Matrix nn_sc, tn_sc, nt_sc;
      {
        ScopedSimdLevel scalar(SimdLevel::kScalar);
        nn_sc = matmul(a, b, threads);
        tn_sc = matmul_tn(at, bn, threads);
        nt_sc = matmul_nt(a, bt, threads);
      }
      for (SimdLevel level : levels) {
        ScopedSimdLevel guard(level);
        const char* ln = simd_level_name(level);
        EXPECT_LT(max_abs_diff(matmul(a, b, threads), nn_sc), tol)
            << ln << " nn " << s.m << "x" << s.k << "x" << s.n
            << " t=" << threads;
        EXPECT_LT(max_abs_diff(matmul_tn(at, bn, threads), tn_sc), tol)
            << ln << " tn " << s.m << "x" << s.k << "x" << s.n
            << " t=" << threads;
        EXPECT_LT(max_abs_diff(matmul_nt(a, bt, threads), nt_sc), tol)
            << ln << " nt " << s.m << "x" << s.k << "x" << s.n
            << " t=" << threads;
      }
    }
  }
}

TEST(GemmSimd, AccVariantsMatchAcrossIsaWithinEpsilon) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA on this host/build";
  Rng rng(103);
  const Matrix a = Matrix::randn(11, 70, rng);
  const Matrix b = Matrix::randn(70, 13, rng);
  const Matrix dy = Matrix::randn(11, 13, rng);
  const Matrix c_nt = Matrix::randn(13, 70, rng);
  const double alpha = -1.7;
  for (int threads : {1, 4}) {
    Matrix acc_sc(11, 13, 0.25), tn_sc(70, 13, -2.0), nt_sc(11, 13, 0.5);
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      matmul_acc(a, b, acc_sc, alpha, threads);
      matmul_tn_acc(a, dy, tn_sc, alpha, threads);
      matmul_nt_acc(a, c_nt, nt_sc, alpha, threads);
    }
    for (SimdLevel level : levels) {
      Matrix acc_v(11, 13, 0.25), tn_v(70, 13, -2.0), nt_v(11, 13, 0.5);
      ScopedSimdLevel guard(level);
      matmul_acc(a, b, acc_v, alpha, threads);
      matmul_tn_acc(a, dy, tn_v, alpha, threads);
      matmul_nt_acc(a, c_nt, nt_v, alpha, threads);
      const char* ln = simd_level_name(level);
      EXPECT_LT(max_abs_diff(acc_sc, acc_v), 1e-9) << ln << " t=" << threads;
      EXPECT_LT(max_abs_diff(tn_sc, tn_v), 1e-9) << ln << " t=" << threads;
      EXPECT_LT(max_abs_diff(nt_sc, nt_v), 1e-9) << ln << " t=" << threads;
    }
  }
}

TEST(GemmSimd, ThreadPartitionIsBitwiseNeutralPerIsa) {
  // Both microkernels promise ascending-k accumulation per element no matter
  // how rows are split, so within one SIMD level every thread count must be
  // bitwise identical — including counts that leave partial 6-row tiles at
  // chunk boundaries.
  Rng rng(107);
  const Matrix a = Matrix::randn(89, 53, rng);
  const Matrix b = Matrix::randn(53, 37, rng);
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel v : vector_levels()) levels.push_back(v);
  for (SimdLevel level : levels) {
    ScopedSimdLevel guard(level);
    const Matrix serial = matmul(a, b, 1);
    for (int threads : {2, 3, 7, 16, 89}) {
      EXPECT_EQ(max_abs_diff(matmul(a, b, threads), serial), 0.0)
          << simd_level_name(level) << " threads=" << threads;
    }
  }
}

TEST(GemmSimd, ScalarKernelMatchesNaiveReference) {
  // The scalar microkernel is the always-available reference path (and the
  // one PF_FORCE_SCALAR pins); check it against a textbook triple loop.
  ScopedSimdLevel scalar(SimdLevel::kScalar);
  Rng rng(109);
  const Matrix a = Matrix::randn(19, 31, rng);
  const Matrix b = Matrix::randn(31, 23, rng);
  Matrix ref(19, 23, 0.0);
  for (std::size_t i = 0; i < 19; ++i)
    for (std::size_t k = 0; k < 31; ++k)
      for (std::size_t j = 0; j < 23; ++j) ref(i, j) += a(i, k) * b(k, j);
  EXPECT_LT(max_abs_diff(matmul(a, b, 1), ref), 1e-12);
}

TEST(Gemm, Matvec) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const auto y = matvec(a, {1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Cholesky, ReconstructsInput) {
  Rng rng(37);
  for (std::size_t n : {1u, 2u, 5u, 16u, 33u}) {
    const Matrix m = random_spd(n, rng);
    const Matrix l = cholesky(m);
    EXPECT_LT(max_abs_diff(matmul_nt(l, l), m), 1e-10) << "n=" << n;
  }
}

TEST(Cholesky, LowerTriangular) {
  Rng rng(41);
  const Matrix l = cholesky(random_spd(6, rng));
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = r + 1; c < 6; ++c) EXPECT_DOUBLE_EQ(l(r, c), 0.0);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  Matrix m = Matrix::identity(3);
  m(2, 2) = -1.0;
  EXPECT_FALSE(try_cholesky(m).has_value());
  EXPECT_THROW(cholesky(m), Error);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(43);
  const Matrix m = random_spd(12, rng);
  std::vector<double> x_true(12);
  for (auto& v : x_true) v = rng.normal();
  const auto b = matvec(m, x_true);
  const auto x = cholesky_solve(cholesky(m), b);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, InverseTimesInputIsIdentity) {
  Rng rng(47);
  for (std::size_t n : {2u, 8u, 24u}) {
    const Matrix m = random_spd(n, rng);
    const Matrix inv = cholesky_inverse(cholesky(m));
    EXPECT_LT(max_abs_diff(matmul(inv, m), Matrix::identity(n)), 1e-8)
        << "n=" << n;
  }
}

TEST(Cholesky, SpdInverseAppliesDamping) {
  // (I + damping·I)⁻¹ = 1/(1+damping)·I.
  const Matrix inv = spd_inverse(Matrix::identity(4), 1.0);
  EXPECT_LT(max_abs_diff(inv, Matrix::identity(4) * 0.5), 1e-12);
}

// Unblocked reference factorization (the seed algorithm) for pinning the
// blocked right-looking path.
Matrix reference_cholesky(const Matrix& m) {
  const std::size_t n = m.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = m(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    EXPECT_GT(diag, 0.0);
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = m(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

TEST(CholeskyBlocked, MatchesUnblockedReferenceAcrossPanelBoundaries) {
  // Sizes straddle the 64-wide panel: below, exactly at, one past, and
  // multiple panels with a partial tail.
  Rng rng(113);
  for (std::size_t n : {48u, 64u, 65u, 96u, 130u}) {
    const Matrix m = random_spd(n, rng);
    const Matrix l = cholesky(m);
    const Matrix ref = reference_cholesky(m);
    // Different summation grouping → epsilon, not equality.
    EXPECT_LT(max_abs_diff(l, ref), 1e-9) << "n=" << n;
    EXPECT_LT(max_abs_diff(matmul_nt(l, l), m), 1e-9) << "n=" << n;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c)
        ASSERT_EQ(l(r, c), 0.0) << "upper triangle must be cleared";
  }
}

TEST(CholeskyBlocked, ThreadCountIsBitwiseNeutral) {
  // Panel solves and trailing updates are row-partitioned with a fixed
  // per-element ascending-k sum, so every thread count must reproduce the
  // serial factorization (and inverse) exactly.
  Rng rng(127);
  const Matrix m = random_spd(130, rng);
  const Matrix l1 = cholesky(m, 1);
  const Matrix inv1 = cholesky_inverse(l1, 1);
  const Matrix spd1 = spd_inverse(m, 0.3, 1);
  for (int threads : {2, 3, 8}) {
    EXPECT_EQ(max_abs_diff(cholesky(m, threads), l1), 0.0)
        << "cholesky threads=" << threads;
    EXPECT_EQ(max_abs_diff(cholesky_inverse(l1, threads), inv1), 0.0)
        << "cholesky_inverse threads=" << threads;
    EXPECT_EQ(max_abs_diff(spd_inverse(m, 0.3, threads), spd1), 0.0)
        << "spd_inverse threads=" << threads;
  }
}

TEST(CholeskyBlocked, ParallelInverseTimesInputIsIdentity) {
  Rng rng(131);
  const Matrix m = random_spd(96, rng);
  const Matrix inv = spd_inverse(m, 0.0, 4);
  EXPECT_LT(max_abs_diff(matmul(inv, m), Matrix::identity(96)), 1e-7);
}

TEST(CholeskyBlocked, RejectsSpdViolationInLaterPanel) {
  // The indefinite pivot sits in the second 64-wide panel, so the failure is
  // only reachable through the blocked path's trailing updates.
  Matrix m = Matrix::identity(100);
  m(80, 80) = -2.0;
  EXPECT_FALSE(try_cholesky(m).has_value());
  EXPECT_THROW(cholesky(m), Error);
  EXPECT_THROW(cholesky(m, 4), Error);
  EXPECT_THROW(spd_inverse(m, 0.0, 4), Error);
  // Damping large enough to cross back into PD must succeed again.
  EXPECT_NO_THROW(spd_inverse(m, 4.0, 2));
}

TEST(Kron, MatchesDefinitionOnSmallExample) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{0, 5}, {6, 7}});
  const Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00*b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00*b10
  EXPECT_DOUBLE_EQ(k(3, 2), 4 * 6);  // a11*b10
  EXPECT_DOUBLE_EQ(k(2, 3), 4 * 5);  // a11*b01
}

TEST(Kron, MixedProductProperty) {
  // (A⊗B)(C⊗D) = (AC)⊗(BD).
  Rng rng(53);
  const Matrix a = Matrix::randn(3, 3, rng), b = Matrix::randn(2, 2, rng);
  const Matrix c = Matrix::randn(3, 3, rng), d = Matrix::randn(2, 2, rng);
  const Matrix lhs = matmul(kron(a, b), kron(c, d));
  const Matrix rhs = kron(matmul(a, c), matmul(b, d));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST(Kron, InverseOfKronIsKronOfInverses) {
  // The identity that makes K-FAC tractable.
  Rng rng(59);
  const Matrix a = random_spd(3, rng);
  const Matrix b = random_spd(4, rng);
  const Matrix lhs = spd_inverse(kron(a, b));
  const Matrix rhs = kron(spd_inverse(a), spd_inverse(b));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-7);
}

TEST(Kron, KronMatvecEqualsMaterializedProduct) {
  // (A ⊗ B) vec(X) = vec(B X Aᵀ).
  Rng rng(61);
  const Matrix a = Matrix::randn(3, 3, rng);
  const Matrix b = Matrix::randn(4, 4, rng);
  const Matrix x = Matrix::randn(4, 3, rng);
  const auto fast = kron_matvec(a, b, x);
  const auto slow = matvec(kron(a, b), vec_cols(x));
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast[i], slow[i], 1e-10);
}

TEST(Kron, VecUnvecRoundTrip) {
  Rng rng(67);
  const Matrix x = Matrix::randn(5, 7, rng);
  const Matrix back = unvec_cols(vec_cols(x), 5, 7);
  EXPECT_LT(max_abs_diff(x, back), 0.0 + 1e-300);
}

// Property sweep: Cholesky-based preconditioning B⁻¹ G A⁻¹ equals the
// materialized (A ⊗ B)⁻¹ g across shapes — the core K-FAC computation.
class KfacIdentityTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KfacIdentityTest, PreconditionMatchesMaterializedFisherInverse) {
  const auto [din, dout] = GetParam();
  Rng rng(1000 + din * 31 + dout);
  const Matrix a = random_spd(din, rng);   // A_l (input factor)
  const Matrix b = random_spd(dout, rng);  // B_l (output factor)
  const Matrix g = Matrix::randn(dout, din, rng);  // gradient G_l

  // Fast path: B⁻¹ G A⁻¹.
  const Matrix precond = matmul(matmul(spd_inverse(b), g), spd_inverse(a));
  // Slow path: materialize (A ⊗ B) and solve.
  const Matrix fisher = kron(a, b);
  const auto flat = cholesky_solve(cholesky(fisher), vec_cols(g));
  const Matrix slow = unvec_cols(flat, dout, din);
  EXPECT_LT(max_abs_diff(precond, slow), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KfacIdentityTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{6, 2},
                      std::pair<std::size_t, std::size_t>{8, 5},
                      std::pair<std::size_t, std::size_t>{3, 9}));

// The last serial cubic kernel, now threaded behind the ExecContext: the
// fused Jacobi rotation updates and the eigenvector/matrix-function
// accumulations must be bitwise identical to serial at every thread count.
// parallel_cutoff = 0 forces the parallel rotation path on matrices small
// enough to test (production defaults clamp below n = 512 — see eig.h).
TEST(EigThreads, SymEigBitwiseThreadNeutral) {
  Rng rng(404);
  for (const std::size_t n : {24u, 64u}) {
    const Matrix m = random_spd(n, rng);
    const auto ref = sym_eig(m, 64, 1e-12, ExecContext::serial());
    for (int t : {2, 4}) {
      const ExecContext ctx(t, 1);
      const auto eig = sym_eig(m, 64, 1e-12, ctx, /*parallel_cutoff=*/0);
      ASSERT_EQ(eig.values.size(), ref.values.size());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(eig.values[i], ref.values[i])
            << "eigenvalue " << i << " n=" << n << " threads=" << t;
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
          ASSERT_EQ(eig.vectors(r, c), ref.vectors(r, c))
              << "eigvec (" << r << "," << c << ") n=" << n
              << " threads=" << t;
    }
  }
}

TEST(EigThreads, InversePthRootBitwiseThreadNeutral) {
  // Below the rotation cutoff this exercises the threaded
  // sym_matrix_function reconstruction on top of the (serial) eig.
  Rng rng(405);
  const Matrix m = random_spd(56, rng);
  const Matrix ref = sym_inverse_pth_root(m, 4.0, 1e-6, ExecContext::serial());
  for (int t : {2, 4}) {
    const Matrix root = sym_inverse_pth_root(m, 4.0, 1e-6, ExecContext(t, 1));
    for (std::size_t r = 0; r < ref.rows(); ++r)
      for (std::size_t c = 0; c < ref.cols(); ++c)
        ASSERT_EQ(root(r, c), ref(r, c))
            << "(" << r << "," << c << ") threads=" << t;
  }
}

TEST(EigThreads, MatrixFunctionShardsKeepAscendingEigenvalueOrder) {
  Rng rng(406);
  const Matrix m = random_spd(50, rng);
  const auto eig = sym_eig(m);
  const auto f = [](double lambda) { return lambda > 0.3 ? 1.0 / lambda : 0.0; };
  const Matrix ref = sym_matrix_function(eig, f, ExecContext::serial());
  for (int t : {2, 4}) {
    const Matrix out = sym_matrix_function(eig, f, ExecContext(t, 1));
    for (std::size_t r = 0; r < ref.rows(); ++r)
      for (std::size_t c = 0; c < ref.cols(); ++c)
        ASSERT_EQ(out(r, c), ref(r, c))
            << "(" << r << "," << c << ") threads=" << t;
  }
}

}  // namespace
}  // namespace pf
